//! Workspace-level integration surface.
//!
//! This crate exists to wire the repository's top-level `tests/` and
//! `examples/` into the Cargo workspace: its dependency list spans every
//! layer of the stack, so `cargo test -q` compiles and runs the end-to-end
//! suites and `cargo run --example quickstart` works from the repo root.
//! It re-exports the member crates under stable names for those targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cba;
pub use cba_bus;
pub use cba_cpu;
pub use cba_mbpta;
pub use cba_mem;
pub use cba_platform;
pub use cba_workloads;
pub use sim_core;
