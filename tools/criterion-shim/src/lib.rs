//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, for offline builds.
//!
//! The workspace's registry-free environment cannot fetch the real
//! `criterion` crate, so this shim provides the subset of its API that our
//! `benches/*.rs` targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — measured with plain
//! [`std::time::Instant`] wall-clock timing.
//!
//! Results are printed as `group/name: mean ± spread` over a fixed number
//! of timed batches. This is good enough for relative comparisons in local
//! runs and keeps the bench targets compiling in CI; swap the workspace
//! `criterion` entry for the real crate when a registry is reachable.

#![forbid(unsafe_code)]

use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer identity function, re-exported for parity with
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &name.into(), sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &name.into(), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; output is streamed).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; drives timed iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per batch of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate the batch size so one sample takes ~1 ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= 1e-3 || iters >= 1 << 24 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 8;
        }
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
        sample_budget: sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let n = bencher.samples.len() as f64;
    let mean = bencher.samples.iter().sum::<f64>() / n;
    let var = bencher
        .samples
        .iter()
        .map(|s| (s - mean) * (s - mean))
        .sum::<f64>()
        / n;
    println!(
        "{label:<40} {:>12} ± {}",
        fmt_time(mean),
        fmt_time(var.sqrt())
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` from groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
