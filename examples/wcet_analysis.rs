//! The full MBPTA workflow on one benchmark: WCET-estimation-mode
//! measurements, iid applicability checks, Gumbel fit, pWCET curve, and
//! the dominance check against a deployment scenario.
//!
//! ```text
//! cargo run --release --example wcet_analysis
//! ```

use cba_platform::experiments::pwcet_analysis;
use cba_platform::BusSetup;
use cba_workloads::suite;

fn main() {
    let runs = 200;
    let profile = suite::canrdr();
    println!(
        "MBPTA analysis of '{}' on the CBA bus ({runs} analysis runs)\n",
        profile.name
    );

    let analysis = pwcet_analysis(&profile, BusSetup::Cba, runs, 2017).expect("analysis succeeds");

    println!("1. iid applicability battery (needed before any EVT fit):");
    println!(
        "   Kolmogorov-Smirnov (split half): p = {:.3}",
        analysis.iid.ks.p_value
    );
    println!(
        "   Ljung-Box (20 lags):             p = {:.3}",
        analysis.iid.ljung_box.p_value
    );
    println!(
        "   Wald-Wolfowitz runs test:        p = {:.3}",
        analysis.iid.runs.p_value
    );
    println!(
        "   -> {}\n",
        if analysis.iid.passes(0.05) {
            "PASS: the randomized platform delivers iid measurements"
        } else {
            "MARGINAL: inspect the sample before trusting the fit"
        }
    );

    let g = analysis.model.gumbel();
    println!(
        "2. Gumbel fit on block maxima: mu = {:.0}, beta = {:.1}\n",
        g.mu, g.beta
    );

    println!("3. pWCET curve (execution time exceeded with probability p per run):");
    for p in [1e-3, 1e-6, 1e-9, 1e-12, 1e-15] {
        println!(
            "   p = {p:>6.0e}  ->  {:>10.0} cycles",
            analysis.model.quantile_per_run(p)
        );
    }
    println!();

    println!("4. soundness check:");
    println!(
        "   max observed at analysis time : {:>10.0} cycles",
        analysis.max_analysis
    );
    println!(
        "   max observed in deployment    : {:>10.0} cycles",
        analysis.max_operation
    );
    let bound = analysis.model.quantile_per_run(1e-12);
    println!(
        "   pWCET(1e-12) = {:.0} dominates both: {}",
        bound,
        bound >= analysis.max_analysis && bound >= analysis.max_operation
    );
}
