//! Heterogeneous bandwidth allocation (the paper's Section III.A): give
//! the task under analysis 50% of the bus, either by skewing the recovery
//! weights (H-CBA, evaluated in the paper) or by letting its budget cap
//! grow above MaxL (the burst-enabling variant).
//!
//! ```text
//! cargo run --release --example hetero_allocation
//! ```

use cba::CreditConfig;
use cba_platform::experiments::ablation_hcba;
use sim_core::CoreId;

fn main() {
    println!("Heterogeneous allocation: two ways to favor core 0\n");

    let weights = CreditConfig::paper_hcba(56).unwrap();
    println!("variant 2 — recovery weights (the paper's H-CBA):");
    for i in 0..4 {
        let core = CoreId::from_index(i);
        println!(
            "   core {i}: recovers {}/{} per cycle -> {:.0}% bandwidth entitlement, \
             refills a MaxL transaction in {} cycles",
            weights.numerator(core),
            weights.denominator(),
            100.0 * weights.bandwidth_fraction(core),
            weights.recovery_cycles(core, 56),
        );
    }

    let cap = CreditConfig::homogeneous(4, 56)
        .unwrap()
        .with_cap_multipliers(vec![2, 1, 1, 1])
        .unwrap();
    println!("\nvariant 1 — budget cap above MaxL:");
    println!(
        "   core 0 banks up to {} scaled units (2 x MaxL): it can issue two MaxL \
         transactions back-to-back,",
        cap.scaled_cap(CoreId::from_index(0))
    );
    println!("   but its long-run bandwidth entitlement stays 1/N.");

    println!("\nmeasured (150 MaxL requests on core 0, periodic co-runners, 10 runs):\n");
    let rows = ablation_hcba(10, 2017);
    println!(
        "{:<28} {:>9} {:>14} {:>19}",
        "variant", "slowdown", "TuA max burst", "contender max gap"
    );
    for r in &rows {
        println!(
            "{:<28} {:>8.2}x {:>14.1} {:>19.0}",
            r.variant, r.slowdown, r.tua_max_burst, r.contender_max_gap
        );
    }
    println!();
    println!("weights buy sustained throughput; the cap buys burstiness and costs");
    println!("the contenders temporal isolation — the trade-off Section III.A names.");
}
