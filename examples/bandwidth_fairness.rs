//! The paper's Section I example, on the raw bus API: two cores that are
//! granted alternately, one with 5-cycle and one with 45-cycle requests.
//! Slot fairness gives each core 50% of the grants — and the short-request
//! core 10% of the bandwidth. The credit filter fixes the bandwidth split.
//!
//! ```text
//! cargo run --release --example bandwidth_fairness
//! ```

use cba::{CreditConfig, CreditFilter};
use cba_bus::{drive, Bus, BusConfig, BusRequest, Control, PolicyKind, RequestKind};
use sim_core::CoreId;

fn run(with_cba: bool) -> (f64, f64, f64, f64) {
    let maxl = 56;
    let mut bus = Bus::new(
        BusConfig::new(2, maxl).unwrap(),
        PolicyKind::RoundRobin.build(2, maxl),
    );
    if with_cba {
        bus.set_filter(Box::new(CreditFilter::new(
            CreditConfig::homogeneous(2, maxl).unwrap(),
        )));
    }
    let c0 = CoreId::from_index(0);
    let c1 = CoreId::from_index(1);
    let horizon = 200_000u64;
    drive(&mut bus, horizon, |bus, now, _completed| {
        for (core, dur) in [(c0, 5u32), (c1, 45u32)] {
            if !bus.has_pending(core) && bus.owner() != Some(core) {
                bus.post(BusRequest::new(core, dur, RequestKind::Synthetic, now).unwrap())
                    .unwrap();
            }
        }
        Control::Continue
    });
    let report = bus.trace().share_report();
    (
        report.slot_share(c0),
        report.cycle_share(c0),
        report.slot_fairness(),
        report.cycle_fairness(),
    )
}

fn main() {
    println!("Two saturating cores, round-robin bus: 5-cycle vs 45-cycle requests\n");
    println!(
        "{:<18} {:>12} {:>13} {:>10} {:>11}",
        "configuration", "slot share", "cycle share", "slot J", "cycle J"
    );
    for (label, with_cba) in [("RR (slot-fair)", false), ("RR + CBA", true)] {
        let (slots, cycles, slot_j, cycle_j) = run(with_cba);
        println!(
            "{label:<18} {:>11.1}% {:>12.1}% {:>10.3} {:>11.3}",
            100.0 * slots,
            100.0 * cycles,
            slot_j,
            cycle_j
        );
    }
    println!();
    println!("shares shown for the short-request core; J = Jain fairness index.");
    println!("Slot-fair arbitration gives it ~50% of grants but ~10% of bandwidth");
    println!("(the paper's Section I numbers); the credit filter rebalances the");
    println!("cycle shares by pinning the long-request core to its 1/2 entitlement.");
}
