//! The paper's Section I example, on the open client API: two saturating
//! cores granted alternately, one with 5-cycle and one with 45-cycle
//! requests. Slot fairness gives each core 50% of the grants — and the
//! short-request core 10% of the bandwidth. The credit filter fixes the
//! bandwidth split.
//!
//! Where PR 1's version hand-rolled a `drive` closure, the traffic here
//! is two [`Contender`] agents plugged into the [`Simulation`] builder —
//! the same agents `run_once` builds through the registry — and a tiny
//! custom [`Probe`] counts grants live, showing how observers subscribe
//! to a run without touching the harness.
//!
//! ```text
//! cargo run --release --example bandwidth_fairness
//! ```

use cba::{CreditConfig, CreditFilter};
use cba_bus::{Bus, BusConfig, CompletedTransaction, PolicyKind};
use cba_cpu::Contender;
use sim_core::{CoreId, Cycle, Probe, Simulation, StopWhen};

/// A minimal streaming observer: counts grants per core as they happen.
#[derive(Default)]
struct GrantCounter {
    grants: [u64; 2],
}

impl Probe<CompletedTransaction> for GrantCounter {
    fn on_grant(&mut self, _now: Cycle, core: CoreId) {
        self.grants[core.index()] += 1;
    }
}

fn run(with_cba: bool) -> (f64, f64, f64, f64, [u64; 2]) {
    let maxl = 56;
    let mut bus = Bus::new(
        BusConfig::new(2, maxl).unwrap(),
        PolicyKind::RoundRobin.build(2, maxl),
    );
    if with_cba {
        bus.set_filter(Box::new(CreditFilter::new(
            CreditConfig::homogeneous(2, maxl).unwrap(),
        )));
    }
    let c0 = CoreId::from_index(0);
    let c1 = CoreId::from_index(1);
    let sim = Simulation::builder()
        .model(bus)
        .agent(Contender::new(c0, 5))
        .agent(Contender::new(c1, 45))
        .stop(StopWhen::Horizon(200_000))
        .observe(GrantCounter::default())
        .run();
    let report = sim.model().trace().share_report();
    (
        report.slot_share(c0),
        report.cycle_share(c0),
        report.slot_fairness(),
        report.cycle_fairness(),
        sim.probe().grants,
    )
}

fn main() {
    println!("Two saturating cores, round-robin bus: 5-cycle vs 45-cycle requests\n");
    println!(
        "{:<18} {:>12} {:>13} {:>10} {:>11} {:>15}",
        "configuration", "slot share", "cycle share", "slot J", "cycle J", "grants (probe)"
    );
    for (label, with_cba) in [("RR (slot-fair)", false), ("RR + CBA", true)] {
        let (slots, cycles, slot_j, cycle_j, grants) = run(with_cba);
        println!(
            "{label:<18} {:>11.1}% {:>12.1}% {:>10.3} {:>11.3} {:>7}/{}",
            100.0 * slots,
            100.0 * cycles,
            slot_j,
            cycle_j,
            grants[0],
            grants[1],
        );
    }
    println!();
    println!("shares shown for the short-request core; J = Jain fairness index.");
    println!("Slot-fair arbitration gives it ~50% of grants but ~10% of bandwidth");
    println!("(the paper's Section I numbers); the credit filter rebalances the");
    println!("cycle shares by pinning the long-request core to its 1/2 entitlement.");
}
