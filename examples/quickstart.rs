//! Quickstart: build the paper's 4-core platform, run one benchmark in
//! isolation and under worst-case contention, with and without
//! credit-based arbitration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cba_platform::{BusSetup, Campaign, CoreLoad, RunSpec, Scenario};

fn main() {
    let runs = 30;
    println!("CBA quickstart: 'matrix' on the 4-core LEON3-class platform ({runs} runs each)\n");

    let mut results = Vec::new();
    for setup in [BusSetup::Rp, BusSetup::Cba, BusSetup::HCba] {
        for scenario in [Scenario::Isolation, Scenario::MaxContention] {
            let label = format!(
                "{}-{}",
                setup.label(),
                if matches!(scenario, Scenario::Isolation) {
                    "ISO"
                } else {
                    "CON"
                }
            );
            let spec = RunSpec::paper(setup.clone(), scenario, CoreLoad::named("matrix"));
            let mean = Campaign::new(spec, runs, 2017).run().mean();
            results.push((label, mean));
        }
    }

    let baseline = results[0].1; // RP-ISO
    println!("{:<12} {:>14} {:>10}", "config", "mean cycles", "slowdown");
    for (label, mean) in &results {
        println!("{label:<12} {mean:>14.0} {:>9.2}x", mean / baseline);
    }

    let rp_con = results[1].1 / baseline;
    let cba_con = results[3].1 / baseline;
    println!();
    println!(
        "Under worst-case contention, credit-based arbitration cuts the slowdown \
         from {rp_con:.2}x to {cba_con:.2}x:"
    );
    println!(
        "the three MaxL contenders are pinned to their 1/N bandwidth entitlement \
         instead of winning a slot-fair share of every arbitration."
    );
}
