//! Scenario files end to end: parse a declarative grid, expand it,
//! execute the campaign batch, and export structured results.
//!
//! The same engine powers `cba_sim --scenario-file` and the paper's
//! experiment drivers (`experiments::fig1` is a scenario definition
//! under the hood). Run with:
//!
//! ```bash
//! cargo run --release --example scenario_campaign
//! ```

use cba_platform::report::run_scenario_with;
use cba_platform::scenario::ScenarioDef;

const SCENARIO: &str = "\
# Slot fairness vs bandwidth fairness, as a scenario file: a
# short-request TuA against three long-request saturating co-runners,
# across the spectrum of arbitration setups.
[campaign]
name = example_grid
runs = 10
seed = 42

[tua]
load = fixed:400:5:0

[contenders]
fill = sat:56
wcet = off

[sweep]
setup = fifo,rr,rp,cba,hcba

[report]
baseline = setup=rr
";

fn main() {
    let def = ScenarioDef::parse(SCENARIO).expect("inline scenario is valid");
    println!(
        "expanding '{}': {} cells x {} runs\n",
        def.name,
        def.n_cells(),
        def.runs
    );
    let report = run_scenario_with(&def, |done, total, cell| {
        println!(
            "  [{done}/{total}] {:<8} mean {:>9.1} cycles",
            cell.label("setup").unwrap_or("?"),
            cell.mean
        );
    })
    .expect("grid runs");

    println!("\n{}", report.render_table());
    println!("--- CSV export (what `cba_sim --out grid.csv` writes) ---");
    print!("{}", report.to_csv());

    // The credit filter turns the request-length hogging off: under RR
    // the 56-cycle co-runners take ~11x the TuA's bandwidth, under CBA
    // every core is pinned to its entitlement.
    let rr = report.cells.iter().find(|c| c.label("setup") == Some("rr"));
    let cba = report
        .cells
        .iter()
        .find(|c| c.label("setup") == Some("CBA"));
    if let (Some(rr), Some(cba)) = (rr, cba) {
        println!(
            "\nRR mean {:.0} cycles vs CBA mean {:.0} cycles ({:.1}x better)",
            rr.mean,
            cba.mean,
            rr.mean / cba.mean
        );
    }
}
