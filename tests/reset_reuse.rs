//! Reset-reuse property: driving the same model twice after `reset()`
//! must equal a freshly constructed model — the contract behind PR 3's
//! buffer-reuse paths (`GrantTrace::clear`, `Bus::reset` without
//! reallocating, `SplitBus::reset`, `Fabric::reset`).
//!
//! Each case runs a deterministic workload on a fresh model, captures an
//! observable fingerprint (traces, cycle counters, wait statistics),
//! resets, re-runs the *same* model, and requires identical fingerprints.
//! Randomized policies get their random source re-installed before every
//! run, mirroring how `run_once` seeds a fresh run.

use cba::{CreditConfig, CreditFilter};
use cba_bus::fabric::{Fabric, FabricConfig};
use cba_bus::split::{SplitBus, SplitBusConfig, SplitRequest};
use cba_bus::{Bus, BusConfig, BusModel, BusRequest, PolicyKind, RequestKind, RequestPort};
use sim_core::lfsr::LfsrBank;
use sim_core::{CoreId, Cycle};

fn c(i: usize) -> CoreId {
    CoreId::from_index(i)
}

/// Everything observable about a bus-side run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    slots: Vec<u64>,
    busy: Vec<u64>,
    idle: u64,
    total: u64,
    granted: Vec<u64>,
    mean_wait: Vec<f64>,
    max_wait: Vec<u64>,
}

fn bus_fingerprint(bus: &Bus, n: usize) -> Fingerprint {
    let ids: Vec<CoreId> = (0..n).map(c).collect();
    Fingerprint {
        slots: ids.iter().map(|&i| bus.trace().slots(i)).collect(),
        busy: ids.iter().map(|&i| bus.trace().busy_cycles(i)).collect(),
        idle: bus.idle_cycles(),
        total: bus.total_cycles(),
        granted: ids.iter().map(|&i| bus.wait_stats().granted(i)).collect(),
        mean_wait: ids.iter().map(|&i| bus.wait_stats().mean_wait(i)).collect(),
        max_wait: ids.iter().map(|&i| bus.wait_stats().max_wait(i)).collect(),
    }
}

/// Drives `bus` with mixed periodic traffic for 5,000 cycles.
fn drive_bus(bus: &mut Bus, n: usize) {
    for now in 0..5_000u64 {
        bus.begin_cycle(now);
        for i in 0..n {
            let period = 40 + 11 * i as u64;
            if now % period == 0 && bus.can_accept(c(i)) {
                let dur = [5u32, 28, 56][i % 3];
                bus.post(BusRequest::new(c(i), dur, RequestKind::Synthetic, now).unwrap())
                    .unwrap();
            }
        }
        bus.end_cycle(now);
    }
}

#[test]
fn bus_reset_reuse_equals_fresh_model() {
    // Deterministic policies and the randomized RP (reseeded per run),
    // each with a credit filter so filter state is exercised too.
    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::Tdma,
        PolicyKind::Fifo,
        PolicyKind::FixedPriority,
        PolicyKind::RandomPermutation,
        PolicyKind::Lottery,
    ] {
        let n = 4;
        let mk = || {
            let mut bus = Bus::new(BusConfig::new(n, 56).unwrap(), policy.build(n, 56));
            bus.set_filter(Box::new(CreditFilter::new(
                CreditConfig::homogeneous(n, 56).unwrap(),
            )));
            bus
        };
        let reseed = |bus: &mut Bus| {
            bus.set_random_source(Box::new(LfsrBank::new(16, 0xDEAD).unwrap()));
        };

        let mut fresh = mk();
        reseed(&mut fresh);
        drive_bus(&mut fresh, n);
        let expected = bus_fingerprint(&fresh, n);

        let mut reused = mk();
        for round in 0..2 {
            reseed(&mut reused);
            drive_bus(&mut reused, n);
            assert_eq!(
                bus_fingerprint(&reused, n),
                expected,
                "{policy:?}: round {round} diverged from a fresh bus"
            );
            reused.reset();
        }
    }
}

#[test]
fn split_bus_reset_reuse_equals_fresh_model() {
    let mk =
        || SplitBus::new(SplitBusConfig::paper(), PolicyKind::RoundRobin.build(4, 56)).unwrap();
    let drive = |bus: &mut SplitBus| -> (Vec<(Cycle, usize)>, Fingerprint) {
        let mut completions = Vec::new();
        for now in 0..5_000u64 {
            for done in bus.tick(now) {
                completions.push((now, done.core.index()));
            }
            for i in 0..4 {
                if bus.is_idle(c(i)) && now % (30 + 7 * i as u64) == 0 {
                    let req = match i % 3 {
                        0 => SplitRequest::Immediate { duration: 6 },
                        1 => SplitRequest::Split,
                        _ => SplitRequest::Atomic { duration: 56 },
                    };
                    bus.post(c(i), req).unwrap();
                }
            }
        }
        let print = bus_fingerprint(bus.inner(), 4);
        (completions, print)
    };

    let mut fresh = mk();
    let expected = drive(&mut fresh);

    let mut reused = mk();
    for round in 0..2 {
        let got = drive(&mut reused);
        assert_eq!(got, expected, "split bus round {round} diverged");
        reused.reset();
    }
}

/// Reset-reuse through the whole open client stack: registry-built
/// agents driven by the `Simulation` facade, reset via the `SimAgent`
/// trait, must reproduce a fresh assembly bit for bit.
#[test]
fn agent_reset_reuse_through_the_simulation_facade() {
    use cba_platform::agents::default_registry;
    use cba_platform::{BusSetup, CoreLoad, PlatformConfig, PortAgent};
    use sim_core::rng::SimRng;
    use sim_core::{BoxedAgent, Engine, Simulation, StopWhen};

    let mut platform = PlatformConfig::paper(&BusSetup::Rp);
    platform.memory = Some(cba_mem::MemoryConfig {
        working_set: 1024,
        accesses: 150,
        think: 2,
        l1_sets: 16,
        l1_ways: 2,
        ..Default::default()
    });
    let loads = [
        CoreLoad::FixedTask {
            n_requests: 50,
            duration: 6,
            gap: 4,
        },
        CoreLoad::Periodic {
            duration: 28,
            period: 90,
            phase: 3,
        },
        CoreLoad::Custom {
            kind: "shared".into(),
            args: Vec::new(),
        },
        CoreLoad::Custom {
            kind: "mem".into(),
            args: Vec::new(),
        },
    ];
    let build_agents = || -> Vec<BoxedAgent<Bus>> {
        loads
            .iter()
            .enumerate()
            .map(|(i, load)| {
                let mut rng = SimRng::seed_from(31).fork(0xC0 + i as u64);
                let inner = default_registry()
                    .build(load, c(i), &platform, &mut rng)
                    .expect("builtin kinds");
                Box::new(PortAgent::new(inner)) as BoxedAgent<Bus>
            })
            .collect()
    };
    let build_bus = || {
        let mut bus = Bus::new(
            BusConfig::new(4, 56).unwrap(),
            PolicyKind::RoundRobin.build(4, 56),
        );
        bus.set_filter(Box::new(CreditFilter::new(
            CreditConfig::homogeneous(4, 56).unwrap(),
        )));
        bus
    };
    let run = |bus: Bus, agents: Vec<BoxedAgent<Bus>>| -> (Fingerprint, Simulation<Bus>) {
        let mut sim = Simulation::builder()
            .model(bus)
            .agents(agents)
            .stop(StopWhen::Horizon(5_000))
            .engine(Engine::Events)
            .max_cycles(10_000)
            .build();
        sim.run();
        let print = bus_fingerprint(sim.model(), 4);
        (print, sim)
    };

    let (expected, _) = run(build_bus(), build_agents());
    // Reuse the *same* model and agents across two more rounds.
    let (got, sim) = run(build_bus(), build_agents());
    assert_eq!(got, expected);
    let (mut bus, mut agents, _) = sim.into_parts();
    for round in 0..2 {
        bus.reset();
        for (i, agent) in agents.iter_mut().enumerate() {
            let mut rng = SimRng::seed_from(31).fork(0xC0 + i as u64);
            agent.reset(&mut rng);
        }
        let (got, sim) = run(bus, agents);
        assert_eq!(got, expected, "facade round {round} diverged");
        (bus, agents, _) = sim.into_parts();
    }
}

#[test]
fn fabric_reset_reuse_equals_fresh_model() {
    let mk = || {
        let config = FabricConfig::new(2, 2, 56, 2, 2).unwrap();
        let policies = (0..2)
            .map(|_| PolicyKind::RoundRobin.build(2, 56))
            .collect();
        let mut fabric =
            Fabric::new(config, policies, PolicyKind::RoundRobin.build(2, 56)).unwrap();
        fabric.set_backbone_filter(Box::new(CreditFilter::new(
            CreditConfig::weighted(56, vec![3, 1], 4).unwrap(),
        )));
        fabric
    };
    let drive = |fabric: &mut Fabric| -> (Vec<u64>, Vec<u64>, u64, u64) {
        for now in 0..5_000u64 {
            fabric.begin_cycle(now);
            for i in 0..4 {
                if RequestPort::can_accept(fabric, c(i)) && now % (20 + 9 * i as u64) == 0 {
                    RequestPort::post(
                        fabric,
                        BusRequest::new(c(i), [5u32, 28][i % 2], RequestKind::Synthetic, now)
                            .unwrap(),
                    )
                    .unwrap();
                }
            }
            fabric.end_cycle(now);
        }
        (
            (0..4).map(|i| fabric.trace().slots(c(i))).collect(),
            (0..4).map(|i| fabric.trace().busy_cycles(c(i))).collect(),
            fabric.idle_cycles(),
            fabric.total_cycles(),
        )
    };

    let mut fresh = mk();
    let expected = drive(&mut fresh);

    let mut reused = mk();
    for round in 0..2 {
        let got = drive(&mut reused);
        assert_eq!(got, expected, "fabric round {round} diverged");
        reused.reset();
    }
}
