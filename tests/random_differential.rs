//! Randomized differential testing — a seeded scenario generator drives
//! hundreds of platform/load/policy combinations through all three cycle
//! engines and cross-checks them:
//!
//! * `naive` ≡ `events`, bit-for-bit (the engines implement the same
//!   discrete protocol; any divergence is a bug, not an approximation);
//! * `fluid` within the published accuracy envelope (per-core shares
//!   within 2% absolute, total completion within 5% relative).
//!
//! Every failure message leads with the master seed and the cell index,
//! so `CBA_DIFF_SEED=<seed> cargo test -q random_differential` reproduces
//! a red cell exactly.
//!
//! The generator covers the axes the shipped scenarios sweep by hand:
//! core counts, all six arbitration policies × {no filter, CBA, H-CBA},
//! budget-cap multipliers, burst/periodic/saturating load profiles,
//! horizon and TuA stop conditions, LFSR vs software randomness, and an
//! optional two-level fabric topology.

use cba::CreditConfig;
use cba_bus::PolicyKind;
use cba_platform::campaign::run_seed;
use cba_platform::{
    run_once, BusSetup, CoreLoad, DriveMode, FabricTopology, PlatformConfig, RunResult, RunSpec,
    Scenario, StopCondition,
};
use sim_core::rng::SimRng;

/// Cells per harness run (the issue's floor is 200; the two tests below
/// split them between flat and fabric platforms).
const FLAT_CELLS: usize = 160;
const FABRIC_CELLS: usize = 48;
const MEM_CELLS: usize = 48;

const SHARE_TOLERANCE_ABS: f64 = 0.02;
const COMPLETION_TOLERANCE_REL: f64 = 0.05;

fn master_seed() -> u64 {
    match std::env::var("CBA_DIFF_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("CBA_DIFF_SEED must be a u64, got '{s}'")),
        Err(_) => 0x5EED_2017_D1FF,
    }
}

/// A random credit filter: none, homogeneous CBA, or weighted H-CBA with
/// optional per-core budget caps.
fn gen_cba(rng: &mut SimRng, n: usize, maxl: u32) -> Option<CreditConfig> {
    let cfg = match rng.gen_range_usize(0..3) {
        0 => return None,
        1 => CreditConfig::homogeneous(n, maxl).expect("valid homogeneous config"),
        _ => {
            // Weighted: favor core 0 with weight in 2..=4, others 1.
            let favored = rng.gen_range_u64(2..5) as u32;
            let numerators: Vec<u32> = std::iter::once(favored).chain(vec![1; n - 1]).collect();
            let denominator = favored + (n as u32 - 1);
            CreditConfig::weighted(maxl, numerators, denominator).expect("valid weighted config")
        }
    };
    let cfg = if rng.gen_bool(0.3) {
        let caps: Vec<u32> = (0..n).map(|_| rng.gen_range_u64(1..4) as u32).collect();
        cfg.with_cap_multipliers(caps).expect("caps in range")
    } else {
        cfg
    };
    Some(cfg)
}

/// A random co-runner load (never on core 0).
fn gen_corunner(rng: &mut SimRng, maxl: u32) -> CoreLoad {
    match rng.gen_range_usize(0..4) {
        0 => CoreLoad::Saturating {
            duration: rng.gen_range_u64(1..(maxl as u64 + 1)) as u32,
        },
        1 => CoreLoad::Periodic {
            duration: rng.gen_range_u64(1..(maxl as u64 + 1)) as u32,
            period: rng.gen_range_u64(20..400),
            phase: rng.gen_range_u64(0..50),
        },
        2 => CoreLoad::FixedTask {
            n_requests: rng.gen_range_u64(5..60),
            duration: rng.gen_range_u64(1..(maxl as u64 + 1)) as u32,
            gap: rng.gen_range_u64(0..30) as u32,
        },
        _ => CoreLoad::Idle,
    }
}

/// A random TuA: always finite so `stop = tua` is expressible.
fn gen_tua(rng: &mut SimRng, maxl: u32) -> CoreLoad {
    CoreLoad::FixedTask {
        n_requests: rng.gen_range_u64(10..120),
        duration: rng.gen_range_u64(1..(maxl as u64 + 1)) as u32,
        gap: rng.gen_range_u64(0..20) as u32,
    }
}

/// A random flat-bus run spec.
fn gen_flat_spec(rng: &mut SimRng) -> RunSpec {
    let n = *rng.choose(&[2usize, 3, 4, 6, 8]);
    let mut platform = PlatformConfig::paper_n_cores(&BusSetup::Rp, n);
    let maxl = platform.latency.max_latency();
    platform.policy = *rng.choose(&PolicyKind::ALL);
    platform.cba = gen_cba(rng, n, maxl);
    platform.lfsr_randbank = rng.gen_bool(0.5);

    let tua = gen_tua(rng, maxl);
    let rest: Vec<CoreLoad> = (1..n).map(|_| gen_corunner(rng, maxl)).collect();
    let mut spec = RunSpec::with_platform(platform, Scenario::Custom(rest), tua);
    spec.wcet_mode = rng.gen_bool(0.3);
    spec.record_trace = rng.gen_bool(0.2);
    if rng.gen_bool(0.25) {
        // A fairness-style horizon run, occasionally windowed.
        let windows = *rng.choose(&[4u32, 8]);
        let horizon = windows as u64 * rng.gen_range_u64(500..4_000);
        spec.stop = StopCondition::Horizon(horizon);
        if rng.gen_bool(0.5) {
            spec.windows = Some(windows);
        }
    }
    spec.max_cycles = 2_000_000;
    spec
}

/// A random two-level fabric run spec.
fn gen_fabric_spec(rng: &mut SimRng) -> RunSpec {
    let clusters = *rng.choose(&[2usize, 3, 4]);
    let cores_per_cluster = *rng.choose(&[2usize, 4]);
    let n = clusters * cores_per_cluster;
    let mut platform = PlatformConfig::paper_n_cores(&BusSetup::Rp, n);
    let maxl = platform.latency.max_latency();
    platform.cba = None;
    platform.lfsr_randbank = rng.gen_bool(0.5);
    platform.topology = Some(FabricTopology {
        clusters,
        cores_per_cluster,
        bridge_latency: rng.gen_range_u64(1..5) as u32,
        bridge_depth: rng.gen_range_usize(1..3),
        cluster_policy: *rng.choose(&PolicyKind::ALL),
        cluster_cba: gen_cba(rng, cores_per_cluster, maxl),
        backbone_policy: *rng.choose(&PolicyKind::ALL),
        backbone_cba: gen_cba(rng, clusters, maxl),
    });

    let tua = gen_tua(rng, maxl);
    let rest: Vec<CoreLoad> = (1..n).map(|_| gen_corunner(rng, maxl)).collect();
    let mut spec = RunSpec::with_platform(platform, Scenario::Custom(rest), tua);
    if rng.gen_bool(0.25) {
        spec.stop = StopCondition::Horizon(rng.gen_range_u64(5_000..40_000));
    }
    spec.max_cycles = 2_000_000;
    spec
}

fn run_with(spec: &RunSpec, drive: DriveMode, seed: u64) -> RunResult {
    let mut s = spec.clone();
    s.drive = drive;
    run_once(&s, seed)
}

/// Cross-checks one generated cell through all three engines. `repro`
/// identifies the failing cell for reproduction.
fn check_cell(spec: &RunSpec, seed: u64, repro: &str) {
    let naive = run_with(spec, DriveMode::Naive, seed);
    let events = run_with(spec, DriveMode::Events, seed);
    assert_eq!(
        naive, events,
        "{repro}: naive and events engines diverged\nspec: {spec:?}"
    );

    let fluid = run_with(spec, DriveMode::Fluid, seed);
    assert_eq!(
        events.finished, fluid.finished,
        "{repro}: engines disagree on run completion\nspec: {spec:?}"
    );
    for core in 0..events.bus_busy.len() {
        let want = events.absolute_cycle_share(core);
        let got = fluid.absolute_cycle_share(core);
        assert!(
            (want - got).abs() <= SHARE_TOLERANCE_ABS,
            "{repro}: core {core} share {want:.4} (events) vs {got:.4} (fluid)\nspec: {spec:?}"
        );
    }
    let want = events.total_cycles as f64;
    let got = fluid.total_cycles as f64;
    assert!(
        (want - got).abs() / want.max(1.0) <= COMPLETION_TOLERANCE_REL,
        "{repro}: total {want} (events) vs {got} (fluid)\nspec: {spec:?}"
    );
}

#[test]
fn randomized_flat_cells_agree_across_engines() {
    let master = master_seed();
    for cell in 0..FLAT_CELLS {
        let mut rng = SimRng::seed_from(master).fork(cell as u64);
        let spec = gen_flat_spec(&mut rng);
        spec.validate()
            .unwrap_or_else(|e| panic!("generator produced invalid spec: {e}"));
        let seed = run_seed(master, cell);
        check_cell(
            &spec,
            seed,
            &format!("CBA_DIFF_SEED={master} flat cell {cell} (run seed {seed})"),
        );
    }
}

#[test]
fn randomized_fabric_cells_agree_across_engines() {
    let master = master_seed();
    for cell in 0..FABRIC_CELLS {
        let mut rng = SimRng::seed_from(master).fork(0xFAB_0000 + cell as u64);
        let spec = gen_fabric_spec(&mut rng);
        spec.validate()
            .unwrap_or_else(|e| panic!("generator produced invalid spec: {e}"));
        let seed = run_seed(master, cell);
        check_cell(
            &spec,
            seed,
            &format!("CBA_DIFF_SEED={master} fabric cell {cell} (run seed {seed})"),
        );
    }
}

/// A random synthetic-address-stream configuration for the memory agents.
fn gen_memory_config(rng: &mut SimRng) -> cba_mem::MemoryConfig {
    cba_mem::MemoryConfig {
        working_set: *rng.choose(&[256u64, 1024, 8192, 65536]),
        accesses: rng.gen_range_u64(50..250),
        write_frac: rng.gen_f64() * 0.9,
        share_frac: rng.gen_f64() * 0.9,
        shared_lines: *rng.choose(&[8usize, 32, 128]),
        locality: rng.gen_f64(),
        think: rng.gen_range_u64(0..8) as u32,
        l1_sets: *rng.choose(&[8usize, 32, 64]),
        l1_ways: *rng.choose(&[1usize, 2, 4]),
    }
}

/// A random flat-bus spec whose co-runners mix memory agents (private
/// and MESI-coherent) with the synthetic loads above.
fn gen_mem_spec(rng: &mut SimRng) -> RunSpec {
    let n = *rng.choose(&[2usize, 4, 6]);
    let mut platform = PlatformConfig::paper_n_cores(&BusSetup::Rp, n);
    let maxl = platform.latency.max_latency();
    platform.policy = *rng.choose(&PolicyKind::ALL);
    platform.cba = gen_cba(rng, n, maxl);
    platform.lfsr_randbank = rng.gen_bool(0.5);
    platform.memory = Some(gen_memory_config(rng));

    let agent = |kind: &str| CoreLoad::Custom {
        kind: kind.into(),
        args: Vec::new(),
    };
    let tua = gen_tua(rng, maxl);
    let rest: Vec<CoreLoad> = (1..n)
        .map(|_| match rng.gen_range_usize(0..4) {
            0 => agent("mem"),
            1 | 2 => agent("shared"),
            _ => gen_corunner(rng, maxl),
        })
        .collect();
    let mut spec = RunSpec::with_platform(platform, Scenario::Custom(rest), tua);
    spec.record_trace = rng.gen_bool(0.2);
    if rng.gen_bool(0.25) {
        spec.stop = StopCondition::Horizon(rng.gen_range_u64(2_000..20_000));
    }
    spec.max_cycles = 2_000_000;
    spec
}

/// Memory-agent cells through all three engines: MESI coherence chains,
/// per-core cache hierarchies and the agents' retry loops must agree
/// bit-for-bit between naive and events and sit inside the fluid envelope.
#[test]
fn randomized_mem_cells_agree_across_engines() {
    let master = master_seed();
    for cell in 0..MEM_CELLS {
        let mut rng = SimRng::seed_from(master).fork(0x3E3_0000 + cell as u64);
        let spec = gen_mem_spec(&mut rng);
        spec.validate()
            .unwrap_or_else(|e| panic!("generator produced invalid spec: {e}"));
        let seed = run_seed(master, cell);
        check_cell(
            &spec,
            seed,
            &format!("CBA_DIFF_SEED={master} mem cell {cell} (run seed {seed})"),
        );
    }
}

/// Randomized MESI soak: seeded read/write streams from every core hammer
/// one coherence hub, and the protocol invariants (at most one Modified
/// copy, Modified/Exclusive exclusivity, version monotonicity) hold after
/// every single operation. Failures name the master seed and step.
#[test]
fn randomized_mesi_streams_hold_invariants() {
    let master = master_seed();
    for round in 0..8u64 {
        let mut rng = SimRng::seed_from(master).fork(0x3E51_0000 + round);
        let n_cores = *rng.choose(&[2usize, 3, 4, 8]);
        let n_lines = *rng.choose(&[1usize, 4, 16]);
        let hub = cba_mem::shared_hub(n_cores, n_lines);
        let lat = PlatformConfig::paper_n_cores(&BusSetup::Rp, 4).latency;
        for step in 0..2_000u64 {
            let core = sim_core::CoreId::from_index(rng.gen_range_usize(0..n_cores));
            let line = rng.gen_range_usize(0..n_lines);
            let txns = if rng.gen_bool(0.4) {
                hub.borrow_mut().write(core, line, &lat)
            } else {
                hub.borrow_mut().read(core, line, &lat)
            };
            for t in &txns {
                assert!(
                    t.duration > 0 && t.duration <= lat.max_latency(),
                    "CBA_DIFF_SEED={master} round {round} step {step}: \
                     transaction {t:?} duration out of the arbiter's range"
                );
            }
            hub.borrow().check_invariants().unwrap_or_else(|e| {
                panic!("CBA_DIFF_SEED={master} round {round} step {step}: {e}")
            });
        }
    }
}

/// The generator itself is deterministic per seed — the reproduction
/// instructions in the failure messages depend on it.
#[test]
fn generator_is_deterministic_per_seed() {
    let mut a = SimRng::seed_from(7).fork(3);
    let mut b = SimRng::seed_from(7).fork(3);
    let sa = gen_flat_spec(&mut a);
    let sb = gen_flat_spec(&mut b);
    assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
}
