//! Acceptance test for the hierarchical fabric's weighted sharing: the
//! shipped `scenarios/fabric_fairness.scn` must deliver per-cluster
//! steady-state backbone shares matching its configured H-CBA weights
//! (4:2:1:1 → 0.500/0.250/0.125/0.125) within 1%, and the report layer
//! must surface the measurement in every export format.

use cba_platform::run_scenario;
use cba_platform::scenario::ScenarioDef;
use std::path::Path;

fn read_fairness_def() -> ScenarioDef {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/fabric_fairness.scn");
    let text = std::fs::read_to_string(&path).expect("shipped scenario readable");
    ScenarioDef::parse(&text).expect("shipped scenario parses")
}

#[test]
fn cluster_shares_match_the_configured_hcba_weights_within_one_percent() {
    let mut def = read_fairness_def();
    def.runs = 1; // the run is deterministic modulo seed; one suffices in CI
    let report = run_scenario(&def).expect("fairness scenario runs");
    assert_eq!(report.cells.len(), 1);
    let cell = &report.cells[0];
    let shares = cell
        .cluster_shares
        .as_ref()
        .expect("fabric cells report per-cluster shares");
    let weights = [0.500, 0.250, 0.125, 0.125];
    assert_eq!(shares.len(), weights.len());
    for (k, (&share, &weight)) in shares.iter().zip(&weights).enumerate() {
        assert!(
            (share - weight).abs() <= 0.01,
            "cluster {k}: share {share:.4} deviates from weight {weight} by more than 1% \
             (all shares: {shares:?})"
        );
    }
    // Cross-cluster fairness index for shares (1/2, 1/4, 1/8, 1/8):
    // (sum)^2 / (n * sum of squares) = 1 / (4 * 0.34375) ≈ 0.727.
    let fairness = cell.cluster_fairness.expect("fabric cells report fairness");
    assert!(
        (fairness - 0.727).abs() < 0.02,
        "Jain index {fairness:.4} off the analytic value for 4:2:1:1"
    );
}

#[test]
fn fairness_columns_reach_every_export_format() {
    let mut def = read_fairness_def();
    def.runs = 1;
    // A short horizon is enough to exercise the export plumbing.
    def.template.stop = "horizon:20000".into();
    let report = run_scenario(&def).expect("runs");

    let json = report.to_json();
    assert!(json.contains("\"cluster_shares\""), "{json}");
    assert!(json.contains("\"cluster_fairness\""), "{json}");

    let csv = report.to_csv();
    let header = csv.lines().next().expect("csv header");
    for col in [
        "cluster0_share",
        "cluster1_share",
        "cluster2_share",
        "cluster3_share",
        "cluster_fairness",
    ] {
        assert!(header.contains(col), "missing {col} in {header}");
    }

    let table = report.render_table();
    assert!(table.contains("shares"), "{table}");
}

/// The quantization finding the scenario documents: with the paper's
/// cap == threshold (no banking headroom), the heavy cluster cannot reach
/// its weighted share — slots it loses while waiting are gone forever and
/// the backbone goes measurably idle. This pins the behaviour so a future
/// filter change that silently alters it fails loudly.
#[test]
fn without_cap_headroom_the_heavy_cluster_loses_share_to_quantization() {
    let mut def = read_fairness_def();
    def.runs = 1;
    let topo = def.template.topology.as_mut().expect("fabric scenario");
    // cap == eligibility threshold; 28-cycle requests make the
    // quantization coarse and the loss stark.
    topo.backbone_caps = None;
    def.template.tua = cba_platform::scenario::TuaSpec::Load("sat:28".into());
    def.template.contenders = cba_platform::scenario::ContenderSpec::Fill("sat:28".into());
    let report = run_scenario(&def).expect("runs");
    let shares = report.cells[0].cluster_shares.as_ref().unwrap();
    assert!(
        (shares[0] - 0.375).abs() < 0.01,
        "no-banking share of the heavy cluster should settle near 3/8, got {:.4}",
        shares[0]
    );
    let total: f64 = shares.iter().sum();
    assert!(
        total < 0.93,
        "quantization loss should leave the backbone visibly idle, total {total:.4}"
    );
}
