//! Table-I behaviour end to end: the WCET-estimation mode's signal
//! protocol observed through a real bus with real contenders.

use cba::{CreditConfig, CreditFilter, Mode};
use cba_bus::{drive, Bus, BusConfig, Control, PolicyKind};
use cba_cpu::{Contender, FixedRequestTask};
use sim_core::{CoreId, Cycle};

fn c(i: usize) -> CoreId {
    CoreId::from_index(i)
}

/// Assembles the paper platform in WCET-estimation mode with a
/// fixed-request TuA and MaxL contenders, runs it, and returns the grant
/// records.
fn run_wcet(
    tua_requests: u64,
    tua_gap: u32,
    max_cycles: Cycle,
) -> (Vec<sim_core::trace::GrantRecord>, Option<Cycle>) {
    let mut bus = Bus::new(
        BusConfig::new(4, 56).unwrap(),
        PolicyKind::RandomPermutation.build(4, 56),
    );
    bus.set_filter(Box::new(CreditFilter::with_mode(
        CreditConfig::homogeneous(4, 56).unwrap(),
        Mode::WcetEstimation { tua: c(0) },
    )));
    bus.enable_recording_trace();

    let mut tua = FixedRequestTask::new(c(0), tua_requests, 6, tua_gap);
    let mut contenders: Vec<Contender> = (1..4).map(|i| Contender::new(c(i), 56)).collect();

    drive(&mut bus, max_cycles, |bus, now, done| {
        tua.tick(now, done, bus);
        for k in &mut contenders {
            k.tick(now, done, bus);
        }
        if tua.is_done() {
            Control::Stop
        } else {
            Control::Continue
        }
    });
    (
        bus.trace().records().expect("recording").to_vec(),
        tua.done_at(),
    )
}

#[test]
fn tua_zero_budget_delays_its_first_grant_by_n_times_maxl() {
    // "setting its initial budget to zero, thus delaying the most the
    // issuing of the first request of the TuA": with zero budget and +1
    // recovery per cycle, the TuA cannot be granted before cycle 224.
    let (records, _) = run_wcet(5, 0, 100_000);
    let first_tua = records
        .iter()
        .find(|r| r.core == c(0))
        .expect("TuA eventually granted");
    assert!(
        first_tua.start >= 224,
        "first TuA grant at {} but budget fill takes 224 cycles",
        first_tua.start
    );
}

#[test]
fn contenders_do_not_run_before_the_tua_requests() {
    // COMP latches only when REQ(TuA) is set: while the TuA is still
    // filling its budget (first 224 cycles... but its request is PENDING
    // from cycle 0, so contenders may compete immediately). Use a TuA with
    // a long initial gap instead: no TuA request, no contender grants.
    let mut bus = Bus::new(
        BusConfig::new(4, 56).unwrap(),
        PolicyKind::RandomPermutation.build(4, 56),
    );
    bus.set_filter(Box::new(CreditFilter::with_mode(
        CreditConfig::homogeneous(4, 56).unwrap(),
        Mode::WcetEstimation { tua: c(0) },
    )));
    bus.enable_recording_trace();
    let mut contenders: Vec<Contender> = (1..4).map(|i| Contender::new(c(i), 56)).collect();
    // No TuA client at all for 2,000 cycles.
    drive(&mut bus, 2_000, |bus, now, done| {
        for k in &mut contenders {
            k.tick(now, done, bus);
        }
        Control::Continue
    });
    assert_eq!(
        bus.trace().total_slots(),
        0,
        "contenders must not compete while the TuA has no request"
    );
}

#[test]
fn contender_transactions_always_take_maxl() {
    let (records, _) = run_wcet(20, 10, 200_000);
    for r in records.iter().filter(|r| r.core != c(0)) {
        assert_eq!(r.duration, 56, "WCET-mode contenders hold MaxL cycles");
    }
}

#[test]
fn contenders_respect_budget_lockout_between_grants() {
    // After a grant, a contender's COMP cannot re-latch until its budget
    // refills: (N-1) x MaxL = 168 cycles after its transaction ends, so
    // consecutive grant starts are at least 56 + 168 = 224 cycles apart.
    let (records, _) = run_wcet(200, 10, 500_000);
    for core in 1..4 {
        let starts: Vec<Cycle> = records
            .iter()
            .filter(|r| r.core == c(core))
            .map(|r| r.start)
            .collect();
        for pair in starts.windows(2) {
            assert!(
                pair[1] - pair[0] >= 224,
                "contender {core} re-granted after only {} cycles",
                pair[1] - pair[0]
            );
        }
    }
}

#[test]
fn dense_tua_outruns_contender_interference() {
    // The CBA-mode contention scenario bounds total contender bandwidth:
    // each contender at most once per 224 cycles.
    let (records, done) = run_wcet(300, 10, 500_000);
    let done = done.expect("TuA finishes");
    let contender_busy: u64 = records
        .iter()
        .filter(|r| r.core != c(0))
        .map(|r| r.duration as u64)
        .sum();
    let bound = 3.0 * (done as f64 / 224.0 + 1.0) * 56.0;
    assert!(
        (contender_busy as f64) <= bound,
        "contender busy {contender_busy} exceeds budget-rate bound {bound}"
    );
}

#[test]
fn operation_mode_ignores_comp_gating() {
    // In operation mode the same assembly lets contenders saturate freely.
    let mut bus = Bus::new(
        BusConfig::new(4, 56).unwrap(),
        PolicyKind::RandomPermutation.build(4, 56),
    );
    bus.set_filter(Box::new(CreditFilter::with_mode(
        CreditConfig::homogeneous(4, 56).unwrap(),
        Mode::Operation,
    )));
    let mut contenders: Vec<Contender> = (1..4).map(|i| Contender::new(c(i), 56)).collect();
    drive(&mut bus, 10_000, |bus, now, done| {
        for k in &mut contenders {
            k.tick(now, done, bus);
        }
        Control::Continue
    });
    assert!(
        bus.trace().total_slots() > 0,
        "operation mode must grant contenders without a TuA request"
    );
    // Each contender is still budget-limited to 25% of cycles.
    for core in 1..4 {
        let busy = bus.trace().busy_cycles(c(core));
        assert!(
            busy as f64 <= 0.25 * 10_000.0 + 56.0,
            "contender {core} exceeded entitlement: {busy}"
        );
    }
}
