//! Scenario-file error paths — every class of malformed `.scn` input
//! produces the *intended* `Display` error, pinned by a golden snapshot.
//!
//! The contract under test: errors are part of the scenario format's
//! public surface (the CLI prints them verbatim; EXPERIMENTS.md tells
//! users to read them), so their wording and line attribution may only
//! change deliberately. Each case below feeds a malformed scenario to
//! `ScenarioDef::parse` (or, for grid-time errors, `expand`) and the
//! collected messages are compared against
//! `tests/data/scn_errors.golden.txt`. Regenerate after an intentional
//! wording change with `UPDATE_GOLDENS=1 cargo test --test scn_errors`.

use std::path::Path;

use cba_platform::scenario::ScenarioDef;

/// One malformed scenario: a stable case name and the input text.
/// The error may surface at parse or at expansion — both are "the
/// scenario failed with this message" from the user's point of view.
const CASES: &[(&str, &str)] = &[
    // -- malformed sections ------------------------------------------------
    (
        "unterminated_section_header",
        "[campaign]\nname = x\n[platform\ncores = 4\n",
    ),
    (
        "unknown_section",
        "[campaign]\nname = x\n[engine]\nkind = fluid\n",
    ),
    (
        "key_before_any_section",
        "cores = 4\n[campaign]\nname = x\n",
    ),
    (
        "not_a_key_value_line",
        "[campaign]\nname = x\n[platform]\nfast\n",
    ),
    // -- unknown keys, one per section -------------------------------------
    ("unknown_campaign_key", "[campaign]\nrepeat = 3\n"),
    (
        "unknown_platform_key",
        "[campaign]\nname = x\n[platform]\nspeed = 9\n",
    ),
    (
        "unknown_topology_key",
        "[campaign]\nname = x\n[topology]\nrings = 2\n",
    ),
    (
        "unknown_contenders_key",
        "[campaign]\nname = x\n[contenders]\nshape = burst\n",
    ),
    (
        "unknown_report_key",
        "[campaign]\nname = x\n[report]\nformat = csv\n",
    ),
    // -- invalid engine selectors ------------------------------------------
    (
        "unknown_engine",
        "[campaign]\nname = x\n[platform]\nengine = warp\n",
    ),
    (
        "engine_not_a_policy",
        "[campaign]\nname = x\n[platform]\nengine = rr\n",
    ),
    // -- out-of-range windows ----------------------------------------------
    (
        "windows_zero",
        "[campaign]\nname = x\n[report]\nwindows = 0\n",
    ),
    (
        "windows_without_horizon_stop",
        "[campaign]\nname = x\n[tua]\nload = fixed:10:6:4\n[report]\nwindows = 8\n",
    ),
    (
        "windows_not_dividing_horizon",
        "[campaign]\nname = x\n[tua]\nload = sat:28\n[contenders]\nstop = horizon:1000\n\
         [report]\nwindows = 7\n",
    ),
    // -- bad [sweep] axes ---------------------------------------------------
    (
        "unknown_sweep_key",
        "[campaign]\nname = x\n[sweep]\nwarp = 1,2\n",
    ),
    (
        "duplicate_sweep_axis",
        "[campaign]\nname = x\n[sweep]\ncores = 2,4\ncores = 8,16\n",
    ),
    (
        "empty_sweep_value",
        "[campaign]\nname = x\n[sweep]\npolicy = rr,,fifo\n",
    ),
    (
        "invalid_sweep_axis_value",
        "[campaign]\nname = x\n[sweep]\npolicy = rr,warp\n",
    ),
    // -- bad [checkpoint] keys ----------------------------------------------
    (
        "unknown_checkpoint_key",
        "[campaign]\nname = x\n[checkpoint]\nflush = always\n",
    ),
    (
        "zero_cell_budget_ms",
        "[campaign]\nname = x\n[checkpoint]\ncell_budget_ms = 0\n",
    ),
    (
        "zero_run_budget_cycles",
        "[campaign]\nname = x\n[checkpoint]\nrun_budget_cycles = 0\n",
    ),
    // -- bad [memory] sections ----------------------------------------------
    (
        "unknown_memory_key",
        "[campaign]\nname = x\n[memory]\nline_bytes = 32\n",
    ),
    (
        "zero_working_set",
        "[campaign]\nname = x\n[memory]\nworking_set = 0\n",
    ),
    (
        "share_frac_out_of_range",
        "[campaign]\nname = x\n[memory]\nshare_frac = 1.5\n",
    ),
    (
        "memory_axis_without_memory_section",
        "[campaign]\nname = x\n[tua]\nload = fixed:10:6:4\n[sweep]\nmem_working_set = 512,4096\n",
    ),
    (
        "mem_agent_without_memory_section",
        "[campaign]\nname = x\n[tua]\nload = agent:mem\n[contenders]\nstop = horizon:1000\n",
    ),
    (
        "shared_agent_on_fabric_topology",
        "[campaign]\nname = x\n[memory]\nworking_set = 1024\n\
         [topology]\nclusters = 2\ncores_per_cluster = 2\n\
         [tua]\nload = agent:shared\n[contenders]\nstop = horizon:1000\n",
    ),
    // -- assorted out-of-range scalars --------------------------------------
    ("zero_runs", "[campaign]\nname = x\nruns = 0\n"),
    (
        "unknown_policy",
        "[campaign]\nname = x\n[platform]\npolicy = lifo\n",
    ),
    (
        "zero_topology_clusters",
        "[campaign]\nname = x\n[topology]\nclusters = 0\n",
    ),
    (
        "unknown_wcet_mode",
        "[campaign]\nname = x\n[contenders]\nwcet = maybe\n",
    ),
];

/// The error a case produces: the parse error if parsing fails, else the
/// expansion error. Panics (test failure) if the input is accepted.
fn error_of(name: &str, text: &str) -> String {
    match ScenarioDef::parse(text) {
        Err(e) => e.to_string(),
        Ok(def) => match def.expand() {
            Err(e) => e.to_string(),
            Ok(_) => panic!("case '{name}': malformed scenario was accepted\n{text}"),
        },
    }
}

#[test]
fn every_malformed_scenario_fails_with_its_pinned_message() {
    let mut snapshot = String::new();
    for (name, text) in CASES {
        let err = error_of(name, text);
        assert!(!err.is_empty(), "case '{name}': empty error message");
        snapshot.push_str(name);
        snapshot.push('\n');
        snapshot.push_str("  ");
        snapshot.push_str(&err);
        snapshot.push('\n');
    }

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/scn_errors.golden.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &snapshot).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{golden_path:?}: {e}\nrun UPDATE_GOLDENS=1 cargo test --test scn_errors to create it"
        )
    });
    assert_eq!(
        snapshot, golden,
        "scenario error messages drifted; if intentional, regenerate with \
         UPDATE_GOLDENS=1 cargo test --test scn_errors"
    );
}

/// Error messages carry the offending 1-based line number whenever the
/// error is attributable to a line — the CLI leans on this for usability.
#[test]
fn parse_errors_carry_line_numbers() {
    for (name, text) in CASES {
        if let Err(e) = ScenarioDef::parse(text) {
            assert!(
                e.line.is_some(),
                "case '{name}': parse error lost its line number: {e}"
            );
        }
    }
}

/// A valid scenario with every section exercises the same code paths and
/// parses cleanly — the error cases above fail for the stated reason, not
/// because the harness miswrites scenarios.
#[test]
fn control_scenario_with_every_section_parses() {
    let text = "[campaign]\nname = ok\nruns = 2\nseed = 7\n\
                [platform]\ncores = 4\npolicy = rr\ncba = homog\nengine = fluid\n\
                [memory]\nworking_set = 1024\nshare_frac = 0.5\n\
                [tua]\nload = fixed:20:6:4\n\
                [contenders]\nscenario = con\nstop = tua\n\
                [sweep]\npolicy = rr,fifo\n\
                [report]\npercentiles = 50,90\n\
                [checkpoint]\ndir = /tmp/unused\nrun_budget_cycles = 200000\n";
    let def = ScenarioDef::parse(text).expect("control scenario parses");
    let cells = def.expand().expect("control scenario expands");
    assert_eq!(cells.len(), 2);
}
