//! Fluid-engine accuracy — the `engine = fluid` backend cross-validated
//! against the exact events engine on every shipped scenario.
//!
//! The contract under test (the fluid engine's shipping criteria):
//!
//! 1. On every cell of every `scenarios/*.scn`, per-core bus shares from
//!    the fluid engine are within 2% *absolute* of the events engine, and
//!    total completion time is within 5% relative.
//! 2. Fluid campaigns are bit-identical across 1, 2 and 8 worker threads
//!    (the grid executor may not leak pool size into fluid results).
//!
//! The in-tree fluid executor is in fact *bit-identical* to the events
//! engine (its continuous-event drive replicates the grant protocol
//! exactly; the limit-cycle fast-forward is an arithmetic shortcut over a
//! detected recurrence) — a stronger property that
//! `fluid_is_bit_identical_to_events_in_tree` pins down separately so a
//! future approximate backend loosens *that* test, not the tolerance
//! contract above.

use std::path::{Path, PathBuf};

use cba_platform::campaign::run_seed;
use cba_platform::scenario::ScenarioDef;
use cba_platform::{run_once, Campaign, DriveMode, RunResult, RunSpec};

const SHARE_TOLERANCE_ABS: f64 = 0.02;
const COMPLETION_TOLERANCE_REL: f64 = 0.05;

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn shipped_scenarios() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            (p.extension().map(|x| x == "scn") == Some(true)).then_some(p)
        })
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no shipped scenarios found");
    paths
}

/// Runs one cell spec under both engines with the same derived seed.
fn both_engines(spec: &RunSpec, seed: u64) -> (RunResult, RunResult) {
    let mut ev = spec.clone();
    ev.drive = DriveMode::Events;
    let mut fl = spec.clone();
    fl.drive = DriveMode::Fluid;
    (run_once(&ev, seed), run_once(&fl, seed))
}

fn for_each_shipped_cell(mut check: impl FnMut(&str, &str, &RunResult, &RunResult)) {
    for path in shipped_scenarios() {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("scenario readable");
        let def = ScenarioDef::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cells = def.expand().unwrap_or_else(|e| panic!("{name}: {e}"));
        for cell in &cells {
            let seed = run_seed(cell.seed, 0);
            let (ev, fl) = both_engines(&cell.spec, seed);
            let labels = format!("{:?}", cell.labels);
            check(&name, &labels, &ev, &fl);
        }
    }
}

/// Criterion 1a: per-core shares within 2% absolute on every shipped cell.
#[test]
fn fluid_shares_within_two_percent_of_events_on_every_shipped_scenario() {
    for_each_shipped_cell(|name, labels, ev, fl| {
        assert_eq!(
            ev.bus_busy.len(),
            fl.bus_busy.len(),
            "{name} {labels}: core-count mismatch"
        );
        for core in 0..ev.bus_busy.len() {
            let want = ev.absolute_cycle_share(core);
            let got = fl.absolute_cycle_share(core);
            assert!(
                (want - got).abs() <= SHARE_TOLERANCE_ABS,
                "{name} {labels} core {core}: events share {want:.4} vs fluid {got:.4} \
                 (> {SHARE_TOLERANCE_ABS} absolute)"
            );
        }
    });
}

/// Criterion 1b: total completion time within 5% relative on every cell.
#[test]
fn fluid_completion_within_five_percent_of_events_on_every_shipped_scenario() {
    for_each_shipped_cell(|name, labels, ev, fl| {
        let want = ev.total_cycles as f64;
        let got = fl.total_cycles as f64;
        let rel = (want - got).abs() / want.max(1.0);
        assert!(
            rel <= COMPLETION_TOLERANCE_REL,
            "{name} {labels}: events total {want} vs fluid {got} \
             ({:.2}% > {:.0}%)",
            rel * 100.0,
            COMPLETION_TOLERANCE_REL * 100.0
        );
        assert_eq!(
            ev.finished, fl.finished,
            "{name} {labels}: engines disagree on whether the run finished"
        );
    });
}

/// The stronger in-tree property: the fluid executor reproduces the events
/// engine bit-for-bit — every counter, wait statistic, trace metric and
/// windowed-fairness sample — on every shipped cell.
#[test]
fn fluid_is_bit_identical_to_events_in_tree() {
    for_each_shipped_cell(|name, labels, ev, fl| {
        assert_eq!(ev, fl, "{name} {labels}: fluid diverged from events");
    });
}

/// Criterion 2: a fluid campaign reports the same results on 1, 2 and 8
/// worker threads — the pool size may not leak into any number.
#[test]
fn fluid_campaign_is_deterministic_across_thread_counts() {
    let mut spec = RunSpec::paper(
        cba_platform::BusSetup::Cba,
        cba_platform::Scenario::MaxContention,
        cba_platform::CoreLoad::FixedTask {
            n_requests: 120,
            duration: 6,
            gap: 4,
        },
    );
    spec.drive = DriveMode::Fluid;

    let reference = Campaign::new(spec.clone(), 16, 2017).with_threads(1).run();
    for threads in [2usize, 8] {
        let other = Campaign::new(spec.clone(), 16, 2017)
            .with_threads(threads)
            .run();
        assert_eq!(
            reference.results(),
            other.results(),
            "fluid campaign differs between 1 and {threads} threads"
        );
        assert_eq!(reference.mean(), other.mean(), "{threads} threads: mean");
    }
}
