//! Section III.C end to end: the real credit filter on the
//! split-transaction bus. Budgets must drain only for cycles the bus is
//! actually held, and the entitlement law must hold against unsplittable
//! atomics.

use cba::{CreditConfig, CreditFilter};
use cba_bus::split::{SplitBus, SplitBusConfig, SplitRequest};
use cba_bus::{BusModel, PolicyKind};
use sim_core::CoreId;

fn c(i: usize) -> CoreId {
    CoreId::from_index(i)
}

fn split_bus(with_cba: bool) -> SplitBus {
    let mut bus = SplitBus::new(
        SplitBusConfig::paper(),
        PolicyKind::RandomPermutation.build(4, 56),
    )
    .expect("paper config");
    if with_cba {
        bus.set_filter(Box::new(CreditFilter::new(
            CreditConfig::homogeneous(4, 56).expect("paper config"),
        )));
    }
    bus
}

fn saturate(bus: &mut SplitBus, horizon: u64, atomic_cores: &[usize]) {
    for now in 0..horizon {
        if bus.is_idle(c(0)) {
            bus.post(c(0), SplitRequest::Immediate { duration: 5 })
                .unwrap();
        }
        for i in 1..4 {
            if bus.is_idle(c(i)) {
                let req = if atomic_cores.contains(&i) {
                    SplitRequest::Atomic { duration: 56 }
                } else {
                    SplitRequest::Split
                };
                bus.post(c(i), req).unwrap();
            }
        }
        bus.tick(now);
    }
}

#[test]
fn entitlement_holds_against_atomics_on_the_split_bus() {
    let horizon = 120_000u64;
    let mut bus = split_bus(true);
    saturate(&mut bus, horizon, &[1, 2, 3]);
    for i in 1..4 {
        let share = bus.inner().trace().busy_cycles(c(i)) as f64 / horizon as f64;
        assert!(
            share <= 0.25 + 0.02,
            "atomic core {i} exceeded its bus-cycle entitlement: {share}"
        );
    }
}

#[test]
fn cba_multiplies_the_short_core_throughput_under_atomics() {
    let horizon = 120_000u64;
    let mut plain = split_bus(false);
    saturate(&mut plain, horizon, &[1, 2, 3]);
    let mut filtered = split_bus(true);
    saturate(&mut filtered, horizon, &[1, 2, 3]);
    let plain_slots = plain.inner().trace().slots(c(0));
    let cba_slots = filtered.inner().trace().slots(c(0));
    assert!(
        cba_slots as f64 > 2.0 * plain_slots as f64,
        "CBA should multiply the short core's grants: {plain_slots} -> {cba_slots}"
    );
}

#[test]
fn sub_entitlement_split_stream_is_never_throttled() {
    // One split transaction per 80 cycles holds the bus 10/80 = 12.5% —
    // well inside the 25% entitlement — so the filter must be invisible.
    let horizon = 40_000u64;
    let mut counts = Vec::new();
    for with_cba in [true, false] {
        let mut bus = split_bus(with_cba);
        let mut next_issue = 0u64;
        for now in 0..horizon {
            if now >= next_issue && bus.is_idle(c(1)) {
                bus.post(c(1), SplitRequest::Split).unwrap();
                next_issue += 80;
            }
            bus.tick(now);
        }
        counts.push(bus.inner().trace().slots(c(1)));
    }
    assert_eq!(
        counts[0], counts[1],
        "filter must be invisible below the entitlement: {counts:?}"
    );
}

#[test]
fn saturating_split_stream_is_capped_at_its_entitlement() {
    // Back-to-back split transactions hold 10 of every ~38 bus cycles
    // (26.3%), slightly above the 25% entitlement: the filter throttles
    // the stream — to at most 1/N of bus-held cycles, and by a bounded
    // amount (cap quantization wastes refill during the memory phase, so
    // the achieved duty is below the ideal 25%; see EXPERIMENTS.md).
    let horizon = 40_000u64;
    let mut with_filter = split_bus(true);
    let mut without = split_bus(false);
    for bus in [&mut with_filter, &mut without] {
        for now in 0..horizon {
            if bus.is_idle(c(1)) {
                bus.post(c(1), SplitRequest::Split).unwrap();
            }
            bus.tick(now);
        }
    }
    let held = with_filter.inner().trace().busy_cycles(c(1)) as f64 / horizon as f64;
    assert!(held <= 0.25 + 0.01, "entitlement violated: {held}");
    let a = with_filter.inner().trace().slots(c(1)) as f64;
    let b = without.inner().trace().slots(c(1)) as f64;
    assert!(
        a / b >= 0.70,
        "throttling should cost at most ~30% for a 26%-duty stream: {a} vs {b}"
    );
}
