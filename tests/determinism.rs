//! Reproducibility guarantees: every run is a pure function of
//! `(spec, seed)`, campaigns are order- and thread-count-independent, and
//! the two arbiter randomness sources are each deterministic.

use cba_platform::{run_once, BusSetup, Campaign, CoreLoad, RunSpec, Scenario};

fn spec() -> RunSpec {
    RunSpec::paper(
        BusSetup::Cba,
        Scenario::MaxContention,
        CoreLoad::named("rspeed"),
    )
}

#[test]
fn run_once_is_a_pure_function_of_seed() {
    let a = run_once(&spec(), 1234);
    let b = run_once(&spec(), 1234);
    assert_eq!(a.tua_cycles, b.tua_cycles);
    assert_eq!(a.bus_slots, b.bus_slots);
    assert_eq!(a.bus_busy, b.bus_busy);
    assert_eq!(a.tua_max_wait, b.tua_max_wait);
}

#[test]
fn different_seeds_perturb_results() {
    let times: Vec<_> = (0..8).map(|s| run_once(&spec(), s).tua_cycles).collect();
    let first = times[0];
    assert!(
        times.iter().any(|&t| t != first),
        "randomized platform must vary across seeds: {times:?}"
    );
}

#[test]
fn campaigns_reproduce_across_thread_counts() {
    let s1 = Campaign::new(spec(), 12, 77).with_threads(1).run();
    let s4 = Campaign::new(spec(), 12, 77).with_threads(4).run();
    let s16 = Campaign::new(spec(), 12, 77).with_threads(16).run();
    assert_eq!(s1.samples(), s4.samples());
    assert_eq!(s1.samples(), s16.samples());
}

#[test]
fn lfsr_and_software_randomness_are_each_deterministic() {
    for lfsr in [false, true] {
        let mut s = spec();
        s.platform.lfsr_randbank = lfsr;
        let a = run_once(&s, 9);
        let b = run_once(&s, 9);
        assert_eq!(a.tua_cycles, b.tua_cycles, "lfsr={lfsr}");
    }
}

#[test]
fn randomness_sources_differ_from_each_other() {
    let mut hw = spec();
    hw.platform.lfsr_randbank = true;
    let mut sw = spec();
    sw.platform.lfsr_randbank = false;
    // Same seed, different generators: almost surely different traces.
    let a: Vec<_> = (0..6).map(|s| run_once(&hw, s).tua_cycles).collect();
    let b: Vec<_> = (0..6).map(|s| run_once(&sw, s).tua_cycles).collect();
    assert_ne!(a, b, "generators should not coincide on every seed");
}

#[test]
fn campaign_seed_schedule_is_stable() {
    // seed_for must not depend on execution order (guards the parallel
    // scheduler against accidental reseeding-by-completion-order).
    let campaign = Campaign::new(spec(), 100, 42);
    let early = campaign.seed_for(3);
    let late = campaign.seed_for(97);
    assert_ne!(early, late);
    assert_eq!(early, Campaign::new(spec(), 100, 42).seed_for(3));
}
