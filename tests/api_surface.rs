//! Public-API-surface snapshot of `sim-core`.
//!
//! The kernel crate is the workspace's stable substrate — downstream
//! users build agents, probes and harnesses against it — so accidental
//! surface changes (a renamed trait method's carrier item, a dropped
//! re-export, an item made private) should fail loudly, not surface as
//! downstream breakage later.
//!
//! The check is a source-level snapshot: every column-0 `pub` item
//! declaration in `crates/sim-core/src/*.rs` (items inside `impl` blocks
//! and `#[cfg(test)]` modules are indented and therefore excluded),
//! normalized to its name line, compared against the committed golden
//! `tests/data/sim_core_api.txt`. Regenerate intentionally with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test api_surface
//! ```

use std::path::{Path, PathBuf};

fn sim_core_src() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/sim-core/src")
}

/// Normalizes one `pub` declaration line to its item-name prefix:
/// signatures are cut at the first `(`, `{`, ` = `, `;` or ` where`.
fn normalize(line: &str) -> String {
    let mut s = line.trim_end().to_string();
    for stop in ["(", " {", " = ", ";", " where"] {
        if let Some(i) = s.find(stop) {
            s.truncate(i);
        }
    }
    s.trim_end().to_string()
}

fn surface() -> String {
    let mut files: Vec<PathBuf> = std::fs::read_dir(sim_core_src())
        .expect("sim-core sources exist")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    files.sort();
    let mut out = String::new();
    for path in files {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let text = std::fs::read_to_string(&path).expect("readable source");
        for line in text.lines() {
            if line.starts_with("pub ") {
                out.push_str(&format!("{name}: {}\n", normalize(line)));
            }
        }
    }
    out
}

#[test]
fn sim_core_public_surface_matches_the_committed_snapshot() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/sim_core_api.txt");
    let current = surface();
    assert!(
        current.lines().count() > 30,
        "suspiciously small surface — did the scan break?\n{current}"
    );
    // Sanity: the tentpole API must be part of the surface.
    for item in [
        "pub trait SimAgent",
        "pub trait Probe",
        "pub struct Simulation",
        "pub trait BusModel",
        "pub fn drive",
    ] {
        assert!(
            current.lines().any(|l| l.contains(item)),
            "expected '{item}' in the sim-core surface:\n{current}"
        );
    }
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &current).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{golden_path:?}: {e}\nregenerate with UPDATE_GOLDENS=1 cargo test --test api_surface"
        )
    });
    assert!(
        current == golden,
        "sim-core's public API surface drifted from the committed snapshot.\n\
         If intentional, regenerate with UPDATE_GOLDENS=1 cargo test --test api_surface.\n\
         --- current ---\n{current}\n--- committed ---\n{golden}"
    );
}
