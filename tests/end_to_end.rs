//! End-to-end integration: the Figure-1 experiment pipeline at reduced
//! scale, asserting the orderings the paper reports rather than absolute
//! numbers.

use cba_platform::experiments::{fig1, fig1_digest, Fig1Cell};
use cba_workloads::{suite, EembcProfile};

/// Scaled-down profile (fewer accesses) so the test stays fast while
/// preserving the traffic shape.
fn scaled(mut profile: EembcProfile, factor: u64) -> EembcProfile {
    profile.accesses = (profile.accesses / factor).max(300);
    profile
}

fn cell<'a>(cells: &'a [Fig1Cell], bench: &str, setup: &str, scen: &str) -> &'a Fig1Cell {
    cells
        .iter()
        .find(|c| c.benchmark == bench && c.setup == setup && c.scenario == scen)
        .expect("cell exists")
}

#[test]
fn fig1_orderings_hold_for_bursty_benchmark() {
    let profile = scaled(suite::matrix(), 4);
    let cells = fig1(std::slice::from_ref(&profile), 8, 99);
    assert_eq!(cells.len(), 6);

    let rp_iso = cell(&cells, "matrix", "RP", "ISO").normalized;
    let rp_con = cell(&cells, "matrix", "RP", "CON").normalized;
    let cba_iso = cell(&cells, "matrix", "CBA", "ISO").normalized;
    let cba_con = cell(&cells, "matrix", "CBA", "CON").normalized;
    let hcba_iso = cell(&cells, "matrix", "H-CBA", "ISO").normalized;
    let hcba_con = cell(&cells, "matrix", "H-CBA", "CON").normalized;

    // The paper's Figure-1 orderings:
    assert!((rp_iso - 1.0).abs() < 1e-9, "RP-ISO is the normalizer");
    assert!(
        rp_con > 2.0,
        "slot-fair contention hurts a bursty task: {rp_con}"
    );
    assert!(rp_con < 4.0, "EEMBC does not saturate: slowdowns below 4x");
    assert!(
        cba_con < rp_con * 0.75,
        "CBA substantially reduces contention"
    );
    assert!(hcba_con < cba_con, "H-CBA (TuA 50%) reduces it further");
    assert!(
        cba_iso < 1.10,
        "CBA isolation overhead stays small: {cba_iso}"
    );
    assert!(
        (hcba_iso - 1.0).abs() < 0.05,
        "H-CBA isolation overhead negligible: {hcba_iso}"
    );
}

#[test]
fn fig1_sparse_benchmark_is_nearly_cba_insensitive() {
    // tblook: "almost insensitive to the potential delays created by CBA
    // since its bus requests barely occur consecutively".
    let profile = scaled(suite::tblook(), 2);
    let cells = fig1(std::slice::from_ref(&profile), 8, 7);
    let rp_con = cell(&cells, "tblook", "RP", "CON").normalized;
    let cba_con = cell(&cells, "tblook", "CBA", "CON").normalized;
    let cba_iso = cell(&cells, "tblook", "CBA", "ISO").normalized;
    assert!(
        (cba_con - rp_con).abs() / rp_con < 0.25,
        "sparse task: CBA-CON ({cba_con}) within 25% of RP-CON ({rp_con})"
    );
    assert!(
        cba_iso < 1.05,
        "sparse task: CBA barely stalls it in isolation"
    );
}

#[test]
fn fig1_digest_identifies_matrix_as_worst_rp_case() {
    // At reduced scale, matrix (bursty, bus-bound) must still be the worst
    // RP-CON case among a bursty/sparse pair — the paper's headline.
    let profiles = vec![scaled(suite::matrix(), 4), scaled(suite::tblook(), 2)];
    let cells = fig1(&profiles, 6, 5);
    let digest = fig1_digest(&cells);
    assert_eq!(digest.worst_rp_con.0, "matrix");
    assert!(digest.worst_rp_con.1 > digest.worst_cba_con.1);
    assert!(digest.hcba_iso_overhead.abs() < 0.05);
}

#[test]
fn contention_never_speeds_up_any_setup() {
    let profile = scaled(suite::canrdr(), 3);
    let cells = fig1(std::slice::from_ref(&profile), 6, 11);
    for setup in ["RP", "CBA", "H-CBA"] {
        let iso = cell(&cells, "canrdr", setup, "ISO").mean_cycles;
        let con = cell(&cells, "canrdr", setup, "CON").mean_cycles;
        assert!(
            con >= iso * 0.99,
            "{setup}: contention cannot help (iso {iso}, con {con})"
        );
    }
}

#[test]
fn cycle_entitlement_is_enforced_under_saturation() {
    // Under CBA, no saturating contender may exceed its 1/N share of total
    // cycles — the mechanism's core invariant, end to end.
    use cba_platform::{run_once, BusSetup, CoreLoad, RunSpec, Scenario, StopCondition};
    let mut spec = RunSpec::paper(
        BusSetup::Cba,
        Scenario::MaxContention,
        CoreLoad::FixedTask {
            n_requests: 1,
            duration: 5,
            gap: 0,
        },
    );
    spec.loads[0] = CoreLoad::Saturating { duration: 5 };
    spec.wcet_mode = false;
    spec.stop = StopCondition::Horizon(100_000);
    let r = run_once(&spec, 3);
    for core in 0..4 {
        let share = r.absolute_cycle_share(core);
        assert!(
            share <= 0.25 + 0.02,
            "core {core} exceeded its entitlement: {share}"
        );
    }
}
