//! Bit-identity of the event-horizon fast path against the naive
//! per-cycle loop — the workspace-level contract of `sim_core::drive_events`.
//!
//! The fast path may only skip cycles in which *nothing observable*
//! happens, so every run must agree with the reference loop bit for bit:
//! same samples, same grant traces, same wait statistics, same cycle
//! counters, same stop cycle. These tests sweep the full mechanism grid —
//! {RP, RR, TDMA, lottery} × {no filter, CBA, H-CBA} × {isolation, max
//! contention} on the non-split bus, plus the split-transaction bus with
//! random mixed traffic — across random seeds.

use cba::{CreditConfig, CreditFilter};
use cba_bus::split::{SplitBus, SplitBusConfig, SplitRequest};
use cba_bus::PolicyKind;
use cba_platform::scenario::ScenarioDef;
use cba_platform::{run_once, DriveMode, RunResult, RunSpec};
use sim_core::engine::{drive, drive_events, Control};
use sim_core::rng::SimRng;
use sim_core::{CoreId, Cycle};

fn both_engines(spec: &RunSpec, seed: u64) -> (RunResult, RunResult) {
    let mut naive = spec.clone();
    naive.drive = DriveMode::Naive;
    let mut events = spec.clone();
    events.drive = DriveMode::Events;
    (run_once(&naive, seed), run_once(&events, seed))
}

/// The whole policy × filter × scenario grid on the non-split bus —
/// every built-in policy, FIFO and fixed-priority included — with the
/// WCET-estimation COMP machinery engaged in the CON cells.
#[test]
fn policy_filter_grid_is_bit_identical() {
    let text = "\
[campaign]
name = identity
runs = 1
[tua]
load = fixed:150:6:4
[sweep]
policy = rp,rr,tdma,lot,fifo,pri
cba = none,homog,hcba
scenario = iso,con
";
    let def = ScenarioDef::parse(text).expect("grid parses");
    let cells = def.expand().expect("grid expands");
    assert_eq!(cells.len(), 36);
    for cell in &cells {
        for seed in [0u64, 13] {
            let (a, b) = both_engines(&cell.spec, seed);
            assert_eq!(a, b, "divergence in cell {:?} seed {seed}", cell.labels);
            assert!(a.finished, "cell {:?} must finish", cell.labels);
        }
    }
}

/// Core-model TuAs (caches, store buffers, random placement) against
/// saturating contenders, every policy family, both RNG backends.
#[test]
fn core_model_runs_are_bit_identical() {
    let text = "\
[campaign]
name = identity-core
runs = 1
[tua]
load = bench:rspeed
[sweep]
setup = rp,cba,hcba,tdma,rr+homog,fifo,pri+homog
scenario = iso,con
";
    let def = ScenarioDef::parse(text).expect("parses");
    let cells = def.expand().expect("expands");
    assert_eq!(cells.len(), 14);
    for cell in cells {
        let mut spec = cell.spec.clone();
        for lfsr in [true, false] {
            spec.platform.lfsr_randbank = lfsr;
            let (a, b) = both_engines(&spec, 42);
            assert_eq!(a, b, "cell {:?} lfsr={lfsr}", cell.labels);
        }
    }
}

/// The hierarchical fabric across the policy grid with per-segment
/// filters and mixed contender/fixed-task clients: bridges, bounded
/// queues and gated cluster arbitration must all replay bit for bit
/// under the fast path.
#[test]
fn fabric_grid_is_bit_identical() {
    let text = "\
[campaign]
name = identity-fabric
runs = 1
[platform]
policy = rr
[topology]
clusters = 2
cores_per_cluster = 2
bridge_latency = 2
bridge_depth = 2
[tua]
load = fixed:120:6:4
[contenders]
loads = sat:28,per:28:90:7,idle
wcet = off
[sweep]
policy = rp,rr,tdma,lot,fifo,pri
cluster_cba = none,homog
backbone_cba = none,homog
";
    let def = ScenarioDef::parse(text).expect("fabric grid parses");
    let cells = def.expand().expect("fabric grid expands");
    assert_eq!(cells.len(), 24);
    for cell in &cells {
        for seed in [3u64, 2017] {
            let (a, b) = both_engines(&cell.spec, seed);
            assert_eq!(
                a, b,
                "fabric divergence in cell {:?} seed {seed}",
                cell.labels
            );
            assert!(a.finished, "fabric cell {:?} must finish", cell.labels);
        }
    }
}

/// Cache-driven core clients on the fabric (the full stack: caches and
/// store buffers posting through cluster buses and bridges), both RNG
/// backends, plus a horizon-stopped recording run for the trace metrics.
#[test]
fn fabric_core_model_and_trace_runs_are_bit_identical() {
    let text = "\
[campaign]
name = identity-fabric-core
runs = 1
[platform]
policy = rr
[topology]
clusters = 2
cores_per_cluster = 2
bridge_latency = 3
bridge_depth = 2
cluster_cba = homog
backbone_cba = homog
[tua]
load = bench:rspeed
[contenders]
fill = sat:28
wcet = off
";
    let def = ScenarioDef::parse(text).expect("parses");
    let cells = def.expand().expect("expands");
    let mut spec = cells[0].spec.clone();
    for lfsr in [true, false] {
        spec.platform.lfsr_randbank = lfsr;
        let (a, b) = both_engines(&spec, 42);
        assert_eq!(a, b, "fabric core-model lfsr={lfsr}");
        assert!(a.finished);
    }
    // Horizon-stopped recording run: burst/starvation metrics too.
    let mut spec = cells[0].spec.clone();
    spec.loads[0] = cba_platform::CoreLoad::Saturating { duration: 5 };
    spec.stop = cba_platform::StopCondition::Horizon(25_000);
    spec.record_trace = true;
    let (a, b) = both_engines(&spec, 7);
    assert_eq!(a, b);
    assert_eq!(a.total_cycles, 25_000);
    assert!(a.max_burst.iter().any(|m| m.is_some()));
}

/// Memory miss-stream agents, private (`agent:mem`) and MESI-coherent
/// (`agent:shared`), across the policy × filter grid: cache hierarchies,
/// coherence transaction chains and the agents' post-retry loops must
/// replay bit for bit under the fast path, including the new per-run
/// memory statistics.
#[test]
fn mem_agent_runs_are_bit_identical() {
    let text = "\
[campaign]
name = identity-mem
runs = 1
[memory]
working_set = 2048
accesses = 250
write_frac = 0.35
share_frac = 0.4
shared_lines = 32
locality = 0.8
think = 3
l1_sets = 16
l1_ways = 2
[tua]
load = fixed:80:6:4
[contenders]
loads = agent:shared,agent:mem,agent:shared
wcet = off
[sweep]
policy = rp,rr,tdma,lot,fifo,pri
cba = none,homog
";
    let def = ScenarioDef::parse(text).expect("mem grid parses");
    let cells = def.expand().expect("mem grid expands");
    assert_eq!(cells.len(), 12);
    for cell in &cells {
        for seed in [1u64, 77] {
            let (a, b) = both_engines(&cell.spec, seed);
            assert_eq!(a, b, "mem divergence in cell {:?} seed {seed}", cell.labels);
            assert!(a.finished, "cell {:?} must finish", cell.labels);
            let mem = a.mem.expect("memory agents must report stats");
            assert!(mem.accesses > 0 && mem.bus_txns > 0);
        }
    }
    // Horizon-stopped recording run over the same mix: the trace-derived
    // metrics and the absorb_skipped stall accounting must agree too.
    let mut spec = cells[0].spec.clone();
    spec.stop = cba_platform::StopCondition::Horizon(20_000);
    spec.record_trace = true;
    let (a, b) = both_engines(&spec, 9);
    assert_eq!(a, b, "mem horizon/trace divergence");
    assert_eq!(a.total_cycles, 20_000);
}

/// Horizon-stopped fairness runs with recording traces and periodic +
/// saturating co-runners: the trace-derived burst/starvation metrics must
/// match too.
#[test]
fn horizon_and_trace_runs_are_bit_identical() {
    let text = "\
[campaign]
name = identity-horizon
runs = 1
[platform]
policy = tdma
cba = homog
[tua]
load = sat:5
[contenders]
loads = sat:56,per:28:90:7,idle
wcet = off
stop = horizon:30000
trace = on
";
    let def = ScenarioDef::parse(text).expect("parses");
    let cells = def.expand().expect("expands");
    for seed in [2u64, 2017] {
        let (a, b) = both_engines(&cells[0].spec, seed);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a.total_cycles, 30_000);
        assert!(a.max_burst.iter().any(|m| m.is_some()));
    }
}

/// Everything observable about one split-bus run, for exact comparison.
#[derive(Debug, PartialEq)]
struct SplitRunView {
    completions: Vec<(Cycle, usize)>,
    slots: Vec<u64>,
    busy: Vec<u64>,
    idle_cycles: u64,
    total_cycles: u64,
}

/// Random mixed traffic (immediate / split / atomic) on the
/// split-transaction bus: completions, traces, wait statistics and cycle
/// counters agree under every policy and with a credit filter attached.
#[test]
fn split_bus_runs_are_bit_identical() {
    for policy in [
        PolicyKind::RandomPermutation,
        PolicyKind::RoundRobin,
        PolicyKind::Tdma,
        PolicyKind::Lottery,
    ] {
        for with_cba in [false, true] {
            for seed in [5u64, 99] {
                let run = |fast: bool| -> SplitRunView {
                    let mut bus =
                        SplitBus::new(SplitBusConfig::paper(), policy.build(4, 56)).unwrap();
                    if with_cba {
                        bus.set_filter(Box::new(CreditFilter::new(
                            CreditConfig::homogeneous(4, 56).unwrap(),
                        )));
                    }
                    let mut rngs: Vec<SimRng> = (0..4)
                        .map(|i| SimRng::seed_from(seed).fork(i as u64))
                        .collect();
                    let mut completions: Vec<(Cycle, usize)> = Vec::new();
                    let cycle_fn = |bus: &mut SplitBus,
                                    now: Cycle,
                                    completed: Option<&cba_bus::split::SplitCompletion>|
                     -> Control {
                        if let Some(c) = completed {
                            completions.push((now, c.core.index()));
                        }
                        for (i, rng) in rngs.iter_mut().enumerate() {
                            let core = CoreId::from_index(i);
                            if bus.is_idle(core) {
                                let req = match rng.gen_range_u64(0..4) {
                                    0 => SplitRequest::Immediate {
                                        duration: rng.gen_range_u64(1..11) as u32,
                                    },
                                    1 | 2 => SplitRequest::Split,
                                    _ => SplitRequest::Atomic { duration: 56 },
                                };
                                bus.post(core, req).unwrap();
                            }
                        }
                        // Every core now has a request in flight; only bus
                        // events (completions) can create client work.
                        Control::Sleep(Cycle::MAX)
                    };
                    let outcome = if fast {
                        drive_events(&mut bus, 40_000, cycle_fn)
                    } else {
                        drive(&mut bus, 40_000, cycle_fn)
                    };
                    assert_eq!(outcome.cycles, 40_000);
                    let inner = bus.inner();
                    let ids: Vec<CoreId> = (0..4).map(CoreId::from_index).collect();
                    SplitRunView {
                        completions,
                        slots: ids.iter().map(|&c| inner.trace().slots(c)).collect(),
                        busy: ids.iter().map(|&c| inner.trace().busy_cycles(c)).collect(),
                        idle_cycles: inner.idle_cycles(),
                        total_cycles: inner.total_cycles(),
                    }
                };
                let naive = run(false);
                let fast = run(true);
                assert_eq!(
                    naive, fast,
                    "split-bus divergence: policy {policy:?}, cba {with_cba}, seed {seed}"
                );
            }
        }
    }
}
