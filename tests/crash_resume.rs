//! Crash-safety differential harness — campaigns interrupted at
//! randomized checkpoints and resumed must be **bit-identical** to an
//! uninterrupted single-shot run, at any thread count.
//!
//! The contract under test (the determinism contract of `--checkpoint` /
//! `--resume`):
//!
//! * every shipped `scenarios/*.scn`, killed mid-campaign via a seeded
//!   [`FaultPlan`] kill-point and resumed on a *different* thread count,
//!   reproduces the single-shot JSON and CSV byte for byte;
//! * the same holds at every kill-point of a grid, and for randomly
//!   generated scenarios (the same axes the random-differential harness
//!   sweeps);
//! * a panicking run is contained: the cell reports `outcome = panicked`
//!   instead of aborting the campaign, deterministically across 1/2/8
//!   threads;
//! * a budget-tripped cell reports `outcome = budget` the same way;
//! * a corrupted journal (truncated tail, flipped payload byte, version
//!   skew, foreign magic, wrong scenario) recovers by replaying only the
//!   valid prefix — wording pinned by `tests/data/journal_errors.golden.txt`
//!   (regenerate with `UPDATE_GOLDENS=1 cargo test --test crash_resume`).

use cba_platform::checkpoint::{FaultPlan, Journal, JOURNAL_FILE};
use cba_platform::report::{run_scenario_controlled, RunControls, ScenarioReport};
use cba_platform::scenario::ScenarioDef;
use cba_platform::CellOutcome;
use sim_core::rng::SimRng;
use std::path::{Path, PathBuf};
use std::sync::Once;

/// Silences the default panic hook for the injected panics only, so the
/// containment tests don't spray backtraces over the test output. Real
/// (unexpected) panics still print normally.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// A fresh, empty checkpoint directory under the target tmpdir.
fn checkpoint_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("crash_resume")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

fn shipped(name: &str) -> ScenarioDef {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    ScenarioDef::parse(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"))
}

fn run_plain(def: &ScenarioDef) -> ScenarioReport {
    run_scenario_controlled(def, &RunControls::default(), |_, _, _| {})
        .expect("uninterrupted run succeeds")
}

/// The bytes a consumer would see: both export formats.
fn fingerprint(report: &ScenarioReport) -> (String, String) {
    (report.to_json(), report.to_csv())
}

/// Interrupts `def` after `kill_after` journal records (on `threads_hit`
/// workers), resumes on `threads_resume` workers, and asserts the resumed
/// report is bit-identical to `reference`.
fn assert_resume_matches(
    def: &mut ScenarioDef,
    dir: &Path,
    kill_after: usize,
    threads_hit: usize,
    threads_resume: usize,
    reference: &ScenarioReport,
    what: &str,
) {
    def.threads = Some(threads_hit);
    let plan = FaultPlan::new().kill_after(kill_after);
    let controls = RunControls {
        checkpoint: Some(dir),
        resume: false,
        faults: Some(&plan),
    };
    let err = run_scenario_controlled(def, &controls, |_, _, _| {})
        .expect_err("the kill-point must interrupt the campaign");
    assert!(
        err.to_string().contains("interrupted"),
        "{what}: unexpected interruption error: {err}"
    );

    def.threads = Some(threads_resume);
    let controls = RunControls {
        checkpoint: Some(dir),
        resume: true,
        faults: None,
    };
    let resumed = run_scenario_controlled(def, &controls, |_, _, _| {})
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
    assert_eq!(
        fingerprint(&resumed),
        fingerprint(reference),
        "{what}: resumed report differs from the single-shot run \
         (kill after {kill_after}, {threads_hit} -> {threads_resume} threads)"
    );
}

/// Every shipped scenario, interrupted mid-grid and resumed on a
/// different thread count, reproduces its single-shot report byte for
/// byte — the acceptance criterion, over the whole `scenarios/` catalog.
#[test]
fn every_shipped_scenario_resumes_bit_identically() {
    let mut rng = SimRng::seed_from(0xC0A5_7A5E);
    let mut checked = 0;
    let dir_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut names: Vec<String> = std::fs::read_dir(&dir_root)
        .expect("scenarios/ exists")
        .filter_map(|e| {
            let p = e.expect("readable entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("scn"))
                .then(|| p.file_name().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    names.sort();
    for name in names {
        let mut def = shipped(&name);
        def.runs = 2;
        def.threads = Some(2);
        let reference = run_plain(&def);
        let cells = reference.cells.len();
        // A randomized (but seeded, hence reproducible) kill-point
        // strictly inside the grid.
        let kill_after = 1 + rng.gen_range_usize(0..cells.max(2) - 1);
        let dir = checkpoint_dir(&format!("shipped_{name}"));
        assert_resume_matches(&mut def, &dir, kill_after, 1, 4, &reference, &name);
        checked += 1;
    }
    assert!(checked >= 8, "expected the shipped grids, found {checked}");
}

/// Every kill-point of a grid is a valid resume point, and the resumed
/// report is identical at 1, 2 and 8 worker threads.
#[test]
fn every_kill_point_and_thread_count_resumes_bit_identically() {
    let mut def = shipped("paper_illustrative.scn");
    def.runs = 3;
    def.threads = Some(1);
    let reference = run_plain(&def);
    let cells = reference.cells.len();
    for kill_after in 1..cells {
        for threads in [1usize, 2, 8] {
            let dir = checkpoint_dir(&format!("kp_{kill_after}_t{threads}"));
            assert_resume_matches(
                &mut def,
                &dir,
                kill_after,
                threads,
                threads,
                &reference,
                "paper_illustrative",
            );
        }
    }
}

/// A seeded generator in the spirit of the random-differential harness:
/// random platform/policy/load/sweep combinations, each interrupted and
/// resumed across thread counts.
fn gen_scenario(rng: &mut SimRng, index: usize) -> ScenarioDef {
    let policies = ["fifo", "rr", "tdma", "lot", "rp", "pri"];
    let cba = ["none", "homog", "w:3:1:1:1"];
    let accesses = 100 + rng.gen_range_u64(0..300);
    let sweep = match rng.gen_range_usize(0..3) {
        0 => "setup = rp, cba, hcba\nscenario = iso, con".to_string(),
        1 => format!(
            "policy = {}, {}\nscenario = iso, con",
            policies[rng.gen_range_usize(0..policies.len())],
            policies[rng.gen_range_usize(0..policies.len() - 1)],
        ),
        _ => "caps = 1:1:1:1, 2:1:1:1\nscenario = con".to_string(),
    };
    let text = format!(
        "[campaign]\nname = random_{index}\nruns = 2\nseed = {}\n\
         [platform]\ncores = 4\ncba = {}\n\
         [tua]\nload = fixed:{accesses}:6:4\n\
         [contenders]\nscenario = con\nstop = tua\n\
         [sweep]\n{sweep}\n",
        rng.next_u64() & 0xFFFF_FFFF,
        cba[rng.gen_range_usize(0..cba.len())],
    );
    ScenarioDef::parse(&text).unwrap_or_else(|e| panic!("generated scenario invalid: {e}\n{text}"))
}

#[test]
fn random_scenarios_resume_bit_identically() {
    let mut rng = SimRng::seed_from(0xD1FF_C0A5);
    for index in 0..6 {
        let mut def = gen_scenario(&mut rng, index);
        def.threads = Some(4);
        let reference = run_plain(&def);
        let cells = reference.cells.len();
        let kill_after = 1 + rng.gen_range_usize(0..cells.max(2) - 1);
        let threads_hit = 1 + rng.gen_range_usize(0..8);
        let threads_resume = 1 + rng.gen_range_usize(0..8);
        let dir = checkpoint_dir(&format!("random_{index}"));
        assert_resume_matches(
            &mut def,
            &dir,
            kill_after,
            threads_hit,
            threads_resume,
            &reference,
            &format!("random scenario {index}"),
        );
    }
}

/// A panicking run is contained to its cell: the campaign completes, the
/// cell carries `outcome = panicked` with the panic message, the healthy
/// runs still aggregate, and the whole report is deterministic across
/// 1/2/8 threads.
#[test]
fn panicking_run_yields_a_cell_outcome_row() {
    quiet_injected_panics();
    let mut def = shipped("paper_illustrative.scn");
    def.runs = 3;
    let plan = FaultPlan::new().panic_at(0, 1).panic_at(2, 0);
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        def.threads = Some(threads);
        let controls = RunControls {
            checkpoint: None,
            resume: false,
            faults: Some(&plan),
        };
        let report = run_scenario_controlled(&def, &controls, |_, _, _| {})
            .expect("a panicking run must not abort the campaign");
        reports.push(fingerprint(&report));

        let cell = &report.cells[0];
        match &cell.outcome {
            CellOutcome::Panicked(msg) => {
                assert!(msg.contains("injected fault"), "unexpected message: {msg}")
            }
            other => panic!("cell 0 should be panicked, got {other:?}"),
        }
        assert_eq!(cell.panicked, 1);
        assert_eq!(cell.runs, 2, "the two healthy runs still aggregate");
        assert!(report.cells[1].outcome.is_ok());
        assert!(report.render_table().contains("[PANICKED x1"));
        assert!(report.to_csv().lines().nth(1).unwrap().contains("panicked"));
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

/// A budget-tripped cell reports `outcome = budget` (skipped runs
/// counted) instead of stalling the campaign, deterministically.
#[test]
fn budget_tripped_cell_yields_a_budget_outcome_row() {
    let mut def = shipped("paper_illustrative.scn");
    def.runs = 4;
    let plan = FaultPlan::new().budget_trip_from(1, 1);
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        def.threads = Some(threads);
        let controls = RunControls {
            checkpoint: None,
            resume: false,
            faults: Some(&plan),
        };
        let report = run_scenario_controlled(&def, &controls, |_, _, _| {})
            .expect("a budget trip must not abort the campaign");
        reports.push(fingerprint(&report));

        let cell = &report.cells[1];
        assert_eq!(cell.outcome, CellOutcome::Budget);
        assert_eq!(cell.budget_trips, 3, "runs 1..4 are skipped");
        assert_eq!(cell.runs, 1, "run 0 still aggregates");
        assert!(report.render_table().contains("[budget x3]"));
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

/// Seeded fault plans (the harness the issue asks for) are themselves
/// deterministic end to end: the same seed produces the same degraded
/// report at any thread count, and checkpoint/resume still holds under
/// injected faults.
#[test]
fn seeded_fault_plan_is_deterministic_and_resumable() {
    quiet_injected_panics();
    let mut def = shipped("paper_illustrative.scn");
    def.runs = 3;
    let cells = def.n_cells();
    let plan = FaultPlan::seeded(7, cells, def.runs);

    def.threads = Some(1);
    let controls = RunControls {
        checkpoint: None,
        resume: false,
        faults: Some(&plan),
    };
    let reference =
        run_scenario_controlled(&def, &controls, |_, _, _| {}).expect("degraded run completes");
    assert!(
        reference.cells.iter().any(|c| !c.outcome.is_ok()),
        "seed 7 should inject at least one fault into {cells} cells"
    );
    for threads in [2usize, 8] {
        def.threads = Some(threads);
        let report =
            run_scenario_controlled(&def, &controls, |_, _, _| {}).expect("degraded run completes");
        assert_eq!(
            fingerprint(&report),
            fingerprint(&reference),
            "{threads} threads"
        );
    }

    // Interrupt the faulted campaign and resume it (same plan both
    // times): still bit-identical to the uninterrupted faulted run.
    let dir = checkpoint_dir("seeded_faults");
    def.threads = Some(2);
    let interrupted = RunControls {
        checkpoint: Some(&dir),
        resume: false,
        faults: Some(&plan.clone().kill_after(1)),
    };
    run_scenario_controlled(&def, &interrupted, |_, _, _| {})
        .expect_err("kill-point must interrupt");
    let resumed_controls = RunControls {
        checkpoint: Some(&dir),
        resume: true,
        faults: Some(&plan),
    };
    let resumed =
        run_scenario_controlled(&def, &resumed_controls, |_, _, _| {}).expect("resume completes");
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
}

/// Byte offsets of each record in a journal (after the fixed header).
fn record_offsets(bytes: &[u8]) -> Vec<(usize, usize)> {
    const HEADER_LEN: usize = 28;
    const RECORD_HEADER_LEN: usize = 12;
    let mut offsets = Vec::new();
    let mut at = HEADER_LEN;
    while at + RECORD_HEADER_LEN <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap()) as usize;
        if at + RECORD_HEADER_LEN + len > bytes.len() {
            break;
        }
        offsets.push((at, RECORD_HEADER_LEN + len));
        at += RECORD_HEADER_LEN + len;
    }
    offsets
}

/// Every corruption class recovers by replaying only the valid prefix
/// (or failing hard where silently dropping work would be worse), with
/// pinned one-line messages — and a resume on top of the corrupted
/// journal still converges to the single-shot report.
#[test]
fn corrupted_journals_recover_with_pinned_messages() {
    let mut def = shipped("paper_illustrative.scn");
    def.runs = 2;
    def.threads = Some(1);
    let reference = run_plain(&def);
    let hash = def.scenario_hash();
    let total = def.n_cells();

    // A healthy interrupted journal with 3 records to corrupt copies of.
    let dir = checkpoint_dir("corruption_master");
    let plan = FaultPlan::new().kill_after(3);
    let controls = RunControls {
        checkpoint: Some(&dir),
        resume: false,
        faults: Some(&plan),
    };
    run_scenario_controlled(&def, &controls, |_, _, _| {}).expect_err("interrupted");
    let healthy = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal exists");
    let records = record_offsets(&healthy);
    assert_eq!(records.len(), 3, "kill-point wrote exactly 3 records");

    // name, corrupted bytes, records expected to survive the replay.
    let last = *records.last().unwrap();
    let mut bad_crc = healthy.clone();
    bad_crc[last.0 + 20] ^= 0xFF; // a payload byte of record 3
    let mut version_skew = healthy.clone();
    version_skew[8] = 9; // version field (after the 8-byte magic)
    let mut bad_magic = healthy.clone();
    bad_magic[..8].copy_from_slice(b"NOTJRNL\n");
    let cases: Vec<(&str, Vec<u8>, usize)> = vec![
        (
            "truncated_tail_payload",
            healthy[..healthy.len() - 4].to_vec(),
            2,
        ),
        ("truncated_record_header", healthy[..last.0 + 5].to_vec(), 2),
        ("bad_record_crc", bad_crc, 2),
        ("version_skew", version_skew, 0),
        ("short_header", healthy[..10].to_vec(), 0),
        ("bad_magic", bad_magic, 0),
        ("foreign_scenario_hash", healthy.clone(), 3),
    ];

    let mut snapshot = String::new();
    for (name, bytes, survivors) in cases {
        let dir = checkpoint_dir(&format!("corruption_{name}"));
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(&path, &bytes).expect("write corrupted journal");
        // The foreign-hash case resumes with a *different* scenario hash.
        let resume_hash = if name == "foreign_scenario_hash" {
            hash ^ 0xBAD
        } else {
            hash
        };
        let line = match Journal::resume(&dir, resume_hash, total, def.runs) {
            Ok((journal, replay)) => {
                assert_eq!(journal.records(), survivors, "{name}");
                assert_eq!(replay.cells.len(), survivors, "{name}");
                // The valid prefix replays the exact same cell reports.
                for (ci, cell) in &replay.cells {
                    assert_eq!(
                        cell.mean, reference.cells[*ci].mean,
                        "{name}: replayed cell {ci} drifted"
                    );
                }
                drop(journal);
                // And a full resume over the truncated journal converges
                // to the single-shot report.
                def.threads = Some(2);
                let controls = RunControls {
                    checkpoint: Some(&dir),
                    resume: true,
                    faults: None,
                };
                let resumed = run_scenario_controlled(&def, &controls, |_, _, _| {})
                    .expect("resume after recovery");
                assert_eq!(fingerprint(&resumed), fingerprint(&reference), "{name}");
                match replay.notices.as_slice() {
                    [] => "(no notice; clean replay)".to_string(),
                    [notice] => notice.clone(),
                    more => panic!("{name}: expected at most one notice, got {more:?}"),
                }
            }
            Err(e) => format!("error: {e}"),
        };
        snapshot.push_str(name);
        snapshot.push_str("\n  ");
        snapshot.push_str(&normalize(&line, &dir));
        snapshot.push('\n');
    }

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/journal_errors.golden.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &snapshot).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{golden_path:?}: {e}\nrun UPDATE_GOLDENS=1 cargo test --test crash_resume to create it"
        )
    });
    assert_eq!(
        snapshot, golden,
        "journal recovery messages drifted; if intentional, regenerate with \
         UPDATE_GOLDENS=1 cargo test --test crash_resume"
    );
}

/// Replaces the run-specific checkpoint directory and scenario hashes
/// with stable placeholders so the golden is machine-independent.
fn normalize(line: &str, dir: &Path) -> String {
    let mut out = line.replace(&dir.display().to_string(), "<DIR>");
    while let Some(at) = out.find("0x") {
        let hex_len = out[at + 2..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .count();
        if hex_len == 0 {
            break;
        }
        out.replace_range(at..at + 2 + hex_len, "<HASH>");
    }
    out
}

/// A fresh (non-resume) checkpointed run matches the plain run too — the
/// journaling layer must not perturb the statistics it records.
#[test]
fn checkpointing_does_not_perturb_results() {
    let mut def = shipped("paper_illustrative.scn");
    def.runs = 2;
    def.threads = Some(2);
    let reference = run_plain(&def);
    let dir = checkpoint_dir("no_perturb");
    let controls = RunControls {
        checkpoint: Some(&dir),
        resume: false,
        faults: None,
    };
    let journaled =
        run_scenario_controlled(&def, &controls, |_, _, _| {}).expect("journaled run completes");
    assert_eq!(fingerprint(&journaled), fingerprint(&reference));
    // Resuming a *finished* journal recomputes nothing and still matches.
    let controls = RunControls {
        checkpoint: Some(&dir),
        resume: true,
        faults: None,
    };
    let replayed =
        run_scenario_controlled(&def, &controls, |_, _, _| {}).expect("full replay completes");
    assert_eq!(fingerprint(&replayed), fingerprint(&reference));
}
