//! The streaming observer path end to end: a real bus with the real
//! credit filter, driven by registry-style agents through the
//! `Simulation` facade, with a probe subscribed to grants, completions
//! and credit-eligibility flips.
//!
//! Pins two properties:
//!
//! * grant/completion streams are **bit-identical** between the naive
//!   and event-horizon engines (they only occur at executed cycles);
//! * credit flips actually stream: a drained budget must produce
//!   ineligible→eligible transitions as it recovers, and the naive
//!   engine sees every one of them.

use cba::{CreditConfig, CreditFilter};
use cba_bus::{Bus, BusConfig, CompletedTransaction, PolicyKind};
use cba_cpu::Contender;
use sim_core::{CoreId, Cycle, Engine, Probe, Simulation, StopWhen};

#[derive(Default, Debug, PartialEq, Clone)]
struct EventLog {
    grants: Vec<(Cycle, usize)>,
    completions: Vec<(Cycle, usize, u32)>,
    flips: Vec<(Cycle, usize, bool)>,
    finish: Option<Cycle>,
}

impl Probe<CompletedTransaction> for EventLog {
    fn on_grant(&mut self, now: Cycle, core: CoreId) {
        self.grants.push((now, core.index()));
    }
    fn on_completion(&mut self, now: Cycle, c: &CompletedTransaction) {
        self.completions.push((now, c.core.index(), c.duration));
    }
    fn on_credit_flip(&mut self, at: Cycle, core: CoreId, eligible: bool) {
        self.flips.push((at, core.index(), eligible));
    }
    fn on_finish(&mut self, total: Cycle) {
        self.finish = Some(total);
    }
}

fn run(engine: Engine) -> EventLog {
    let mut bus = Bus::new(
        BusConfig::new(2, 56).unwrap(),
        PolicyKind::RoundRobin.build(2, 56),
    );
    bus.set_filter(Box::new(CreditFilter::new(
        CreditConfig::homogeneous(2, 56).unwrap(),
    )));
    bus.enable_flip_probe();
    let sim = Simulation::builder()
        .model(bus)
        .agent(Contender::new(CoreId::from_index(0), 5))
        .agent(Contender::new(CoreId::from_index(1), 45))
        .stop(StopWhen::Horizon(10_000))
        .engine(engine)
        .observe(EventLog::default())
        .run();
    sim.probe().clone()
}

#[test]
fn grant_and_completion_streams_are_engine_identical() {
    let naive = run(Engine::Naive);
    let fast = run(Engine::Events);
    assert_eq!(naive.grants, fast.grants);
    assert_eq!(naive.completions, fast.completions);
    assert_eq!(naive.finish, fast.finish);
    assert!(!naive.grants.is_empty());
    assert_eq!(
        naive.grants.len(),
        naive.completions.len() + 1,
        "every grant but the in-flight last one completed"
    );
}

#[test]
fn credit_flips_stream_through_the_probe() {
    let log = run(Engine::Naive);
    assert!(
        !log.flips.is_empty(),
        "a draining/recovering credit budget must flip eligibility"
    );
    // Both cores flip in both directions over a saturated run.
    for core in 0..2 {
        assert!(
            log.flips.iter().any(|&(_, c, e)| c == core && !e),
            "core {core} never went ineligible: {:?}",
            &log.flips[..log.flips.len().min(8)]
        );
        assert!(
            log.flips.iter().any(|&(_, c, e)| c == core && e),
            "core {core} never recovered eligibility"
        );
    }
    // Flip timestamps are nondecreasing (drained in occurrence order).
    assert!(log.flips.windows(2).all(|w| w[0].0 <= w[1].0));
    // And per core, consecutive flips alternate direction.
    for core in 0..2 {
        let dirs: Vec<bool> = log
            .flips
            .iter()
            .filter(|&&(_, c, _)| c == core)
            .map(|&(_, _, e)| e)
            .collect();
        assert!(
            dirs.windows(2).all(|w| w[0] != w[1]),
            "core {core} flip directions must alternate: {dirs:?}"
        );
    }
}
