//! `SimAgent` conformance suite: every shipped agent implementation must
//! honor the two contracts the open client API rests on.
//!
//! 1. **Wake honesty** — an agent sleeping until its declared
//!    [`wake_at`](sim_core::SimAgent::wake_at) never posts earlier:
//!    ticking it only at wake cycles (plus its completion cycles, which
//!    always wake it) produces the *exact* post stream of ticking it
//!    every cycle. This is the property the event-horizon engine's
//!    bit-identity guarantee reduces to on the client side.
//! 2. **Reset ≡ fresh** — [`reset`](sim_core::SimAgent::reset) through
//!    the trait restores a fresh-construction agent: re-running the same
//!    workload yields identical post streams and statistics.
//!
//! Agents are built through the [`AgentRegistry`], so the suite also
//! pins the registry's kind coverage.

use cba_bus::{Bus, BusConfig, BusError, BusRequest, PolicyKind, RequestPort};
use cba_platform::agents::{default_registry, BoxedPortAgent};
use cba_platform::{BusSetup, CoreLoad, PlatformConfig};
use sim_core::rng::SimRng;
use sim_core::{AgentStats, CoreId, Cycle};

/// A request port that records every accepted post before forwarding it
/// to the real bus.
struct SpyPort {
    bus: Bus,
    posts: Vec<(Cycle, usize, u32)>,
}

impl SpyPort {
    fn new(n_cores: usize) -> Self {
        SpyPort {
            bus: Bus::new(
                BusConfig::new(n_cores, 56).unwrap(),
                PolicyKind::RoundRobin.build(n_cores, 56),
            ),
            posts: Vec::new(),
        }
    }
}

impl RequestPort for SpyPort {
    fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        self.bus.post(req)?;
        self.posts
            .push((req.issued_at(), req.core().index(), req.duration()));
        Ok(())
    }

    fn withdraw(&mut self, core: CoreId) -> Option<BusRequest> {
        self.bus.withdraw(core)
    }

    fn can_accept(&self, core: CoreId) -> bool {
        self.bus.can_accept(core)
    }
}

/// Every shipped agent kind, as the load that builds it.
fn shipped_loads() -> Vec<CoreLoad> {
    let agent = |kind: &str| CoreLoad::Custom {
        kind: kind.into(),
        args: Vec::new(),
    };
    vec![
        CoreLoad::named("rspeed"),
        CoreLoad::Streaming { accesses: 60 },
        CoreLoad::Saturating { duration: 28 },
        CoreLoad::Periodic {
            duration: 11,
            period: 73,
            phase: 9,
        },
        CoreLoad::FixedTask {
            n_requests: 40,
            duration: 6,
            gap: 4,
        },
        CoreLoad::Idle,
        agent("mem"),
        agent("shared"),
    ]
}

/// A small synthetic-stream config so the memory agents finish inside
/// the conformance horizons.
fn memory_config() -> cba_mem::MemoryConfig {
    cba_mem::MemoryConfig {
        working_set: 1024,
        accesses: 120,
        think: 3,
        l1_sets: 16,
        l1_ways: 2,
        share_frac: 0.4,
        ..Default::default()
    }
}

fn build(load: &CoreLoad, seed: u64) -> BoxedPortAgent {
    let mut platform = PlatformConfig::paper(&BusSetup::Rp);
    platform.memory = Some(memory_config());
    let mut rng = SimRng::seed_from(seed).fork(0xC0);
    default_registry()
        .build(load, CoreId::from_index(0), &platform, &mut rng)
        .unwrap_or_else(|e| panic!("{load}: {e}"))
}

/// Ticks `agent` every cycle for `horizon` cycles; returns the post log
/// and the final stats.
fn drive_dense(
    agent: &mut BoxedPortAgent,
    horizon: Cycle,
) -> (Vec<(Cycle, usize, u32)>, AgentStats) {
    let mut port = SpyPort::new(1);
    for now in 0..horizon {
        let done = port.bus.begin_cycle(now);
        agent.tick(now, done.as_ref(), &mut port);
        port.bus.end_cycle(now);
    }
    (port.posts, agent.stats())
}

/// Ticks `agent` only at its declared wake cycles and the bus's event
/// cycles (the event engine's visiting pattern); returns the post log
/// and how many cycles were actually visited.
fn drive_sparse(agent: &mut BoxedPortAgent, horizon: Cycle) -> (Vec<(Cycle, usize, u32)>, u64) {
    let mut port = SpyPort::new(1);
    let mut now: Cycle = 0;
    let mut prev: Option<Cycle> = None;
    let mut visited = 0u64;
    while now < horizon {
        let done = port.bus.begin_cycle(now);
        if let Some(p) = prev {
            let skipped = now - p - 1;
            if skipped > 0 {
                agent.absorb_skipped(skipped);
            }
        }
        prev = Some(now);
        agent.tick(now, done.as_ref(), &mut port);
        port.bus.end_cycle(now);
        visited += 1;
        let next = match (agent.wake_at(), port.bus.next_event(now)) {
            // An agent demanding every cycle gets every cycle.
            (None, _) => now + 1,
            // Sleep until the agent's wake or the bus's next event
            // (completions wake the agent), whichever is first.
            (Some(w), Some(ev)) => w.min(ev).max(now + 1),
            // A bus that cannot predict forces per-cycle stepping.
            (Some(_), None) => now + 1,
        };
        now = next.min(horizon);
    }
    if let Some(p) = prev {
        let tail = horizon.saturating_sub(1).saturating_sub(p);
        if tail > 0 {
            agent.absorb_skipped(tail);
        }
    }
    (port.posts, visited)
}

/// Contract 1: sleeping until `wake_at` loses nothing — and in
/// particular the agent never needed a cycle before its declared wake.
#[test]
fn sleeping_until_wake_at_never_changes_the_post_stream() {
    const HORIZON: Cycle = 6_000;
    for load in shipped_loads() {
        let mut dense = build(&load, 11);
        let (dense_posts, dense_stats) = drive_dense(&mut dense, HORIZON);
        let mut sparse = build(&load, 11);
        let (sparse_posts, visited) = drive_sparse(&mut sparse, HORIZON);
        assert_eq!(
            dense_posts, sparse_posts,
            "'{load}': sparse ticking at wake cycles must reproduce the dense post stream"
        );
        assert_eq!(
            dense_stats,
            sparse.stats(),
            "'{load}': stats must survive skipped-cycle absorption"
        );
        if !matches!(load, CoreLoad::Saturating { .. }) {
            assert!(
                visited < HORIZON,
                "'{load}': agent declared no sleepable cycle in {HORIZON}"
            );
        }
    }
}

/// Contract 2: `reset` through the trait ≡ fresh construction.
#[test]
fn reset_under_the_trait_equals_fresh_construction() {
    const HORIZON: Cycle = 4_000;
    for load in shipped_loads() {
        let mut fresh = build(&load, 77);
        let expected = drive_dense(&mut fresh, HORIZON);

        let mut reused = build(&load, 77);
        for round in 0..2 {
            let got = drive_dense(&mut reused, HORIZON);
            assert_eq!(
                got, expected,
                "'{load}': round {round} diverged from a fresh agent"
            );
            // Reset with the same stream the registry consumed at build
            // time, exactly as a fresh run would seed it.
            let mut rng = SimRng::seed_from(77).fork(0xC0);
            reused.reset(&mut rng);
        }
    }
}

/// The wake horizon is honest about *passivity* too: an agent reporting
/// `Cycle::MAX` while waiting must not act when ticked anyway.
#[test]
fn agents_waiting_on_completions_ignore_spurious_ticks() {
    let load = CoreLoad::FixedTask {
        n_requests: 3,
        duration: 6,
        gap: 10,
    };
    let mut agent = build(&load, 5);
    let mut port = SpyPort::new(1);
    // Tick to the first post (gap 10 -> posts at cycle 10).
    for now in 0..=10u64 {
        let done = port.bus.begin_cycle(now);
        agent.tick(now, done.as_ref(), &mut port);
        port.bus.end_cycle(now);
    }
    assert_eq!(port.posts.len(), 1);
    assert_eq!(
        agent.wake_at(),
        Some(Cycle::MAX),
        "in service: only a completion wakes it"
    );
    // Spurious ticks while the request is in flight must be no-ops.
    for now in 11..14u64 {
        let done = port.bus.begin_cycle(now);
        agent.tick(now, done.as_ref(), &mut port);
        port.bus.end_cycle(now);
        assert_eq!(port.posts.len(), 1, "no post while waiting");
    }
}
