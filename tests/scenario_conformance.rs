//! Conformance of the shipped scenario files to the Rust experiment
//! drivers, plus golden round-trips of the scenario format.
//!
//! The contract under test: `scenarios/paper_fig1.scn` expands to
//! exactly the `BusSetup::paper_setups()` × `Scenario` grid that
//! `cba_platform::experiments::fig1` runs — same cells, same order, same
//! per-cell seeds, same specs — so the CLI and the Rust API reproduce
//! identical Figure-1 numbers.

use cba_platform::experiments::fig1_def;
use cba_platform::scenario::{AxisValue, ScenarioDef, TuaSpec};
use cba_platform::BusSetup;
use cba_workloads::suite;
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn read_scn(name: &str) -> String {
    let path = scenarios_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

#[test]
fn paper_fig1_scn_expands_to_the_paper_grid() {
    let def = ScenarioDef::parse(&read_scn("paper_fig1.scn")).expect("shipped file parses");
    assert_eq!(def.runs, 1000, "the paper uses 1,000 runs per bar");
    assert_eq!(def.seed, 2017);
    let cells = def.expand().expect("shipped file expands");

    let benchmarks = suite::fig1_suite();
    let setups = BusSetup::paper_setups();
    assert_eq!(cells.len(), benchmarks.len() * setups.len() * 2);

    let mut i = 0;
    for (bi, profile) in benchmarks.iter().enumerate() {
        for (si, setup) in setups.iter().enumerate() {
            for (ci, scenario) in ["ISO", "CON"].into_iter().enumerate() {
                let cell = &cells[i];
                assert_eq!(cell.label("bench"), Some(profile.name), "cell {i}");
                assert_eq!(
                    cell.label("setup"),
                    Some(setup.label().as_str()),
                    "cell {i}"
                );
                assert_eq!(cell.label("scenario"), Some(scenario), "cell {i}");
                // The driver's seed derivation, bit for bit.
                assert_eq!(
                    cell.seed,
                    def.seed ^ ((bi as u64) << 40 | (si as u64) << 20 | ci as u64),
                    "cell {i}"
                );
                // The spec matches the Rust driver's RunSpec::paper shape.
                let spec = &cell.spec;
                assert_eq!(spec.platform.n_cores, 4);
                assert_eq!(spec.platform.latency.max_latency(), 56);
                assert_eq!(
                    spec.platform.cba.is_some(),
                    !matches!(setup, BusSetup::Rp),
                    "cell {i}"
                );
                assert_eq!(spec.wcet_mode, scenario == "CON", "cell {i}");
                assert_eq!(spec.loads.len(), 4);
                i += 1;
            }
        }
    }
}

#[test]
fn paper_fig1_scn_is_structurally_identical_to_fig1_def() {
    let parsed = ScenarioDef::parse(&read_scn("paper_fig1.scn")).expect("parses");
    let programmatic = fig1_def(&suite::fig1_suite(), parsed.runs, parsed.seed);

    let file_cells = parsed.expand().expect("file expands");
    let driver_cells = programmatic.expand().expect("driver def expands");
    assert_eq!(file_cells.len(), driver_cells.len());
    for (f, d) in file_cells.iter().zip(&driver_cells) {
        assert_eq!(f.labels, d.labels);
        assert_eq!(f.seed, d.seed);
        // RunSpec has no PartialEq (trait objects downstream); the Debug
        // rendering covers every field, including the resolved profiles.
        assert_eq!(format!("{:?}", f.spec), format!("{:?}", d.spec));
    }
    // The report shaping (RP-ISO normalization) matches too.
    assert_eq!(parsed.report, programmatic.report);
}

#[test]
fn paper_fig1_cell_means_match_the_fig1_driver_bit_for_bit() {
    // Numeric equivalence on a trimmed grid: the parsed file, restricted
    // to a short benchmark, must reproduce the fig1() driver exactly
    // (same seeds, same specs => same floats).
    let mut quick = suite::rspeed();
    quick.accesses = 300;

    let mut def = ScenarioDef::parse(&read_scn("paper_fig1.scn")).expect("parses");
    def.runs = 3;
    def.template.tua = TuaSpec::Profile {
        name: "rspeed".into(),
        overrides: vec![("accesses".into(), "300".into())],
    };
    let bench_axis = def
        .axes
        .iter_mut()
        .find(|a| a.key == "bench")
        .expect("bench axis");
    bench_axis.values = vec![AxisValue::Raw("rspeed".into())];

    let report = cba_platform::run_scenario(&def).expect("trimmed grid runs");
    let driver = cba_platform::experiments::fig1(&[quick], 3, def.seed);

    assert_eq!(report.cells.len(), driver.len());
    for (cell, bar) in report.cells.iter().zip(&driver) {
        assert_eq!(cell.label("setup"), Some(bar.setup.as_str()));
        assert_eq!(cell.label("scenario"), Some(bar.scenario));
        assert_eq!(cell.mean, bar.mean_cycles, "means must be bit-identical");
        assert_eq!(cell.normalized, Some(bar.normalized));
        assert_eq!(cell.normalized_ci95, Some(bar.ci95));
    }
}

#[test]
fn paper_fig1_fast_path_matches_the_naive_loop_bit_for_bit() {
    // The shipped grid runs on the event-horizon engine by default; a
    // trimmed version re-run through the per-cycle reference loop must
    // produce the exact same floats (means, CIs, normalization).
    let mut def = ScenarioDef::parse(&read_scn("paper_fig1.scn")).expect("parses");
    def.runs = 3;
    def.template.tua = TuaSpec::Profile {
        name: "rspeed".into(),
        overrides: vec![("accesses".into(), "300".into())],
    };
    let bench_axis = def
        .axes
        .iter_mut()
        .find(|a| a.key == "bench")
        .expect("bench axis");
    bench_axis.values = vec![AxisValue::Raw("rspeed".into())];

    assert_eq!(def.template.engine, "events", "fast path is the default");
    let fast = cba_platform::run_scenario(&def).expect("fast grid runs");
    def.template.engine = "naive".into();
    let naive = cba_platform::run_scenario(&def).expect("naive grid runs");

    assert_eq!(fast.cells.len(), naive.cells.len());
    for (f, n) in fast.cells.iter().zip(&naive.cells) {
        assert_eq!(f.labels, n.labels);
        assert_eq!(f.mean, n.mean, "cell {:?}", f.labels);
        assert_eq!(f.ci95, n.ci95, "cell {:?}", f.labels);
        assert_eq!(f.min, n.min, "cell {:?}", f.labels);
        assert_eq!(f.max, n.max, "cell {:?}", f.labels);
        assert_eq!(f.percentiles, n.percentiles, "cell {:?}", f.labels);
        assert_eq!(f.utilization, n.utilization, "cell {:?}", f.labels);
        assert_eq!(f.normalized, n.normalized, "cell {:?}", f.labels);
    }
}

#[test]
fn every_shipped_scenario_parses_expands_and_round_trips() {
    let dir = scenarios_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("scn") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable scenario");
        let def =
            ScenarioDef::parse(&text).unwrap_or_else(|e| panic!("{path:?} fails to parse: {e}"));
        let cells = def
            .expand()
            .unwrap_or_else(|e| panic!("{path:?} fails to expand: {e}"));
        assert!(!cells.is_empty(), "{path:?} expands to nothing");

        // parse -> expand -> re-render -> parse is lossless.
        let rendered = def.render();
        let reparsed = ScenarioDef::parse(&rendered)
            .unwrap_or_else(|e| panic!("{path:?} render does not re-parse: {e}\n{rendered}"));
        assert_eq!(def, reparsed, "{path:?} render round-trip");
        let recells = reparsed.expand().expect("re-rendered def expands");
        for (a, b) in cells.iter().zip(&recells) {
            assert_eq!(a.labels, b.labels, "{path:?}");
            assert_eq!(a.seed, b.seed, "{path:?}");
        }
        checked += 1;
    }
    assert!(checked >= 8, "expected the shipped grids, found {checked}");
}

/// Every shipped scenario has a committed golden of its canonical render
/// under `tests/data/<name>.rendered.scn`, and the render matches it —
/// so an unrendered (new scenario without a golden) or drifted (parser or
/// renderer change) scenario fails CI. Regenerate the goldens with
/// `UPDATE_GOLDENS=1 cargo test --test scenario_conformance`.
#[test]
fn every_shipped_scenario_matches_its_committed_golden_render() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let data_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let mut checked = 0;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("scn") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let def = ScenarioDef::parse(&std::fs::read_to_string(&path).expect("readable"))
            .unwrap_or_else(|e| panic!("{path:?} fails to parse: {e}"));
        let rendered = def.render();
        let golden_path = data_dir.join(format!("{stem}.rendered.scn"));
        if update {
            std::fs::write(&golden_path, &rendered).expect("write golden");
        } else {
            let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
                panic!(
                    "{golden_path:?}: {e}\nevery scenarios/*.scn needs a committed golden \
                     render; run UPDATE_GOLDENS=1 cargo test --test scenario_conformance"
                )
            });
            assert_eq!(
                rendered, golden,
                "canonical render of {stem}.scn drifted; regenerate with \
                 UPDATE_GOLDENS=1 cargo test --test scenario_conformance"
            );
        }
        checked += 1;
    }
    assert!(checked >= 8, "expected the shipped grids, found {checked}");
    // And no orphaned goldens for scenarios that no longer exist.
    for entry in std::fs::read_dir(&data_dir).expect("tests/data exists") {
        let path = entry.expect("readable entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(stem) = name.strip_suffix(".rendered.scn") {
            assert!(
                scenarios_dir().join(format!("{stem}.scn")).exists(),
                "orphaned golden {name}: scenarios/{stem}.scn does not exist"
            );
        }
    }
}
