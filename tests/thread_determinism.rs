//! Thread-count determinism — PR 3's "results stay bit-identical for any
//! thread count" claim as an enforced invariant.
//!
//! Every (cell × run) task of a campaign derives its seed from
//! `(cell seed, run index)` alone, and the executor scatters results by
//! index, so neither the pool size nor the scheduling order may leak into
//! any reported number. These tests run the same sweep grid on 1, 2 and 8
//! worker threads and compare whole reports — floats included — with
//! exact equality.

use cba_platform::scenario::ScenarioDef;
use cba_platform::{run_scenario, Campaign, CellReport, CoreLoad, RunSpec, Scenario};

const GRID: &str = "\
[campaign]
name = threads
runs = 6
seed = 41
[tua]
load = fixed:60:6:4
[sweep]
setup = rp,cba
scenario = iso,con
[report]
baseline = setup=rp,scenario=iso
";

fn grid_with_threads(threads: usize) -> Vec<CellReport> {
    let mut def = ScenarioDef::parse(GRID).expect("grid parses");
    def.threads = Some(threads);
    run_scenario(&def).expect("grid runs").cells
}

/// Exact-equality comparison of two cell reports (no float tolerance).
fn assert_cells_identical(a: &CellReport, b: &CellReport, what: &str) {
    assert_eq!(a.labels, b.labels, "{what}");
    assert_eq!(a.seed, b.seed, "{what}");
    assert_eq!(a.runs, b.runs, "{what}");
    assert_eq!(a.unfinished, b.unfinished, "{what}");
    assert_eq!(a.mean, b.mean, "{what}: mean");
    assert_eq!(a.ci95, b.ci95, "{what}: ci95");
    assert_eq!(a.min, b.min, "{what}: min");
    assert_eq!(a.max, b.max, "{what}: max");
    assert_eq!(a.percentiles, b.percentiles, "{what}: percentiles");
    assert_eq!(a.utilization, b.utilization, "{what}: utilization");
    assert_eq!(a.normalized, b.normalized, "{what}: normalized");
    assert_eq!(a.normalized_ci95, b.normalized_ci95, "{what}");
    assert_eq!(a.cluster_shares, b.cluster_shares, "{what}: shares");
    assert_eq!(a.cluster_fairness, b.cluster_fairness, "{what}");
    assert_eq!(a.mem_miss_rate, b.mem_miss_rate, "{what}: mem_miss_rate");
    assert_eq!(
        a.mem_coherence_frac, b.mem_coherence_frac,
        "{what}: mem_coherence_frac"
    );
    assert_eq!(a.mem_writebacks, b.mem_writebacks, "{what}: mem_writebacks");
}

#[test]
fn scenario_grid_reports_are_bit_identical_across_thread_counts() {
    let reference = grid_with_threads(1);
    assert_eq!(reference.len(), 4);
    for threads in [2usize, 8] {
        let cells = grid_with_threads(threads);
        assert_eq!(cells.len(), reference.len());
        for (a, b) in reference.iter().zip(&cells) {
            assert_cells_identical(a, b, &format!("threads={threads}"));
        }
    }
}

#[test]
fn fabric_grid_reports_are_bit_identical_across_thread_counts() {
    let text = "\
[campaign]
name = fabric-threads
runs = 4
seed = 9
[platform]
policy = rr
[topology]
clusters = 2
cores_per_cluster = 2
bridge_latency = 2
bridge_depth = 2
backbone_cba = homog
[tua]
load = fixed:60:6:4
[contenders]
fill = sat:28
wcet = off
[sweep]
bridge_latency = 1,4
";
    let run = |threads: usize| {
        let mut def = ScenarioDef::parse(text).expect("parses");
        def.threads = Some(threads);
        run_scenario(&def).expect("runs").cells
    };
    let reference = run(1);
    for threads in [2usize, 8] {
        for (a, b) in reference.iter().zip(&run(threads)) {
            assert_cells_identical(a, b, &format!("fabric threads={threads}"));
        }
    }
}

/// Memory-agent grids: the new memory columns are ratios of exact `u64`
/// sums reduced in run-index order, so MESI traffic and miss statistics
/// may not leak the pool size either.
#[test]
fn mem_agent_grid_reports_are_bit_identical_across_thread_counts() {
    let text = "\
[campaign]
name = mem-threads
runs = 5
seed = 23
[memory]
working_set = 1024
accesses = 200
share_frac = 0.5
l1_sets = 16
l1_ways = 2
[tua]
load = fixed:40:6:4
[contenders]
fill = agent:shared
wcet = off
[sweep]
setup = rr,cba
share_frac = 0.1,0.7
";
    let run = |threads: usize| {
        let mut def = ScenarioDef::parse(text).expect("parses");
        def.threads = Some(threads);
        run_scenario(&def).expect("runs").cells
    };
    let reference = run(1);
    assert_eq!(reference.len(), 4);
    for cell in &reference {
        assert!(cell.mem_miss_rate.is_some(), "memory columns must be on");
    }
    for threads in [2usize, 8] {
        for (a, b) in reference.iter().zip(&run(threads)) {
            assert_cells_identical(a, b, &format!("mem threads={threads}"));
        }
    }
}

/// The raw campaign layer too: every `RunResult` (traces, wait stats,
/// cycle counters — `RunResult` is `PartialEq` exactly) must be
/// independent of the pool size, not just the aggregates.
#[test]
fn campaign_run_results_are_bit_identical_across_thread_counts() {
    let spec = RunSpec::paper(
        cba_platform::BusSetup::Cba,
        Scenario::MaxContention,
        CoreLoad::FixedTask {
            n_requests: 80,
            duration: 6,
            gap: 4,
        },
    );
    let reference = Campaign::new(spec.clone(), 9, 77).with_threads(1).run();
    for threads in [2usize, 8] {
        let other = Campaign::new(spec.clone(), 9, 77)
            .with_threads(threads)
            .run();
        assert_eq!(reference.samples(), other.samples(), "threads={threads}");
        assert_eq!(
            reference.results(),
            other.results(),
            "raw RunResults, threads={threads}"
        );
        assert_eq!(reference.unfinished(), other.unfinished());
    }
}
