//! pWCET campaign columns end to end — `[report] pwcet = P1,P2,...`
//! through the scenario engine, exports, and the crash-safety layer.
//!
//! The contract under test:
//!
//! * cells with healthy randomized samples get `pwcet@P`, Gumbel-fit and
//!   iid-verdict columns in JSON, CSV and the terminal table, and the
//!   bounds dominate every observation;
//! * degenerate cells (constant latencies, too few runs) degrade to an
//!   `MbptaError` diagnostic column — wording pinned by
//!   `tests/data/pwcet_diag.golden.txt` (regenerate with
//!   `UPDATE_GOLDENS=1 cargo test --test pwcet_campaign`) — never a
//!   panic or a silent NaN;
//! * the columns are bit-identical across 1/2/8 worker threads and
//!   across an interrupted-and-resumed campaign, like every other
//!   report statistic.

use cba_platform::checkpoint::FaultPlan;
use cba_platform::report::{run_scenario_controlled, RunControls, ScenarioReport};
use cba_platform::scenario::ScenarioDef;
use std::path::{Path, PathBuf};

/// A grid whose samples genuinely vary (randomized cache + WCET-mode
/// contenders), so the Gumbel fit and iid battery have something to say.
/// 120 runs = 12 block maxima: past every minimum, still fast.
const FITTED: &str = "\
[campaign]
name = pwcet_fit
runs = 120
seed = 11
[tua]
profile = rspeed
accesses = 200
[contenders]
scenario = con
[sweep]
setup = rr,cba
[report]
pwcet = 1e-9,1e-12
";

fn run_grid(text: &str, threads: usize) -> ScenarioReport {
    let mut def = ScenarioDef::parse(text).expect("grid parses");
    def.threads = Some(threads);
    run_scenario_controlled(&def, &RunControls::default(), |_, _, _| {}).expect("grid runs")
}

#[test]
fn fitted_cells_expose_pwcet_columns_in_every_export() {
    let report = run_grid(FITTED, 2);
    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        let pwcet = cell.pwcet.as_ref().expect("pwcet configured");
        assert_eq!(pwcet.probs, vec![1e-9, 1e-12]);
        let fit = pwcet.fit.as_ref().unwrap_or_else(|| {
            panic!(
                "cell {:?}: fit failed: {}",
                cell.labels,
                pwcet.diag.as_deref().unwrap_or("?")
            )
        });
        assert!(pwcet.diag.is_none());
        assert_eq!(fit.bounds.len(), 2);
        assert!(fit.bounds.iter().all(|b| b.is_finite()));
        assert!(
            fit.bounds[1] > fit.bounds[0],
            "the 1e-12 bound must dominate the 1e-9 bound: {:?}",
            fit.bounds
        );
        assert!(
            fit.bounds[0] > cell.max,
            "a 1e-9 per-run bound must dominate 120 observations \
             ({} vs max {})",
            fit.bounds[0],
            cell.max
        );
        assert!(fit.beta > 0.0);
        assert_eq!(fit.blocks, 12);
        for p in [fit.ks_p, fit.lb_p, fit.runs_p] {
            assert!((0.0..=1.0).contains(&p), "p-value {p} out of range");
        }
    }

    let json = report.to_json();
    for key in [
        "\"pwcet@1e-9\"",
        "\"pwcet@1e-12\"",
        "\"gumbel_mu\"",
        "\"gumbel_beta\"",
        "\"iid_ok\"",
    ] {
        assert!(json.contains(key), "JSON lacks {key}: {json}");
    }
    assert!(!json.contains("pwcet_diag"), "no diag on healthy cells");

    let csv = report.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(
        header.ends_with(
            "pwcet@1e-9,pwcet@1e-12,gumbel_mu,gumbel_beta,gumbel_blocks,\
             iid_ks_p,iid_lb_p,iid_runs_p,iid_ok,pwcet_diag"
        ),
        "{header}"
    );
    for line in csv.lines().skip(1) {
        assert_eq!(
            line.split(',').count(),
            header.split(',').count(),
            "ragged row: {line}"
        );
    }

    let table = report.render_table();
    assert!(table.contains("pWCET@1e-12 "), "{table}");
}

#[test]
fn degenerate_and_tiny_cells_degrade_to_diagnostic_columns() {
    // Case 1: a fixed-request TuA in isolation is fully deterministic —
    // 120 identical samples, which no Gumbel fits.
    let constant = "\
[campaign]
name = pwcet_constant
runs = 120
seed = 3
[tua]
load = fixed:40:6:4
[contenders]
scenario = iso
[report]
pwcet = 1e-9
";
    // Case 2: two runs are below every minimum of the iid battery and
    // the block-maxima fit.
    let tiny = "\
[campaign]
name = pwcet_tiny
runs = 2
seed = 3
[tua]
profile = rspeed
accesses = 200
[contenders]
scenario = con
[report]
pwcet = 1e-9
";
    let mut snapshot = String::new();
    for (case, text) in [("constant_latency", constant), ("tiny_run_count", tiny)] {
        let report = run_grid(text, 2);
        for cell in &report.cells {
            let pwcet = cell.pwcet.as_ref().expect("pwcet configured");
            assert!(pwcet.fit.is_none(), "{case}: no fit from degenerate data");
            let diag = pwcet.diag.as_deref().expect("diagnostic column");
            snapshot.push_str(&format!("{case}\n  {diag}\n"));

            // The diagnostic reaches every export; no NaN leaks out.
            let json = report.to_json();
            assert!(json.contains("pwcet_diag"), "{case}: {json}");
            assert!(!json.contains("pwcet@"), "{case}: no bound columns");
            let csv = report.to_csv();
            assert!(csv.lines().next().unwrap().ends_with("pwcet_diag"));
            let table = report.render_table();
            assert!(table.contains("[pwcet: "), "{case}: {table}");
        }
    }

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/pwcet_diag.golden.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden_path, &snapshot).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{golden_path:?}: {e}\nrun UPDATE_GOLDENS=1 cargo test --test pwcet_campaign to create it"
        )
    });
    assert_eq!(
        snapshot, golden,
        "pwcet diagnostics drifted; if intentional, regenerate with \
         UPDATE_GOLDENS=1 cargo test --test pwcet_campaign"
    );
}

#[test]
fn pwcet_columns_are_bit_identical_across_thread_counts() {
    let reference = run_grid(FITTED, 1);
    let fingerprint = |r: &ScenarioReport| (r.to_json(), r.to_csv());
    for threads in [2usize, 8] {
        let other = run_grid(FITTED, threads);
        for (a, b) in reference.cells.iter().zip(&other.cells) {
            assert_eq!(a.pwcet, b.pwcet, "threads={threads}: {:?}", a.labels);
        }
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&other),
            "threads={threads}"
        );
    }
}

#[test]
fn pwcet_columns_survive_crash_and_resume_bit_identically() {
    let dir: PathBuf = Path::new(env!("CARGO_TARGET_TMPDIR")).join("pwcet_campaign_resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");

    let mut def = ScenarioDef::parse(FITTED).expect("grid parses");
    def.threads = Some(1);
    let reference =
        run_scenario_controlled(&def, &RunControls::default(), |_, _, _| {}).expect("single-shot");

    def.threads = Some(2);
    let plan = FaultPlan::new().kill_after(1);
    let controls = RunControls {
        checkpoint: Some(&dir),
        resume: false,
        faults: Some(&plan),
    };
    let err = run_scenario_controlled(&def, &controls, |_, _, _| {})
        .expect_err("kill-point must interrupt");
    assert!(err.to_string().contains("interrupted"), "{err}");

    def.threads = Some(8);
    let controls = RunControls {
        checkpoint: Some(&dir),
        resume: true,
        faults: None,
    };
    let resumed = run_scenario_controlled(&def, &controls, |_, _, _| {}).expect("resume");
    assert_eq!(resumed.to_json(), reference.to_json());
    assert_eq!(resumed.to_csv(), reference.to_csv());
    for (a, b) in reference.cells.iter().zip(&resumed.cells) {
        assert_eq!(a.pwcet, b.pwcet, "{:?}", a.labels);
    }
}
