//! Cross-policy conformance at the platform level: every built-in
//! arbitration policy drives a real bus with saturating clients and must
//! uphold its documented invariants.

use cba_bus::{drive, Bus, BusConfig, Control, PolicyKind};
use cba_cpu::Contender;
use sim_core::CoreId;

fn c(i: usize) -> CoreId {
    CoreId::from_index(i)
}

/// Drives `clients` against `bus` for `cycles` through the shared engine.
fn run_clients(bus: &mut Bus, clients: &mut [Contender], cycles: u64) {
    drive(bus, cycles, |bus, now, done| {
        for k in clients.iter_mut() {
            k.tick(now, done, bus);
        }
        Control::Continue
    });
}

/// Runs 4 saturating contenders with equal request durations for `cycles`.
fn run_saturated(kind: PolicyKind, duration: u32, cycles: u64) -> Bus {
    let mut bus = Bus::new(BusConfig::new(4, 56).unwrap(), kind.build(4, 56));
    let mut clients: Vec<Contender> = (0..4).map(|i| Contender::new(c(i), duration)).collect();
    run_clients(&mut bus, &mut clients, cycles);
    bus
}

#[test]
fn work_conserving_policies_never_idle_under_saturation() {
    for kind in PolicyKind::ALL {
        if kind == PolicyKind::Tdma {
            continue;
        }
        let bus = run_saturated(kind, 28, 20_000);
        assert_eq!(
            bus.idle_cycles(),
            0,
            "{} must be work-conserving under saturation",
            kind.name()
        );
    }
}

#[test]
fn tdma_idles_exactly_the_slot_remainders() {
    // 28-cycle requests in 56-cycle slots: half of every slot is idle (the
    // paper's TDMA bandwidth-waste argument).
    let bus = run_saturated(PolicyKind::Tdma, 28, 56_000);
    let idle_frac = bus.idle_cycles() as f64 / 56_000.0;
    assert!(
        (idle_frac - 0.5).abs() < 0.01,
        "TDMA with half-slot requests idles half the time: {idle_frac}"
    );
}

#[test]
fn slot_fair_policies_equalize_grant_counts() {
    for kind in [
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::Tdma,
        PolicyKind::RandomPermutation,
    ] {
        let bus = run_saturated(kind, 28, 50_000);
        let slots: Vec<u64> = (0..4).map(|i| bus.trace().slots(c(i))).collect();
        let min = *slots.iter().min().unwrap();
        let max = *slots.iter().max().unwrap();
        assert!(
            max - min <= 2,
            "{}: slot counts must be balanced: {slots:?}",
            kind.name()
        );
    }
}

#[test]
fn lottery_is_approximately_slot_fair() {
    let bus = run_saturated(PolicyKind::Lottery, 28, 100_000);
    let report = bus.trace().share_report();
    assert!(
        report.slot_fairness() > 0.98,
        "uniform lottery approaches slot fairness: {}",
        report.slot_fairness()
    );
}

#[test]
fn fixed_priority_starves_everyone_below_the_top() {
    let bus = run_saturated(PolicyKind::FixedPriority, 28, 20_000);
    assert!(bus.trace().slots(c(0)) > 500);
    for i in 1..4 {
        assert_eq!(
            bus.trace().slots(c(i)),
            0,
            "fixed priority must starve core {i} (the paper's Section II argument)"
        );
    }
}

#[test]
fn slot_fairness_is_not_cycle_fairness_with_mixed_durations() {
    // Core 0 issues 5-cycle requests, cores 1..3 issue 56-cycle requests.
    for kind in [PolicyKind::RoundRobin, PolicyKind::RandomPermutation] {
        let mut bus = Bus::new(BusConfig::new(4, 56).unwrap(), kind.build(4, 56));
        let mut clients: Vec<Contender> = (0..4)
            .map(|i| Contender::new(c(i), if i == 0 { 5 } else { 56 }))
            .collect();
        run_clients(&mut bus, &mut clients, 50_000);
        let report = bus.trace().share_report();
        assert!(
            report.slot_fairness() > 0.99,
            "{}: slot-fair as designed",
            kind.name()
        );
        assert!(
            report.cycle_share(c(0)) < 0.05,
            "{}: the short-request core is starved of bandwidth ({:.3}) — \
             the problem CBA exists to fix",
            kind.name(),
            report.cycle_share(c(0))
        );
    }
}

#[test]
fn cba_filter_composes_with_every_policy() {
    // Section III.A: "Then, any arbitration policy can be applied."
    use cba::{CreditConfig, CreditFilter};
    for kind in PolicyKind::ALL {
        if kind == PolicyKind::FixedPriority {
            continue; // priority + CBA is still starvation-prone; skip
        }
        let mut bus = Bus::new(BusConfig::new(4, 56).unwrap(), kind.build(4, 56));
        bus.set_filter(Box::new(CreditFilter::new(
            CreditConfig::homogeneous(4, 56).unwrap(),
        )));
        let mut clients: Vec<Contender> = (0..4)
            .map(|i| Contender::new(c(i), if i == 0 { 5 } else { 56 }))
            .collect();
        let horizon = 100_000u64;
        run_clients(&mut bus, &mut clients, horizon);
        // Every core gets served, and no long-request core exceeds its
        // 1/N cycle entitlement.
        for i in 0..4 {
            assert!(
                bus.trace().slots(c(i)) > 0,
                "{}+CBA: core {i} starved",
                kind.name()
            );
        }
        for i in 1..4 {
            let share = bus.trace().busy_cycles(c(i)) as f64 / horizon as f64;
            assert!(
                share <= 0.25 + 0.02,
                "{}+CBA: core {i} exceeded entitlement ({share})",
                kind.name()
            );
        }
    }
}
