//! The MBPTA protocol end to end: WCET-estimation-mode campaigns through
//! the full platform, iid checks, pWCET fitting, and the dominance
//! property that makes the analysis sound.

use cba_mbpta::pwcet::{block_maxima, MbptaConfig, PWcetModel};
use cba_platform::experiments::pwcet_analysis;
use cba_platform::{BusSetup, Campaign, CoreLoad, RunSpec, Scenario};
use cba_workloads::suite;

fn quick_profile() -> cba_workloads::EembcProfile {
    let mut p = suite::rspeed();
    p.accesses = 500;
    p
}

#[test]
fn wcet_mode_samples_are_iid_and_fit_a_gumbel() {
    let analysis =
        pwcet_analysis(&quick_profile(), BusSetup::Cba, 150, 41).expect("analysis succeeds");
    // Independent seeds + randomized caches/arbitration => iid samples.
    assert!(
        analysis.iid.passes(0.01),
        "iid battery rejected: KS p={}, LB p={}, runs p={}",
        analysis.iid.ks.p_value,
        analysis.iid.ljung_box.p_value,
        analysis.iid.runs.p_value
    );
    assert!(analysis.model.gumbel().beta > 0.0);
}

#[test]
fn pwcet_bound_dominates_analysis_and_operation() {
    let analysis =
        pwcet_analysis(&quick_profile(), BusSetup::Cba, 120, 17).expect("analysis succeeds");
    let bound = analysis.model.quantile_per_run(1e-12);
    assert!(
        bound >= analysis.max_analysis,
        "bound must cover analysis max"
    );
    assert!(
        bound >= analysis.max_operation,
        "bound must cover deployment max ({} vs {})",
        bound,
        analysis.max_operation
    );
    // And the analysis-time contention is at least as bad as deployment.
    assert!(analysis.max_analysis >= analysis.max_operation * 0.95);
}

#[test]
fn pwcet_curve_grows_with_confidence() {
    let analysis =
        pwcet_analysis(&quick_profile(), BusSetup::Cba, 120, 23).expect("analysis succeeds");
    let curve = analysis.model.curve(&[1e-3, 1e-6, 1e-9, 1e-12]);
    for pair in curve.windows(2) {
        assert!(pair[1].1 > pair[0].1, "curve must be monotone: {curve:?}");
    }
}

#[test]
fn wcet_mode_contention_dominates_lighter_contention() {
    // The enforced maximum-contention scenario must produce longer
    // execution times than a half-loaded deployment, run for run on
    // average.
    let profile = quick_profile();
    let max_spec = RunSpec::paper(
        BusSetup::Cba,
        Scenario::MaxContention,
        CoreLoad::Profile(profile.clone()),
    );
    // Staggered, moderate co-runners (synchronized periodic contenders
    // would themselves be a near-worst-case volley pattern).
    let light_contenders: Vec<CoreLoad> = (0..3)
        .map(|i| CoreLoad::Periodic {
            duration: 28,
            period: 300,
            phase: 100 * i as u64,
        })
        .collect();
    let mut light_spec = RunSpec::paper(
        BusSetup::Cba,
        Scenario::Custom(light_contenders),
        CoreLoad::Profile(profile),
    );
    light_spec.wcet_mode = false;
    let max_mean = Campaign::new(max_spec, 30, 3).run().mean();
    let light_mean = Campaign::new(light_spec, 30, 3).run().mean();
    assert!(
        max_mean >= light_mean,
        "max contention ({max_mean}) must dominate light contention ({light_mean})"
    );
}

#[test]
fn block_maxima_pipeline_consistency() {
    // Fitting on raw samples vs explicitly reduced maxima agrees.
    let samples: Vec<f64> = (0..400)
        .map(|i| 1_000.0 + ((i * 7919) % 163) as f64)
        .collect();
    let config = MbptaConfig {
        block_size: 20,
        min_samples: 100,
        mle: false,
    };
    let model = PWcetModel::fit(&samples, config).expect("fit");
    let maxima = block_maxima(&samples, 20);
    assert_eq!(maxima.len(), 20);
    let direct = cba_mbpta::gumbel::Gumbel::fit_moments(&maxima).expect("fit");
    assert!((model.gumbel().mu - direct.mu).abs() < 1e-9);
    assert!((model.gumbel().beta - direct.beta).abs() < 1e-9);
}
