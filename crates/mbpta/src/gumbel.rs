//! The Gumbel (EVT type I, maxima) distribution and its fitting.
//!
//! MBPTA's central step: block maxima of iid execution times converge to a
//! generalized extreme value distribution; for light-tailed timing data
//! the Gumbel family (shape = 0) is the standard model, and its use is
//! what lets the pWCET curve extrapolate orders of magnitude beyond the
//! observed probabilities.

use crate::MbptaError;

/// Euler–Mascheroni constant (mean of the standard Gumbel).
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// A Gumbel distribution `G(x) = exp(-exp(-(x - mu)/beta))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    /// Location parameter.
    pub mu: f64,
    /// Scale parameter (> 0).
    pub beta: f64,
}

impl Gumbel {
    /// Creates a Gumbel distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidParameter`] unless `beta > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, beta: f64) -> Result<Self, MbptaError> {
        if !mu.is_finite() || !beta.is_finite() || beta <= 0.0 {
            return Err(MbptaError::InvalidParameter(format!(
                "Gumbel requires finite mu and beta > 0 (got mu={mu}, beta={beta})"
            )));
        }
        Ok(Gumbel { mu, beta })
    }

    /// CDF `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.mu) / self.beta).exp()).exp()
    }

    /// Quantile function (inverse CDF) for `p` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.mu - self.beta * (-p.ln()).ln()
    }

    /// Distribution mean `mu + gamma * beta`.
    pub fn mean(&self) -> f64 {
        self.mu + EULER_GAMMA * self.beta
    }

    /// Distribution variance `pi^2 beta^2 / 6`.
    pub fn variance(&self) -> f64 {
        std::f64::consts::PI.powi(2) * self.beta * self.beta / 6.0
    }

    /// Method-of-moments fit: `beta = s sqrt(6)/pi`,
    /// `mu = mean - gamma beta`.
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than 2 samples or zero variance.
    pub fn fit_moments(samples: &[f64]) -> Result<Self, MbptaError> {
        let (mean, sd) = mean_sd(samples)?;
        let beta = sd * 6.0_f64.sqrt() / std::f64::consts::PI;
        Gumbel::new(mean - EULER_GAMMA * beta, beta)
    }

    /// Maximum-likelihood fit via the standard fixed-point iteration on
    /// the profile likelihood
    /// `beta = mean(x) - sum(x e^{-x/beta}) / sum(e^{-x/beta})`,
    /// seeded from the method-of-moments estimate.
    ///
    /// # Errors
    ///
    /// Propagates the moment-fit errors and returns
    /// [`MbptaError::NoConvergence`] if the iteration stalls (does not
    /// happen for non-degenerate data).
    pub fn fit_mle(samples: &[f64]) -> Result<Self, MbptaError> {
        let seed = Self::fit_moments(samples)?;
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Work with shifted values for numerical stability of exp().
        let shift = mean;
        let mut beta = seed.beta;
        for _ in 0..200 {
            let mut num = 0.0;
            let mut den = 0.0;
            for &x in samples {
                let w = (-(x - shift) / beta).exp();
                num += x * w;
                den += w;
            }
            let next = mean - num / den;
            if !next.is_finite() || next <= 0.0 {
                return Err(MbptaError::NoConvergence(
                    "beta iteration left the domain".into(),
                ));
            }
            if (next - beta).abs() <= 1e-9 * beta.max(1.0) {
                beta = next;
                break;
            }
            beta = next;
        }
        // mu from the beta MLE (shift-corrected log-sum-exp).
        let n = samples.len() as f64;
        let log_mean_exp = {
            let m = samples
                .iter()
                .map(|&x| -(x - shift) / beta)
                .fold(f64::NEG_INFINITY, f64::max);
            let s: f64 = samples
                .iter()
                .map(|&x| (-(x - shift) / beta - m).exp())
                .sum();
            m + (s / n).ln()
        };
        let mu = shift - beta * log_mean_exp;
        Gumbel::new(mu, beta)
    }
}

pub(crate) fn mean_sd(samples: &[f64]) -> Result<(f64, f64), MbptaError> {
    if samples.len() < 2 {
        return Err(MbptaError::TooFewSamples {
            got: samples.len(),
            need: 2,
        });
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(MbptaError::DegenerateSamples("non-finite sample".into()));
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1.0);
    if var <= 0.0 {
        return Err(MbptaError::DegenerateSamples(
            "zero variance (all samples equal)".into(),
        ));
    }
    Ok((mean, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic standard-uniform stream (SplitMix-based) so the tests
    /// need no RNG dependency.
    fn uniforms(n: usize, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn gumbel_samples(n: usize, mu: f64, beta: f64, seed: u64) -> Vec<f64> {
        let g = Gumbel::new(mu, beta).unwrap();
        uniforms(n, seed)
            .into_iter()
            .map(|u| g.quantile(u.clamp(1e-12, 1.0 - 1e-12)))
            .collect()
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let g = Gumbel::new(100.0, 12.0).unwrap();
        for p in [0.01, 0.1, 0.5, 0.9, 0.999, 1.0 - 1e-9] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let g = Gumbel::new(0.0, 1.0).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let x = g.quantile(i as f64 / 100.0);
            assert!(x > prev);
            prev = x;
        }
    }

    #[test]
    fn moments_match_closed_forms() {
        let g = Gumbel::new(50.0, 8.0).unwrap();
        assert!((g.mean() - (50.0 + EULER_GAMMA * 8.0)).abs() < 1e-12);
        assert!((g.variance() - std::f64::consts::PI.powi(2) * 64.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn moment_fit_recovers_parameters() {
        let samples = gumbel_samples(20_000, 1000.0, 25.0, 42);
        let fit = Gumbel::fit_moments(&samples).unwrap();
        assert!((fit.mu - 1000.0).abs() < 5.0, "mu={}", fit.mu);
        assert!((fit.beta - 25.0).abs() < 2.0, "beta={}", fit.beta);
    }

    #[test]
    fn mle_fit_recovers_parameters_better() {
        let samples = gumbel_samples(20_000, 1000.0, 25.0, 43);
        let mle = Gumbel::fit_mle(&samples).unwrap();
        assert!((mle.mu - 1000.0).abs() < 2.0, "mu={}", mle.mu);
        assert!((mle.beta - 25.0).abs() < 1.0, "beta={}", mle.beta);
    }

    #[test]
    fn mle_handles_large_location_values() {
        // Execution times ~1e7 cycles: the shifted implementation must not
        // overflow exp().
        let samples = gumbel_samples(5_000, 1.0e7, 1.0e4, 44);
        let mle = Gumbel::fit_mle(&samples).unwrap();
        assert!((mle.mu / 1.0e7 - 1.0).abs() < 0.01);
        assert!((mle.beta / 1.0e4 - 1.0).abs() < 0.1);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(matches!(
            Gumbel::fit_moments(&[1.0]),
            Err(MbptaError::TooFewSamples { .. })
        ));
        assert!(matches!(
            Gumbel::fit_moments(&[5.0, 5.0, 5.0]),
            Err(MbptaError::DegenerateSamples(_))
        ));
        assert!(matches!(
            Gumbel::fit_moments(&[1.0, f64::NAN]),
            Err(MbptaError::DegenerateSamples(_))
        ));
        assert!(Gumbel::new(0.0, 0.0).is_err());
        assert!(Gumbel::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_domain_enforced() {
        let _ = Gumbel::new(0.0, 1.0).unwrap().quantile(1.0);
    }
}
