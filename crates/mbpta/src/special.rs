//! Special functions used by the statistical tests.
//!
//! Implemented locally (Lanczos ln-gamma, series/continued-fraction
//! regularized incomplete gamma, rational-approximation erfc) so the
//! analysis pipeline carries no external numerical dependencies and every
//! approximation is auditable against the unit tests' reference values.

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10
/// for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0");
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the Lentz continued
/// fraction otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).min(1.0)
    } else {
        // Continued fraction for Q(a,x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// CDF of the chi-squared distribution with `k` degrees of freedom.
///
/// # Panics
///
/// Panics if `k == 0` or `x < 0`.
pub fn chi2_cdf(x: f64, k: u32) -> f64 {
    assert!(k > 0, "chi2_cdf requires k > 0");
    gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Complementary error function (rational approximation, |rel err| <
/// 1.2e-7 — Numerical Recipes `erfcc`).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a standard normal statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// Asymptotic Kolmogorov distribution tail `Q_KS(lambda) =
/// 2 Σ (-1)^{k-1} e^{-2 k² λ²}` (the KS-test p-value helper).
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        assert!(close(ln_gamma(1.0), 0.0, 1e-10));
        assert!(close(ln_gamma(2.0), 0.0, 1e-10));
        assert!(close(ln_gamma(5.0), 24.0_f64.ln(), 1e-9));
        assert!(close(ln_gamma(11.0), 3_628_800.0_f64.ln(), 1e-8));
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9));
    }

    #[test]
    fn chi2_cdf_two_dof_is_exponential() {
        // k=2: F(x) = 1 - e^{-x/2}
        for x in [0.1, 1.0, 2.0, 5.0, 10.0] {
            let expect = 1.0 - (-x / 2.0_f64).exp();
            assert!(
                close(chi2_cdf(x, 2), expect, 1e-9),
                "x={x}: {} vs {expect}",
                chi2_cdf(x, 2)
            );
        }
    }

    #[test]
    fn chi2_cdf_known_quantiles() {
        // 95th percentile of chi2(1) is 3.841; chi2(10) is 18.307.
        assert!(close(chi2_cdf(3.841, 1), 0.95, 1e-3));
        assert!(close(chi2_cdf(18.307, 10), 0.95, 1e-3));
    }

    #[test]
    fn erfc_reference_values() {
        assert!(close(erfc(0.0), 1.0, 1e-7));
        assert!(close(erfc(1.0), 0.157_299_2, 1e-6));
        assert!(close(erfc(-1.0), 2.0 - 0.157_299_2, 1e-6));
        assert!(close(erfc(2.0), 0.004_677_73, 1e-7));
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-7));
        assert!(close(normal_cdf(1.96), 0.975, 1e-4));
        assert!(close(normal_cdf(-1.96), 0.025, 1e-4));
    }

    #[test]
    fn kolmogorov_q_behaviour() {
        assert!(close(kolmogorov_q(0.0), 1.0, 1e-12));
        // Known value: Q(1.0) ≈ 0.27.
        assert!(close(kolmogorov_q(1.0), 0.27, 0.005));
        assert!(kolmogorov_q(2.0) < 0.001);
        assert!(kolmogorov_q(0.5) > 0.9);
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..50 {
            let x = i as f64 * 0.3;
            let p = gamma_p(3.0, x);
            assert!(p >= prev, "gamma_p must be monotone");
            prev = p;
        }
        assert!(prev <= 1.0);
    }
}
