#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gumbel;
pub mod iid;
pub mod pwcet;
pub mod special;
pub mod tail;

use std::fmt;

/// Errors reported by the analysis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MbptaError {
    /// Not enough samples for the requested analysis.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// Samples were degenerate (zero variance, NaN, or infinite).
    DegenerateSamples(String),
    /// A fit failed to converge.
    NoConvergence(String),
    /// A parameter was outside its documented domain.
    InvalidParameter(String),
}

impl fmt::Display for MbptaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbptaError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need at least {need}")
            }
            MbptaError::DegenerateSamples(why) => write!(f, "degenerate samples: {why}"),
            MbptaError::NoConvergence(what) => write!(f, "fit did not converge: {what}"),
            MbptaError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for MbptaError {}
