//! Measurement-Based Probabilistic Timing Analysis (MBPTA).
//!
//! The paper derives WCET estimates with MBPTA (Cucu-Grosjean et al.,
//! ECRTS 2012): execution times are collected over randomized runs under
//! enforced worst-case contention, checked for independence and identical
//! distribution, and extrapolated with extreme value theory (EVT) to a
//! **pWCET curve** — an execution-time bound per exceedance probability
//! (e.g. the time exceeded with probability at most 1e-12 per run).
//!
//! This crate implements the pipeline, self-contained (no external
//! statistics dependencies):
//!
//! * [`iid`] — the applicability tests: two-sample Kolmogorov–Smirnov
//!   (identical distribution), Ljung–Box (no autocorrelation) and the
//!   Wald–Wolfowitz runs test (randomness);
//! * [`gumbel`] — the Gumbel (EVT type I) distribution with
//!   method-of-moments and maximum-likelihood fitting on block maxima;
//! * [`tail`] — exponential tail fitting over a threshold
//!   (peaks-over-threshold variant, used as a cross-check);
//! * [`pwcet`] — the end-to-end [`PWcetModel`](pwcet::PWcetModel):
//!   samples → block maxima → Gumbel fit → per-run exceedance quantiles;
//! * [`special`] — the underlying special functions (erfc, regularized
//!   incomplete gamma, ln-gamma).
//!
//! # Example
//!
//! ```
//! use cba_mbpta::pwcet::{MbptaConfig, PWcetModel};
//!
//! // 1,000 synthetic execution-time measurements.
//! let samples: Vec<f64> = (0..1000)
//!     .map(|i| 10_000.0 + 150.0 * (((i * 2654435761_u64) % 1000) as f64 / 1000.0))
//!     .collect();
//! let model = PWcetModel::fit(&samples, MbptaConfig::default())?;
//! let p_12 = model.quantile_per_run(1e-12);
//! // The pWCET bound grows as the target probability shrinks and always
//! // dominates the observed maximum.
//! assert!(p_12 >= model.max_observed());
//! assert!(model.quantile_per_run(1e-15) >= p_12);
//! # Ok::<(), cba_mbpta::MbptaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gumbel;
pub mod iid;
pub mod pwcet;
pub mod special;
pub mod tail;

use std::fmt;

/// Errors reported by the analysis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MbptaError {
    /// Not enough samples for the requested analysis.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// Samples were degenerate (zero variance, NaN, or infinite).
    DegenerateSamples(String),
    /// A fit failed to converge.
    NoConvergence(String),
    /// A parameter was outside its documented domain.
    InvalidParameter(String),
}

impl fmt::Display for MbptaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbptaError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need at least {need}")
            }
            MbptaError::DegenerateSamples(why) => write!(f, "degenerate samples: {why}"),
            MbptaError::NoConvergence(what) => write!(f, "fit did not converge: {what}"),
            MbptaError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for MbptaError {}
