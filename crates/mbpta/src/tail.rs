//! Exponential tail fitting (peaks-over-threshold).
//!
//! A light-weight cross-check for the Gumbel block-maxima model: if
//! execution times have an exponential upper tail (the Gumbel domain of
//! attraction), the excesses over a high threshold are approximately
//! exponential. Fitting the excess rate gives an independent tail
//! extrapolation to compare against the Gumbel quantiles — a large
//! disagreement flags an untrustworthy fit (the spirit of the later
//! MBPTA-CV method).

use crate::MbptaError;

/// An exponential fit of threshold excesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialTail {
    /// The threshold `u` (a high empirical quantile of the sample).
    pub threshold: f64,
    /// Mean excess over the threshold (the exponential scale).
    pub scale: f64,
    /// Fraction of samples above the threshold.
    pub exceed_fraction: f64,
    /// Number of excesses the fit is based on.
    pub n_excesses: usize,
}

impl ExponentialTail {
    /// Fits the tail above the empirical `q`-quantile (e.g. `q = 0.9`).
    ///
    /// # Errors
    ///
    /// * [`MbptaError::InvalidParameter`] if `q` not in `(0, 1)`;
    /// * [`MbptaError::TooFewSamples`] if fewer than 10 excesses remain;
    /// * [`MbptaError::DegenerateSamples`] if all excesses are zero.
    pub fn fit(samples: &[f64], q: f64) -> Result<Self, MbptaError> {
        if !(0.0 < q && q < 1.0) {
            return Err(MbptaError::InvalidParameter(format!(
                "threshold quantile must be in (0,1), got {q}"
            )));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let idx = ((sorted.len() as f64) * q) as usize;
        let idx = idx.min(sorted.len().saturating_sub(1));
        let threshold = sorted[idx];
        let excesses: Vec<f64> = sorted
            .iter()
            .filter(|&&x| x > threshold)
            .map(|&x| x - threshold)
            .collect();
        if excesses.len() < 10 {
            return Err(MbptaError::TooFewSamples {
                got: excesses.len(),
                need: 10,
            });
        }
        let scale = excesses.iter().sum::<f64>() / excesses.len() as f64;
        if scale <= 0.0 {
            return Err(MbptaError::DegenerateSamples(
                "all excesses are zero".into(),
            ));
        }
        Ok(ExponentialTail {
            threshold,
            scale,
            exceed_fraction: excesses.len() as f64 / samples.len() as f64,
            n_excesses: excesses.len(),
        })
    }

    /// The execution time exceeded with probability `p` per run
    /// (`p` must be below the threshold's exceedance fraction for the
    /// extrapolation to make sense).
    ///
    /// `P(X > x) = exceed_fraction * exp(-(x - u)/scale)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile_per_run(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
        self.threshold + self.scale * (self.exceed_fraction / p).ln().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exponential_samples(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                let u = ((x >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-12, 1.0 - 1e-12);
                -(1.0 - u).ln() / rate
            })
            .collect()
    }

    #[test]
    fn recovers_exponential_scale() {
        let samples = exponential_samples(20_000, 0.5, 11);
        let fit = ExponentialTail::fit(&samples, 0.9).unwrap();
        // Memoryless: excesses of Exp(0.5) are Exp(0.5), scale = 2.
        assert!((fit.scale - 2.0).abs() < 0.15, "scale={}", fit.scale);
        assert!((fit.exceed_fraction - 0.1).abs() < 0.01);
    }

    #[test]
    fn quantile_extrapolates_consistently() {
        let samples = exponential_samples(20_000, 1.0, 12);
        let fit = ExponentialTail::fit(&samples, 0.9).unwrap();
        // For Exp(1): P(X > x) = e^-x, so x(p) = -ln p.
        for p in [1e-6, 1e-9, 1e-12] {
            let x = fit.quantile_per_run(p);
            let expect = -p.ln();
            assert!((x - expect).abs() / expect < 0.1, "p={p}: {x} vs {expect}");
        }
    }

    #[test]
    fn quantile_monotone_in_p() {
        let samples = exponential_samples(5_000, 1.0, 13);
        let fit = ExponentialTail::fit(&samples, 0.85).unwrap();
        assert!(fit.quantile_per_run(1e-12) > fit.quantile_per_run(1e-6));
        assert!(fit.quantile_per_run(1e-6) > fit.quantile_per_run(1e-3));
    }

    #[test]
    fn rejects_bad_parameters() {
        let samples = exponential_samples(100, 1.0, 14);
        assert!(ExponentialTail::fit(&samples, 0.0).is_err());
        assert!(ExponentialTail::fit(&samples, 1.0).is_err());
        assert!(ExponentialTail::fit(&samples, 0.99).is_err()); // <10 excesses
        let constant = vec![5.0; 100];
        assert!(ExponentialTail::fit(&constant, 0.5).is_err());
    }
}
