//! The end-to-end pWCET pipeline: samples → block maxima → Gumbel fit →
//! per-run exceedance quantiles.

use crate::gumbel::Gumbel;
use crate::iid::IidReport;
use crate::MbptaError;

/// Configuration of the pWCET fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MbptaConfig {
    /// Block size for the block-maxima reduction (the MBPTA literature
    /// commonly uses 10–50 with ≥ 100 blocks).
    pub block_size: usize,
    /// Minimum number of raw samples required.
    pub min_samples: usize,
    /// Use maximum-likelihood fitting (`true`, default) or method of
    /// moments.
    pub mle: bool,
}

impl Default for MbptaConfig {
    fn default() -> Self {
        MbptaConfig {
            block_size: 10,
            min_samples: 100,
            mle: true,
        }
    }
}

/// Largest cycle count an `f64` represents exactly (2^53).
///
/// Campaign latency samples are `u64` cycle counts end-to-end; the
/// conversion to the fit's `f64` domain happens at the [`PWcetModel`]
/// boundary, and anything above this bound would round silently.
pub const MAX_EXACT_CYCLES: u64 = 1 << 53;

/// Converts `u64` cycle samples to `f64` exactly, for fitting.
///
/// # Errors
///
/// [`MbptaError::InvalidParameter`] if any sample exceeds
/// [`MAX_EXACT_CYCLES`]: above 2^53 the conversion rounds, which would
/// break the bit-exact reproducibility campaigns rely on. (2^53 cycles
/// is ~104 days at 1 GHz, so rejecting is safe for any plausible run.)
pub fn cycles_to_f64(samples: &[u64]) -> Result<Vec<f64>, MbptaError> {
    if let Some(&big) = samples.iter().find(|&&s| s > MAX_EXACT_CYCLES) {
        return Err(MbptaError::InvalidParameter(format!(
            "sample {big} exceeds 2^53 and does not convert to f64 exactly"
        )));
    }
    Ok(samples.iter().map(|&s| s as f64).collect())
}

/// A fitted pWCET model.
///
/// The Gumbel distribution is fitted to block maxima of `block_size` runs;
/// per-run exceedance probabilities are converted through
/// `P(run > x) = 1 - G(x)^(1/b)`.
///
/// See the [crate example](crate) for usage.
#[derive(Debug, Clone, PartialEq)]
pub struct PWcetModel {
    gumbel: Gumbel,
    block_size: usize,
    n_samples: usize,
    n_blocks: usize,
    max_observed: f64,
}

impl PWcetModel {
    /// Fits the model.
    ///
    /// # Errors
    ///
    /// * [`MbptaError::TooFewSamples`] if fewer than
    ///   `config.min_samples` samples or fewer than 10 blocks;
    /// * [`MbptaError::InvalidParameter`] if `block_size == 0`;
    /// * fit errors from [`Gumbel`] for degenerate data.
    pub fn fit(samples: &[f64], config: MbptaConfig) -> Result<Self, MbptaError> {
        if config.block_size == 0 {
            return Err(MbptaError::InvalidParameter(
                "block_size must be positive".into(),
            ));
        }
        if samples.len() < config.min_samples {
            return Err(MbptaError::TooFewSamples {
                got: samples.len(),
                need: config.min_samples,
            });
        }
        let maxima = block_maxima(samples, config.block_size);
        if maxima.len() < 10 {
            return Err(MbptaError::TooFewSamples {
                got: maxima.len(),
                need: 10,
            });
        }
        let gumbel = if config.mle {
            Gumbel::fit_mle(&maxima)?
        } else {
            Gumbel::fit_moments(&maxima)?
        };
        let max_observed = samples.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        Ok(PWcetModel {
            gumbel,
            block_size: config.block_size,
            n_samples: samples.len(),
            n_blocks: maxima.len(),
            max_observed,
        })
    }

    /// The fitted Gumbel (block-maxima scale).
    pub fn gumbel(&self) -> &Gumbel {
        &self.gumbel
    }

    /// Largest observed sample.
    pub fn max_observed(&self) -> f64 {
        self.max_observed
    }

    /// Number of raw samples used.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of block maxima behind the fit.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// The execution-time bound exceeded with probability at most `p` per
    /// **run**.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile_per_run(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
        // P(run <= x) = (1 - p)  =>  G(x) = (1 - p)^b.
        // For tiny p, (1-p)^b == 1 in f64; use ln1p for the exponent:
        // ln G = b * ln(1-p); quantile needs -ln(-ln G) where
        // -ln G = -b*ln(1-p) ≈ b*p.
        let b = self.block_size as f64;
        let neg_ln_g = -b * (-p).ln_1p(); // = -b ln(1-p) > 0
        self.gumbel.mu - self.gumbel.beta * neg_ln_g.ln()
    }

    /// The per-run exceedance probability of threshold `x` under the
    /// model.
    ///
    /// Computed from the Gumbel parameters directly: going through the
    /// CDF collapses to 0 once `G(x)` rounds to 1.0 (a few dozen `beta`
    /// past `mu`), flattening exactly the deep tail a pWCET curve
    /// exists to resolve.
    pub fn exceedance(&self, x: f64) -> f64 {
        // -ln G(x) = exp(-(x - mu) / beta), exact far past where
        // cdf(x) saturates; stays resolvable down to ~1e-300.
        let neg_ln_g = (-(x - self.gumbel.mu) / self.gumbel.beta).exp();
        // P(run > x) = 1 - exp(-(-ln G) / b), expm1-stable for tiny
        // arguments.
        -(-neg_ln_g / self.block_size as f64).exp_m1()
    }

    /// Samples the pWCET curve at the given per-run exceedance
    /// probabilities, returning `(p, bound)` pairs.
    pub fn curve(&self, ps: &[f64]) -> Vec<(f64, f64)> {
        ps.iter().map(|&p| (p, self.quantile_per_run(p))).collect()
    }

    /// Convenience: fit and report iid-test results together (the full
    /// MBPTA protocol).
    ///
    /// # Errors
    ///
    /// Propagates fit and test errors.
    pub fn analyze(samples: &[f64], config: MbptaConfig) -> Result<(Self, IidReport), MbptaError> {
        let report = IidReport::analyze(samples)?;
        let model = Self::fit(samples, config)?;
        Ok((model, report))
    }

    /// [`PWcetModel::fit`] over native `u64` cycle counts.
    ///
    /// # Errors
    ///
    /// As [`PWcetModel::fit`], plus [`MbptaError::InvalidParameter`] for
    /// samples above [`MAX_EXACT_CYCLES`] (see [`cycles_to_f64`]).
    pub fn fit_u64(samples: &[u64], config: MbptaConfig) -> Result<Self, MbptaError> {
        Self::fit(&cycles_to_f64(samples)?, config)
    }

    /// [`PWcetModel::analyze`] over native `u64` cycle counts.
    ///
    /// The iid battery is order-sensitive, so `samples` must be in
    /// observation (run-index) order, not sorted.
    ///
    /// # Errors
    ///
    /// As [`PWcetModel::analyze`], plus [`MbptaError::InvalidParameter`]
    /// for samples above [`MAX_EXACT_CYCLES`] (see [`cycles_to_f64`]).
    pub fn analyze_u64(
        samples: &[u64],
        config: MbptaConfig,
    ) -> Result<(Self, IidReport), MbptaError> {
        Self::analyze(&cycles_to_f64(samples)?, config)
    }
}

/// Reduces samples to per-block maxima (trailing partial block dropped).
pub fn block_maxima(samples: &[f64], block_size: usize) -> Vec<f64> {
    assert!(block_size > 0, "block_size must be positive");
    samples
        .chunks_exact(block_size)
        .map(|chunk| chunk.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniforms(n: usize, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    /// Gumbel-ish execution times around 50,000 cycles.
    fn exec_times(n: usize, seed: u64) -> Vec<f64> {
        let g = Gumbel::new(50_000.0, 500.0).unwrap();
        uniforms(n, seed)
            .into_iter()
            .map(|u| g.quantile(u.clamp(1e-12, 1.0 - 1e-12)))
            .collect()
    }

    #[test]
    fn block_maxima_reduction() {
        let samples = vec![1.0, 5.0, 2.0, 9.0, 3.0, 4.0, 7.0];
        assert_eq!(block_maxima(&samples, 2), vec![5.0, 9.0, 4.0]);
        assert_eq!(block_maxima(&samples, 7), vec![9.0]);
    }

    #[test]
    fn pwcet_dominates_observations() {
        let samples = exec_times(1_000, 21);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        // At p = 1e-3 (once per 1,000 runs) the bound should be around the
        // observed max; at 1e-12 it must clearly dominate.
        assert!(model.quantile_per_run(1e-12) > model.max_observed());
        assert!(model.quantile_per_run(1e-9) > samples.iter().sum::<f64>() / 1_000.0);
    }

    #[test]
    fn pwcet_curve_is_monotone() {
        let samples = exec_times(1_000, 22);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        let ps = [1e-3, 1e-6, 1e-9, 1e-12, 1e-15];
        let curve = model.curve(&ps);
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1, "bound must grow as p shrinks: {curve:?}");
        }
    }

    #[test]
    fn exceedance_inverts_quantile() {
        let samples = exec_times(2_000, 23);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        for p in [1e-3, 1e-6, 1e-9] {
            let x = model.quantile_per_run(p);
            let back = model.exceedance(x);
            assert!(
                (back / p - 1.0).abs() < 0.01,
                "p={p}: exceedance({x}) = {back}"
            );
        }
    }

    #[test]
    fn ground_truth_exceedance_calibration() {
        // With samples drawn from a known Gumbel, the model's 1e-3 bound
        // should be close to the true 99.9% per-run quantile.
        let truth = Gumbel::new(50_000.0, 500.0).unwrap();
        let samples = exec_times(10_000, 24);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        let estimated = model.quantile_per_run(1e-3);
        let true_q = truth.quantile(1.0 - 1e-3);
        assert!(
            ((estimated - true_q) / true_q).abs() < 0.01,
            "estimated {estimated} vs true {true_q}"
        );
    }

    #[test]
    fn analyze_bundles_iid_report() {
        let samples = exec_times(1_000, 28);
        let (model, report) = PWcetModel::analyze(&samples, MbptaConfig::default()).unwrap();
        assert!(report.passes(0.05), "iid data must pass");
        assert!(model.n_samples() == 1_000);
    }

    #[test]
    fn fit_validation() {
        let samples = exec_times(1_000, 26);
        let mut config = MbptaConfig {
            block_size: 0,
            ..Default::default()
        };
        assert!(PWcetModel::fit(&samples, config).is_err());
        config = MbptaConfig::default();
        assert!(matches!(
            PWcetModel::fit(&samples[..50], config),
            Err(MbptaError::TooFewSamples { .. })
        ));
        // 100 samples but block size 50 -> only 2 blocks.
        config.block_size = 50;
        config.min_samples = 100;
        assert!(matches!(
            PWcetModel::fit(&samples[..100], config),
            Err(MbptaError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn deep_tail_exceedance_does_not_underflow() {
        let samples = exec_times(2_000, 29);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        // Far past where cdf(x) rounds to 1.0, exceedance must still
        // invert the quantile instead of collapsing to 0.
        for p in [1e-12, 1e-16, 1e-30, 1e-100] {
            let x = model.quantile_per_run(p);
            let back = model.exceedance(x);
            assert!(
                back > 0.0 && (back / p - 1.0).abs() < 0.01,
                "p={p}: exceedance({x}) = {back}"
            );
        }
        // And the curve itself stays strictly monotone in the deep tail.
        assert!(
            model.exceedance(model.quantile_per_run(1e-100))
                < model.exceedance(model.quantile_per_run(1e-30))
        );
    }

    #[test]
    fn u64_ingestion_matches_f64_and_guards_2_53() {
        let samples_u: Vec<u64> = exec_times(1_000, 30).iter().map(|&s| s as u64).collect();
        let samples_f: Vec<f64> = samples_u.iter().map(|&s| s as f64).collect();
        let (model_u, iid_u) = PWcetModel::analyze_u64(&samples_u, MbptaConfig::default()).unwrap();
        let (model_f, iid_f) = PWcetModel::analyze(&samples_f, MbptaConfig::default()).unwrap();
        assert_eq!(model_u, model_f);
        assert_eq!(iid_u.ks.p_value.to_bits(), iid_f.ks.p_value.to_bits());

        let mut huge = samples_u.clone();
        huge[7] = MAX_EXACT_CYCLES + 1;
        assert!(matches!(
            PWcetModel::fit_u64(&huge, MbptaConfig::default()),
            Err(MbptaError::InvalidParameter(_))
        ));
        // Exactly 2^53 is still exact and accepted.
        assert!(cycles_to_f64(&[MAX_EXACT_CYCLES]).is_ok());
    }

    #[test]
    fn tiny_p_does_not_collapse_numerically() {
        let samples = exec_times(1_000, 27);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        let q16 = model.quantile_per_run(1e-16);
        let q15 = model.quantile_per_run(1e-15);
        assert!(
            q16.is_finite() && q16 > q15,
            "ln1p path must keep resolution"
        );
    }
}
