//! The end-to-end pWCET pipeline: samples → block maxima → Gumbel fit →
//! per-run exceedance quantiles.

use crate::gumbel::Gumbel;
use crate::iid::IidReport;
use crate::MbptaError;

/// Configuration of the pWCET fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MbptaConfig {
    /// Block size for the block-maxima reduction (the MBPTA literature
    /// commonly uses 10–50 with ≥ 100 blocks).
    pub block_size: usize,
    /// Minimum number of raw samples required.
    pub min_samples: usize,
    /// Use maximum-likelihood fitting (`true`, default) or method of
    /// moments.
    pub mle: bool,
}

impl Default for MbptaConfig {
    fn default() -> Self {
        MbptaConfig {
            block_size: 10,
            min_samples: 100,
            mle: true,
        }
    }
}

/// A fitted pWCET model.
///
/// The Gumbel distribution is fitted to block maxima of `block_size` runs;
/// per-run exceedance probabilities are converted through
/// `P(run > x) = 1 - G(x)^(1/b)`.
///
/// See the [crate example](crate) for usage.
#[derive(Debug, Clone, PartialEq)]
pub struct PWcetModel {
    gumbel: Gumbel,
    block_size: usize,
    n_samples: usize,
    n_blocks: usize,
    max_observed: f64,
}

impl PWcetModel {
    /// Fits the model.
    ///
    /// # Errors
    ///
    /// * [`MbptaError::TooFewSamples`] if fewer than
    ///   `config.min_samples` samples or fewer than 10 blocks;
    /// * [`MbptaError::InvalidParameter`] if `block_size == 0`;
    /// * fit errors from [`Gumbel`] for degenerate data.
    pub fn fit(samples: &[f64], config: MbptaConfig) -> Result<Self, MbptaError> {
        if config.block_size == 0 {
            return Err(MbptaError::InvalidParameter(
                "block_size must be positive".into(),
            ));
        }
        if samples.len() < config.min_samples {
            return Err(MbptaError::TooFewSamples {
                got: samples.len(),
                need: config.min_samples,
            });
        }
        let maxima = block_maxima(samples, config.block_size);
        if maxima.len() < 10 {
            return Err(MbptaError::TooFewSamples {
                got: maxima.len(),
                need: 10,
            });
        }
        let gumbel = if config.mle {
            Gumbel::fit_mle(&maxima)?
        } else {
            Gumbel::fit_moments(&maxima)?
        };
        let max_observed = samples.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        Ok(PWcetModel {
            gumbel,
            block_size: config.block_size,
            n_samples: samples.len(),
            n_blocks: maxima.len(),
            max_observed,
        })
    }

    /// The fitted Gumbel (block-maxima scale).
    pub fn gumbel(&self) -> &Gumbel {
        &self.gumbel
    }

    /// Largest observed sample.
    pub fn max_observed(&self) -> f64 {
        self.max_observed
    }

    /// Number of raw samples used.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// The execution-time bound exceeded with probability at most `p` per
    /// **run**.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile_per_run(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
        // P(run <= x) = (1 - p)  =>  G(x) = (1 - p)^b.
        // For tiny p, (1-p)^b == 1 in f64; use ln1p for the exponent:
        // ln G = b * ln(1-p); quantile needs -ln(-ln G) where
        // -ln G = -b*ln(1-p) ≈ b*p.
        let b = self.block_size as f64;
        let neg_ln_g = -b * (-p).ln_1p(); // = -b ln(1-p) > 0
        self.gumbel.mu - self.gumbel.beta * neg_ln_g.ln()
    }

    /// The per-run exceedance probability of threshold `x` under the
    /// model.
    pub fn exceedance(&self, x: f64) -> f64 {
        let g = self.gumbel.cdf(x).clamp(1e-300, 1.0);
        1.0 - g.powf(1.0 / self.block_size as f64)
    }

    /// Samples the pWCET curve at the given per-run exceedance
    /// probabilities, returning `(p, bound)` pairs.
    pub fn curve(&self, ps: &[f64]) -> Vec<(f64, f64)> {
        ps.iter().map(|&p| (p, self.quantile_per_run(p))).collect()
    }

    /// Convenience: fit and report iid-test results together (the full
    /// MBPTA protocol).
    ///
    /// # Errors
    ///
    /// Propagates fit and test errors.
    pub fn analyze(samples: &[f64], config: MbptaConfig) -> Result<(Self, IidReport), MbptaError> {
        let report = IidReport::analyze(samples)?;
        let model = Self::fit(samples, config)?;
        Ok((model, report))
    }
}

/// Reduces samples to per-block maxima (trailing partial block dropped).
pub fn block_maxima(samples: &[f64], block_size: usize) -> Vec<f64> {
    assert!(block_size > 0, "block_size must be positive");
    samples
        .chunks_exact(block_size)
        .map(|chunk| chunk.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniforms(n: usize, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    /// Gumbel-ish execution times around 50,000 cycles.
    fn exec_times(n: usize, seed: u64) -> Vec<f64> {
        let g = Gumbel::new(50_000.0, 500.0).unwrap();
        uniforms(n, seed)
            .into_iter()
            .map(|u| g.quantile(u.clamp(1e-12, 1.0 - 1e-12)))
            .collect()
    }

    #[test]
    fn block_maxima_reduction() {
        let samples = vec![1.0, 5.0, 2.0, 9.0, 3.0, 4.0, 7.0];
        assert_eq!(block_maxima(&samples, 2), vec![5.0, 9.0, 4.0]);
        assert_eq!(block_maxima(&samples, 7), vec![9.0]);
    }

    #[test]
    fn pwcet_dominates_observations() {
        let samples = exec_times(1_000, 21);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        // At p = 1e-3 (once per 1,000 runs) the bound should be around the
        // observed max; at 1e-12 it must clearly dominate.
        assert!(model.quantile_per_run(1e-12) > model.max_observed());
        assert!(model.quantile_per_run(1e-9) > samples.iter().sum::<f64>() / 1_000.0);
    }

    #[test]
    fn pwcet_curve_is_monotone() {
        let samples = exec_times(1_000, 22);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        let ps = [1e-3, 1e-6, 1e-9, 1e-12, 1e-15];
        let curve = model.curve(&ps);
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1, "bound must grow as p shrinks: {curve:?}");
        }
    }

    #[test]
    fn exceedance_inverts_quantile() {
        let samples = exec_times(2_000, 23);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        for p in [1e-3, 1e-6, 1e-9] {
            let x = model.quantile_per_run(p);
            let back = model.exceedance(x);
            assert!(
                (back / p - 1.0).abs() < 0.01,
                "p={p}: exceedance({x}) = {back}"
            );
        }
    }

    #[test]
    fn ground_truth_exceedance_calibration() {
        // With samples drawn from a known Gumbel, the model's 1e-3 bound
        // should be close to the true 99.9% per-run quantile.
        let truth = Gumbel::new(50_000.0, 500.0).unwrap();
        let samples = exec_times(10_000, 24);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        let estimated = model.quantile_per_run(1e-3);
        let true_q = truth.quantile(1.0 - 1e-3);
        assert!(
            ((estimated - true_q) / true_q).abs() < 0.01,
            "estimated {estimated} vs true {true_q}"
        );
    }

    #[test]
    fn analyze_bundles_iid_report() {
        let samples = exec_times(1_000, 28);
        let (model, report) = PWcetModel::analyze(&samples, MbptaConfig::default()).unwrap();
        assert!(report.passes(0.05), "iid data must pass");
        assert!(model.n_samples() == 1_000);
    }

    #[test]
    fn fit_validation() {
        let samples = exec_times(1_000, 26);
        let mut config = MbptaConfig {
            block_size: 0,
            ..Default::default()
        };
        assert!(PWcetModel::fit(&samples, config).is_err());
        config = MbptaConfig::default();
        assert!(matches!(
            PWcetModel::fit(&samples[..50], config),
            Err(MbptaError::TooFewSamples { .. })
        ));
        // 100 samples but block size 50 -> only 2 blocks.
        config.block_size = 50;
        config.min_samples = 100;
        assert!(matches!(
            PWcetModel::fit(&samples[..100], config),
            Err(MbptaError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn tiny_p_does_not_collapse_numerically() {
        let samples = exec_times(1_000, 27);
        let model = PWcetModel::fit(&samples, MbptaConfig::default()).unwrap();
        let q16 = model.quantile_per_run(1e-16);
        let q15 = model.quantile_per_run(1e-15);
        assert!(
            q16.is_finite() && q16 > q15,
            "ln1p path must keep resolution"
        );
    }
}
