//! Independence and identical-distribution tests.
//!
//! MBPTA is only applicable if the measured execution times behave like
//! independent, identically distributed samples — on the modeled platform
//! this is what the *randomized* caches and arbitration buy. The standard
//! battery (as in the MBPTA literature) is run before any EVT fit:
//!
//! * **two-sample Kolmogorov–Smirnov** on the first vs second half of the
//!   sample (identical distribution across the campaign),
//! * **Ljung–Box** on the autocorrelations (independence),
//! * **Wald–Wolfowitz runs test** around the median (randomness).

use crate::special::{chi2_cdf, kolmogorov_q, normal_two_sided_p};
use crate::MbptaError;

/// Result of one hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// The p-value (probability of the statistic under H0).
    pub p_value: f64,
}

impl TestResult {
    /// Whether the null hypothesis survives at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// # Errors
///
/// Returns [`MbptaError::TooFewSamples`] if either sample has fewer than 8
/// observations.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<TestResult, MbptaError> {
    const MIN: usize = 8;
    if a.len() < MIN || b.len() < MIN {
        return Err(MbptaError::TooFewSamples {
            got: a.len().min(b.len()),
            need: MIN,
        });
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in samples"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in samples"));
    let (na, nb) = (sa.len(), sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let xa = sa[ia];
        let xb = sb[ib];
        if xa <= xb {
            ia += 1;
        }
        if xb <= xa {
            ib += 1;
        }
        let diff = (ia as f64 / na as f64 - ib as f64 / nb as f64).abs();
        d = d.max(diff);
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(TestResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    })
}

/// Splits the sample in half and KS-tests the halves against each other
/// (the "identically distributed over time" check).
///
/// # Errors
///
/// See [`ks_two_sample`].
pub fn ks_split_half(samples: &[f64]) -> Result<TestResult, MbptaError> {
    let mid = samples.len() / 2;
    ks_two_sample(&samples[..mid], &samples[mid..])
}

/// Sample autocorrelation at lags `1..=max_lag`.
pub fn autocorrelations(samples: &[f64], max_lag: usize) -> Vec<f64> {
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let denom: f64 = samples.iter().map(|&x| (x - mean) * (x - mean)).sum();
    (1..=max_lag)
        .map(|k| {
            if denom == 0.0 || k >= n {
                0.0
            } else {
                let num: f64 = (0..n - k)
                    .map(|i| (samples[i] - mean) * (samples[i + k] - mean))
                    .sum();
                num / denom
            }
        })
        .collect()
}

/// Ljung–Box test for autocorrelation up to `lags`.
///
/// `Q = n(n+2) Σ ρ_k² / (n-k)` is chi-squared with `lags` degrees of
/// freedom under independence.
///
/// # Errors
///
/// Returns [`MbptaError::TooFewSamples`] if `samples.len() <= lags + 1` or
/// [`MbptaError::InvalidParameter`] if `lags == 0`.
pub fn ljung_box(samples: &[f64], lags: usize) -> Result<TestResult, MbptaError> {
    if lags == 0 {
        return Err(MbptaError::InvalidParameter("lags must be positive".into()));
    }
    if samples.len() <= lags + 1 {
        return Err(MbptaError::TooFewSamples {
            got: samples.len(),
            need: lags + 2,
        });
    }
    let n = samples.len() as f64;
    let rho = autocorrelations(samples, lags);
    let q: f64 = n
        * (n + 2.0)
        * rho
            .iter()
            .enumerate()
            .map(|(i, &r)| r * r / (n - (i + 1) as f64))
            .sum::<f64>();
    Ok(TestResult {
        statistic: q,
        p_value: 1.0 - chi2_cdf(q, lags as u32),
    })
}

/// Wald–Wolfowitz runs test around the median.
///
/// # Errors
///
/// Returns [`MbptaError::TooFewSamples`] if fewer than 20 samples, or
/// [`MbptaError::DegenerateSamples`] if one side of the median is empty.
pub fn runs_test(samples: &[f64]) -> Result<TestResult, MbptaError> {
    if samples.len() < 20 {
        return Err(MbptaError::TooFewSamples {
            got: samples.len(),
            need: 20,
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("NaN in samples"));
    let median = sorted[sorted.len() / 2];
    // Classify strictly; drop ties with the median.
    let signs: Vec<bool> = samples
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    let n_plus = signs.iter().filter(|&&s| s).count() as f64;
    let n_minus = signs.len() as f64 - n_plus;
    if n_plus == 0.0 || n_minus == 0.0 {
        return Err(MbptaError::DegenerateSamples(
            "all samples on one side of the median".into(),
        ));
    }
    let runs = 1 + signs.windows(2).filter(|w| w[0] != w[1]).count();
    let n = n_plus + n_minus;
    let mean = 2.0 * n_plus * n_minus / n + 1.0;
    let var = (mean - 1.0) * (mean - 2.0) / (n - 1.0);
    let z = (runs as f64 - mean) / var.sqrt();
    Ok(TestResult {
        statistic: z,
        p_value: normal_two_sided_p(z),
    })
}

/// The combined applicability report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidReport {
    /// Split-half KS test (identical distribution).
    pub ks: TestResult,
    /// Ljung–Box at 20 lags (independence).
    pub ljung_box: TestResult,
    /// Runs test (randomness).
    pub runs: TestResult,
}

impl IidReport {
    /// Runs the standard battery on an execution-time sample.
    ///
    /// # Errors
    ///
    /// Propagates the individual tests' sample-size requirements.
    pub fn analyze(samples: &[f64]) -> Result<Self, MbptaError> {
        Ok(IidReport {
            ks: ks_split_half(samples)?,
            ljung_box: ljung_box(samples, 20)?,
            runs: runs_test(samples)?,
        })
    }

    /// Whether all three tests pass at significance `alpha` (0.05 is the
    /// MBPTA convention).
    pub fn passes(&self, alpha: f64) -> bool {
        self.ks.passes(alpha) && self.ljung_box.passes(alpha) && self.runs.passes(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniforms(n: usize, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn ks_accepts_same_distribution() {
        let a = uniforms(500, 1);
        let b = uniforms(500, 2);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn ks_rejects_shifted_distribution() {
        let a = uniforms(500, 3);
        let b: Vec<f64> = uniforms(500, 4).into_iter().map(|x| x + 0.3).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn ks_needs_enough_samples() {
        assert!(matches!(
            ks_two_sample(&[1.0; 4], &[2.0; 100]),
            Err(MbptaError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn ljung_box_accepts_iid() {
        let x = uniforms(1000, 5);
        let r = ljung_box(&x, 20).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn ljung_box_rejects_ar1() {
        // Strongly autocorrelated series.
        let noise = uniforms(1000, 6);
        let mut x = vec![0.0f64; 1000];
        for i in 1..1000 {
            x[i] = 0.8 * x[i - 1] + noise[i];
        }
        let r = ljung_box(&x, 20).unwrap();
        assert!(!r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn runs_test_accepts_random_order() {
        let x = uniforms(400, 7);
        let r = runs_test(&x).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn runs_test_rejects_sorted_series() {
        let mut x = uniforms(400, 8);
        x.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let r = runs_test(&x).unwrap();
        assert!(!r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let x: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho = autocorrelations(&x, 2);
        assert!(rho[0] < -0.9);
        assert!(rho[1] > 0.9);
    }

    #[test]
    fn iid_report_on_good_data() {
        let x = uniforms(600, 9);
        let report = IidReport::analyze(&x).unwrap();
        assert!(report.passes(0.05));
    }

    #[test]
    fn iid_report_fails_on_trend() {
        let x: Vec<f64> = uniforms(600, 10)
            .into_iter()
            .enumerate()
            .map(|(i, v)| v + i as f64 * 0.01)
            .collect();
        let report = IidReport::analyze(&x).unwrap();
        assert!(!report.passes(0.05));
    }
}
