//! The parameterized synthetic benchmark generator.

use cba_cpu::{Op, Program};
use cba_mem::MemAccess;
use sim_core::rng::SimRng;

/// Parameters of one synthetic EEMBC-like benchmark.
///
/// A run alternates **bursts** of memory accesses with **inter-burst
/// compute gaps**:
///
/// ```text
/// [gap] a a a a a a [gap] a a a [gap] ...
///       '--burst--'       burst
/// ```
///
/// Each access within a burst is separated by a small compute gap drawn
/// uniformly from `within_gap`; bursts contain `burst_len` accesses
/// (uniform); inter-burst gaps are exponential-ish with mean
/// `between_gap_mean`. Addresses walk sequentially with a 16-byte stride
/// through a `working_set`-byte region, except a `p_random` fraction that
/// jump uniformly inside the region (conflict/cache-sensitivity dial).
#[derive(Debug, Clone, PartialEq)]
pub struct EembcProfile {
    /// Benchmark name (stable key for reports).
    pub name: &'static str,
    /// Total memory accesses per run.
    pub accesses: u64,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Fraction of accesses at uniformly random offsets (vs sequential
    /// walk).
    pub p_random: f64,
    /// Fraction of accesses that are stores.
    pub p_store: f64,
    /// Fraction of accesses that are atomic read-modify-writes.
    pub p_atomic: f64,
    /// Fraction of accesses that are instruction fetches into `code_set`.
    pub p_ifetch: f64,
    /// Code working-set size in bytes (for instruction fetches).
    pub code_set: u64,
    /// Accesses per burst, inclusive range.
    pub burst_len: (u32, u32),
    /// Compute cycles between accesses within a burst, inclusive range.
    pub within_gap: (u32, u32),
    /// Mean compute cycles between bursts (exponential-ish, min 1).
    pub between_gap_mean: f64,
}

/// Compute-gap bounds of the initialization (warm-up) phase, cycles.
const WARMUP_GAP: (u32, u32) = (88, 128);

impl EembcProfile {
    /// Number of initialization accesses: one sequential touch per
    /// working-set line. Real benchmarks initialize their inputs with
    /// ordinary (low-IPC-pressure) code before the hot kernel; modeling
    /// this phase keeps compulsory cache misses from masquerading as
    /// kernel-phase behaviour in runs that are far shorter than the
    /// FPGA originals.
    pub fn warmup_accesses(&self) -> u64 {
        self.working_set / 16
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.accesses == 0 {
            return Err("accesses must be positive".into());
        }
        if self.working_set < 64 {
            return Err("working_set must be at least 64 bytes".into());
        }
        for (what, p) in [
            ("p_random", self.p_random),
            ("p_store", self.p_store),
            ("p_atomic", self.p_atomic),
            ("p_ifetch", self.p_ifetch),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what} must be in [0,1], got {p}"));
            }
        }
        if self.p_store + self.p_atomic + self.p_ifetch > 1.0 {
            return Err("p_store + p_atomic + p_ifetch must not exceed 1".into());
        }
        if self.burst_len.0 == 0 || self.burst_len.0 > self.burst_len.1 {
            return Err(format!("burst_len range invalid: {:?}", self.burst_len));
        }
        if self.within_gap.0 > self.within_gap.1 {
            return Err(format!("within_gap range invalid: {:?}", self.within_gap));
        }
        if self.between_gap_mean < 1.0 {
            return Err("between_gap_mean must be at least 1".into());
        }
        if self.p_ifetch > 0.0 && self.code_set < 64 {
            return Err("code_set must be at least 64 bytes when p_ifetch > 0".into());
        }
        Ok(())
    }
}

/// The generator driving an [`EembcProfile`] — a randomized
/// [`Program`].
///
/// Address streams and gap draws use the per-run RNG stream the core
/// provides, so every run re-randomizes (together with the cache placement
/// seeds) exactly as MBPTA prescribes.
///
/// # Example
///
/// ```
/// use cba_cpu::{Op, Program};
/// use cba_workloads::{suite, SyntheticEembc};
/// use sim_core::rng::SimRng;
///
/// let profile = suite::matrix();
/// let expected = profile.accesses + profile.warmup_accesses();
/// let mut gen = SyntheticEembc::new(profile);
/// let mut rng = SimRng::seed_from(1);
/// let mut accesses = 0;
/// while let Some(op) = gen.next_op(&mut rng) {
///     if matches!(op, Op::Access(_)) { accesses += 1; }
/// }
/// assert_eq!(accesses, expected);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticEembc {
    profile: EembcProfile,
    /// Initialization accesses still to emit.
    warmup_left: u64,
    /// Kernel accesses still to emit.
    remaining: u64,
    /// Accesses left in the current burst.
    burst_left: u32,
    /// Sequential walk pointer (bytes).
    walk: u64,
    /// Code walk pointer.
    code_walk: u64,
    /// Pending compute gap to emit before the next access.
    pending_gap: Option<u32>,
    /// Whether the next gap is an inter-burst gap.
    need_burst_start: bool,
}

/// Data segment base address (arbitrary, distinct from code).
const DATA_BASE: u64 = 0x0010_0000;
/// Code segment base address.
const CODE_BASE: u64 = 0x0000_1000;
/// Sequential stride: one 16-byte line per step, matching the platform's
/// line size so a sequential walk misses L1 once per line.
const STRIDE: u64 = 16;

impl SyntheticEembc {
    /// Creates a generator for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`EembcProfile::validate`].
    pub fn new(profile: EembcProfile) -> Self {
        if let Err(why) = profile.validate() {
            panic!("invalid profile {}: {why}", profile.name);
        }
        SyntheticEembc {
            warmup_left: profile.warmup_accesses(),
            remaining: profile.accesses,
            burst_left: 0,
            walk: 0,
            code_walk: 0,
            pending_gap: None,
            need_burst_start: true,
            profile,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &EembcProfile {
        &self.profile
    }

    fn draw_access(&mut self, rng: &mut SimRng) -> MemAccess {
        let p = &self.profile;
        let roll = rng.gen_f64();
        if roll < p.p_ifetch {
            // Instruction fetch: sequential walk through the code set with
            // occasional random jumps (branches).
            if rng.gen_bool(0.2) {
                self.code_walk = rng.gen_range_u64(0..p.code_set / 4) * 4;
            } else {
                self.code_walk = (self.code_walk + 4) % p.code_set;
            }
            return MemAccess::ifetch(CODE_BASE + self.code_walk);
        }
        let addr = if rng.gen_bool(p.p_random) {
            DATA_BASE + rng.gen_range_u64(0..p.working_set / 4) * 4
        } else {
            self.walk = (self.walk + STRIDE) % p.working_set;
            DATA_BASE + self.walk
        };
        if roll < p.p_ifetch + p.p_atomic {
            MemAccess::atomic(addr)
        } else if roll < p.p_ifetch + p.p_atomic + p.p_store {
            MemAccess::store(addr)
        } else {
            MemAccess::load(addr)
        }
    }

    fn uniform_in(&self, range: (u32, u32), rng: &mut SimRng) -> u32 {
        if range.0 == range.1 {
            range.0
        } else {
            range.0 + rng.gen_range_usize(0..(range.1 - range.0 + 1) as usize) as u32
        }
    }
}

impl Program for SyntheticEembc {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if let Some(gap) = self.pending_gap.take() {
            return Some(Op::Compute(gap));
        }
        if self.warmup_left > 0 {
            // Initialization: touch the working set sequentially, one line
            // per access, sparsely enough that compulsory misses never
            // contend with the credit recovery window.
            self.warmup_left -= 1;
            let addr = DATA_BASE + self.walk;
            self.walk = (self.walk + STRIDE) % self.profile.working_set;
            self.pending_gap = Some(self.uniform_in(WARMUP_GAP, rng));
            let access = if rng.gen_bool(self.profile.p_store) {
                MemAccess::store(addr)
            } else {
                MemAccess::load(addr)
            };
            return Some(Op::Access(access));
        }
        if self.remaining == 0 {
            return None;
        }
        if self.burst_left == 0 {
            if self.need_burst_start {
                // Emit the inter-burst gap, then start the burst.
                self.need_burst_start = false;
                self.burst_left = self.uniform_in(self.profile.burst_len, rng);
                let gap = rng.gen_gap(self.profile.between_gap_mean);
                return Some(Op::Compute(gap));
            }
            self.burst_left = self.uniform_in(self.profile.burst_len, rng);
        }

        // Emit one access; queue the within-burst gap (if any) behind it.
        self.burst_left -= 1;
        self.remaining -= 1;
        if self.remaining > 0 {
            if self.burst_left == 0 {
                self.need_burst_start = true;
            } else {
                let gap = self.uniform_in(self.profile.within_gap, rng);
                if gap > 0 {
                    self.pending_gap = Some(gap);
                }
            }
        }
        Some(Op::Access(self.draw_access(rng)))
    }

    fn reset(&mut self, _rng: &mut SimRng) {
        self.warmup_left = self.profile.warmup_accesses();
        self.remaining = self.profile.accesses;
        self.burst_left = 0;
        self.walk = 0;
        self.code_walk = 0;
        self.pending_gap = None;
        self.need_burst_start = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use cba_mem::AccessKind;

    fn count_kinds(profile: EembcProfile, seed: u64) -> (u64, u64, u64, u64, u64) {
        let mut gen = SyntheticEembc::new(profile);
        let mut rng = SimRng::seed_from(seed);
        let (mut loads, mut stores, mut atomics, mut ifetches, mut computes) = (0, 0, 0, 0, 0);
        while let Some(op) = gen.next_op(&mut rng) {
            match op {
                Op::Compute(_) => computes += 1,
                Op::Access(a) => match a.kind() {
                    AccessKind::Load => loads += 1,
                    AccessKind::Store => stores += 1,
                    AccessKind::Atomic => atomics += 1,
                    AccessKind::IFetch => ifetches += 1,
                },
            }
        }
        (loads, stores, atomics, ifetches, computes)
    }

    #[test]
    fn emits_exactly_the_configured_accesses_plus_warmup() {
        for p in suite::all_profiles() {
            let total = p.accesses + p.warmup_accesses();
            let (l, s, a, i, _) = count_kinds(p.clone(), 42);
            assert_eq!(l + s + a + i, total, "{}", p.name);
        }
    }

    #[test]
    fn store_fraction_approximately_respected() {
        let mut p = suite::matrix();
        p.accesses = 20_000;
        let expect = p.p_store;
        let (l, s, a, i, _) = count_kinds(p, 7);
        let frac = s as f64 / (l + s + a + i) as f64;
        assert!(
            (frac - expect).abs() < 0.03,
            "store fraction {frac} vs configured {expect}"
        );
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let mut p = suite::tblook();
        p.accesses = 5_000;
        let ws = p.working_set;
        let mut gen = SyntheticEembc::new(p);
        let mut rng = SimRng::seed_from(3);
        while let Some(op) = gen.next_op(&mut rng) {
            if let Op::Access(a) = op {
                if a.kind() != AccessKind::IFetch {
                    assert!(a.addr() >= DATA_BASE);
                    assert!(a.addr() < DATA_BASE + ws, "addr 0x{:x}", a.addr());
                }
            }
        }
    }

    #[test]
    fn ifetches_stay_in_code_set() {
        let mut p = suite::a2time();
        p.accesses = 5_000;
        assert!(p.p_ifetch > 0.0, "a2time exercises the I-side");
        let cs = p.code_set;
        let mut gen = SyntheticEembc::new(p);
        let mut rng = SimRng::seed_from(4);
        while let Some(op) = gen.next_op(&mut rng) {
            if let Op::Access(a) = op {
                if a.kind() == AccessKind::IFetch {
                    assert!(a.addr() >= CODE_BASE && a.addr() < CODE_BASE + cs);
                }
            }
        }
    }

    #[test]
    fn burst_structure_respected() {
        // With within_gap max < between mean, access runs separated by
        // small gaps should have lengths within burst_len bounds.
        let p = EembcProfile {
            name: "bursty",
            accesses: 2_000,
            working_set: 4096,
            p_random: 0.0,
            p_store: 0.0,
            p_atomic: 0.0,
            p_ifetch: 0.0,
            code_set: 0,
            burst_len: (4, 6),
            within_gap: (1, 2),
            between_gap_mean: 100.0,
        };
        let warmup = p.warmup_accesses();
        let mut gen = SyntheticEembc::new(p);
        let mut rng = SimRng::seed_from(5);
        // Skip the warm-up prefix (access+gap pairs).
        for _ in 0..2 * warmup {
            let _ = gen.next_op(&mut rng);
        }
        let mut run = 0u32;
        let mut runs = Vec::new();
        while let Some(op) = gen.next_op(&mut rng) {
            match op {
                Op::Access(_) => run += 1,
                Op::Compute(g) if g > 2 => {
                    if run > 0 {
                        runs.push(run);
                    }
                    run = 0;
                }
                Op::Compute(_) => {}
            }
        }
        if run > 0 {
            runs.push(run);
        }
        assert!(!runs.is_empty());
        // Interior runs are within bounds, except where a rare short
        // inter-burst gap (exponential tail) merges two adjacent bursts.
        let in_bounds = runs.iter().filter(|r| (4..=6).contains(*r)).count();
        assert!(
            in_bounds as f64 >= 0.8 * runs.len() as f64,
            "too many out-of-bound runs: {runs:?}"
        );
        for &r in &runs[..runs.len() - 1] {
            assert!(
                (4..=12).contains(&r),
                "burst of {r} exceeds a merged pair: {runs:?}"
            );
        }
    }

    #[test]
    fn reset_reproduces_stream_with_same_rng_seed() {
        let p = suite::cacheb();
        let mut gen = SyntheticEembc::new(p);
        let mut rng1 = SimRng::seed_from(9);
        let mut first = Vec::new();
        for _ in 0..200 {
            match gen.next_op(&mut rng1) {
                Some(op) => first.push(op),
                None => break,
            }
        }
        let mut rng2 = SimRng::seed_from(9);
        gen.reset(&mut rng2);
        for (i, expect) in first.iter().enumerate() {
            assert_eq!(gen.next_op(&mut rng2).as_ref(), Some(expect), "op {i}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = suite::tblook();
        let mut g1 = SyntheticEembc::new(p.clone());
        let mut g2 = SyntheticEembc::new(p);
        let mut r1 = SimRng::seed_from(1);
        let mut r2 = SimRng::seed_from(2);
        let mut same = 0;
        let mut total = 0;
        for _ in 0..500 {
            match (g1.next_op(&mut r1), g2.next_op(&mut r2)) {
                (Some(a), Some(b)) => {
                    total += 1;
                    if a == b {
                        same += 1;
                    }
                }
                _ => break,
            }
        }
        assert!(total > 100);
        assert!(same < total, "streams must differ across seeds");
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let good = suite::matrix();
        let mut p = good.clone();
        p.accesses = 0;
        assert!(p.validate().is_err());
        p = good.clone();
        p.p_store = 0.9;
        p.p_atomic = 0.2;
        assert!(p.validate().is_err());
        p = good.clone();
        p.burst_len = (5, 2);
        assert!(p.validate().is_err());
        p = good.clone();
        p.within_gap = (9, 3);
        assert!(p.validate().is_err());
        p = good;
        p.between_gap_mean = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn constructor_panics_on_invalid() {
        let mut p = suite::matrix();
        p.accesses = 0;
        let _ = SyntheticEembc::new(p);
    }
}
