//! The streaming co-runner workload.

use cba_cpu::{Op, Program};
use cba_mem::MemAccess;
use sim_core::rng::SimRng;

/// A streaming application: sequential reads marching through a working
/// set far larger than any cache, so essentially every access is a
/// 28-cycle memory transaction.
///
/// This is the paper's Section-II co-runner archetype ("streaming
/// applications issuing constantly read requests to memory that take 28
/// cycles") in [`Program`] form — use
/// [`Contender`](cba_cpu::Contender) instead when the co-runner should
/// bypass the cache model entirely.
#[derive(Debug, Clone)]
pub struct Streaming {
    accesses: u64,
    remaining: u64,
    ptr: u64,
}

/// Far beyond L1 + L2 partition: every line is touched once.
const STREAM_BYTES: u64 = 1 << 30;
const STREAM_BASE: u64 = 0x4000_0000;
const LINE: u64 = 16;

impl Streaming {
    /// Creates a streamer issuing `accesses` sequential loads.
    ///
    /// # Panics
    ///
    /// Panics if `accesses == 0`.
    pub fn new(accesses: u64) -> Self {
        assert!(accesses > 0, "accesses must be positive");
        Streaming {
            accesses,
            remaining: accesses,
            ptr: 0,
        }
    }
}

impl Program for Streaming {
    fn name(&self) -> &str {
        "streaming"
    }

    fn next_op(&mut self, _rng: &mut SimRng) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = STREAM_BASE + self.ptr;
        self.ptr = (self.ptr + LINE) % STREAM_BYTES;
        Some(Op::Access(MemAccess::load(addr)))
    }

    fn reset(&mut self, _rng: &mut SimRng) {
        self.remaining = self.accesses;
        self.ptr = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::{Bus, BusConfig, PolicyKind};
    use cba_cpu::Core;
    use cba_mem::{HierarchyConfig, LatencyModel};
    use sim_core::CoreId;

    #[test]
    fn every_access_misses() {
        let mut rng = SimRng::seed_from(1);
        let mut core = Core::new(
            CoreId::from_index(0),
            Box::new(Streaming::new(200)),
            &HierarchyConfig::paper(),
            LatencyModel::paper(),
            &mut rng,
        );
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut now = 0;
        while !core.is_done() && now < 100_000 {
            let done = bus.begin_cycle(now);
            core.tick(now, done.as_ref(), &mut bus);
            bus.end_cycle(now);
            now += 1;
        }
        assert!(core.is_done());
        let stats = core.memory().stats();
        assert_eq!(stats.l1_hits, 0, "streaming never re-touches a line");
        assert_eq!(stats.misses_clean + stats.misses_dirty, 200);
        // Effectively saturating: ~29-30 cycles per 28-cycle transaction.
        let per_access = core.done_at().unwrap() as f64 / 200.0;
        assert!(per_access < 32.0, "{per_access} cycles per access");
    }

    #[test]
    fn reset_restarts() {
        let mut s = Streaming::new(5);
        let mut rng = SimRng::seed_from(0);
        let mut count = 0;
        while s.next_op(&mut rng).is_some() {
            count += 1;
        }
        assert_eq!(count, 5);
        s.reset(&mut rng);
        assert!(s.next_op(&mut rng).is_some());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_accesses_rejected() {
        let _ = Streaming::new(0);
    }
}
