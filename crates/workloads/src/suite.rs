//! The benchmark catalog: synthetic stand-ins for the EEMBC Autobench
//! programs used in the paper's evaluation, plus four extra suite members
//! for wider coverage.
//!
//! Parameter choices are calibrated against the paper's reported behaviour
//! (see `EXPERIMENTS.md`): the Figure-1 suite spans the spectrum from
//! bursty/bus-bound (`matrix`, `cacheb` — where CBA beats slot-fair RP
//! under contention) to sparse/cache-sensitive (`tblook` — where CBA's own
//! budget-recovery stalls make it marginally worse, the paper's observed
//! anomaly), with `canrdr` as the light I/O-ish workload in between.
//!
//! A note on mechanics: the platform's L1 data cache is write-through, so
//! *stores* are the main source of short bus transactions for L1-resident
//! working sets, while working sets larger than L1 stream reads through
//! the L2 (5-cycle hits) and working sets larger than an L2 partition
//! produce genuine 28/56-cycle memory transactions.

use crate::profile::EembcProfile;

/// `cacheb` — the Autobench "cache buster": pointer-walks a buffer well
/// beyond L1 with frequent updates; most accesses reach the bus as L2
/// hits.
pub fn cacheb() -> EembcProfile {
    EembcProfile {
        name: "cacheb",
        accesses: 6_000,
        working_set: 6 * 1024,
        p_random: 0.15,
        p_store: 0.25,
        p_atomic: 0.0,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (10, 20),
        within_gap: (18, 30),
        between_gap_mean: 220.0,
    }
}

/// `canrdr` — CAN bus remote-data-request processing: small L1-resident
/// message buffers, light bus traffic from write-through stores.
pub fn canrdr() -> EembcProfile {
    EembcProfile {
        name: "canrdr",
        accesses: 3_500,
        working_set: 2 * 1024,
        p_random: 0.10,
        p_store: 0.20,
        p_atomic: 0.0,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (6, 10),
        within_gap: (8, 14),
        between_gap_mean: 240.0,
    }
}

/// `matrix` — dense matrix arithmetic: long row-sweep bursts over an
/// L1-resident tile with a store per accumulator spill; the burstiest
/// benchmark of the suite and the paper's worst case under slot-fair
/// arbitration (3.34x).
pub fn matrix() -> EembcProfile {
    EembcProfile {
        name: "matrix",
        accesses: 8_000,
        working_set: 6 * 1024,
        p_random: 0.05,
        p_store: 0.20,
        p_atomic: 0.0,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (24, 48),
        within_gap: (16, 28),
        between_gap_mean: 260.0,
    }
}

/// `tblook` — table lookup: isolated random probes into a table nearly
/// filling the L2 partition; sparse in time and highly sensitive to the
/// random cache placement (large run-to-run variance).
pub fn tblook() -> EembcProfile {
    EembcProfile {
        name: "tblook",
        accesses: 1_800,
        working_set: 10 * 1024,
        p_random: 1.0,
        p_store: 0.08,
        p_atomic: 0.01,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (1, 1),
        within_gap: (30, 60),
        between_gap_mean: 110.0,
    }
}

/// `a2time` — angle-to-time conversion: small hot loop with a visible
/// instruction-fetch component (exercises the L1I path).
pub fn a2time() -> EembcProfile {
    EembcProfile {
        name: "a2time",
        accesses: 3_000,
        working_set: 1024,
        p_random: 0.05,
        p_store: 0.15,
        p_atomic: 0.0,
        p_ifetch: 0.20,
        code_set: 8 * 1024,
        burst_len: (8, 14),
        within_gap: (10, 18),
        between_gap_mean: 300.0,
    }
}

/// `rspeed` — road-speed calculation: the lightest workload; rare short
/// bursts over a tiny working set.
pub fn rspeed() -> EembcProfile {
    EembcProfile {
        name: "rspeed",
        accesses: 1_500,
        working_set: 1024,
        p_random: 0.10,
        p_store: 0.15,
        p_atomic: 0.0,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (4, 8),
        within_gap: (12, 24),
        between_gap_mean: 600.0,
    }
}

/// `puwmod` — pulse-width modulation: store-dominated control loop
/// (write-through traffic) with moderate density.
pub fn puwmod() -> EembcProfile {
    EembcProfile {
        name: "puwmod",
        accesses: 3_000,
        working_set: 2 * 1024,
        p_random: 0.05,
        p_store: 0.45,
        p_atomic: 0.0,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (10, 16),
        within_gap: (12, 20),
        between_gap_mean: 320.0,
    }
}

/// `aifftr` — FFT: strided sweeps over a data set larger than the L2
/// partition, producing genuine 28/56-cycle memory transactions; the
/// heaviest long-request workload (useful for pWCET experiments).
pub fn aifftr() -> EembcProfile {
    EembcProfile {
        name: "aifftr",
        accesses: 2_000,
        working_set: 48 * 1024,
        p_random: 0.30,
        p_store: 0.30,
        p_atomic: 0.02,
        p_ifetch: 0.0,
        code_set: 0,
        burst_len: (6, 12),
        within_gap: (40, 80),
        between_gap_mean: 400.0,
    }
}

/// The four benchmarks of the paper's Figure 1, in the figure's order.
pub fn fig1_suite() -> Vec<EembcProfile> {
    vec![cacheb(), canrdr(), matrix(), tblook()]
}

/// Every catalog benchmark.
pub fn all_profiles() -> Vec<EembcProfile> {
    vec![
        cacheb(),
        canrdr(),
        matrix(),
        tblook(),
        a2time(),
        rspeed(),
        puwmod(),
        aifftr(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in all_profiles() {
            assert!(
                p.validate().is_ok(),
                "{} invalid: {:?}",
                p.name,
                p.validate()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = all_profiles().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), all_profiles().len());
    }

    #[test]
    fn fig1_is_a_subset_of_the_catalog() {
        let all: Vec<&str> = all_profiles().iter().map(|p| p.name).collect();
        for p in fig1_suite() {
            assert!(all.contains(&p.name));
        }
    }

    #[test]
    fn tblook_is_sparse_and_random() {
        let p = tblook();
        assert_eq!(p.p_random, 1.0, "tblook probes randomly");
        assert!(p.burst_len.1 <= 2, "tblook accesses are isolated");
    }

    #[test]
    fn matrix_is_the_burstiest() {
        let m = matrix();
        for p in fig1_suite() {
            assert!(m.burst_len.1 >= p.burst_len.1);
        }
    }
}
