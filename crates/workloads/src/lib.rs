#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod streaming;
pub mod suite;

pub use profile::{EembcProfile, SyntheticEembc};
pub use streaming::Streaming;
pub use suite::{all_profiles, fig1_suite};

use cba_cpu::Program;

/// Instantiates a catalog benchmark by name (see [`suite`] for the list).
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn Program>> {
    if name == "streaming" {
        return Some(Box::new(Streaming::new(20_000)));
    }
    profile_by_name(name).map(|p| Box::new(SyntheticEembc::new(p)) as Box<dyn Program>)
}

/// Looks up a catalog benchmark's [`EembcProfile`] by name.
///
/// Unlike [`by_name`] this returns the raw parameterization, so callers
/// (e.g. scenario files sweeping burstiness knobs) can override fields
/// before instantiating the generator. Returns `None` for unknown names,
/// including `"streaming"` (which has no profile).
pub fn profile_by_name(name: &str) -> Option<EembcProfile> {
    suite::all_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        for p in all_profiles() {
            assert!(by_name(p.name).is_some(), "missing {}", p.name);
        }
        assert!(by_name("streaming").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn profile_lookup_returns_the_catalog_entry() {
        let p = profile_by_name("matrix").expect("matrix is in the catalog");
        assert_eq!(p, suite::matrix());
        assert!(profile_by_name("streaming").is_none());
        assert!(profile_by_name("nonexistent").is_none());
    }

    #[test]
    fn fig1_suite_is_the_paper_selection() {
        let names: Vec<&str> = fig1_suite().iter().map(|p| p.name).collect();
        assert_eq!(names, ["cacheb", "canrdr", "matrix", "tblook"]);
    }
}
