//! Synthetic EEMBC-Autobench-like workloads for the CBA platform.
//!
//! The paper evaluates on four benchmarks of the (proprietary) EEMBC
//! Autobench suite — `cacheb`, `canrdr`, `matrix` and `tblook` — plus
//! always-streaming co-runners. We cannot ship EEMBC sources; per the
//! documented substitution, each benchmark is replaced by a *synthetic
//! generator* ([`SyntheticEembc`]) reproducing the properties that matter
//! at the bus level:
//!
//! * **bus-access density** — how often an operation needs the bus
//!   (controls the baseline slowdown under contention);
//! * **burst structure** — how clustered bus accesses are in time. This is
//!   the decisive dial for credit-based arbitration: during a *dense*
//!   phase, WCET-mode contenders exhaust their budgets and the task sails
//!   through (CBA wins big over slot-fair RP), while for *isolated*
//!   accesses every contender has recovered and CBA ≈ RP — with the task's
//!   own budget-recovery stalls making CBA marginally worse, which is
//!   exactly the paper's `tblook` anomaly;
//! * **working-set size and access randomness** — control L1/L2 hit rates
//!   (hence the request-duration mix) and the run-to-run variance induced
//!   by random cache placement (the paper's cache-sensitivity discussion).
//!
//! The per-benchmark parameterizations live in [`suite`]; [`by_name`] and
//! [`fig1_suite`] are the lookup points used by the experiment harnesses.
//!
//! # Example
//!
//! ```
//! use cba_workloads::{by_name, fig1_suite};
//!
//! let names: Vec<&str> = fig1_suite().iter().map(|p| p.name).collect();
//! assert_eq!(names, ["cacheb", "canrdr", "matrix", "tblook"]);
//! let mut program = by_name("matrix").expect("matrix is in the catalog");
//! assert_eq!(cba_cpu::Program::name(&*program), "matrix");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod streaming;
pub mod suite;

pub use profile::{EembcProfile, SyntheticEembc};
pub use streaming::Streaming;
pub use suite::{all_profiles, fig1_suite};

use cba_cpu::Program;

/// Instantiates a catalog benchmark by name (see [`suite`] for the list).
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn Program>> {
    if name == "streaming" {
        return Some(Box::new(Streaming::new(20_000)));
    }
    suite::all_profiles()
        .iter()
        .find(|p| p.name == name)
        .map(|p| Box::new(SyntheticEembc::new(p.clone())) as Box<dyn Program>)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        for p in all_profiles() {
            assert!(by_name(p.name).is_some(), "missing {}", p.name);
        }
        assert!(by_name("streaming").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn fig1_suite_is_the_paper_selection() {
        let names: Vec<&str> = fig1_suite().iter().map(|p| p.name).collect();
        assert_eq!(names, ["cacheb", "canrdr", "matrix", "tblook"]);
    }
}
