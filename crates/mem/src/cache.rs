//! A set-associative cache with the MBPTA-style randomization of the
//! paper's platform: random placement (randomized index hash, reseeded per
//! run) and random replacement.

use crate::MemError;
use sim_core::rng::SimRng;

/// Placement (indexing) function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Conventional modulo indexing (`line_addr % sets`).
    Modulo,
    /// Random placement: a per-seed hash of the line address picks the set.
    /// Reseeding ([`SetAssocCache::reseed`]) re-randomizes the mapping, the
    /// per-run randomization MBPTA requires.
    Random,
}

/// Replacement victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Uniform random way (the platform's policy; memoryless, so no
    /// history state is needed).
    Random,
    /// Least-recently-used (provided for comparison experiments).
    Lru,
}

/// Write handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-through, no write-allocate (the platform's L1D): stores update
    /// a hitting line but never allocate, and always propagate downstream.
    WriteThrough,
    /// Write-back, write-allocate (the platform's L2): stores allocate and
    /// dirty the line; evicting a dirty line costs a memory write-back.
    WriteBack,
}

/// Geometry and policies of one cache (or one L2 partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Placement function.
    pub placement: Placement,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] unless `sets` and `line_bytes`
    /// are non-zero powers of two and `ways >= 1`.
    pub fn validate(&self) -> Result<(), MemError> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(MemError::InvalidConfig(format!(
                "sets must be a power of two, got {}",
                self.sets
            )));
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(MemError::InvalidConfig(format!(
                "line_bytes must be a power of two, got {}",
                self.line_bytes
            )));
        }
        if self.ways == 0 {
            return Err(MemError::InvalidConfig("ways must be at least 1".into()));
        }
        Ok(())
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// The platform L1 (4 KiB, 4-way, 16-byte lines, random placement and
    /// replacement, write-through).
    pub fn paper_l1() -> Self {
        CacheConfig {
            sets: 64,
            ways: 4,
            line_bytes: 16,
            placement: Placement::Random,
            replacement: Replacement::Random,
            write_policy: WritePolicy::WriteThrough,
        }
    }

    /// One core's partition of the platform L2 (32 KiB, 4-way, 16-byte
    /// lines, random placement and replacement, write-back).
    pub fn paper_l2_partition() -> Self {
        CacheConfig {
            sets: 512,
            ways: 4,
            line_bytes: 16,
            placement: Placement::Random,
            replacement: Replacement::Random,
            write_policy: WritePolicy::WriteBack,
        }
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// On an allocating miss: whether the evicted victim was dirty (drives
    /// the write-back cost in the latency model).
    pub victim_dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp (unused under random replacement).
    stamp: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    stamp: 0,
};

/// A set-associative cache.
///
/// # Example
///
/// ```
/// use cba_mem::{CacheConfig, SetAssocCache};
/// use sim_core::rng::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let mut l1 = SetAssocCache::new(CacheConfig::paper_l1(), &mut rng)?;
/// let miss = l1.read(0x4000, &mut rng);
/// assert!(!miss.hit);
/// let hit = l1.read(0x4008, &mut rng); // same 16-byte line
/// assert!(hit.hit);
/// # Ok::<(), cba_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    seed: u64,
    tick: u64,
    // Statistics.
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache; random placement draws its hash seed from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`] failures.
    pub fn new(config: CacheConfig, rng: &mut SimRng) -> Result<Self, MemError> {
        config.validate()?;
        Ok(SetAssocCache {
            lines: vec![INVALID; config.sets * config.ways],
            seed: rng.next_u64(),
            tick: 0,
            hits: 0,
            misses: 0,
            config,
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses so far (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidates all lines and re-draws the placement seed: the start of
    /// a fresh MBPTA run.
    pub fn reseed(&mut self, rng: &mut SimRng) {
        self.lines.fill(INVALID);
        self.seed = rng.next_u64();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        match self.config.placement {
            Placement::Modulo => (line_addr % self.config.sets as u64) as usize,
            Placement::Random => {
                // splitmix-style seeded hash: a different seed yields an
                // (effectively) independent placement function.
                let mut z = line_addr ^ self.seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z % self.config.sets as u64) as usize
            }
        }
    }

    fn probe(&mut self, addr: u64) -> (usize, Option<usize>) {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(line_addr);
        let base = set * self.config.ways;
        let way = (0..self.config.ways)
            .find(|&w| self.lines[base + w].valid && self.lines[base + w].tag == line_addr);
        (set, way)
    }

    fn victim_way(&self, set: usize, rng: &mut SimRng) -> usize {
        let base = set * self.config.ways;
        // Prefer an invalid way.
        if let Some(w) = (0..self.config.ways).find(|&w| !self.lines[base + w].valid) {
            return w;
        }
        match self.config.replacement {
            Replacement::Random => rng.gen_range_usize(0..self.config.ways),
            Replacement::Lru => (0..self.config.ways)
                .min_by_key(|&w| self.lines[base + w].stamp)
                .expect("ways >= 1"),
        }
    }

    /// Reads `addr`. On a miss the line is allocated (victimizing per the
    /// replacement policy); the outcome reports whether the victim was
    /// dirty.
    pub fn read(&mut self, addr: u64, rng: &mut SimRng) -> CacheOutcome {
        self.tick += 1;
        let (set, way) = self.probe(addr);
        match way {
            Some(w) => {
                self.hits += 1;
                self.lines[set * self.config.ways + w].stamp = self.tick;
                CacheOutcome {
                    hit: true,
                    victim_dirty: false,
                }
            }
            None => {
                self.misses += 1;
                let tag = self.line_addr(addr);
                let w = self.victim_way(set, rng);
                let slot = &mut self.lines[set * self.config.ways + w];
                let victim_dirty = slot.valid && slot.dirty;
                *slot = Line {
                    tag,
                    valid: true,
                    dirty: false,
                    stamp: self.tick,
                };
                CacheOutcome {
                    hit: false,
                    victim_dirty,
                }
            }
        }
    }

    /// Writes `addr`.
    ///
    /// * Write-through: a hit updates the line (clean — the write
    ///   propagates downstream anyway); a miss does not allocate.
    /// * Write-back: a hit dirties the line; a miss allocates and dirties
    ///   it, reporting a dirty victim if one was evicted.
    pub fn write(&mut self, addr: u64, rng: &mut SimRng) -> CacheOutcome {
        self.tick += 1;
        let (set, way) = self.probe(addr);
        match (way, self.config.write_policy) {
            (Some(w), policy) => {
                self.hits += 1;
                let slot = &mut self.lines[set * self.config.ways + w];
                slot.stamp = self.tick;
                if policy == WritePolicy::WriteBack {
                    slot.dirty = true;
                }
                CacheOutcome {
                    hit: true,
                    victim_dirty: false,
                }
            }
            (None, WritePolicy::WriteThrough) => {
                self.misses += 1;
                CacheOutcome {
                    hit: false,
                    victim_dirty: false,
                }
            }
            (None, WritePolicy::WriteBack) => {
                self.misses += 1;
                let tag = self.line_addr(addr);
                let w = self.victim_way(set, rng);
                let slot = &mut self.lines[set * self.config.ways + w];
                let victim_dirty = slot.valid && slot.dirty;
                *slot = Line {
                    tag,
                    valid: true,
                    dirty: true,
                    stamp: self.tick,
                };
                CacheOutcome {
                    hit: false,
                    victim_dirty,
                }
            }
        }
    }

    /// Whether the line containing `addr` is currently cached (no state
    /// update; for tests and assertions).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = self.line_addr(addr);
        let set = self.set_of(line_addr);
        let base = set * self.config.ways;
        (0..self.config.ways)
            .any(|w| self.lines[base + w].valid && self.lines[base + w].tag == line_addr)
    }

    /// Number of valid lines (for capacity assertions).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(config: CacheConfig, seed: u64) -> (SetAssocCache, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let c = SetAssocCache::new(config, &mut rng).unwrap();
        (c, rng)
    }

    fn small(placement: Placement, replacement: Replacement, wp: WritePolicy) -> CacheConfig {
        CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 16,
            placement,
            replacement,
            write_policy: wp,
        }
    }

    #[test]
    fn geometry_validation() {
        let mut bad = CacheConfig::paper_l1();
        bad.sets = 3;
        assert!(bad.validate().is_err());
        bad = CacheConfig::paper_l1();
        bad.ways = 0;
        assert!(bad.validate().is_err());
        bad = CacheConfig::paper_l1();
        bad.line_bytes = 24;
        assert!(bad.validate().is_err());
        assert!(CacheConfig::paper_l1().validate().is_ok());
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1().capacity_bytes(), 4 * 1024);
        assert_eq!(
            CacheConfig::paper_l2_partition().capacity_bytes(),
            32 * 1024
        );
    }

    #[test]
    fn miss_then_hit_same_line() {
        let (mut c, mut rng) = mk(CacheConfig::paper_l1(), 7);
        assert!(!c.read(0x100, &mut rng).hit);
        assert!(c.read(0x10f, &mut rng).hit, "same 16-byte line");
        assert!(!c.read(0x110, &mut rng).hit, "next line misses");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn write_through_does_not_allocate() {
        let cfg = small(
            Placement::Modulo,
            Replacement::Lru,
            WritePolicy::WriteThrough,
        );
        let (mut c, mut rng) = mk(cfg, 3);
        assert!(!c.write(0x40, &mut rng).hit);
        assert!(!c.contains(0x40), "WT miss must not allocate");
        // After a read allocates, a write hits and leaves the line clean.
        c.read(0x40, &mut rng);
        assert!(c.write(0x40, &mut rng).hit);
        // Evicting it must not report dirty.
        // Fill the set: modulo placement, sets=4, line 16 -> stride 64.
        let conflicting = [0x40 + 64, 0x40 + 128];
        for a in conflicting {
            c.read(a, &mut rng);
        }
        // 2 ways: 0x40 got evicted by LRU on the second conflict.
        assert!(!c.contains(0x40));
    }

    #[test]
    fn write_back_allocates_and_dirty_eviction_reports() {
        let cfg = small(Placement::Modulo, Replacement::Lru, WritePolicy::WriteBack);
        let (mut c, mut rng) = mk(cfg, 3);
        assert!(!c.write(0x40, &mut rng).hit);
        assert!(c.contains(0x40), "WB miss allocates");
        // Fill both ways of the set, then evict the dirty line.
        c.read(0x40 + 64, &mut rng);
        let out = c.read(0x40 + 128, &mut rng);
        assert!(!out.hit);
        assert!(out.victim_dirty, "evicted line was dirtied by the write");
    }

    #[test]
    fn clean_eviction_not_reported_dirty() {
        let cfg = small(Placement::Modulo, Replacement::Lru, WritePolicy::WriteBack);
        let (mut c, mut rng) = mk(cfg, 3);
        c.read(0x40, &mut rng);
        c.read(0x40 + 64, &mut rng);
        let out = c.read(0x40 + 128, &mut rng);
        assert!(!out.hit);
        assert!(!out.victim_dirty);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = small(Placement::Modulo, Replacement::Lru, WritePolicy::WriteBack);
        let (mut c, mut rng) = mk(cfg, 3);
        c.read(0x40, &mut rng); // way A
        c.read(0x40 + 64, &mut rng); // way B
        c.read(0x40, &mut rng); // touch A -> B is LRU
        c.read(0x40 + 128, &mut rng); // evicts B
        assert!(c.contains(0x40));
        assert!(!c.contains(0x40 + 64));
    }

    #[test]
    fn random_placement_varies_with_seed() {
        // The same conflict-heavy address stream produces different miss
        // counts under different placement seeds — the per-run variability
        // MBPTA feeds on.
        let cfg = CacheConfig {
            sets: 16,
            ways: 1,
            line_bytes: 16,
            placement: Placement::Random,
            replacement: Replacement::Random,
            write_policy: WritePolicy::WriteBack,
        };
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 256).collect();
        let mut miss_counts = std::collections::HashSet::new();
        for seed in 0..16 {
            let (mut c, mut rng) = mk(cfg, seed);
            let mut misses = 0;
            for _ in 0..4 {
                for &a in &addrs {
                    if !c.read(a, &mut rng).hit {
                        misses += 1;
                    }
                }
            }
            miss_counts.insert(misses);
        }
        assert!(
            miss_counts.len() > 1,
            "placement must vary across seeds: {miss_counts:?}"
        );
    }

    #[test]
    fn reseed_invalidates_and_rerandomizes() {
        let (mut c, mut rng) = mk(CacheConfig::paper_l1(), 9);
        c.read(0x1000, &mut rng);
        assert!(c.contains(0x1000));
        c.reseed(&mut rng);
        assert!(!c.contains(0x1000));
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn hit_rate_accounting() {
        let (mut c, mut rng) = mk(CacheConfig::paper_l1(), 11);
        assert_eq!(c.hit_rate(), 0.0);
        c.read(0x0, &mut rng);
        c.read(0x0, &mut rng);
        c.read(0x0, &mut rng);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    /// Valid lines never exceed capacity, and immediate re-reads always
    /// hit, under randomized access streams and every policy combination.
    /// (Seed-driven in place of proptest; each case reproducible from its
    /// seed.)
    #[test]
    fn capacity_and_rehit_invariants() {
        for seed in 0..64u64 {
            let mut gen = SimRng::seed_from(seed ^ 0x5eed_cafe);
            let cfg = CacheConfig {
                sets: 8,
                ways: 2,
                line_bytes: 16,
                placement: if gen.gen_bool(0.5) {
                    Placement::Random
                } else {
                    Placement::Modulo
                },
                replacement: if gen.gen_bool(0.5) {
                    Replacement::Random
                } else {
                    Replacement::Lru
                },
                write_policy: if gen.gen_bool(0.5) {
                    WritePolicy::WriteBack
                } else {
                    WritePolicy::WriteThrough
                },
            };
            let n_accesses = gen.gen_range_usize(1..400);
            let mut rng = SimRng::seed_from(seed);
            let mut c = SetAssocCache::new(cfg, &mut rng).unwrap();
            for _ in 0..n_accesses {
                let a = gen.gen_range_u64(0..0x8000);
                if gen.gen_bool(0.5) {
                    c.write(a, &mut rng);
                } else {
                    c.read(a, &mut rng);
                }
                assert!(c.valid_lines() <= cfg.sets * cfg.ways, "seed {seed}");
                // A line present after the access must hit on re-read.
                if c.contains(a) {
                    assert!(c.read(a, &mut rng).hit, "seed {seed}, addr {a:#x}");
                }
            }
        }
    }
}
