//! MESI coherence over a shared memory segment: the directory hub that
//! turns shared-line accesses into snoop-accurate bus traffic.
//!
//! The private hierarchy ([`CoreMemory`](crate::CoreMemory)) never needs
//! coherence — the L2 is partitioned, so cores interfere only on the bus.
//! This module adds the missing piece for *shared* data: a per-line MESI
//! state machine over the per-core private caches of a shared segment.
//! The [`CoherenceHub`] is a snooping directory: it tracks every core's
//! state for every shared line, and when a core reads or writes a line it
//! returns the exact sequence of [`BusTransaction`]s the access costs —
//! demand fetches ([`RequestKind::CohRead`] / [`RequestKind::CohReadEx`]),
//! ownership upgrades ([`RequestKind::CohUpgrade`]), snoop-forced flushes
//! of remote modified copies ([`RequestKind::CohWriteback`]) and
//! invalidation acknowledgements ([`RequestKind::CohInvAck`]).
//!
//! The requester posts *all* resulting transactions, in order (a remote
//! flush first, then its own fetch, then the invalidation round-trip).
//! This keeps the workspace's one-pending-request-per-core bus invariant
//! intact while still charging the snoop path's full cost to the access
//! that caused it, and it keeps runs deterministic: the transaction
//! sequence is a pure function of the directory state.
//!
//! # State machine
//!
//! ```text
//!            ┌────────────────── read (no remote copy) ── CohRead ──┐
//!            │                                                      ▼
//!   ┌───┐ write hit (silent)  ┌───┐   remote read (flush)   ┌───┐
//!   │ M │ ◄─────────────────  │ E │ ─────────────────────►  │ S │
//!   └───┘                     └───┘                          └───┘
//!     ▲  ▲                                                    │  ▲
//!     │  └── write: CohUpgrade (+CohInvAck if sharers) ───────┘  │
//!     │                                                          │
//!     │   write: [CohWriteback,] CohReadEx [+CohInvAck]   ┌───┐  │
//!     └─────────────────────────────────────────────────  │ I │ ─┘
//!                                                         └───┘
//!                                        read (remote M flushes): CohWriteback + CohRead
//! ```
//!
//! Each line also carries a **version counter**: writes increment it,
//! reads record the version the reader observed. The counters never feed
//! back into the transaction planning (so they cost nothing and cannot
//! perturb determinism); they exist so the property suites can assert the
//! memory-consistency half of the MESI contract — a reader entering S
//! always observes the version of the *last* writeback.

use crate::hierarchy::BusTransaction;
use crate::latency::LatencyModel;
use crate::MemError;
use cba_bus::RequestKind;
use sim_core::CoreId;
use std::cell::RefCell;
use std::rc::Rc;

/// Line size of the shared segment (matches the private caches).
pub const SHARED_LINE_BYTES: u64 = 16;

/// Configuration of the memory-agent subsystem: the synthetic address
/// stream, the private L1 geometry and the shared coherent segment.
///
/// Scenario files configure this through the `[memory]` section; sweeps
/// vary it through the `mem_working_set` / `share_frac` / `write_frac` /
/// `l1_sets` axes.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Private working-set size per core, in bytes (walked with
    /// 16-byte-line granularity).
    pub working_set: u64,
    /// Memory accesses each agent performs before finishing.
    pub accesses: u64,
    /// Fraction of accesses that are stores, in `[0, 1]`.
    pub write_frac: f64,
    /// Fraction of a `shared` agent's accesses that target the shared
    /// coherent segment, in `[0, 1]` (ignored by private `mem` agents).
    pub share_frac: f64,
    /// Number of 16-byte lines in the shared coherent segment.
    pub shared_lines: usize,
    /// Probability that a private access continues the sequential walk
    /// (the rest jump uniformly inside the working set), in `[0, 1]`.
    pub locality: f64,
    /// Compute cycles between consecutive accesses.
    pub think: u32,
    /// Private L1 sets (power of two; overrides the paper geometry).
    pub l1_sets: usize,
    /// Private L1 ways.
    pub l1_ways: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            working_set: 4096,
            accesses: 2000,
            write_frac: 0.25,
            share_frac: 0.2,
            shared_lines: 64,
            locality: 0.85,
            think: 4,
            l1_sets: 64,
            l1_ways: 4,
        }
    }
}

impl MemoryConfig {
    /// Validates every field's domain.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), MemError> {
        if self.working_set < SHARED_LINE_BYTES {
            return Err(MemError::InvalidConfig(format!(
                "working_set must be at least one {SHARED_LINE_BYTES}-byte line, got {}",
                self.working_set
            )));
        }
        if self.accesses == 0 {
            return Err(MemError::InvalidConfig("accesses must be positive".into()));
        }
        for (name, v) in [
            ("write_frac", self.write_frac),
            ("share_frac", self.share_frac),
            ("locality", self.locality),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(MemError::InvalidConfig(format!(
                    "{name} must be within [0, 1], got {v}"
                )));
            }
        }
        if self.shared_lines == 0 {
            return Err(MemError::InvalidConfig(
                "shared_lines must be positive".into(),
            ));
        }
        self.hierarchy().validate()
    }

    /// The private cache geometry the agent runs: the paper hierarchy
    /// with the L1s resized to `l1_sets` × `l1_ways`.
    pub fn hierarchy(&self) -> crate::HierarchyConfig {
        let mut h = crate::HierarchyConfig::paper();
        h.l1i.sets = self.l1_sets;
        h.l1i.ways = self.l1_ways;
        h.l1d.sets = self.l1_sets;
        h.l1d.ways = self.l1_ways;
        h
    }

    /// Number of 16-byte lines in the private working set (at least 1 by
    /// validation).
    pub fn working_set_lines(&self) -> u64 {
        self.working_set / SHARED_LINE_BYTES
    }
}

/// One core's MESI state for one shared line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MesiState {
    /// Modified: sole copy, dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: one of possibly many clean copies.
    Shared,
    /// Invalid: no copy.
    #[default]
    Invalid,
}

impl MesiState {
    /// Whether this state holds a valid copy of the line.
    pub fn has_copy(self) -> bool {
        self != MesiState::Invalid
    }
}

/// Per-line directory entry: every core's state plus the observational
/// version counters (see the module docs).
#[derive(Debug, Clone)]
struct Line {
    states: Vec<MesiState>,
    /// Incremented on every write; what a "writeback" makes visible.
    version: u64,
    /// The version each core last observed (read or wrote).
    observed: Vec<u64>,
}

/// The snooping MESI directory for one run's shared segment.
///
/// Shared by every coherent agent of the run through a [`SharedHub`]; the
/// platform creates one hub per run, so directory state never leaks
/// across runs.
#[derive(Debug, Clone)]
pub struct CoherenceHub {
    n_cores: usize,
    lines: Vec<Line>,
}

impl CoherenceHub {
    /// A cold directory: `n_lines` shared lines, every copy Invalid.
    pub fn new(n_cores: usize, n_lines: usize) -> Self {
        CoherenceHub {
            n_cores,
            lines: vec![
                Line {
                    states: vec![MesiState::Invalid; n_cores],
                    version: 0,
                    observed: vec![0; n_cores],
                };
                n_lines
            ],
        }
    }

    /// Number of shared lines tracked.
    pub fn n_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of cores tracked.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// `core`'s MESI state for `line`.
    pub fn state(&self, core: CoreId, line: usize) -> MesiState {
        self.lines[line].states[core.index()]
    }

    /// The line's write-version counter (observational only).
    pub fn version(&self, line: usize) -> u64 {
        self.lines[line].version
    }

    /// The version `core` last observed on `line` (observational only).
    pub fn observed_version(&self, core: CoreId, line: usize) -> u64 {
        self.lines[line].observed[core.index()]
    }

    /// Cores currently holding `line` in Modified state (the MESI
    /// invariant suite asserts this never exceeds 1).
    pub fn modified_copies(&self, line: usize) -> usize {
        self.lines[line]
            .states
            .iter()
            .filter(|s| **s == MesiState::Modified)
            .count()
    }

    /// A read of `line` by `core`: applies the MESI transition and
    /// returns the bus transactions the requester must post, in order.
    ///
    /// Hits (M/E/S) cost nothing; an Invalid copy fetches with
    /// [`RequestKind::CohRead`], preceded by a
    /// [`RequestKind::CohWriteback`] when a sibling holds the line
    /// Modified.
    pub fn read(&mut self, core: CoreId, line: usize, lat: &LatencyModel) -> Vec<BusTransaction> {
        let me = core.index();
        let entry = &mut self.lines[line];
        let mut txns = Vec::new();
        if entry.states[me].has_copy() {
            entry.observed[me] = entry.version;
            return txns;
        }
        let remote_m = entry
            .states
            .iter()
            .enumerate()
            .any(|(i, s)| i != me && *s == MesiState::Modified);
        let remote_copy = entry
            .states
            .iter()
            .enumerate()
            .any(|(i, s)| i != me && s.has_copy());
        if remote_m {
            // The dirty sibling flushes before the fetch; both end Shared.
            txns.push(BusTransaction {
                duration: lat.mem_access,
                kind: RequestKind::CohWriteback,
            });
        }
        txns.push(BusTransaction {
            duration: lat.mem_access,
            kind: RequestKind::CohRead,
        });
        for s in entry.states.iter_mut() {
            if s.has_copy() {
                *s = MesiState::Shared;
            }
        }
        entry.states[me] = if remote_copy {
            MesiState::Shared
        } else {
            MesiState::Exclusive
        };
        entry.observed[me] = entry.version;
        txns
    }

    /// A write of `line` by `core`: applies the MESI transition and
    /// returns the bus transactions the requester must post, in order.
    ///
    /// M hits are silent, E upgrades to M silently; an S copy claims
    /// ownership with [`RequestKind::CohUpgrade`], an Invalid copy
    /// fetches with [`RequestKind::CohReadEx`] (preceded by a
    /// [`RequestKind::CohWriteback`] of a remote Modified copy). Either
    /// path appends a [`RequestKind::CohInvAck`] when at least one
    /// sibling copy had to invalidate.
    pub fn write(&mut self, core: CoreId, line: usize, lat: &LatencyModel) -> Vec<BusTransaction> {
        let me = core.index();
        let entry = &mut self.lines[line];
        let mut txns = Vec::new();
        match entry.states[me] {
            MesiState::Modified => {}
            MesiState::Exclusive => {
                entry.states[me] = MesiState::Modified;
            }
            MesiState::Shared => {
                txns.push(BusTransaction {
                    duration: lat.l2_write_hit,
                    kind: RequestKind::CohUpgrade,
                });
                let mut invalidated = false;
                for (i, s) in entry.states.iter_mut().enumerate() {
                    if i != me && s.has_copy() {
                        *s = MesiState::Invalid;
                        invalidated = true;
                    }
                }
                if invalidated {
                    txns.push(BusTransaction {
                        duration: lat.l2_read_hit,
                        kind: RequestKind::CohInvAck,
                    });
                }
                entry.states[me] = MesiState::Modified;
            }
            MesiState::Invalid => {
                let remote_m = entry
                    .states
                    .iter()
                    .enumerate()
                    .any(|(i, s)| i != me && *s == MesiState::Modified);
                if remote_m {
                    txns.push(BusTransaction {
                        duration: lat.mem_access,
                        kind: RequestKind::CohWriteback,
                    });
                }
                txns.push(BusTransaction {
                    duration: lat.mem_access,
                    kind: RequestKind::CohReadEx,
                });
                let mut invalidated = false;
                for (i, s) in entry.states.iter_mut().enumerate() {
                    if i != me && s.has_copy() {
                        *s = MesiState::Invalid;
                        invalidated = true;
                    }
                }
                if invalidated {
                    txns.push(BusTransaction {
                        duration: lat.l2_read_hit,
                        kind: RequestKind::CohInvAck,
                    });
                }
                entry.states[me] = MesiState::Modified;
            }
        }
        entry.version += 1;
        entry.observed[me] = entry.version;
        txns
    }

    /// Drops every copy `core` holds (its private cache of the shared
    /// segment goes cold), for agent reset. Versions are observational
    /// and keep counting; once every agent of a run has reset, the
    /// directory's *behavior-relevant* state equals a fresh hub's.
    pub fn reset_core(&mut self, core: CoreId) {
        let me = core.index();
        for line in &mut self.lines {
            line.states[me] = MesiState::Invalid;
        }
    }

    /// Checks the two-core MESI safety invariants over every line:
    /// at most one Modified copy, and a Modified copy never coexists
    /// with any other valid copy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated line.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, line) in self.lines.iter().enumerate() {
            let m = line
                .states
                .iter()
                .filter(|s| **s == MesiState::Modified)
                .count();
            let valid = line.states.iter().filter(|s| s.has_copy()).count();
            if m > 1 {
                return Err(format!("line {i}: {m} Modified copies"));
            }
            if m == 1 && valid > 1 {
                return Err(format!(
                    "line {i}: a Modified copy coexists with {} other valid copies",
                    valid - 1
                ));
            }
        }
        Ok(())
    }
}

/// The per-run handle coherent agents share: single-threaded interior
/// mutability (runs are single-threaded; campaigns parallelize across
/// whole runs, each with its own hub).
pub type SharedHub = Rc<RefCell<CoherenceHub>>;

/// Creates a fresh [`SharedHub`] for one run.
pub fn shared_hub(n_cores: usize, n_lines: usize) -> SharedHub {
    Rc::new(RefCell::new(CoherenceHub::new(n_cores, n_lines)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn kinds(txns: &[BusTransaction]) -> Vec<RequestKind> {
        txns.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn config_validation_rejects_bad_domains() {
        assert!(MemoryConfig::default().validate().is_ok());
        let cases = [
            MemoryConfig {
                working_set: 0,
                ..Default::default()
            },
            MemoryConfig {
                share_frac: 1.5,
                ..Default::default()
            },
            MemoryConfig {
                accesses: 0,
                ..Default::default()
            },
            MemoryConfig {
                shared_lines: 0,
                ..Default::default()
            },
            MemoryConfig {
                l1_sets: 3, // not a power of two
                ..Default::default()
            },
        ];
        for m in cases {
            assert!(m.validate().is_err(), "{m:?} must be rejected");
        }
    }

    #[test]
    fn cold_read_is_exclusive_then_hits() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 4);
        let txns = hub.read(c(0), 0, &lat);
        assert_eq!(kinds(&txns), [RequestKind::CohRead]);
        assert_eq!(hub.state(c(0), 0), MesiState::Exclusive);
        assert!(hub.read(c(0), 0, &lat).is_empty(), "E read is a hit");
    }

    #[test]
    fn second_reader_downgrades_to_shared() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 4);
        hub.read(c(0), 0, &lat);
        let txns = hub.read(c(1), 0, &lat);
        assert_eq!(kinds(&txns), [RequestKind::CohRead]);
        assert_eq!(hub.state(c(0), 0), MesiState::Shared);
        assert_eq!(hub.state(c(1), 0), MesiState::Shared);
    }

    #[test]
    fn write_to_exclusive_is_silent() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 4);
        hub.read(c(0), 0, &lat);
        let txns = hub.write(c(0), 0, &lat);
        assert!(txns.is_empty(), "E -> M is a silent upgrade");
        assert_eq!(hub.state(c(0), 0), MesiState::Modified);
    }

    #[test]
    fn shared_writer_upgrades_and_invalidates() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 4);
        hub.read(c(0), 0, &lat);
        hub.read(c(1), 0, &lat);
        let txns = hub.write(c(0), 0, &lat);
        assert_eq!(
            kinds(&txns),
            [RequestKind::CohUpgrade, RequestKind::CohInvAck]
        );
        assert_eq!(hub.state(c(0), 0), MesiState::Modified);
        assert_eq!(hub.state(c(1), 0), MesiState::Invalid);
    }

    #[test]
    fn cold_write_fetches_exclusively() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 4);
        let txns = hub.write(c(0), 0, &lat);
        assert_eq!(kinds(&txns), [RequestKind::CohReadEx]);
        assert_eq!(hub.state(c(0), 0), MesiState::Modified);
    }

    #[test]
    fn remote_modified_flushes_before_read_and_write() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 4);
        hub.write(c(0), 0, &lat);
        let txns = hub.read(c(1), 0, &lat);
        assert_eq!(
            kinds(&txns),
            [RequestKind::CohWriteback, RequestKind::CohRead]
        );
        assert_eq!(hub.state(c(0), 0), MesiState::Shared);
        assert_eq!(hub.state(c(1), 0), MesiState::Shared);

        let mut hub = CoherenceHub::new(2, 4);
        hub.write(c(0), 0, &lat);
        let txns = hub.write(c(1), 0, &lat);
        assert_eq!(
            kinds(&txns),
            [
                RequestKind::CohWriteback,
                RequestKind::CohReadEx,
                RequestKind::CohInvAck
            ]
        );
        assert_eq!(hub.state(c(0), 0), MesiState::Invalid);
        assert_eq!(hub.state(c(1), 0), MesiState::Modified);
    }

    #[test]
    fn durations_respect_the_latency_model() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 1);
        hub.write(c(0), 0, &lat);
        for t in hub.write(c(1), 0, &lat) {
            assert!(t.duration >= 1 && t.duration <= lat.max_latency());
        }
    }

    /// Property: under a random two-core access mix, no line ever holds
    /// two Modified copies (or M next to any valid copy), and a reader
    /// entering S observes the version of the last write.
    #[test]
    fn random_mix_preserves_mesi_invariants() {
        let lat = LatencyModel::paper();
        let mut rng = SimRng::seed_from(0xC0FFEE);
        for n_cores in [2, 4] {
            let mut hub = CoherenceHub::new(n_cores, 8);
            for _ in 0..5_000 {
                let core = c(rng.gen_range_usize(0..n_cores));
                let line = rng.gen_range_usize(0..8);
                if rng.gen_bool(0.4) {
                    hub.write(core, line, &lat);
                } else {
                    hub.read(core, line, &lat);
                    assert_eq!(
                        hub.observed_version(core, line),
                        hub.version(line),
                        "an S/E reader must see the last writeback"
                    );
                }
                hub.check_invariants().expect("MESI safety");
            }
        }
    }

    #[test]
    fn reset_core_drops_only_that_cores_copies() {
        let lat = LatencyModel::paper();
        let mut hub = CoherenceHub::new(2, 2);
        hub.read(c(0), 0, &lat);
        hub.read(c(1), 0, &lat);
        hub.write(c(1), 1, &lat);
        hub.reset_core(c(1));
        assert_eq!(hub.state(c(1), 0), MesiState::Invalid);
        assert_eq!(hub.state(c(1), 1), MesiState::Invalid);
        assert_eq!(hub.state(c(0), 0), MesiState::Shared);
        hub.check_invariants().expect("reset keeps safety");
    }
}
