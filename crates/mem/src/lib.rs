//! Memory-hierarchy substrate of the modeled platform.
//!
//! The paper's FPGA prototype pairs each LEON3 core with private L1
//! instruction/data caches and connects all cores through the shared bus to
//! a **partitioned** L2 and a DDR2 memory controller. Two properties matter
//! for the experiments and are modeled faithfully here:
//!
//! 1. **Randomization.** Caches implement random placement and random
//!    replacement so that execution times are probabilistic and
//!    measurement-based probabilistic timing analysis (MBPTA) applies. A
//!    fresh placement seed is drawn per run ([`SetAssocCache::reseed`]),
//!    which is why the evaluation averages over 1,000 runs.
//! 2. **Partitioning.** Each core owns a private slice of the L2
//!    ([`PartitionedL2`]), so cores never evict each other's lines — the
//!    *only* inter-core interference left is bus bandwidth, exactly the
//!    effect CBA regulates.
//!
//! [`LatencyModel`] maps each access outcome to the bus transaction
//! duration of the paper's Section IV.A: 5 cycles for an L2 read hit up to
//! 56 cycles for a dirty miss or an atomic operation (two memory accesses
//! of 28 cycles). [`CoreMemory`] bundles one core's L1s and L2 partition
//! and classifies a memory access into "L1 hit" or "bus transaction of
//! duration d".
//!
//! # Example
//!
//! ```
//! use cba_mem::{CacheConfig, CoreMemory, HierarchyConfig, LatencyModel, MemAccess};
//! use sim_core::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(42);
//! let mut mem = CoreMemory::new(&HierarchyConfig::paper(), &mut rng);
//! let lat = LatencyModel::paper();
//!
//! // A cold load misses everywhere: one 28-cycle memory transaction.
//! let outcome = mem.access(MemAccess::load(0x1000), &mut rng);
//! let bus = outcome.bus_transaction(&lat).expect("cold miss goes to the bus");
//! assert_eq!(bus.duration, 28);
//!
//! // Re-touching the same line hits in L1: no bus traffic.
//! let outcome = mem.access(MemAccess::load(0x1004), &mut rng);
//! assert!(outcome.bus_transaction(&lat).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod cache;
pub mod hierarchy;
pub mod l2;
pub mod latency;

pub use access::{AccessKind, MemAccess};
pub use cache::{CacheConfig, CacheOutcome, Placement, Replacement, SetAssocCache, WritePolicy};
pub use hierarchy::{AccessOutcome, BusTransaction, CoreMemory, HierarchyConfig};
pub use l2::PartitionedL2;
pub use latency::LatencyModel;

use std::fmt;

/// Errors reported by memory-hierarchy constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A configuration value was outside its documented domain.
    InvalidConfig(String),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidConfig(why) => write!(f, "invalid memory configuration: {why}"),
        }
    }
}

impl std::error::Error for MemError {}
