#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod cache;
pub mod coherence;
pub mod hierarchy;
pub mod l2;
pub mod latency;

pub use access::{AccessKind, MemAccess};
pub use cache::{CacheConfig, CacheOutcome, Placement, Replacement, SetAssocCache, WritePolicy};
pub use coherence::{shared_hub, CoherenceHub, MemoryConfig, MesiState, SharedHub};
pub use hierarchy::{AccessOutcome, BusTransaction, CoreMemory, HierarchyConfig};
pub use l2::PartitionedL2;
pub use latency::LatencyModel;

use std::fmt;

/// Errors reported by memory-hierarchy constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A configuration value was outside its documented domain.
    InvalidConfig(String),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidConfig(why) => write!(f, "invalid memory configuration: {why}"),
        }
    }
}

impl std::error::Error for MemError {}
