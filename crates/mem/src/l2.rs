//! The shared, per-core-partitioned L2 cache.

use crate::cache::{CacheConfig, CacheOutcome, SetAssocCache};
use crate::MemError;
use sim_core::rng::SimRng;
use sim_core::CoreId;

/// The platform's shared L2: one private partition per core.
///
/// Partitioning (here: disjoint storage per core, equivalent to strict
/// way/bank partitioning) removes all *storage* interference between cores
/// — core `i` can never evict core `j`'s lines. What remains shared is the
/// bus in front of the L2, which is exactly the paper's experimental
/// setting: contention effects are bandwidth effects.
///
/// # Example
///
/// ```
/// use cba_mem::{CacheConfig, PartitionedL2};
/// use sim_core::{CoreId, rng::SimRng};
///
/// let mut rng = SimRng::seed_from(3);
/// let mut l2 = PartitionedL2::new(4, CacheConfig::paper_l2_partition(), &mut rng)?;
/// let c0 = CoreId::from_index(0);
/// let c1 = CoreId::from_index(1);
/// l2.read(c0, 0x9000, &mut rng);
/// // Core 1 hammering the same address leaves core 0's partition intact.
/// for _ in 0..10_000 { l2.read(c1, 0x9000, &mut rng); }
/// assert!(l2.partition(c0).contains(0x9000));
/// # Ok::<(), cba_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedL2 {
    partitions: Vec<SetAssocCache>,
}

impl PartitionedL2 {
    /// Creates an L2 with `n_cores` partitions of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] if `n_cores == 0` or the
    /// partition geometry is invalid.
    pub fn new(
        n_cores: usize,
        partition_config: CacheConfig,
        rng: &mut SimRng,
    ) -> Result<Self, MemError> {
        if n_cores == 0 {
            return Err(MemError::InvalidConfig("n_cores must be positive".into()));
        }
        let partitions = (0..n_cores)
            .map(|_| SetAssocCache::new(partition_config, rng))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PartitionedL2 { partitions })
    }

    /// Number of partitions (= cores).
    pub fn n_cores(&self) -> usize {
        self.partitions.len()
    }

    /// Read access by `core` into its own partition.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the platform.
    pub fn read(&mut self, core: CoreId, addr: u64, rng: &mut SimRng) -> CacheOutcome {
        self.partitions[core.index()].read(addr, rng)
    }

    /// Write access by `core` into its own partition.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the platform.
    pub fn write(&mut self, core: CoreId, addr: u64, rng: &mut SimRng) -> CacheOutcome {
        self.partitions[core.index()].write(addr, rng)
    }

    /// Immutable view of one core's partition.
    pub fn partition(&self, core: CoreId) -> &SetAssocCache {
        &self.partitions[core.index()]
    }

    /// Reseeds (invalidates + re-randomizes placement of) every partition.
    pub fn reseed(&mut self, rng: &mut SimRng) {
        for p in &mut self.partitions {
            p.reseed(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn mk() -> (PartitionedL2, SimRng) {
        let mut rng = SimRng::seed_from(21);
        let l2 = PartitionedL2::new(4, CacheConfig::paper_l2_partition(), &mut rng).unwrap();
        (l2, rng)
    }

    #[test]
    fn partitions_are_isolated() {
        let (mut l2, mut rng) = mk();
        // Core 0 loads a working set.
        for i in 0..64u64 {
            l2.read(c(0), i * 16, &mut rng);
        }
        let lines_before = l2.partition(c(0)).valid_lines();
        // Core 1 thrashes far beyond its partition capacity.
        for i in 0..100_000u64 {
            l2.read(c(1), i * 16, &mut rng);
        }
        assert_eq!(
            l2.partition(c(0)).valid_lines(),
            lines_before,
            "core 1 must not evict core 0's lines"
        );
        for i in 0..64u64 {
            assert!(l2.partition(c(0)).contains(i * 16));
        }
    }

    #[test]
    fn per_partition_statistics() {
        let (mut l2, mut rng) = mk();
        l2.read(c(2), 0x100, &mut rng);
        l2.read(c(2), 0x100, &mut rng);
        assert_eq!(l2.partition(c(2)).hits(), 1);
        assert_eq!(l2.partition(c(2)).misses(), 1);
        assert_eq!(l2.partition(c(3)).hits() + l2.partition(c(3)).misses(), 0);
    }

    #[test]
    fn writes_dirty_own_partition_only() {
        let (mut l2, mut rng) = mk();
        l2.write(c(0), 0x200, &mut rng);
        assert!(l2.partition(c(0)).contains(0x200));
        assert!(!l2.partition(c(1)).contains(0x200));
    }

    #[test]
    fn reseed_clears_all_partitions() {
        let (mut l2, mut rng) = mk();
        for i in 0..4 {
            l2.read(c(i), 0x300, &mut rng);
        }
        l2.reseed(&mut rng);
        for i in 0..4 {
            assert_eq!(l2.partition(c(i)).valid_lines(), 0);
        }
    }

    #[test]
    fn zero_cores_rejected() {
        let mut rng = SimRng::seed_from(0);
        assert!(PartitionedL2::new(0, CacheConfig::paper_l2_partition(), &mut rng).is_err());
    }
}
