//! One core's private view of the memory hierarchy and the access
//! classifier that turns memory operations into bus transactions.

use crate::access::{AccessKind, MemAccess};
use crate::cache::{CacheConfig, SetAssocCache};
use crate::latency::LatencyModel;
use crate::MemError;
use cba_bus::RequestKind;
use sim_core::rng::SimRng;

/// Cache geometry for one core: L1I, L1D and its L2 partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache (write-through on the platform).
    pub l1d: CacheConfig,
    /// This core's private partition of the shared L2 (write-back).
    pub l2_partition: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's platform geometry.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::paper_l1(),
            l1d: CacheConfig::paper_l1(),
            l2_partition: CacheConfig::paper_l2_partition(),
        }
    }

    /// Validates all three cache geometries.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MemError::InvalidConfig`] found.
    pub fn validate(&self) -> Result<(), MemError> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2_partition.validate()
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Classification of one memory access by the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Served by the private L1: no bus traffic.
    L1Hit,
    /// L1 miss, L2 read hit (5-cycle bus transaction).
    L2ReadHit,
    /// Write-through store absorbed by the L2 (6-cycle bus transaction).
    L2WriteHit,
    /// L2 miss with a clean victim: one memory access (28 cycles).
    L2MissClean,
    /// L2 miss evicting a dirty line: write-back + fetch (56 cycles).
    L2MissDirty,
    /// Atomic read-modify-write: uncached, two memory accesses (56
    /// cycles).
    Atomic,
}

/// A classified bus transaction: duration plus trace kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTransaction {
    /// Bus hold time in cycles.
    pub duration: u32,
    /// Trace classification for the bus layer.
    pub kind: RequestKind,
}

impl AccessOutcome {
    /// Maps the outcome to its bus transaction under `lat`, or `None` for
    /// L1 hits (which never reach the bus).
    pub fn bus_transaction(&self, lat: &LatencyModel) -> Option<BusTransaction> {
        match self {
            AccessOutcome::L1Hit => None,
            AccessOutcome::L2ReadHit => Some(BusTransaction {
                duration: lat.l2_read_hit,
                kind: RequestKind::L2ReadHit,
            }),
            AccessOutcome::L2WriteHit => Some(BusTransaction {
                duration: lat.l2_write_hit,
                kind: RequestKind::L2Write,
            }),
            AccessOutcome::L2MissClean => Some(BusTransaction {
                duration: lat.miss_clean(),
                kind: RequestKind::L2MissClean,
            }),
            AccessOutcome::L2MissDirty => Some(BusTransaction {
                duration: lat.miss_dirty(),
                kind: RequestKind::L2MissDirty,
            }),
            AccessOutcome::Atomic => Some(BusTransaction {
                duration: lat.atomic(),
                kind: RequestKind::Atomic,
            }),
        }
    }
}

/// Per-outcome access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 hits (no bus traffic).
    pub l1_hits: u64,
    /// L2 read hits.
    pub l2_read_hits: u64,
    /// L2 write (write-through) transactions.
    pub l2_writes: u64,
    /// Clean L2 misses.
    pub misses_clean: u64,
    /// Dirty-victim L2 misses.
    pub misses_dirty: u64,
    /// Atomic operations.
    pub atomics: u64,
}

impl HierarchyStats {
    /// Total accesses classified.
    pub fn total(&self) -> u64 {
        self.l1_hits
            + self.l2_read_hits
            + self.l2_writes
            + self.misses_clean
            + self.misses_dirty
            + self.atomics
    }

    /// Accesses that produced bus traffic.
    pub fn bus_accesses(&self) -> u64 {
        self.total() - self.l1_hits
    }
}

/// One core's private memory hierarchy: L1I, L1D, and its L2 partition.
///
/// Because the L2 is partitioned, the entire hierarchy is private state —
/// cores interfere only on the bus. Classification happens at access time
/// (the partition's content depends only on this core's own history, so
/// this is exact).
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct CoreMemory {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    stats: HierarchyStats,
}

impl CoreMemory {
    /// Creates the hierarchy, drawing placement seeds from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; validate with
    /// [`HierarchyConfig::validate`] first when the geometry is
    /// user-supplied.
    pub fn new(config: &HierarchyConfig, rng: &mut SimRng) -> Self {
        config.validate().expect("invalid hierarchy configuration");
        CoreMemory {
            l1i: SetAssocCache::new(config.l1i, rng).expect("validated"),
            l1d: SetAssocCache::new(config.l1d, rng).expect("validated"),
            l2: SetAssocCache::new(config.l2_partition, rng).expect("validated"),
            stats: HierarchyStats::default(),
        }
    }

    /// Classifies (and performs) one memory access.
    pub fn access(&mut self, access: MemAccess, rng: &mut SimRng) -> AccessOutcome {
        let outcome = match access.kind() {
            AccessKind::Atomic => AccessOutcome::Atomic,
            AccessKind::IFetch => {
                if self.l1i.read(access.addr(), rng).hit {
                    AccessOutcome::L1Hit
                } else {
                    self.l2_fill(access.addr(), rng)
                }
            }
            AccessKind::Load => {
                if self.l1d.read(access.addr(), rng).hit {
                    AccessOutcome::L1Hit
                } else {
                    self.l2_fill(access.addr(), rng)
                }
            }
            AccessKind::Store => {
                // Write-through, no-allocate L1: update on hit, and always
                // forward the store to the L2 over the bus.
                let _ = self.l1d.write(access.addr(), rng);
                let out = self.l2.write(access.addr(), rng);
                if out.hit {
                    AccessOutcome::L2WriteHit
                } else if out.victim_dirty {
                    AccessOutcome::L2MissDirty
                } else {
                    AccessOutcome::L2MissClean
                }
            }
        };
        match outcome {
            AccessOutcome::L1Hit => self.stats.l1_hits += 1,
            AccessOutcome::L2ReadHit => self.stats.l2_read_hits += 1,
            AccessOutcome::L2WriteHit => self.stats.l2_writes += 1,
            AccessOutcome::L2MissClean => self.stats.misses_clean += 1,
            AccessOutcome::L2MissDirty => self.stats.misses_dirty += 1,
            AccessOutcome::Atomic => self.stats.atomics += 1,
        }
        outcome
    }

    fn l2_fill(&mut self, addr: u64, rng: &mut SimRng) -> AccessOutcome {
        let out = self.l2.read(addr, rng);
        if out.hit {
            AccessOutcome::L2ReadHit
        } else if out.victim_dirty {
            AccessOutcome::L2MissDirty
        } else {
            AccessOutcome::L2MissClean
        }
    }

    /// The classification counters.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// The L1 data cache (for inspection).
    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    /// The L1 instruction cache (for inspection).
    pub fn l1i(&self) -> &SetAssocCache {
        &self.l1i
    }

    /// This core's L2 partition (for inspection).
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Starts a fresh run: invalidates everything, re-randomizes placement
    /// and clears counters.
    pub fn reseed(&mut self, rng: &mut SimRng) {
        self.l1i.reseed(rng);
        self.l1d.reseed(rng);
        self.l2.reseed(rng);
        self.stats = HierarchyStats::default();
    }

    /// Restores the hierarchy to fresh-construction state: given the same
    /// `rng` stream a fresh [`CoreMemory::new`] would have consumed, the
    /// reset hierarchy behaves bit-identically to a newly built one (the
    /// seed-equivalence contract the `reset_reuse` conformance suite
    /// pins for every agent).
    pub fn reset(&mut self, rng: &mut SimRng) {
        self.reseed(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seed: u64) -> (CoreMemory, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let mem = CoreMemory::new(&HierarchyConfig::paper(), &mut rng);
        (mem, rng)
    }

    #[test]
    fn cold_load_misses_to_memory_then_hits_in_l1() {
        let (mut mem, mut rng) = mk(1);
        assert_eq!(
            mem.access(MemAccess::load(0x1000), &mut rng),
            AccessOutcome::L2MissClean
        );
        assert_eq!(
            mem.access(MemAccess::load(0x1000), &mut rng),
            AccessOutcome::L1Hit
        );
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let (mut mem, mut rng) = mk(2);
        mem.access(MemAccess::load(0x1000), &mut rng);
        // Thrash L1D (4 KiB) with a 64 KiB sweep; L2 partition (32 KiB)
        // keeps a superset including 0x1000 with high probability... but
        // eviction is random, so instead check the classification path
        // explicitly: the line is in L2, not in L1.
        let mut evicted_from_l1 = false;
        for i in 0..4096u64 {
            mem.access(MemAccess::load(0x10_0000 + i * 16), &mut rng);
            if !mem.l1d().contains(0x1000) {
                evicted_from_l1 = true;
                break;
            }
        }
        assert!(evicted_from_l1, "L1 must eventually evict under thrash");
        if mem.l2().contains(0x1000) {
            assert_eq!(
                mem.access(MemAccess::load(0x1000), &mut rng),
                AccessOutcome::L2ReadHit
            );
        }
    }

    #[test]
    fn stores_always_reach_the_bus() {
        let (mut mem, mut rng) = mk(3);
        // Even a store to an L1-resident line produces a bus transaction
        // (write-through).
        mem.access(MemAccess::load(0x2000), &mut rng);
        let out = mem.access(MemAccess::store(0x2000), &mut rng);
        assert_eq!(out, AccessOutcome::L2WriteHit);
        assert!(out.bus_transaction(&LatencyModel::paper()).is_some());
    }

    #[test]
    fn store_to_cold_line_allocates_in_l2() {
        let (mut mem, mut rng) = mk(4);
        assert_eq!(
            mem.access(MemAccess::store(0x3000), &mut rng),
            AccessOutcome::L2MissClean
        );
        assert!(
            mem.l2().contains(0x3000),
            "write-back L2 allocates on store"
        );
        assert!(!mem.l1d().contains(0x3000), "write-through L1 does not");
    }

    #[test]
    fn dirty_eviction_produces_two_access_transaction() {
        let (mut mem, mut rng) = mk(5);
        // Dirty many L2 lines, then force misses until a dirty victim is
        // evicted.
        for i in 0..2048u64 {
            mem.access(MemAccess::store(i * 16), &mut rng);
        }
        let mut saw_dirty_miss = false;
        for i in 0..8192u64 {
            let out = mem.access(MemAccess::load(0x100_0000 + i * 16), &mut rng);
            if out == AccessOutcome::L2MissDirty {
                saw_dirty_miss = true;
                break;
            }
        }
        assert!(
            saw_dirty_miss,
            "dirty evictions must occur under store pressure"
        );
    }

    #[test]
    fn atomics_bypass_caches() {
        let (mut mem, mut rng) = mk(6);
        mem.access(MemAccess::load(0x4000), &mut rng);
        assert_eq!(
            mem.access(MemAccess::atomic(0x4000), &mut rng),
            AccessOutcome::Atomic
        );
        // Twice in a row: still Atomic, never cached.
        assert_eq!(
            mem.access(MemAccess::atomic(0x4000), &mut rng),
            AccessOutcome::Atomic
        );
    }

    #[test]
    fn ifetch_uses_l1i_not_l1d() {
        let (mut mem, mut rng) = mk(7);
        mem.access(MemAccess::ifetch(0x5000), &mut rng);
        assert_eq!(
            mem.access(MemAccess::ifetch(0x5000), &mut rng),
            AccessOutcome::L1Hit
        );
        // The same address through the data path still misses L1D (but hits
        // in the shared L2 partition).
        let out = mem.access(MemAccess::load(0x5000), &mut rng);
        assert_eq!(out, AccessOutcome::L2ReadHit);
    }

    #[test]
    fn transaction_durations_match_latency_model() {
        let lat = LatencyModel::paper();
        let cases = [
            (AccessOutcome::L1Hit, None),
            (AccessOutcome::L2ReadHit, Some(5)),
            (AccessOutcome::L2WriteHit, Some(6)),
            (AccessOutcome::L2MissClean, Some(28)),
            (AccessOutcome::L2MissDirty, Some(56)),
            (AccessOutcome::Atomic, Some(56)),
        ];
        for (outcome, expect) in cases {
            assert_eq!(
                outcome.bus_transaction(&lat).map(|t| t.duration),
                expect,
                "{outcome:?}"
            );
        }
    }

    #[test]
    fn durations_never_exceed_maxl() {
        let lat = LatencyModel::paper();
        for outcome in [
            AccessOutcome::L2ReadHit,
            AccessOutcome::L2WriteHit,
            AccessOutcome::L2MissClean,
            AccessOutcome::L2MissDirty,
            AccessOutcome::Atomic,
        ] {
            let t = outcome.bus_transaction(&lat).unwrap();
            assert!(t.duration <= lat.max_latency());
        }
    }

    #[test]
    fn stats_accounting() {
        let (mut mem, mut rng) = mk(8);
        mem.access(MemAccess::load(0x100), &mut rng); // miss clean
        mem.access(MemAccess::load(0x100), &mut rng); // l1 hit
        mem.access(MemAccess::store(0x100), &mut rng); // l2 write hit
        mem.access(MemAccess::atomic(0x200), &mut rng);
        let s = mem.stats();
        assert_eq!(s.total(), 4);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.misses_clean, 1);
        assert_eq!(s.l2_writes, 1);
        assert_eq!(s.atomics, 1);
        assert_eq!(s.bus_accesses(), 3);
    }

    #[test]
    fn reseed_starts_cold() {
        let (mut mem, mut rng) = mk(9);
        mem.access(MemAccess::load(0x100), &mut rng);
        mem.reseed(&mut rng);
        assert_eq!(mem.stats().total(), 0);
        assert_eq!(
            mem.access(MemAccess::load(0x100), &mut rng),
            AccessOutcome::L2MissClean
        );
    }
}
