//! The bus-transaction latency model of the paper's platform (Section
//! IV.A).
//!
//! Because the bus is non-split, a transaction holds the bus end-to-end:
//! the "latency" of an access *is* its bus hold time. The paper gives the
//! envelope — "bus transactions take between 5 cycles for L2 read cache hit
//! and 56 cycles; memory latency is 28 cycles and the longest requests may
//! produce 2 memory accesses" — which [`LatencyModel`] encodes and derives.

use crate::MemError;

/// Bus transaction durations per access outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L2 read hit (the shortest transaction).
    pub l2_read_hit: u32,
    /// Write-through store absorbed by L2 (hit or allocate-less miss
    /// handling is identical on the bus side of the L1).
    pub l2_write_hit: u32,
    /// One memory access: L2 miss with a clean victim.
    pub mem_access: u32,
    /// Two memory accesses: L2 miss evicting a dirty line (write-back +
    /// fetch) or an atomic operation (read + write). Derived as
    /// `2 * mem_access`.
    pub two_mem_accesses: u32,
}

impl LatencyModel {
    /// Builds a model from the three primitive latencies; the
    /// two-access latency is derived.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] unless
    /// `0 < l2_read_hit <= l2_write_hit <= mem_access` (the platform
    /// invariant that makes `2 * mem_access` the overall MaxL).
    pub fn new(l2_read_hit: u32, l2_write_hit: u32, mem_access: u32) -> Result<Self, MemError> {
        if l2_read_hit == 0 || l2_read_hit > l2_write_hit || l2_write_hit > mem_access {
            return Err(MemError::InvalidConfig(format!(
                "need 0 < l2_read_hit <= l2_write_hit <= mem_access, \
                 got {l2_read_hit}/{l2_write_hit}/{mem_access}"
            )));
        }
        Ok(LatencyModel {
            l2_read_hit,
            l2_write_hit,
            mem_access,
            two_mem_accesses: 2 * mem_access,
        })
    }

    /// The paper's platform: 5-cycle L2 read hits, 6-cycle writes,
    /// 28-cycle memory accesses, 56-cycle worst case.
    pub fn paper() -> Self {
        Self::new(5, 6, 28).expect("paper constants are valid")
    }

    /// MaxL: the longest possible transaction (`two_mem_accesses`). This is
    /// both the credit budget cap and the TDMA slot size.
    pub fn max_latency(&self) -> u32 {
        self.two_mem_accesses
    }

    /// L2 miss with a clean victim.
    pub fn miss_clean(&self) -> u32 {
        self.mem_access
    }

    /// L2 miss evicting a dirty line.
    pub fn miss_dirty(&self) -> u32 {
        self.two_mem_accesses
    }

    /// Atomic read-modify-write.
    pub fn atomic(&self) -> u32 {
        self.two_mem_accesses
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = LatencyModel::paper();
        assert_eq!(m.l2_read_hit, 5);
        assert_eq!(m.l2_write_hit, 6);
        assert_eq!(m.mem_access, 28);
        assert_eq!(m.max_latency(), 56);
        assert_eq!(m.miss_clean(), 28);
        assert_eq!(m.miss_dirty(), 56);
        assert_eq!(m.atomic(), 56);
    }

    #[test]
    fn ordering_validated() {
        assert!(LatencyModel::new(0, 6, 28).is_err());
        assert!(LatencyModel::new(7, 6, 28).is_err());
        assert!(LatencyModel::new(5, 30, 28).is_err());
        assert!(LatencyModel::new(5, 5, 5).is_ok());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LatencyModel::default(), LatencyModel::paper());
    }
}
