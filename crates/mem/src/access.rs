//! Memory access descriptors emitted by core models and workloads.

use std::fmt;

/// What a memory access does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store (write-through L1 forwards it to L2 over the bus).
    Store,
    /// Atomic read-modify-write (e.g. `ldstub`/`casa` on SparcV8). Bypasses
    /// the caches and performs two memory accesses under one unsplittable
    /// bus transaction — the paper's canonical "very long request".
    Atomic,
    /// Instruction fetch (L1I).
    IFetch,
}

/// One memory access: a byte address plus its kind.
///
/// # Example
///
/// ```
/// use cba_mem::{AccessKind, MemAccess};
///
/// let a = MemAccess::load(0x2000);
/// assert_eq!(a.kind(), AccessKind::Load);
/// assert_eq!(a.addr(), 0x2000);
/// assert!(!MemAccess::store(0x2000).is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    addr: u64,
    kind: AccessKind,
}

impl MemAccess {
    /// Creates an access of the given kind.
    pub fn new(addr: u64, kind: AccessKind) -> Self {
        MemAccess { addr, kind }
    }

    /// A data load at `addr`.
    pub fn load(addr: u64) -> Self {
        Self::new(addr, AccessKind::Load)
    }

    /// A data store at `addr`.
    pub fn store(addr: u64) -> Self {
        Self::new(addr, AccessKind::Store)
    }

    /// An atomic read-modify-write at `addr`.
    pub fn atomic(addr: u64) -> Self {
        Self::new(addr, AccessKind::Atomic)
    }

    /// An instruction fetch at `addr`.
    pub fn ifetch(addr: u64) -> Self {
        Self::new(addr, AccessKind::IFetch)
    }

    /// The byte address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The access kind.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Whether the access reads data (loads and instruction fetches).
    pub fn is_read(&self) -> bool {
        matches!(self.kind, AccessKind::Load | AccessKind::IFetch)
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Load => "ld",
            AccessKind::Store => "st",
            AccessKind::Atomic => "amo",
            AccessKind::IFetch => "if",
        };
        write!(f, "{k} 0x{:x}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemAccess::load(1).kind(), AccessKind::Load);
        assert_eq!(MemAccess::store(1).kind(), AccessKind::Store);
        assert_eq!(MemAccess::atomic(1).kind(), AccessKind::Atomic);
        assert_eq!(MemAccess::ifetch(1).kind(), AccessKind::IFetch);
    }

    #[test]
    fn read_classification() {
        assert!(MemAccess::load(0).is_read());
        assert!(MemAccess::ifetch(0).is_read());
        assert!(!MemAccess::store(0).is_read());
        assert!(!MemAccess::atomic(0).is_read());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemAccess::load(0x10).to_string(), "ld 0x10");
        assert_eq!(MemAccess::atomic(0xff).to_string(), "amo 0xff");
    }
}
