//! The in-order, blocking core model.

use crate::program::{Op, Program};
use crate::store_buffer::StoreBuffer;
use cba_bus::{BusRequest, CompletedTransaction, RequestPort};
use cba_mem::{AccessKind, BusTransaction, CoreMemory, HierarchyConfig, LatencyModel};
use sim_core::agent::{AgentStats, SimAgent};
use sim_core::rng::SimRng;
use sim_core::{Control, CoreId, Cycle};

/// Default store-buffer depth (two entries, LEON3-style single write buffer
/// plus one in flight).
pub const DEFAULT_STORE_BUFFER: usize = 2;

/// What the core's posted bus request represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingWhat {
    /// Draining the oldest store-buffer entry (core keeps executing).
    StoreDrain,
    /// A blocking access (load / ifetch miss / atomic): the pipeline waits.
    Blocking,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecState {
    /// Fetch the next operation this cycle.
    Ready,
    /// Busy with pipeline work through cycle `until - 1`; the next fetch
    /// happens at cycle `until`. Absolute time (not a countdown) so the
    /// event-driven engine can skip the stretch and tick the core exactly
    /// at `until`.
    Computing { until: Cycle },
    /// A blocking transaction waits to be posted (older stores drain
    /// first).
    AwaitPost(BusTransaction),
    /// A blocking transaction is posted/in service.
    Blocked,
    /// A store found the buffer full and retries.
    StoreStall(BusTransaction),
    /// Program exhausted; stores may still be draining.
    Draining,
    /// Fully finished.
    Done,
}

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Operations consumed from the program.
    pub ops: u64,
    /// Cycles spent on pipeline work (compute ops and L1 hits).
    pub busy_cycles: u64,
    /// Cycles stalled on the bus (waiting to post, posted, or in service).
    pub bus_stall_cycles: u64,
    /// Cycles stalled because the store buffer was full.
    pub store_stall_cycles: u64,
    /// Blocking bus transactions issued.
    pub blocking_transactions: u64,
    /// Store (write-through) transactions issued.
    pub store_transactions: u64,
}

/// An in-order core: one program, one private memory hierarchy, at most
/// one outstanding bus request.
///
/// Drive it once per cycle with [`Core::tick`] between the bus's
/// `begin_cycle` and `end_cycle` (see the [crate example](crate)).
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    program: Box<dyn Program>,
    mem: CoreMemory,
    lat: LatencyModel,
    store_buffer: StoreBuffer,
    state: ExecState,
    pending: Option<PendingWhat>,
    stats: CoreStats,
    done_at: Option<Cycle>,
    rng: SimRng,
}

impl Core {
    /// Creates a core with the default store-buffer depth. RNG streams for
    /// the cache hierarchy and the program are forked off `rng`.
    pub fn new(
        id: CoreId,
        program: Box<dyn Program>,
        hierarchy: &HierarchyConfig,
        lat: LatencyModel,
        rng: &mut SimRng,
    ) -> Self {
        Self::with_store_buffer(id, program, hierarchy, lat, DEFAULT_STORE_BUFFER, rng)
    }

    /// Creates a core with an explicit store-buffer depth.
    pub fn with_store_buffer(
        id: CoreId,
        program: Box<dyn Program>,
        hierarchy: &HierarchyConfig,
        lat: LatencyModel,
        store_buffer: usize,
        rng: &mut SimRng,
    ) -> Self {
        let mut mem_rng = rng.fork(0x11 + id.index() as u64);
        let core_rng = rng.fork(0x1000 + id.index() as u64);
        Core {
            id,
            mem: CoreMemory::new(hierarchy, &mut mem_rng),
            lat,
            store_buffer: StoreBuffer::new(store_buffer),
            state: ExecState::Ready,
            pending: None,
            stats: CoreStats::default(),
            done_at: None,
            rng: core_rng,
            program,
        }
    }

    /// This core's identity.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The program's benchmark name.
    pub fn program_name(&self) -> &str {
        self.program.name()
    }

    /// Whether the program has fully finished (including store drain).
    pub fn is_done(&self) -> bool {
        matches!(self.state, ExecState::Done)
    }

    /// Completion cycle, once done.
    pub fn done_at(&self) -> Option<Cycle> {
        self.done_at
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The private memory hierarchy (for inspection of hit/miss counts).
    pub fn memory(&self) -> &CoreMemory {
        &self.mem
    }

    /// Advances the core by one cycle.
    ///
    /// `completed` must be the bus's completion report for this cycle if
    /// (and only if) it belongs to this core. The core may post a new bus
    /// request during the call.
    ///
    /// # Panics
    ///
    /// Panics if the bus rejects a post — by construction the core never
    /// double-posts and never exceeds MaxL, so a rejection is a wiring bug.
    pub fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        bus: &mut (impl RequestPort + ?Sized),
    ) {
        // 1. Absorb a completion addressed to this core.
        if let Some(ct) = completed {
            if ct.core == self.id {
                match self.pending.take() {
                    Some(PendingWhat::StoreDrain) => {
                        self.store_buffer.pop();
                    }
                    Some(PendingWhat::Blocking) => {
                        debug_assert!(matches!(self.state, ExecState::Blocked));
                        self.state = ExecState::Ready;
                    }
                    None => panic!("completion without a pending request on {}", self.id),
                }
            }
        }

        // 2. Post the next bus request: oldest store first (TSO), then a
        //    waiting blocking access.
        if self.pending.is_none() {
            if let Some(tx) = self.store_buffer.front().copied() {
                self.post(bus, tx, now);
                self.pending = Some(PendingWhat::StoreDrain);
                self.stats.store_transactions += 1;
            } else if let ExecState::AwaitPost(tx) = self.state {
                self.post(bus, tx, now);
                self.pending = Some(PendingWhat::Blocking);
                self.state = ExecState::Blocked;
                self.stats.blocking_transactions += 1;
            }
        }

        // 3. Execute.
        match self.state {
            ExecState::Done => {}
            ExecState::Blocked | ExecState::AwaitPost(_) => {
                self.stats.bus_stall_cycles += 1;
            }
            ExecState::Draining => {
                self.try_finish(now);
            }
            ExecState::StoreStall(tx) => {
                self.stats.store_stall_cycles += 1;
                if self.store_buffer.push(tx) {
                    self.state = ExecState::Ready;
                }
            }
            ExecState::Computing { until } => {
                if now >= until {
                    // Only reachable when the engine skipped the tail of
                    // the compute stretch: this is the fetch cycle.
                    self.fetch_and_start(now);
                } else {
                    self.stats.busy_cycles += 1;
                    if now + 1 >= until {
                        self.state = ExecState::Ready;
                    }
                }
            }
            ExecState::Ready => {
                self.fetch_and_start(now);
            }
        }
    }

    fn post(&mut self, bus: &mut (impl RequestPort + ?Sized), tx: BusTransaction, now: Cycle) {
        bus.post(BusRequest::new(self.id, tx.duration, tx.kind, now).expect("valid duration"))
            .expect("core never double-posts");
    }

    fn fetch_and_start(&mut self, now: Cycle) {
        match self.program.next_op(&mut self.rng) {
            None => {
                self.state = ExecState::Draining;
                self.try_finish(now);
            }
            Some(Op::Compute(n)) => {
                self.stats.ops += 1;
                self.stats.busy_cycles += 1;
                self.state = if n > 1 {
                    ExecState::Computing {
                        until: now + n as Cycle,
                    }
                } else {
                    ExecState::Ready
                };
            }
            Some(Op::Access(access)) => {
                self.stats.ops += 1;
                let outcome = self.mem.access(access, &mut self.rng);
                match outcome.bus_transaction(&self.lat) {
                    None => {
                        // L1 hit: a single busy cycle.
                        self.stats.busy_cycles += 1;
                    }
                    Some(tx) => {
                        if access.kind() == AccessKind::Store {
                            self.stats.busy_cycles += 1;
                            if !self.store_buffer.push(tx) {
                                self.state = ExecState::StoreStall(tx);
                                self.stats.busy_cycles -= 1;
                                self.stats.store_stall_cycles += 1;
                            }
                        } else {
                            self.state = ExecState::AwaitPost(tx);
                            self.stats.bus_stall_cycles += 1;
                        }
                    }
                }
            }
        }
    }

    fn try_finish(&mut self, now: Cycle) {
        if self.store_buffer.is_empty() && self.pending.is_none() {
            self.state = ExecState::Done;
            if self.done_at.is_none() {
                self.done_at = Some(now);
            }
        }
    }

    /// Sleep horizon for the event-driven engine: `Some(Cycle::MAX)` when
    /// the core cannot do anything until a bus completion addressed to it
    /// arrives (blocked on its posted transaction, stalled on a full store
    /// buffer, draining behind a posted store, or finished), `None` when
    /// it must be ticked every cycle (fetching, computing, about to post).
    ///
    /// In every `Some` state the per-cycle tick is pure stall accounting;
    /// [`Core::absorb_skipped`] replays that accounting for cycles the
    /// engine skipped.
    pub fn wake_at(&self) -> Option<Cycle> {
        match self.state {
            ExecState::Done => Some(Cycle::MAX),
            // A compute stretch is pure busy-cycle accounting until its
            // fetch cycle (an in-flight store drain wakes the core at its
            // completion — a bus event — before that if needed).
            ExecState::Computing { until } => Some(until),
            ExecState::Blocked | ExecState::AwaitPost(_) | ExecState::StoreStall(_)
                if self.pending.is_some() =>
            {
                Some(Cycle::MAX)
            }
            ExecState::Draining if self.pending.is_some() => Some(Cycle::MAX),
            _ => None,
        }
    }

    /// Accounts `k` cycles the engine skipped while this core slept (see
    /// [`Core::wake_at`]): the stall counters advance exactly as `k`
    /// unchanged ticks would have advanced them.
    pub fn absorb_skipped(&mut self, k: u64) {
        match self.state {
            ExecState::Blocked | ExecState::AwaitPost(_) => self.stats.bus_stall_cycles += k,
            ExecState::StoreStall(_) => self.stats.store_stall_cycles += k,
            ExecState::Computing { .. } => self.stats.busy_cycles += k,
            _ => {}
        }
    }

    /// Starts a fresh run: resets program position, reseeds the caches,
    /// clears the store buffer and statistics.
    ///
    /// The caller must also reset/replace the bus; a pending request left
    /// on the old bus is forgotten by the core.
    pub fn reset(&mut self, rng: &mut SimRng) {
        let mut mem_rng = rng.fork(0x11 + self.id.index() as u64);
        self.mem.reseed(&mut mem_rng);
        self.rng = rng.fork(0x1000 + self.id.index() as u64);
        self.program.reset(&mut self.rng);
        self.store_buffer.clear();
        self.state = ExecState::Ready;
        self.pending = None;
        self.stats = CoreStats::default();
        self.done_at = None;
    }
}

/// The open client-side interface: the full core model, with exact
/// stall accounting under skipped stretches and an RNG-reseeding reset.
impl<P: RequestPort + ?Sized> SimAgent<P, CompletedTransaction> for Core {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut P,
    ) -> Control {
        Core::tick(self, now, completed, port);
        match Core::wake_at(self) {
            Some(t) => Control::Sleep(t),
            None => Control::Continue,
        }
    }

    fn wake_at(&self) -> Option<Cycle> {
        Core::wake_at(self)
    }

    fn is_done(&self) -> bool {
        Core::is_done(self)
    }

    fn done_at(&self) -> Option<Cycle> {
        Core::done_at(self)
    }

    fn absorb_skipped(&mut self, skipped: u64) {
        Core::absorb_skipped(self, skipped);
    }

    fn reset(&mut self, rng: &mut SimRng) {
        Core::reset(self, rng);
    }

    fn stats(&self) -> AgentStats {
        let s = &self.stats;
        AgentStats {
            completed: s.blocking_transactions + s.store_transactions,
            busy_cycles: s.busy_cycles,
            bus_stall_cycles: s.bus_stall_cycles,
            store_stall_cycles: s.store_stall_cycles,
            done_at: self.done_at,
            // The core's private hierarchy counters stay on `CoreStats` /
            // `HierarchyStats`; the uniform mem columns are reserved for
            // the dedicated memory agents so baseline reports keep their
            // exact column set.
            mem: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptProgram;
    use cba_bus::{Bus, BusConfig, PolicyKind};
    use cba_mem::MemAccess;

    fn run_solo(ops: Vec<Op>, max_cycles: Cycle) -> (Core, Bus, Cycle) {
        let mut rng = SimRng::seed_from(99);
        let mut core = Core::new(
            CoreId::from_index(0),
            Box::new(ScriptProgram::new("t", ops)),
            &HierarchyConfig::paper(),
            LatencyModel::paper(),
            &mut rng,
        );
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut now = 0;
        while !core.is_done() && now < max_cycles {
            let completed = bus.begin_cycle(now);
            core.tick(now, completed.as_ref(), &mut bus);
            bus.end_cycle(now);
            now += 1;
        }
        (core, bus, now)
    }

    #[test]
    fn pure_compute_timing_is_exact() {
        let (core, _bus, _) = run_solo(vec![Op::Compute(10), Op::Compute(5)], 100);
        assert!(core.is_done());
        // 15 compute cycles; done detected the cycle after the last one.
        assert_eq!(core.done_at(), Some(15));
        assert_eq!(core.stats().busy_cycles, 15);
        assert_eq!(core.stats().ops, 2);
    }

    #[test]
    fn cold_load_blocks_for_issue_plus_miss() {
        let (core, bus, _) = run_solo(vec![Op::Access(MemAccess::load(0x100))], 200);
        assert!(core.is_done());
        // Cycle 0: classify + AwaitPost. Cycle 1: post, granted same cycle.
        // Bus holds [1, 29); completion absorbed at cycle 29, where the core
        // also discovers the program is exhausted: done at 29.
        assert_eq!(core.done_at(), Some(29));
        assert_eq!(bus.trace().busy_cycles(CoreId::from_index(0)), 28);
        assert_eq!(core.stats().blocking_transactions, 1);
    }

    #[test]
    fn l1_hit_costs_one_cycle() {
        let (core, bus, _) = run_solo(
            vec![
                Op::Access(MemAccess::load(0x100)), // cold miss
                Op::Access(MemAccess::load(0x104)), // L1 hit
                Op::Access(MemAccess::load(0x108)), // L1 hit
            ],
            200,
        );
        assert!(core.is_done());
        assert_eq!(bus.trace().total_slots(), 1, "only the miss hits the bus");
        assert_eq!(core.memory().stats().l1_hits, 2);
        // 29 (miss, as above) + 2 hit cycles
        assert_eq!(core.done_at(), Some(31));
    }

    #[test]
    fn stores_drain_in_background() {
        // store then compute: the store's bus transaction overlaps compute.
        let (core, bus, _) = run_solo(
            vec![Op::Access(MemAccess::store(0x100)), Op::Compute(40)],
            300,
        );
        assert!(core.is_done());
        assert_eq!(core.stats().store_transactions, 1);
        assert_eq!(bus.trace().total_slots(), 1);
        // Store executes in 1 cycle, compute 40: the 28-cycle cold-store
        // transaction fully overlaps, so total ≈ 42, way below 1 + 28 + 40.
        assert!(
            core.done_at().unwrap() <= 44,
            "done at {:?}",
            core.done_at()
        );
    }

    #[test]
    fn blocking_load_waits_for_store_drain() {
        // TSO: a load miss posted after a store must not overtake it.
        let (core, bus, _) = run_solo(
            vec![
                Op::Access(MemAccess::store(0x100)),
                Op::Access(MemAccess::load(0x2000)),
            ],
            300,
        );
        assert!(core.is_done());
        let records_slots = bus.trace().total_slots();
        assert_eq!(records_slots, 2);
        // Serialized: ~1 + 28 (store) + 28 (load) + overheads.
        assert!(core.done_at().unwrap() >= 56);
    }

    #[test]
    fn store_buffer_full_stalls_pipeline() {
        // Depth-2 buffer: a third store back-to-back must stall.
        let ops = vec![
            Op::Access(MemAccess::store(0x1000)),
            Op::Access(MemAccess::store(0x2000)),
            Op::Access(MemAccess::store(0x3000)),
            Op::Access(MemAccess::store(0x4000)),
        ];
        let (core, _bus, _) = run_solo(ops, 500);
        assert!(core.is_done());
        assert!(
            core.stats().store_stall_cycles > 0,
            "expected SB-full stalls"
        );
        assert_eq!(core.stats().store_transactions, 4);
    }

    #[test]
    fn atomics_block_and_cost_two_memory_accesses() {
        let (core, bus, _) = run_solo(vec![Op::Access(MemAccess::atomic(0x100))], 200);
        assert!(core.is_done());
        assert_eq!(bus.trace().busy_cycles(CoreId::from_index(0)), 56);
        assert_eq!(core.done_at(), Some(57)); // 1 issue cycle + 56 on the bus
    }

    #[test]
    fn draining_completes_before_done() {
        let (core, _bus, _) = run_solo(vec![Op::Access(MemAccess::store(0x100))], 300);
        assert!(core.is_done());
        // Done only after the store's transaction completed: >= 28 cycles.
        assert!(core.done_at().unwrap() >= 28);
    }

    #[test]
    fn reset_reproduces_solo_runs_identically() {
        let ops = vec![
            Op::Compute(5),
            Op::Access(MemAccess::load(0x100)),
            Op::Access(MemAccess::store(0x200)),
            Op::Compute(3),
        ];
        let mut rng = SimRng::seed_from(123);
        let mut core = Core::new(
            CoreId::from_index(0),
            Box::new(ScriptProgram::new("t", ops)),
            &HierarchyConfig::paper(),
            LatencyModel::paper(),
            &mut rng,
        );
        let mut durations = Vec::new();
        for run in 0..2 {
            let mut bus = Bus::new(
                BusConfig::new(1, 56).unwrap(),
                PolicyKind::RoundRobin.build(1, 56),
            );
            if run > 0 {
                let mut run_rng = SimRng::seed_from(123);
                core.reset(&mut run_rng);
            }
            let mut now = 0;
            while !core.is_done() && now < 1000 {
                let completed = bus.begin_cycle(now);
                core.tick(now, completed.as_ref(), &mut bus);
                bus.end_cycle(now);
                now += 1;
            }
            durations.push(core.done_at().unwrap());
        }
        assert_eq!(durations[0], durations[1], "same seed, same timing");
    }

    #[test]
    fn stats_cycles_partition_execution() {
        let (core, _bus, _) = run_solo(
            vec![Op::Compute(7), Op::Access(MemAccess::load(0x500))],
            300,
        );
        let s = core.stats();
        // busy + bus stalls ≈ done_at (store stalls zero here).
        let total = s.busy_cycles + s.bus_stall_cycles;
        let done = core.done_at().unwrap();
        assert!(
            (total as i64 - done as i64).abs() <= 2,
            "cycle accounting: busy {} + stall {} vs done {}",
            s.busy_cycles,
            s.bus_stall_cycles,
            done
        );
    }
}
