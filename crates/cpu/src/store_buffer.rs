//! The write-through store buffer.
//!
//! The platform's L1 data caches are write-through: every store becomes a
//! bus transaction to the L2. A small FIFO store buffer decouples the
//! pipeline from the bus — the core keeps executing while buffered stores
//! drain in order, and only stalls when the buffer is full or when a
//! blocking access must wait for older stores (total store order).

use cba_mem::BusTransaction;
use std::collections::VecDeque;

/// A bounded FIFO of outgoing store transactions.
///
/// # Example
///
/// ```
/// use cba_cpu::StoreBuffer;
/// use cba_mem::BusTransaction;
/// use cba_bus::RequestKind;
///
/// let mut sb = StoreBuffer::new(2);
/// let tx = BusTransaction { duration: 6, kind: RequestKind::L2Write };
/// assert!(sb.push(tx));
/// assert!(sb.push(tx));
/// assert!(!sb.push(tx), "full");
/// assert_eq!(sb.front().unwrap().duration, 6);
/// sb.pop();
/// assert!(sb.push(tx));
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<BusTransaction>,
    capacity: usize,
    /// High-water mark (for reports).
    max_occupancy: usize,
    /// Stores that found the buffer full (pipeline stalls).
    full_stalls: u64,
}

impl StoreBuffer {
    /// Creates a buffer holding up to `capacity` stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a write-through L1 without any buffering
    /// is modeled by blocking stores in the core instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be positive");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            max_occupancy: 0,
            full_stalls: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Enqueues a store; returns `false` (and counts a stall) if full.
    pub fn push(&mut self, tx: BusTransaction) -> bool {
        if self.is_full() {
            self.full_stalls += 1;
            return false;
        }
        self.entries.push_back(tx);
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        true
    }

    /// The oldest store awaiting drain.
    pub fn front(&self) -> Option<&BusTransaction> {
        self.entries.front()
    }

    /// Removes the oldest store (after its bus transaction completed).
    pub fn pop(&mut self) -> Option<BusTransaction> {
        self.entries.pop_front()
    }

    /// High-water mark since creation/clear.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Number of pushes rejected because the buffer was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Empties the buffer and statistics for a fresh run.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.max_occupancy = 0;
        self.full_stalls = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::RequestKind;

    fn tx(d: u32) -> BusTransaction {
        BusTransaction {
            duration: d,
            kind: RequestKind::L2Write,
        }
    }

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        sb.push(tx(1));
        sb.push(tx(2));
        sb.push(tx(3));
        assert_eq!(sb.pop().unwrap().duration, 1);
        assert_eq!(sb.pop().unwrap().duration, 2);
        assert_eq!(sb.front().unwrap().duration, 3);
    }

    #[test]
    fn full_rejection_counts_stalls() {
        let mut sb = StoreBuffer::new(1);
        assert!(sb.push(tx(1)));
        assert!(!sb.push(tx(2)));
        assert!(!sb.push(tx(3)));
        assert_eq!(sb.full_stalls(), 2);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn high_water_mark() {
        let mut sb = StoreBuffer::new(3);
        sb.push(tx(1));
        sb.push(tx(2));
        sb.pop();
        sb.push(tx(3));
        assert_eq!(sb.max_occupancy(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut sb = StoreBuffer::new(1);
        sb.push(tx(1));
        let _ = sb.push(tx(2));
        sb.clear();
        assert!(sb.is_empty());
        assert_eq!(sb.full_stalls(), 0);
        assert_eq!(sb.max_occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = StoreBuffer::new(0);
    }
}
