//! The miss-stream memory agent: synthetic address streams through the
//! real cache hierarchy (and optionally the MESI hub) driving the bus.
//!
//! Unlike the synthetic contenders (whose request streams are hand-tuned
//! profiles), a [`MemAgent`]'s bus traffic is *derived*: a seeded address
//! generator (working-set size, locality/stride mix, read/write ratio,
//! sharing degree) runs every access through a private
//! [`CoreMemory`] hierarchy — and, for shared-segment accesses, through
//! the run's [`CoherenceHub`](cba_mem::CoherenceHub) — and only the
//! resulting misses, write-throughs, coherence fetches, upgrades,
//! invalidation acks and writebacks reach the [`RequestPort`]. Burstiness
//! comes from working-set dynamics, not profile knobs.
//!
//! The agent follows the same engine contract as [`Core`](crate::Core):
//! absolute-time states, an exact [`MemAgent::wake_at`] horizon and
//! [`MemAgent::absorb_skipped`] replay, so the naive and event-horizon
//! engines agree bit for bit, and [`MemAgent::reset`] is seed-equivalent
//! to fresh construction.

use cba_bus::{BusRequest, CompletedTransaction, RequestKind, RequestPort};
use cba_mem::coherence::SHARED_LINE_BYTES;
use cba_mem::{BusTransaction, CoreMemory, LatencyModel, MemAccess, MemoryConfig, SharedHub};
use sim_core::agent::{AgentStats, MemStats, SimAgent};
use sim_core::rng::SimRng;
use sim_core::{Control, CoreId, Cycle};
use std::collections::VecDeque;

/// Base address of the private working-set region (the caches are
/// private, so cores may overlap without aliasing effects).
const DATA_BASE: u64 = 0x0010_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Generate the next access this cycle.
    Ready,
    /// Think gap through cycle `until - 1`; the next access starts at
    /// `until` (absolute, so the events engine can skip the stretch).
    Thinking { until: Cycle },
    /// The head of the transaction queue waits to be posted.
    AwaitPost,
    /// The head of the transaction queue is posted/in service.
    Blocked,
    /// All accesses performed and every transaction drained.
    Done,
}

/// A memory agent: one synthetic access stream, one private hierarchy,
/// at most one outstanding bus request (transactions of a multi-part
/// coherence access post sequentially).
///
/// Built by the platform's agent registry as kind `mem` (private stream
/// only) or `shared` (a fraction of accesses hits the coherent shared
/// segment through the run's hub).
#[derive(Debug)]
pub struct MemAgent {
    id: CoreId,
    config: MemoryConfig,
    lat: LatencyModel,
    /// The run's MESI directory; `None` for private-only `mem` agents.
    hub: Option<SharedHub>,
    mem: CoreMemory,
    state: State,
    /// Bus transactions of the in-flight access, posted head-first.
    queue: VecDeque<BusTransaction>,
    /// Accesses started so far.
    issued: u64,
    /// Sequential-walk position in the private working set.
    walk: u64,
    mstats: MemStats,
    busy_cycles: u64,
    bus_stall_cycles: u64,
    completed: u64,
    done_at: Option<Cycle>,
    rng: SimRng,
}

impl MemAgent {
    /// Creates the agent. Pass a [`SharedHub`] to make it coherent (kind
    /// `shared`); `None` keeps the whole stream private (kind `mem`).
    /// RNG streams for the hierarchy and the generator are forked off
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; validate with
    /// [`MemoryConfig::validate`] first when the configuration is
    /// user-supplied.
    pub fn new(
        id: CoreId,
        config: MemoryConfig,
        lat: LatencyModel,
        hub: Option<SharedHub>,
        rng: &mut SimRng,
    ) -> Self {
        config.validate().expect("invalid memory configuration");
        let mut mem_rng = rng.fork(0x11 + id.index() as u64);
        let gen_rng = rng.fork(0x2000 + id.index() as u64);
        MemAgent {
            id,
            mem: CoreMemory::new(&config.hierarchy(), &mut mem_rng),
            lat,
            hub,
            state: State::Ready,
            queue: VecDeque::new(),
            issued: 0,
            walk: 0,
            mstats: MemStats::default(),
            busy_cycles: 0,
            bus_stall_cycles: 0,
            completed: 0,
            done_at: None,
            rng: gen_rng,
            config,
        }
    }

    /// This agent's core identity.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Whether the stream has fully finished (all transactions drained).
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Completion cycle, once done.
    pub fn done_at(&self) -> Option<Cycle> {
        self.done_at
    }

    /// The memory-side counters.
    pub fn mem_stats(&self) -> MemStats {
        self.mstats
    }

    /// The private hierarchy (for inspection).
    pub fn memory(&self) -> &CoreMemory {
        &self.mem
    }

    /// Advances the agent by one cycle (same protocol as
    /// [`Core::tick`](crate::Core::tick)).
    ///
    /// # Panics
    ///
    /// Panics if the bus rejects a post — the agent never double-posts
    /// and never exceeds MaxL, so a rejection is a wiring bug.
    pub fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        bus: &mut (impl RequestPort + ?Sized),
    ) {
        // 1. Absorb a completion addressed to this agent.
        if let Some(ct) = completed {
            if ct.core == self.id {
                debug_assert!(matches!(self.state, State::Blocked));
                self.completed += 1;
                self.queue.pop_front();
                if self.queue.is_empty() {
                    self.after_access(now);
                } else {
                    self.state = State::AwaitPost;
                }
            }
        }

        // 2. Post the next queued transaction of the in-flight access.
        if matches!(self.state, State::AwaitPost) && bus.can_accept(self.id) {
            let tx = *self.queue.front().expect("AwaitPost implies a queued txn");
            bus.post(BusRequest::new(self.id, tx.duration, tx.kind, now).expect("valid duration"))
                .expect("mem agent never double-posts");
            self.state = State::Blocked;
        }

        // 3. Execute.
        match self.state {
            State::Done => {}
            State::Blocked | State::AwaitPost => {
                self.bus_stall_cycles += 1;
            }
            State::Thinking { until } => {
                if now >= until {
                    // The engine skipped the tail of the think stretch:
                    // this is the access cycle.
                    self.start_access(now);
                } else {
                    self.busy_cycles += 1;
                    if now + 1 >= until {
                        self.state = State::Ready;
                    }
                }
            }
            State::Ready => {
                self.start_access(now);
            }
        }
    }

    /// Draws and executes the next access of the stream.
    fn start_access(&mut self, now: Cycle) {
        if self.issued == self.config.accesses {
            self.finish(now);
            return;
        }
        self.issued += 1;
        self.mstats.accesses += 1;
        let is_write = self.rng.gen_bool(self.config.write_frac);
        let shared = self.hub.is_some() && self.rng.gen_bool(self.config.share_frac);
        let txns: Vec<BusTransaction> = if shared {
            let line = self.rng.gen_range_usize(0..self.config.shared_lines);
            let hub = self.hub.as_ref().expect("shared access implies a hub");
            let mut hub = hub.borrow_mut();
            if is_write {
                hub.write(self.id, line, &self.lat)
            } else {
                hub.read(self.id, line, &self.lat)
            }
        } else {
            let lines = self.config.working_set_lines();
            let line = if self.rng.gen_bool(self.config.locality) {
                self.walk = (self.walk + 1) % lines;
                self.walk
            } else {
                self.rng.gen_range_u64(0..lines)
            };
            let addr = DATA_BASE + line * SHARED_LINE_BYTES;
            let access = if is_write {
                MemAccess::store(addr)
            } else {
                MemAccess::load(addr)
            };
            let outcome = self.mem.access(access, &mut self.rng);
            outcome.bus_transaction(&self.lat).into_iter().collect()
        };
        if txns.is_empty() {
            // Cache/ownership hit: one busy cycle, no bus traffic.
            self.busy_cycles += 1;
            self.after_access(now);
        } else {
            self.mstats.misses += 1;
            self.mstats.bus_txns += txns.len() as u64;
            for tx in &txns {
                match tx.kind {
                    RequestKind::CohRead
                    | RequestKind::CohReadEx
                    | RequestKind::CohUpgrade
                    | RequestKind::CohInvAck => self.mstats.coherence += 1,
                    RequestKind::CohWriteback => {
                        self.mstats.coherence += 1;
                        self.mstats.writebacks += 1;
                    }
                    RequestKind::L2MissDirty => self.mstats.writebacks += 1,
                    _ => {}
                }
            }
            self.queue.extend(txns);
            self.state = State::AwaitPost;
            self.bus_stall_cycles += 1;
        }
    }

    /// An access finished (hit, or its last transaction completed):
    /// finish the run, think, or go straight to the next access.
    fn after_access(&mut self, now: Cycle) {
        if self.issued == self.config.accesses {
            self.finish(now);
        } else if self.config.think > 0 {
            self.state = State::Thinking {
                until: now + 1 + self.config.think as Cycle,
            };
        } else {
            self.state = State::Ready;
        }
    }

    fn finish(&mut self, now: Cycle) {
        self.state = State::Done;
        if self.done_at.is_none() {
            self.done_at = Some(now);
        }
    }

    /// Sleep horizon for the event-driven engine: `Some(Cycle::MAX)` when
    /// only a bus completion can unblock the agent (or it is done),
    /// `Some(until)` through a think stretch, `None` when it must be
    /// ticked every cycle (about to generate or to post). In every `Some`
    /// state the per-cycle tick is pure stall/busy accounting;
    /// [`MemAgent::absorb_skipped`] replays it for skipped cycles.
    pub fn wake_at(&self) -> Option<Cycle> {
        match self.state {
            State::Done | State::Blocked => Some(Cycle::MAX),
            State::Thinking { until } => Some(until),
            State::AwaitPost | State::Ready => None,
        }
    }

    /// Accounts `k` cycles the engine skipped while this agent slept (see
    /// [`MemAgent::wake_at`]).
    pub fn absorb_skipped(&mut self, k: u64) {
        match self.state {
            State::Blocked => self.bus_stall_cycles += k,
            State::Thinking { .. } => self.busy_cycles += k,
            _ => {}
        }
    }

    /// Starts a fresh run: re-forks the RNG streams exactly as
    /// construction does, resets the hierarchy, drops this core's shared
    /// copies in the hub and clears all counters. Seed-equivalent to a
    /// fresh [`MemAgent::new`] given the same `rng` stream.
    pub fn reset(&mut self, rng: &mut SimRng) {
        let mut mem_rng = rng.fork(0x11 + self.id.index() as u64);
        self.mem.reset(&mut mem_rng);
        self.rng = rng.fork(0x2000 + self.id.index() as u64);
        if let Some(hub) = &self.hub {
            hub.borrow_mut().reset_core(self.id);
        }
        self.state = State::Ready;
        self.queue.clear();
        self.issued = 0;
        self.walk = 0;
        self.mstats = MemStats::default();
        self.busy_cycles = 0;
        self.bus_stall_cycles = 0;
        self.completed = 0;
        self.done_at = None;
    }
}

/// The open client-side interface: miss-stream traffic with exact
/// accounting under skipped stretches and an RNG-reseeding reset.
impl<P: RequestPort + ?Sized> SimAgent<P, CompletedTransaction> for MemAgent {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut P,
    ) -> Control {
        MemAgent::tick(self, now, completed, port);
        match MemAgent::wake_at(self) {
            Some(t) => Control::Sleep(t),
            None => Control::Continue,
        }
    }

    fn wake_at(&self) -> Option<Cycle> {
        MemAgent::wake_at(self)
    }

    fn is_done(&self) -> bool {
        MemAgent::is_done(self)
    }

    fn done_at(&self) -> Option<Cycle> {
        MemAgent::done_at(self)
    }

    fn absorb_skipped(&mut self, skipped: u64) {
        MemAgent::absorb_skipped(self, skipped);
    }

    fn reset(&mut self, rng: &mut SimRng) {
        MemAgent::reset(self, rng);
    }

    fn stats(&self) -> AgentStats {
        AgentStats {
            completed: self.completed,
            busy_cycles: self.busy_cycles,
            bus_stall_cycles: self.bus_stall_cycles,
            store_stall_cycles: 0,
            done_at: self.done_at,
            mem: Some(self.mstats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::{Bus, BusConfig, PolicyKind};
    use cba_mem::shared_hub;

    fn small_config() -> MemoryConfig {
        MemoryConfig {
            working_set: 1024,
            accesses: 300,
            write_frac: 0.3,
            share_frac: 0.5,
            shared_lines: 16,
            locality: 0.8,
            think: 2,
            ..Default::default()
        }
    }

    fn run_solo(agent: &mut MemAgent, max_cycles: Cycle) -> (Bus, Cycle) {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut now = 0;
        while !agent.is_done() && now < max_cycles {
            let completed = bus.begin_cycle(now);
            agent.tick(now, completed.as_ref(), &mut bus);
            bus.end_cycle(now);
            now += 1;
        }
        (bus, now)
    }

    #[test]
    fn private_stream_finishes_and_accounts_every_access() {
        let mut rng = SimRng::seed_from(7);
        let mut agent = MemAgent::new(
            CoreId::from_index(0),
            small_config(),
            LatencyModel::paper(),
            None,
            &mut rng,
        );
        let (bus, _) = run_solo(&mut agent, 200_000);
        assert!(agent.is_done());
        let s = agent.mem_stats();
        assert_eq!(s.accesses, 300);
        assert!(s.misses > 0, "cold caches must miss");
        assert!(s.misses <= s.accesses);
        assert_eq!(s.coherence, 0, "private streams post no coherence traffic");
        assert_eq!(bus.trace().total_slots(), s.bus_txns);
    }

    #[test]
    fn coherent_stream_posts_coherence_traffic() {
        let mut rng = SimRng::seed_from(11);
        let hub = shared_hub(1, 16);
        let mut agent = MemAgent::new(
            CoreId::from_index(0),
            small_config(),
            LatencyModel::paper(),
            Some(hub.clone()),
            &mut rng,
        );
        run_solo(&mut agent, 200_000);
        assert!(agent.is_done());
        let s = agent.mem_stats();
        assert!(s.coherence > 0, "shared accesses must fetch coherently");
        assert!(s.coherence <= s.bus_txns);
        hub.borrow().check_invariants().expect("MESI safety");
    }

    #[test]
    fn smaller_working_set_lowers_the_miss_rate() {
        let lat = LatencyModel::paper();
        let miss_rate = |ws: u64| {
            let mut rng = SimRng::seed_from(3);
            let config = MemoryConfig {
                working_set: ws,
                accesses: 2000,
                write_frac: 0.2,
                locality: 0.7,
                think: 0,
                ..Default::default()
            };
            let mut agent = MemAgent::new(CoreId::from_index(0), config, lat, None, &mut rng);
            run_solo(&mut agent, 2_000_000);
            assert!(agent.is_done());
            let s = agent.mem_stats();
            s.misses as f64 / s.accesses as f64
        };
        let small = miss_rate(512);
        let large = miss_rate(64 * 1024);
        assert!(
            small < large,
            "fitting working set must hit more: {small} vs {large}"
        );
    }

    #[test]
    fn reset_is_seed_equivalent_to_fresh() {
        let config = small_config();
        let lat = LatencyModel::paper();
        let mut rng = SimRng::seed_from(42);
        let hub = shared_hub(1, 16);
        let mut agent = MemAgent::new(
            CoreId::from_index(0),
            config.clone(),
            lat,
            Some(hub),
            &mut rng,
        );
        let (_, cycles_a) = run_solo(&mut agent, 200_000);
        let stats_a = agent.mem_stats();

        let mut reset_rng = SimRng::seed_from(42);
        // Consume the same prefix a fresh construction would have.
        agent.reset(&mut reset_rng);
        let (_, cycles_b) = run_solo(&mut agent, 200_000);
        assert_eq!(cycles_a, cycles_b, "reset must reproduce the run");
        assert_eq!(stats_a, agent.mem_stats());
    }
}
