//! A task with exactly-controlled bus behaviour, for analytic experiments.

use cba_bus::{BusRequest, CompletedTransaction, RequestKind, RequestPort};
use sim_core::agent::{AgentStats, SimAgent};
use sim_core::rng::SimRng;
use sim_core::{Control, CoreId, Cycle};

/// A task issuing exactly `n_requests` bus transactions of a fixed
/// `duration`, separated by fixed compute `gap`s — the task under analysis
/// of the paper's Section II illustrative example (1,000 requests of 6
/// cycles separated by 4 compute cycles: 10,000 cycles in isolation).
///
/// Unlike [`Core`](crate::Core) it bypasses the cache model so the request
/// stream is exactly the one the paper's arithmetic assumes; use it
/// wherever an experiment's analytic prediction must be checkable to the
/// cycle.
///
/// # Example
///
/// ```
/// use cba_bus::{Bus, BusConfig, PolicyKind};
/// use cba_cpu::FixedRequestTask;
/// use sim_core::CoreId;
///
/// // The paper's illustrative task under analysis, alone on the bus.
/// let mut bus = Bus::new(BusConfig::new(1, 56)?, PolicyKind::RoundRobin.build(1, 56));
/// let mut tua = FixedRequestTask::new(CoreId::from_index(0), 1_000, 6, 4);
/// let mut now = 0;
/// while !tua.is_done() {
///     let done = bus.begin_cycle(now);
///     tua.tick(now, done.as_ref(), &mut bus);
///     bus.end_cycle(now);
///     now += 1;
/// }
/// // 1,000 x (4 compute + 6 bus) = 10,000 cycles in isolation.
/// assert_eq!(tua.done_at(), Some(10_000));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedRequestTask {
    core: CoreId,
    n_requests: u64,
    duration: u32,
    gap: u32,
    state: FixedState,
    issued: u64,
    completed: u64,
    done_at: Option<Cycle>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixedState {
    /// Computing until the next request posts at cycle `post_at`.
    ///
    /// Absolute time (rather than a per-tick countdown) makes the state
    /// machine gap-tolerant: the event-driven engine can skip the compute
    /// stretch entirely and tick the task exactly at `post_at`.
    Computing { post_at: Cycle },
    /// Request posted / in service.
    Waiting,
    /// All requests served.
    Done,
}

impl FixedRequestTask {
    /// Creates the task: `n_requests` transactions of `duration` cycles,
    /// each preceded by `gap` compute cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n_requests == 0` or `duration == 0`.
    pub fn new(core: CoreId, n_requests: u64, duration: u32, gap: u32) -> Self {
        assert!(n_requests > 0, "n_requests must be positive");
        assert!(duration > 0, "duration must be positive");
        FixedRequestTask {
            core,
            n_requests,
            duration,
            gap,
            state: FixedState::Computing {
                post_at: gap as Cycle,
            },
            issued: 0,
            completed: 0,
            done_at: None,
        }
    }

    /// The task's core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Whether all requests completed.
    pub fn is_done(&self) -> bool {
        matches!(self.state, FixedState::Done)
    }

    /// Completion cycle, once done.
    pub fn done_at(&self) -> Option<Cycle> {
        self.done_at
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Isolation execution time: `n_requests * (gap + duration)` — the
    /// analytic baseline of the paper's example.
    pub fn isolation_cycles(&self) -> u64 {
        self.n_requests * (self.gap as u64 + self.duration as u64)
    }

    /// Advances one cycle (tolerates gaps: ticking is only required at the
    /// cycles reported by [`FixedRequestTask::wake_at`] and at this task's
    /// completions). Generic over the [`RequestPort`], so the same task
    /// drives a flat bus or a hierarchical fabric.
    pub fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        bus: &mut (impl RequestPort + ?Sized),
    ) {
        if let Some(ct) = completed {
            if ct.core == self.core && matches!(self.state, FixedState::Waiting) {
                self.completed += 1;
                self.state = if self.completed == self.n_requests {
                    self.done_at = Some(now);
                    FixedState::Done
                } else {
                    FixedState::Computing {
                        post_at: now + self.gap as Cycle,
                    }
                };
            }
        }
        match self.state {
            FixedState::Done | FixedState::Waiting => {}
            FixedState::Computing { post_at } => {
                if now >= post_at {
                    bus.post(
                        BusRequest::new(self.core, self.duration, RequestKind::Synthetic, now)
                            .expect("validated duration"),
                    )
                    .expect("fixed task posts one request at a time");
                    self.issued += 1;
                    self.state = FixedState::Waiting;
                }
            }
        }
    }

    /// Shifts the task's only absolute-time state (the pending `post_at`,
    /// while computing) by `delta` cycles. Fast-forwarding engines that
    /// replay a detected limit cycle arithmetically use this to relocate
    /// the task in time without replaying ticks; counters and `done_at`
    /// are untouched.
    pub fn shift_time(&mut self, delta: Cycle) {
        if let FixedState::Computing { post_at } = &mut self.state {
            *post_at += delta;
        }
    }

    /// Credits `k` further completed (and issued) requests without
    /// ticking, for engines that fast-forward whole recurring periods.
    /// The task must stay strictly below `n_requests` completions: the
    /// final completion has to execute live so `done_at` is observed.
    ///
    /// # Panics
    ///
    /// Panics if `k` would reach or exceed the final completion.
    pub fn absorb_completions(&mut self, k: u64) {
        assert!(
            self.completed + k < self.n_requests,
            "the final completion must execute live"
        );
        self.completed += k;
        self.issued += k;
    }

    /// Sleep horizon for the event-driven engine: nothing happens until
    /// the next post cycle (while computing) or the next completion
    /// (while waiting or done — `Cycle::MAX`, a bus event wakes it).
    pub fn wake_at(&self) -> Option<Cycle> {
        match self.state {
            FixedState::Computing { post_at } => Some(post_at),
            FixedState::Waiting | FixedState::Done => Some(Cycle::MAX),
        }
    }

    /// Resets for a fresh run.
    pub fn reset(&mut self) {
        self.state = FixedState::Computing {
            post_at: self.gap as Cycle,
        };
        self.issued = 0;
        self.completed = 0;
        self.done_at = None;
    }
}

/// The open client-side interface: the fixed-request task sleeps through
/// its compute gaps and finishes after its last completion.
impl<P: RequestPort + ?Sized> SimAgent<P, CompletedTransaction> for FixedRequestTask {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut P,
    ) -> Control {
        FixedRequestTask::tick(self, now, completed, port);
        match FixedRequestTask::wake_at(self) {
            Some(t) => Control::Sleep(t),
            None => Control::Continue,
        }
    }

    fn wake_at(&self) -> Option<Cycle> {
        FixedRequestTask::wake_at(self)
    }

    fn is_done(&self) -> bool {
        FixedRequestTask::is_done(self)
    }

    fn done_at(&self) -> Option<Cycle> {
        FixedRequestTask::done_at(self)
    }

    fn reset(&mut self, _rng: &mut SimRng) {
        FixedRequestTask::reset(self);
    }

    fn stats(&self) -> AgentStats {
        AgentStats {
            completed: self.completed,
            done_at: self.done_at,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::{Bus, BusConfig, PolicyKind};

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn run(task: &mut FixedRequestTask, bus: &mut Bus, limit: Cycle) -> Cycle {
        let mut now = 0;
        while !task.is_done() && now < limit {
            let done = bus.begin_cycle(now);
            task.tick(now, done.as_ref(), bus);
            bus.end_cycle(now);
            now += 1;
        }
        now
    }

    #[test]
    fn isolation_time_matches_paper_arithmetic() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut tua = FixedRequestTask::new(c(0), 1000, 6, 4);
        assert_eq!(tua.isolation_cycles(), 10_000);
        run(&mut tua, &mut bus, 20_000);
        assert_eq!(tua.done_at(), Some(10_000));
    }

    #[test]
    fn zero_gap_posts_back_to_back() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut tua = FixedRequestTask::new(c(0), 10, 5, 0);
        run(&mut tua, &mut bus, 1_000);
        // 10 x 5 cycles, no gaps, no contention: 50 cycles.
        assert_eq!(tua.done_at(), Some(50));
    }

    #[test]
    fn completion_counting() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut tua = FixedRequestTask::new(c(0), 3, 7, 2);
        run(&mut tua, &mut bus, 100);
        assert_eq!(tua.completed(), 3);
        assert_eq!(tua.done_at(), Some(3 * 9));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut tua = FixedRequestTask::new(c(0), 5, 6, 4);
        run(&mut tua, &mut bus, 1_000);
        assert!(tua.is_done());
        tua.reset();
        assert!(!tua.is_done());
        assert_eq!(tua.completed(), 0);
        let mut bus2 = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        run(&mut tua, &mut bus2, 1_000);
        assert_eq!(tua.done_at(), Some(50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_requests_rejected() {
        let _ = FixedRequestTask::new(c(0), 0, 6, 4);
    }

    #[test]
    fn wake_at_tracks_the_state_machine() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut tua = FixedRequestTask::new(c(0), 2, 6, 4);
        assert_eq!(tua.wake_at(), Some(4), "first post after the gap");
        for now in 0..4u64 {
            let done = bus.begin_cycle(now);
            tua.tick(now, done.as_ref(), &mut bus);
            bus.end_cycle(now);
        }
        let done = bus.begin_cycle(4);
        tua.tick(4, done.as_ref(), &mut bus);
        bus.end_cycle(4);
        assert_eq!(tua.wake_at(), Some(Cycle::MAX), "waiting for the grant");
        for now in 5..100u64 {
            let done = bus.begin_cycle(now);
            tua.tick(now, done.as_ref(), &mut bus);
            bus.end_cycle(now);
        }
        assert!(tua.is_done());
        assert_eq!(tua.wake_at(), Some(Cycle::MAX));
    }

    #[test]
    fn sparse_ticking_at_wake_cycles_matches_dense_ticking() {
        // Dense: tick every cycle. Sparse: tick only at wake_at cycles and
        // at completion cycles — the event engine's visiting pattern.
        let dense_done = {
            let mut bus = Bus::new(
                BusConfig::new(1, 56).unwrap(),
                PolicyKind::RoundRobin.build(1, 56),
            );
            let mut tua = FixedRequestTask::new(c(0), 5, 7, 3);
            run(&mut tua, &mut bus, 1_000);
            tua.done_at().unwrap()
        };
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut tua = FixedRequestTask::new(c(0), 5, 7, 3);
        let mut now = 0u64;
        let mut visited = 0u64;
        while !tua.is_done() && now < 1_000 {
            let done = bus.begin_cycle(now);
            tua.tick(now, done.as_ref(), &mut bus);
            bus.end_cycle(now);
            visited += 1;
            let next = match (tua.wake_at().unwrap(), bus.next_event(now)) {
                (Cycle::MAX, Some(ev)) => ev,
                (wake, Some(ev)) => wake.min(ev),
                (wake, None) => wake.min(now + 1),
            };
            now = next.max(now + 1).min(1_000);
        }
        assert_eq!(tua.done_at(), Some(dense_done));
        assert!(
            visited < dense_done / 2,
            "sparse ticking should visit far fewer cycles: {visited} of {dense_done}"
        );
    }
}
