//! The program abstraction: a stream of compute and memory operations.

use cba_mem::MemAccess;
use sim_core::rng::SimRng;

/// One operation of a program's dynamic instruction stream, as seen by the
/// memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n >= 1` cycles of pipeline work with no memory traffic.
    Compute(u32),
    /// One memory access (classified by the core's cache hierarchy).
    Access(MemAccess),
}

/// A program: a (possibly randomized) generator of [`Op`]s.
///
/// Programs are driven pull-style by a [`Core`](crate::Core); they may use
/// the per-run RNG stream for randomized address patterns. A program must
/// be restartable: [`Program::reset`] begins a statistically independent
/// fresh run (the Monte-Carlo campaigns reset programs between runs).
pub trait Program: std::fmt::Debug {
    /// Stable benchmark name (reports and plots key on it).
    fn name(&self) -> &str;

    /// The next operation, or `None` when the program completes.
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op>;

    /// Restarts the program for a fresh run.
    fn reset(&mut self, rng: &mut SimRng);
}

/// A fixed, scripted operation sequence — the simplest [`Program`].
///
/// Used heavily in tests and as the building block for trace-driven
/// experiments.
///
/// # Example
///
/// ```
/// use cba_cpu::{Op, Program, ScriptProgram};
/// use cba_mem::MemAccess;
/// use sim_core::rng::SimRng;
///
/// let mut p = ScriptProgram::new("two-ops", vec![
///     Op::Compute(3),
///     Op::Access(MemAccess::load(0x80)),
/// ]);
/// let mut rng = SimRng::seed_from(0);
/// assert_eq!(p.next_op(&mut rng), Some(Op::Compute(3)));
/// assert!(matches!(p.next_op(&mut rng), Some(Op::Access(_))));
/// assert_eq!(p.next_op(&mut rng), None);
/// p.reset(&mut rng);
/// assert_eq!(p.next_op(&mut rng), Some(Op::Compute(3)));
/// ```
#[derive(Debug, Clone)]
pub struct ScriptProgram {
    name: String,
    ops: Vec<Op>,
    pos: usize,
}

impl ScriptProgram {
    /// Creates a scripted program.
    ///
    /// # Panics
    ///
    /// Panics if any `Op::Compute` has a zero cycle count (a zero-cycle
    /// operation cannot be scheduled).
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        assert!(
            ops.iter().all(|op| !matches!(op, Op::Compute(0))),
            "Compute(0) is not a schedulable operation"
        );
        ScriptProgram {
            name: name.into(),
            ops,
            pos: 0,
        }
    }

    /// Number of operations in the script.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Program for ScriptProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self, _rng: &mut SimRng) -> Option<Op> {
        let op = self.ops.get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn reset(&mut self, _rng: &mut SimRng) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_yields_in_order_and_resets() {
        let ops = vec![
            Op::Compute(1),
            Op::Access(MemAccess::store(0x10)),
            Op::Compute(2),
        ];
        let mut p = ScriptProgram::new("s", ops.clone());
        let mut rng = SimRng::seed_from(0);
        for expect in &ops {
            assert_eq!(p.next_op(&mut rng).as_ref(), Some(expect));
        }
        assert_eq!(p.next_op(&mut rng), None);
        assert_eq!(p.next_op(&mut rng), None, "stays exhausted");
        p.reset(&mut rng);
        assert_eq!(p.next_op(&mut rng), Some(ops[0]));
    }

    #[test]
    #[should_panic(expected = "Compute(0)")]
    fn zero_compute_rejected() {
        let _ = ScriptProgram::new("bad", vec![Op::Compute(0)]);
    }

    #[test]
    fn empty_script_finishes_immediately() {
        let mut p = ScriptProgram::new("empty", vec![]);
        let mut rng = SimRng::seed_from(0);
        assert!(p.is_empty());
        assert_eq!(p.next_op(&mut rng), None);
    }
}
