//! Contention generators for the maximum-contention (WCET-estimation)
//! scenarios.

use cba_bus::{BusRequest, CompletedTransaction, RequestKind, RequestPort};
use sim_core::agent::{AgentStats, SimAgent};
use sim_core::rng::SimRng;
use sim_core::{Control, CoreId, Cycle};

/// A worst-case contender: always has a `duration`-cycle request posted,
/// re-posting the same cycle the previous one completes.
///
/// This is the paper's WCET-estimation-mode core model (Table I: `REQi`
/// always set, the bus kept busy for `MaxL = 56` cycles per grant). Whether
/// the contender actually *competes* each cycle is decided by the bus's
/// eligibility filter: under plain RP it always does; under CBA its `COMP`
/// bit gates it (budget full ∧ TuA request pending).
///
/// The same type with `duration = 28` models the streaming applications of
/// the paper's Section II illustrative example.
///
/// # Example
///
/// ```
/// use cba_bus::{Bus, BusConfig, PolicyKind};
/// use cba_cpu::Contender;
/// use sim_core::CoreId;
///
/// let mut bus = Bus::new(BusConfig::new(2, 56)?, PolicyKind::RoundRobin.build(2, 56));
/// let mut contender = Contender::new(CoreId::from_index(1), 56);
/// for now in 0..1_000u64 {
///     let done = bus.begin_cycle(now);
///     contender.tick(now, done.as_ref(), &mut bus);
///     bus.end_cycle(now);
/// }
/// // Alone against nobody, it saturates the bus completely.
/// assert_eq!(bus.idle_cycles(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Contender {
    core: CoreId,
    duration: u32,
    grants: u64,
}

impl Contender {
    /// Creates a saturating contender issuing `duration`-cycle requests.
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0`.
    pub fn new(core: CoreId, duration: u32) -> Self {
        assert!(duration > 0, "duration must be positive");
        Contender {
            core,
            duration,
            grants: 0,
        }
    }

    /// The contender's core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Requests granted so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Advances one cycle: keeps exactly one request posted at all times.
    /// Generic over the [`RequestPort`], so the same contender saturates a
    /// flat bus or one cluster of a hierarchical fabric.
    pub fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        bus: &mut (impl RequestPort + ?Sized),
    ) {
        if let Some(ct) = completed {
            if ct.core == self.core {
                self.grants += 1;
            }
        }
        if bus.can_accept(self.core) {
            bus.post(
                BusRequest::new(self.core, self.duration, RequestKind::Contender, now)
                    .expect("validated duration"),
            )
            .expect("contender posts at most one request");
        }
    }

    /// Resets grant statistics for a fresh run.
    pub fn reset(&mut self) {
        self.grants = 0;
    }

    /// Sleep horizon for the event-driven engine: after a tick the
    /// contender always has its one request posted (or in service), so
    /// only a completion — a bus event — can make it act. `Cycle::MAX`
    /// means "wake me only at bus events".
    pub fn wake_at(&self) -> Option<Cycle> {
        Some(Cycle::MAX)
    }
}

/// The open client-side interface: a saturating contender never
/// finishes, sleeps until bus events, and resets to zero grants.
impl<P: RequestPort + ?Sized> SimAgent<P, CompletedTransaction> for Contender {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut P,
    ) -> Control {
        Contender::tick(self, now, completed, port);
        Control::Sleep(Cycle::MAX)
    }

    fn wake_at(&self) -> Option<Cycle> {
        Contender::wake_at(self)
    }

    fn is_done(&self) -> bool {
        false
    }

    fn reset(&mut self, _rng: &mut SimRng) {
        Contender::reset(self);
    }

    fn stats(&self) -> AgentStats {
        AgentStats {
            completed: self.grants,
            ..Default::default()
        }
    }
}

/// A periodic contender: issues a `duration`-cycle request every `period`
/// cycles (models a real co-runner with known bandwidth demand rather than
/// the worst case).
///
/// If a request is still pending when the next period arrives, the new
/// request is skipped (the co-runner is blocking, like a real core).
#[derive(Debug, Clone)]
pub struct PeriodicContender {
    core: CoreId,
    duration: u32,
    period: Cycle,
    phase: Cycle,
    next_issue: Cycle,
    grants: u64,
}

impl PeriodicContender {
    /// Creates a contender issuing `duration`-cycle requests every
    /// `period` cycles, starting at `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0` or `period == 0`.
    pub fn new(core: CoreId, duration: u32, period: Cycle, phase: Cycle) -> Self {
        assert!(duration > 0, "duration must be positive");
        assert!(period > 0, "period must be positive");
        PeriodicContender {
            core,
            duration,
            period,
            phase,
            next_issue: phase,
            grants: 0,
        }
    }

    /// The contender's core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Requests granted so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Advances one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        bus: &mut (impl RequestPort + ?Sized),
    ) {
        if let Some(ct) = completed {
            if ct.core == self.core {
                self.grants += 1;
            }
        }
        if now >= self.next_issue {
            if bus.can_accept(self.core) {
                bus.post(
                    BusRequest::new(self.core, self.duration, RequestKind::Contender, now)
                        .expect("validated duration"),
                )
                .expect("periodic contender posts at most one request");
            }
            self.next_issue += self.period;
        }
    }

    /// Resets to issue from `phase` again.
    pub fn reset(&mut self, phase: Cycle) {
        self.next_issue = phase;
        self.grants = 0;
    }

    /// Sleep horizon for the event-driven engine: the contender must be
    /// ticked at its next issue boundary (the issue is *skipped*, not
    /// deferred, when its previous request is still pending — so the
    /// boundary matters either way); between boundaries only completions
    /// can make it act.
    pub fn wake_at(&self) -> Option<Cycle> {
        Some(self.next_issue)
    }

    /// Shifts the contender's only absolute-time state (`next_issue`) by
    /// `delta` cycles, for engines that fast-forward a detected limit
    /// cycle arithmetically instead of replaying its ticks.
    pub fn shift_time(&mut self, delta: Cycle) {
        self.next_issue += delta;
    }
}

/// The open client-side interface: a periodic contender never finishes
/// and resets to its construction-time phase.
impl<P: RequestPort + ?Sized> SimAgent<P, CompletedTransaction> for PeriodicContender {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut P,
    ) -> Control {
        PeriodicContender::tick(self, now, completed, port);
        Control::Sleep(self.next_issue)
    }

    fn wake_at(&self) -> Option<Cycle> {
        PeriodicContender::wake_at(self)
    }

    fn is_done(&self) -> bool {
        false
    }

    fn reset(&mut self, _rng: &mut SimRng) {
        PeriodicContender::reset(self, self.phase);
    }

    fn stats(&self) -> AgentStats {
        AgentStats {
            completed: self.grants,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::{Bus, BusConfig, PolicyKind};

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    #[test]
    fn contender_saturates_alone() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut k = Contender::new(c(0), 56);
        for now in 0..5600u64 {
            let done = bus.begin_cycle(now);
            k.tick(now, done.as_ref(), &mut bus);
            bus.end_cycle(now);
        }
        assert_eq!(bus.idle_cycles(), 0);
        assert_eq!(k.grants(), 5600 / 56 - 1, "back-to-back MaxL grants");
    }

    #[test]
    fn three_contenders_share_slots_fairly_under_rr() {
        let mut bus = Bus::new(
            BusConfig::new(3, 56).unwrap(),
            PolicyKind::RoundRobin.build(3, 56),
        );
        let mut ks: Vec<Contender> = (0..3).map(|i| Contender::new(c(i), 28)).collect();
        for now in 0..8400u64 {
            let done = bus.begin_cycle(now);
            for k in &mut ks {
                k.tick(now, done.as_ref(), &mut bus);
            }
            bus.end_cycle(now);
        }
        assert_eq!(bus.idle_cycles(), 0);
        let slots: Vec<u64> = (0..3).map(|i| bus.trace().slots(c(i))).collect();
        let min = slots.iter().min().unwrap();
        let max = slots.iter().max().unwrap();
        assert!(max - min <= 1, "slots: {slots:?}");
    }

    #[test]
    fn periodic_contender_respects_period() {
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        let mut k = PeriodicContender::new(c(0), 5, 100, 0);
        for now in 0..1000u64 {
            let done = bus.begin_cycle(now);
            k.tick(now, done.as_ref(), &mut bus);
            bus.end_cycle(now);
        }
        assert_eq!(bus.trace().slots(c(0)), 10, "one request per 100 cycles");
        assert_eq!(bus.trace().busy_cycles(c(0)), 50);
    }

    #[test]
    fn reset_clears_grants() {
        let mut k = Contender::new(c(0), 56);
        k.grants = 5;
        k.reset();
        assert_eq!(k.grants(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        let _ = Contender::new(c(0), 0);
    }
}
