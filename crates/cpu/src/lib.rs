#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contender;
pub mod core;
pub mod fixed_task;
pub mod mem_agent;
pub mod program;
pub mod store_buffer;

pub use contender::{Contender, PeriodicContender};
pub use core::{Core, CoreStats};
pub use fixed_task::FixedRequestTask;
pub use mem_agent::MemAgent;
pub use program::{Op, Program, ScriptProgram};
pub use store_buffer::StoreBuffer;
