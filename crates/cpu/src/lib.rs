//! In-order core models for the CBA platform.
//!
//! The paper's platform uses pipelined in-order SparcV8 LEON3 cores; what
//! the bus (and hence every experiment) observes from a core is the
//! *arrival process of bus transactions*: stretches of computation, L1
//! hits, and blocking or write-through accesses that translate into bus
//! requests. [`Core`] models exactly that surface:
//!
//! * a [`Program`] yields an operation stream ([`Op::Compute`] /
//!   [`Op::Access`]);
//! * accesses are classified by the core's private
//!   [`CoreMemory`](cba_mem::CoreMemory) hierarchy;
//! * loads, instruction-fetch misses and atomics **block** the core until
//!   their bus transaction completes (in-order, one outstanding request);
//! * write-through stores are absorbed by a small [`StoreBuffer`] that
//!   drains over the bus in program order (total store order: a blocking
//!   access waits for the buffer to drain first);
//! * [`Contender`] generates the worst-case contention of WCET-estimation
//!   mode: a request of `MaxL` cycles re-posted the same cycle the previous
//!   one completes.
//!
//! # Example
//!
//! ```
//! use cba_bus::{Bus, BusConfig, PolicyKind};
//! use cba_cpu::{Core, Op, ScriptProgram};
//! use cba_mem::{HierarchyConfig, LatencyModel, MemAccess};
//! use sim_core::rng::SimRng;
//!
//! // One core running alone: 10 cycles of compute, one cold load.
//! let mut rng = SimRng::seed_from(1);
//! let program = ScriptProgram::new("demo", vec![
//!     Op::Compute(10),
//!     Op::Access(MemAccess::load(0x1000)),
//! ]);
//! let mut core = Core::new(
//!     sim_core::CoreId::from_index(0),
//!     Box::new(program),
//!     &HierarchyConfig::paper(),
//!     LatencyModel::paper(),
//!     &mut rng,
//! );
//! let mut bus = Bus::new(BusConfig::new(1, 56)?, PolicyKind::RoundRobin.build(1, 56));
//!
//! let mut now = 0;
//! while !core.is_done() && now < 1_000 {
//!     let completed = bus.begin_cycle(now);
//!     core.tick(now, completed.as_ref(), &mut bus);
//!     bus.end_cycle(now);
//!     now += 1;
//! }
//! // 10 compute + 1 issue + 28-cycle cold miss = done within ~40 cycles.
//! assert!(core.is_done());
//! assert!(core.done_at().unwrap() < 45);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contender;
pub mod core;
pub mod fixed_task;
pub mod program;
pub mod store_buffer;

pub use contender::{Contender, PeriodicContender};
pub use core::{Core, CoreStats};
pub use fixed_task::FixedRequestTask;
pub use program::{Op, Program, ScriptProgram};
pub use store_buffer::StoreBuffer;
