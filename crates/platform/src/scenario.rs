//! Scenario files: declarative campaign grids.
//!
//! The paper's evaluation is a grid — {RP, CBA, H-CBA} × {ISO, CON} ×
//! benchmarks × 1,000 runs — and the north star asks for "as many
//! scenarios as you can imagine". Hand-writing a Rust driver per grid
//! point does not scale, so this module turns a **scenario file** (a
//! dependency-free, line-oriented text format; see `scenarios/README.md`
//! at the repository root) into a batch of [`RunSpec`]s:
//!
//! * [`ScenarioDef::parse`] reads the format: `[section]` headers with
//!   `key = value` lines, `#` comments;
//! * the `[sweep]` section declares **axes** whose cross-product is
//!   materialized by [`ScenarioDef::expand`] into [`Cell`]s, each with a
//!   stable per-cell seed derived from the master seed and the axis
//!   indices;
//! * [`crate::report::run_scenario`] executes the cells as Monte-Carlo
//!   [`Campaign`](crate::Campaign)s and aggregates the results.
//!
//! The format is deliberately not TOML/YAML/JSON: the workspace builds
//! offline with zero external crates (the same constraint that motivated
//! the in-tree RNG), and the subset needed here — sections, scalar keys,
//! comma-separated sweep lists — fits in a small hand-rolled parser with
//! line-accurate error messages.
//!
//! # Example
//!
//! ```
//! use cba_platform::scenario::ScenarioDef;
//!
//! let def = ScenarioDef::parse(
//!     "[campaign]\n\
//!      name = demo\n\
//!      runs = 3\n\
//!      seed = 7\n\
//!      [tua]\n\
//!      load = fixed:100:6:4\n\
//!      [contenders]\n\
//!      scenario = con\n\
//!      wcet = off\n\
//!      [sweep]\n\
//!      setup = rp,cba\n\
//!      duration = 5,56\n",
//! )?;
//! let cells = def.expand()?;
//! assert_eq!(cells.len(), 4); // 2 setups x 2 durations
//! assert_eq!(cells[0].labels, vec![
//!     ("setup".to_string(), "RP".to_string()),
//!     ("duration".to_string(), "5".to_string()),
//! ]);
//! # Ok::<(), cba_platform::scenario::ScenarioError>(())
//! ```

use crate::config::{FabricTopology, PlatformConfig};
use crate::platform::{CoreLoad, DriveMode, RunSpec, Scenario, StopCondition};
use cba::CreditConfig;
use cba_bus::PolicyKind;
use cba_mem::{HierarchyConfig, LatencyModel, MemoryConfig};
use cba_workloads::{profile_by_name, EembcProfile};
use std::fmt;

/// A parse, expansion or execution error, with the scenario-file line
/// number when one is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number in the scenario file, if attributable.
    pub line: Option<usize>,
    /// What went wrong.
    pub msg: String,
}

impl ScenarioError {
    fn at(line: usize, msg: impl Into<String>) -> Self {
        ScenarioError {
            line: Some(line),
            msg: msg.into(),
        }
    }

    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ScenarioError {
            line: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// What runs on core 0 (the task under analysis).
#[derive(Debug, Clone, PartialEq)]
pub enum TuaSpec {
    /// A load in the spec mini-language (`bench:NAME`, `fixed:R:D:G`,
    /// `sat:D`, `per:D:P:PH`, `stream:A`, `idle`).
    Load(String),
    /// A catalog benchmark profile with optional knob overrides
    /// (`accesses`, `burst`, `gap`, `between`, `p_store`, ...), applied in
    /// order at build time.
    Profile {
        /// Catalog benchmark name (see `cba_workloads::suite`).
        name: String,
        /// `(knob, raw value)` overrides.
        overrides: Vec<(String, String)>,
    },
    /// An explicit profile, for programmatic definitions (the experiment
    /// drivers); not produced by the parser.
    Inline(EembcProfile),
}

/// Co-runner placement for cores `1..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContenderSpec {
    /// Every other core idle.
    Isolation,
    /// WCET-style maximum contention: saturating contenders (duration
    /// `MaxL`, or the template's `duration` override) on every other core.
    MaxContention,
    /// Explicit load specs for cores `1..n`, in order.
    Custom(Vec<String>),
    /// One load spec replicated onto every other core (sweep-friendly:
    /// stays valid when a `cores` axis changes `n`).
    Fill(String),
}

/// WCET-estimation-mode selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcetSpec {
    /// On exactly when the contender scenario is `con` (the paper's
    /// convention: maximum contention is the WCET-estimation setup).
    Auto,
    /// Force WCET-estimation mode.
    On,
    /// Force operation mode.
    Off,
}

/// The `[topology]` section: a hierarchical multi-bus fabric instead of
/// the flat shared bus (see `cba_bus::fabric`). The core count is derived
/// (`clusters * cores_per_cluster`); the `[platform]` `policy` is the
/// default for both segment policies and the `[platform]` `cba` the
/// default for the backbone filter, so `setup`/`cba`/`weights` sweep axes
/// reshape the *backbone* sharing of a fabric scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyTemplate {
    /// Number of cluster buses (default 2).
    pub clusters: usize,
    /// Cores on each cluster bus (default 4).
    pub cores_per_cluster: usize,
    /// Bridge store-and-forward delay per direction (default 2).
    pub bridge_latency: u32,
    /// Bridge request/response queue capacity (default 2).
    pub bridge_depth: usize,
    /// Cluster-bus policy override (default: the `[platform]` policy).
    pub cluster_policy: Option<String>,
    /// Cluster-bus credit-filter spec, sized for `cores_per_cluster`
    /// (default `none`).
    pub cluster_cba: String,
    /// Per-core budget-cap multipliers for the cluster filters
    /// (`2:1:1:1` style).
    pub cluster_caps: Option<String>,
    /// Backbone policy override (default: the `[platform]` policy).
    pub backbone_policy: Option<String>,
    /// Backbone credit-filter spec, sized for `clusters` (default: the
    /// `[platform]` cba spec).
    pub backbone_cba: Option<String>,
    /// Per-bridge budget-cap multipliers for the backbone filter. Cap
    /// headroom lets a heavy cluster bank credit and reclaim scheduling
    /// slots it would otherwise lose to quantization (see
    /// `scenarios/fabric_fairness.scn`).
    pub backbone_caps: Option<String>,
}

impl Default for TopologyTemplate {
    fn default() -> Self {
        TopologyTemplate {
            clusters: 2,
            cores_per_cluster: 4,
            bridge_latency: 2,
            bridge_depth: 2,
            cluster_policy: None,
            cluster_cba: "none".into(),
            cluster_caps: None,
            backbone_policy: None,
            backbone_cba: None,
            backbone_caps: None,
        }
    }
}

/// The per-cell run template: every scenario key with its default. Sweep
/// axes override fields of a clone of this template per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Core count (default 4, the paper's platform).
    pub cores: usize,
    /// Arbitration policy name (default `rp`).
    pub policy: String,
    /// Credit-filter spec: `none`, `homog`, `hcba`, or `w:3:1:1:1`
    /// (default `none`).
    pub cba: String,
    /// Optional per-core budget-cap multipliers, `2:1:1:1` style.
    pub caps: Option<String>,
    /// Drive arbitration randomness from the LFSR bank (default on).
    pub lfsr: bool,
    /// Cycle engine: `events` (fast path, default), `naive` (per-cycle
    /// reference loop, for debugging — results are bit-identical), or
    /// `fluid` (continuous-event fair-sharing backend with limit-cycle
    /// fast-forward).
    pub engine: String,
    /// Core-0 load (default `bench:rspeed`).
    pub tua: TuaSpec,
    /// Co-runner placement (default `con`).
    pub contenders: ContenderSpec,
    /// Saturating-contender duration override for `con` (default: MaxL).
    pub duration: Option<u32>,
    /// WCET-estimation-mode selection (default auto).
    pub wcet: WcetSpec,
    /// Stop condition: `tua`, `all` or `horizon:N` (default `tua`).
    pub stop: String,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Record the full grant trace (burst/starvation metrics).
    pub trace: bool,
    /// Hierarchical-fabric topology (`[topology]` section); `None` = the
    /// flat shared bus. With a topology, `cores` is derived from it.
    pub topology: Option<TopologyTemplate>,
    /// Miss-stream configuration (`[memory]` section) for the `mem` /
    /// `shared` agent kinds; `None` = no memory agents allowed.
    pub memory: Option<MemoryConfig>,
}

impl Default for Template {
    fn default() -> Self {
        Template {
            cores: 4,
            policy: "rp".into(),
            cba: "none".into(),
            caps: None,
            lfsr: true,
            engine: "events".into(),
            tua: TuaSpec::Load("bench:rspeed".into()),
            contenders: ContenderSpec::MaxContention,
            duration: None,
            wcet: WcetSpec::Auto,
            stop: "tua".into(),
            max_cycles: 50_000_000,
            trace: false,
            topology: None,
            memory: None,
        }
    }
}

/// One sweep-axis value.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// A raw string from the file, interpreted per axis key.
    Raw(String),
    /// An explicit benchmark profile (programmatic definitions only; used
    /// by the experiment drivers to sweep ad-hoc profiles).
    Profile(EembcProfile),
}

impl AxisValue {
    /// The raw text of this value (a profile renders as its name).
    pub fn raw(&self) -> &str {
        match self {
            AxisValue::Raw(s) => s,
            AxisValue::Profile(p) => p.name,
        }
    }
}

/// One sweep axis: a key and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Sweep key (see [`SWEEP_KEYS`]).
    pub key: String,
    /// The axis values, in declaration order.
    pub values: Vec<AxisValue>,
}

/// Report shaping: normalization baseline, percentiles, and windowed
/// fairness.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// Axis selector of the normalization baseline, e.g.
    /// `[("setup", "rp"), ("scenario", "iso")]`: within each group of
    /// cells agreeing on every *other* axis, means are divided by the
    /// mean of the cell matching this selector. Empty = no normalization.
    pub baseline: Vec<(String, String)>,
    /// Report quantiles, as fractions in `[0, 1]`.
    pub percentiles: Vec<f64>,
    /// Attach a windowed-fairness probe splitting each run's horizon
    /// into this many equal windows (`windows = N`; requires a
    /// `horizon:` stop it divides evenly). Per-window Jain indices and
    /// core shares surface as extra report columns.
    pub windows: Option<u32>,
    /// Per-run exceedance probabilities for pWCET tail columns
    /// (`pwcet = 1e-9,1e-12`): each cell's latency samples get the full
    /// MBPTA treatment (iid battery + Gumbel block-maxima fit) and the
    /// report grows `pwcet@P`, Gumbel-fit, and iid-verdict columns.
    /// Empty = no pWCET analysis.
    pub pwcet: Vec<f64>,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec {
            baseline: Vec::new(),
            percentiles: vec![0.50, 0.95, 0.99],
            windows: None,
            pwcet: Vec::new(),
        }
    }
}

/// The `[checkpoint]` section: crash-safety knobs for long campaigns.
///
/// `dir` names where the journal of completed cells lives (overridable by
/// `cba_sim --checkpoint`); the budgets bound runaway cells. The cycle
/// budget is deterministic (it caps the simulated-cycle count, so it
/// trips identically on every host and thread count); the wall-clock
/// budget is inherently host-dependent and therefore breaks the
/// bit-identical determinism contract — reach for it only when a
/// campaign must survive truly pathological cells.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointSpec {
    /// Default checkpoint directory (`None` = checkpointing off unless
    /// the CLI passes `--checkpoint DIR`).
    pub dir: Option<String>,
    /// Wall-clock budget per cell, in milliseconds: once a cell has been
    /// executing this long, its remaining runs are skipped and the cell
    /// reports [`CellOutcome::Budget`](crate::report::CellOutcome).
    /// **Non-deterministic** — see the type docs.
    pub cell_budget_ms: Option<u64>,
    /// Simulated-cycle budget per run: caps each run's `max_cycles`, so a
    /// run that would exceed it stops there, counts as unfinished, and
    /// marks the cell [`CellOutcome::Budget`](crate::report::CellOutcome).
    /// Deterministic.
    pub run_budget_cycles: Option<u64>,
}

impl CheckpointSpec {
    /// True when every key is at its default (the section renders only
    /// when this is false, keeping pre-checkpoint scenario renders
    /// byte-identical).
    pub fn is_default(&self) -> bool {
        *self == CheckpointSpec::default()
    }
}

/// A parsed (or programmatically built) scenario: campaign metadata, the
/// run template, the sweep axes and the report shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDef {
    /// Campaign name (report label).
    pub name: String,
    /// Monte-Carlo runs per cell.
    pub runs: usize,
    /// Master seed; per-cell seeds derive from it and the axis indices.
    pub seed: u64,
    /// Worker threads per campaign (`None` = auto).
    pub threads: Option<usize>,
    /// The per-cell run template.
    pub template: Template,
    /// Sweep axes, outermost first (the last axis varies fastest).
    pub axes: Vec<Axis>,
    /// Report shaping.
    pub report: ReportSpec,
    /// Crash-safety knobs (`[checkpoint]` section).
    pub checkpoint: CheckpointSpec,
}

/// One materialized grid point.
#[derive(Debug, Clone)]
pub struct Cell {
    /// `(axis key, canonical value label)` pairs, in axis order.
    pub labels: Vec<(String, String)>,
    /// Axis indices of this point.
    pub indices: Vec<usize>,
    /// The campaign seed for this cell.
    pub seed: u64,
    /// The fully built run specification.
    pub spec: RunSpec,
}

impl Cell {
    /// The label of axis `key`, if this cell has that axis.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// The sweepable axis keys, in documentation order.
pub const SWEEP_KEYS: &[&str] = &[
    "bench",
    "setup",
    "scenario",
    "cores",
    "policy",
    "cba",
    "weights",
    "caps",
    "duration",
    "tua",
    "fill",
    "clusters",
    "bridge_latency",
    "bridge_depth",
    "cluster_cba",
    "backbone_cba",
    "mem_working_set",
    "share_frac",
    "write_frac",
    "l1_sets",
    "accesses",
    "working_set",
    "p_random",
    "p_store",
    "p_atomic",
    "p_ifetch",
    "burst",
    "gap",
    "between",
];

impl Default for ScenarioDef {
    fn default() -> Self {
        ScenarioDef {
            name: "unnamed".into(),
            runs: 30,
            seed: 2017,
            threads: None,
            template: Template::default(),
            axes: Vec::new(),
            report: ReportSpec::default(),
            checkpoint: CheckpointSpec::default(),
        }
    }
}

impl ScenarioDef {
    /// Parses the scenario-file format.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] with the offending 1-based line number
    /// for unknown sections/keys, malformed values, or duplicate axes.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut def = ScenarioDef::default();
        let mut section = String::new();
        for (i, raw_line) in text.lines().enumerate() {
            let lineno = i + 1;
            // Strip comments ('#' to end of line) and whitespace.
            let line = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| ScenarioError::at(lineno, "unterminated section header"))?
                    .trim()
                    .to_ascii_lowercase();
                match name.as_str() {
                    "campaign" | "platform" | "tua" | "contenders" | "sweep" | "report"
                    | "checkpoint" => {
                        section = name;
                    }
                    "topology" => {
                        def.template.topology.get_or_insert_with(Default::default);
                        section = name;
                    }
                    "memory" => {
                        def.template.memory.get_or_insert_with(Default::default);
                        section = name;
                    }
                    other => {
                        return Err(ScenarioError::at(
                            lineno,
                            format!(
                                "unknown section '[{other}]' (expected [campaign], [platform], \
                                 [topology], [memory], [tua], [contenders], [sweep], [report] or \
                                 [checkpoint])"
                            ),
                        ))
                    }
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ScenarioError::at(lineno, format!("expected 'key = value', got '{line}'"))
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            if value.is_empty() {
                return Err(ScenarioError::at(
                    lineno,
                    format!("key '{key}' has no value"),
                ));
            }
            match section.as_str() {
                "" => {
                    return Err(ScenarioError::at(
                        lineno,
                        format!("key '{key}' before any [section] header"),
                    ))
                }
                "campaign" => def.parse_campaign_key(&key, value, lineno)?,
                "platform" => def.parse_platform_key(&key, value, lineno)?,
                "topology" => def.parse_topology_key(&key, value, lineno)?,
                "memory" => def.parse_memory_key(&key, value, lineno)?,
                "tua" => def.parse_tua_key(&key, value, lineno)?,
                "contenders" => def.parse_contenders_key(&key, value, lineno)?,
                "sweep" => def.parse_sweep_key(&key, value, lineno)?,
                "report" => def.parse_report_key(&key, value, lineno)?,
                "checkpoint" => def.parse_checkpoint_key(&key, value, lineno)?,
                _ => unreachable!("sections are validated above"),
            }
        }
        Ok(def)
    }

    fn parse_campaign_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        match key {
            "name" => self.name = value.to_string(),
            "runs" => {
                self.runs = parse_num(value, "runs", lineno)?;
                if self.runs == 0 {
                    return Err(ScenarioError::at(lineno, "runs must be positive"));
                }
            }
            "seed" => self.seed = parse_num(value, "seed", lineno)?,
            "threads" => {
                let n: usize = parse_num(value, "threads", lineno)?;
                self.threads = if n == 0 { None } else { Some(n) };
            }
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [campaign] key '{other}' (expected name, runs, seed, threads)"
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_platform_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        let t = &mut self.template;
        match key {
            "cores" => t.cores = parse_num(value, "cores", lineno)?,
            "policy" => {
                parse_policy(value).map_err(|e| ScenarioError::at(lineno, e))?;
                t.policy = value.to_string();
            }
            "cba" => t.cba = value.to_string(),
            "caps" => t.caps = Some(value.to_string()),
            "lfsr" => t.lfsr = parse_switch(value, "lfsr", lineno)?,
            "engine" => {
                parse_engine(value).map_err(|e| ScenarioError::at(lineno, e))?;
                t.engine = value.to_string();
            }
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [platform] key '{other}' (expected cores, policy, cba, caps, \
                         lfsr, engine)"
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_topology_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        let topo = self
            .template
            .topology
            .as_mut()
            .expect("[topology] section initializes the template");
        match key {
            "clusters" => {
                topo.clusters = parse_num(value, "clusters", lineno)?;
                if topo.clusters == 0 {
                    return Err(ScenarioError::at(lineno, "clusters must be positive"));
                }
            }
            "cores_per_cluster" => {
                topo.cores_per_cluster = parse_num(value, "cores_per_cluster", lineno)?;
                if topo.cores_per_cluster == 0 {
                    return Err(ScenarioError::at(
                        lineno,
                        "cores_per_cluster must be positive",
                    ));
                }
            }
            "bridge_latency" => {
                topo.bridge_latency = parse_num(value, "bridge_latency", lineno)?;
                if topo.bridge_latency == 0 {
                    return Err(ScenarioError::at(
                        lineno,
                        "bridge_latency must be at least 1",
                    ));
                }
            }
            "bridge_depth" => {
                topo.bridge_depth = parse_num(value, "bridge_depth", lineno)?;
                if topo.bridge_depth == 0 {
                    return Err(ScenarioError::at(lineno, "bridge_depth must be at least 1"));
                }
            }
            "cluster_policy" => {
                parse_policy(value).map_err(|e| ScenarioError::at(lineno, e))?;
                topo.cluster_policy = Some(value.to_string());
            }
            "backbone_policy" => {
                parse_policy(value).map_err(|e| ScenarioError::at(lineno, e))?;
                topo.backbone_policy = Some(value.to_string());
            }
            "cluster_cba" => topo.cluster_cba = value.to_string(),
            "cluster_caps" => topo.cluster_caps = Some(value.to_string()),
            "backbone_cba" => topo.backbone_cba = Some(value.to_string()),
            "backbone_caps" => topo.backbone_caps = Some(value.to_string()),
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [topology] key '{other}' (expected clusters, \
                         cores_per_cluster, bridge_latency, bridge_depth, cluster_policy, \
                         cluster_cba, cluster_caps, backbone_policy, backbone_cba, \
                         backbone_caps)"
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_memory_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        let mem = self
            .template
            .memory
            .as_mut()
            .expect("[memory] section initializes the template");
        let frac = |value: &str, what: &str| -> Result<f64, ScenarioError> {
            let f: f64 = value.parse().map_err(|_| {
                ScenarioError::at(lineno, format!("bad fraction '{value}' for '{what}'"))
            })?;
            if !(0.0..=1.0).contains(&f) {
                return Err(ScenarioError::at(
                    lineno,
                    format!("{what} must be within [0, 1], got {f}"),
                ));
            }
            Ok(f)
        };
        match key {
            "working_set" => {
                mem.working_set = parse_num(value, "working_set", lineno)?;
                if mem.working_set < cba_mem::coherence::SHARED_LINE_BYTES {
                    return Err(ScenarioError::at(
                        lineno,
                        format!(
                            "working_set must be at least one {}-byte line",
                            cba_mem::coherence::SHARED_LINE_BYTES
                        ),
                    ));
                }
            }
            "accesses" => {
                mem.accesses = parse_num(value, "accesses", lineno)?;
                if mem.accesses == 0 {
                    return Err(ScenarioError::at(lineno, "accesses must be positive"));
                }
            }
            "write_frac" => mem.write_frac = frac(value, "write_frac")?,
            "share_frac" => mem.share_frac = frac(value, "share_frac")?,
            "locality" => mem.locality = frac(value, "locality")?,
            "shared_lines" => {
                mem.shared_lines = parse_num(value, "shared_lines", lineno)?;
                if mem.shared_lines == 0 {
                    return Err(ScenarioError::at(lineno, "shared_lines must be positive"));
                }
            }
            "think" => mem.think = parse_num(value, "think", lineno)?,
            "l1_sets" => {
                mem.l1_sets = parse_num(value, "l1_sets", lineno)?;
            }
            "l1_ways" => {
                mem.l1_ways = parse_num(value, "l1_ways", lineno)?;
            }
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [memory] key '{other}' (expected working_set, accesses, \
                         write_frac, share_frac, shared_lines, locality, think, l1_sets, \
                         l1_ways)"
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_tua_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        let t = &mut self.template;
        match key {
            "load" => {
                parse_load_spec(value).map_err(|e| ScenarioError::at(lineno, e))?;
                t.tua = TuaSpec::Load(value.to_string());
            }
            "profile" => {
                profile_by_name(value).ok_or_else(|| {
                    ScenarioError::at(lineno, format!("unknown benchmark profile '{value}'"))
                })?;
                // Keep overrides set by earlier knob lines.
                let overrides = match &t.tua {
                    TuaSpec::Profile { overrides, .. } => overrides.clone(),
                    _ => Vec::new(),
                };
                t.tua = TuaSpec::Profile {
                    name: value.to_string(),
                    overrides,
                };
            }
            knob if PROFILE_KNOBS.contains(&knob) => match &mut t.tua {
                TuaSpec::Profile { overrides, .. } => {
                    overrides.push((knob.to_string(), value.to_string()));
                }
                _ => {
                    return Err(ScenarioError::at(
                        lineno,
                        format!("knob '{knob}' requires 'profile = NAME' first in [tua]"),
                    ))
                }
            },
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [tua] key '{other}' (expected load, profile, or a profile knob: \
                         {})",
                        PROFILE_KNOBS.join(", ")
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_contenders_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        let t = &mut self.template;
        match key {
            "scenario" => {
                t.contenders = match value.to_ascii_lowercase().as_str() {
                    "iso" => ContenderSpec::Isolation,
                    "con" => ContenderSpec::MaxContention,
                    "custom" => match &t.contenders {
                        // `loads =` may already have set the list.
                        c @ ContenderSpec::Custom(_) => c.clone(),
                        _ => ContenderSpec::Custom(Vec::new()),
                    },
                    other => {
                        return Err(ScenarioError::at(
                            lineno,
                            format!("unknown scenario '{other}' (expected iso, con, custom)"),
                        ))
                    }
                };
            }
            "loads" => {
                let specs: Vec<String> = value.split(',').map(|s| s.trim().to_string()).collect();
                for s in &specs {
                    parse_load_spec(s).map_err(|e| ScenarioError::at(lineno, e))?;
                }
                t.contenders = ContenderSpec::Custom(specs);
            }
            "fill" => {
                parse_load_spec(value).map_err(|e| ScenarioError::at(lineno, e))?;
                t.contenders = ContenderSpec::Fill(value.to_string());
            }
            "duration" => t.duration = Some(parse_num(value, "duration", lineno)?),
            "wcet" => {
                t.wcet = match value.to_ascii_lowercase().as_str() {
                    "auto" => WcetSpec::Auto,
                    "on" | "true" => WcetSpec::On,
                    "off" | "false" => WcetSpec::Off,
                    other => {
                        return Err(ScenarioError::at(
                            lineno,
                            format!("unknown wcet mode '{other}' (expected auto, on, off)"),
                        ))
                    }
                };
            }
            "stop" => {
                parse_stop(value).map_err(|e| ScenarioError::at(lineno, e))?;
                t.stop = value.to_string();
            }
            "max_cycles" => t.max_cycles = parse_num(value, "max_cycles", lineno)?,
            "trace" => t.trace = parse_switch(value, "trace", lineno)?,
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [contenders] key '{other}' (expected scenario, loads, fill, \
                         duration, wcet, stop, max_cycles, trace)"
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_sweep_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        if !SWEEP_KEYS.contains(&key) {
            return Err(ScenarioError::at(
                lineno,
                format!(
                    "unknown sweep key '{key}' (sweepable keys: {})",
                    SWEEP_KEYS.join(", ")
                ),
            ));
        }
        if self.axes.iter().any(|a| a.key == key) {
            return Err(ScenarioError::at(
                lineno,
                format!("duplicate sweep axis '{key}'"),
            ));
        }
        let values: Vec<AxisValue> = value
            .split(',')
            .map(|v| AxisValue::Raw(v.trim().to_string()))
            .collect();
        if values.iter().any(|v| v.raw().is_empty()) {
            return Err(ScenarioError::at(
                lineno,
                format!("sweep axis '{key}' has an empty value"),
            ));
        }
        self.axes.push(Axis {
            key: key.to_string(),
            values,
        });
        Ok(())
    }

    fn parse_report_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        match key {
            "baseline" => {
                let mut selector = Vec::new();
                for pair in value.split(',') {
                    let (k, v) = pair.trim().split_once('=').ok_or_else(|| {
                        ScenarioError::at(
                            lineno,
                            format!("baseline entry '{}' is not 'axis=value'", pair.trim()),
                        )
                    })?;
                    selector.push((k.trim().to_string(), v.trim().to_string()));
                }
                self.report.baseline = selector;
            }
            "percentiles" => {
                let mut qs = Vec::new();
                for p in value.split(',') {
                    let pct: f64 = p.trim().parse().map_err(|_| {
                        ScenarioError::at(lineno, format!("bad percentile '{}'", p.trim()))
                    })?;
                    if !(0.0..=100.0).contains(&pct) {
                        return Err(ScenarioError::at(
                            lineno,
                            format!("percentile {pct} outside [0, 100]"),
                        ));
                    }
                    qs.push(pct / 100.0);
                }
                self.report.percentiles = qs;
            }
            "windows" => {
                let n: u32 = parse_num(value, "windows", lineno)?;
                if n == 0 {
                    return Err(ScenarioError::at(lineno, "windows must be positive"));
                }
                self.report.windows = Some(n);
            }
            "pwcet" => {
                let mut ps = Vec::new();
                for p in value.split(',') {
                    let prob: f64 = p.trim().parse().map_err(|_| {
                        ScenarioError::at(lineno, format!("bad pwcet probability '{}'", p.trim()))
                    })?;
                    if !(prob > 0.0 && prob < 1.0) {
                        return Err(ScenarioError::at(
                            lineno,
                            format!("pwcet probability {prob} outside (0, 1)"),
                        ));
                    }
                    ps.push(prob);
                }
                self.report.pwcet = ps;
            }
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [report] key '{other}' (expected baseline, percentiles, windows, pwcet)"
                    ),
                ))
            }
        }
        Ok(())
    }

    fn parse_checkpoint_key(
        &mut self,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), ScenarioError> {
        match key {
            "dir" => self.checkpoint.dir = Some(value.to_string()),
            "cell_budget_ms" => {
                let ms: u64 = parse_num(value, "cell_budget_ms", lineno)?;
                if ms == 0 {
                    return Err(ScenarioError::at(lineno, "cell_budget_ms must be positive"));
                }
                self.checkpoint.cell_budget_ms = Some(ms);
            }
            "run_budget_cycles" => {
                let cycles: u64 = parse_num(value, "run_budget_cycles", lineno)?;
                if cycles == 0 {
                    return Err(ScenarioError::at(
                        lineno,
                        "run_budget_cycles must be positive",
                    ));
                }
                self.checkpoint.run_budget_cycles = Some(cycles);
            }
            other => {
                return Err(ScenarioError::at(
                    lineno,
                    format!(
                        "unknown [checkpoint] key '{other}' (expected dir, cell_budget_ms, \
                         run_budget_cycles)"
                    ),
                ))
            }
        }
        Ok(())
    }

    /// Renders the definition back to canonical scenario-file text:
    /// `parse(render(def)) == def` for any parser-produced definition.
    /// (Programmatic [`TuaSpec::Inline`] / [`AxisValue::Profile`] values
    /// render as their catalog names, which is lossy for ad-hoc profiles.)
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = &self.template;
        let _ = writeln!(out, "[campaign]");
        let _ = writeln!(out, "name = {}", self.name);
        let _ = writeln!(out, "runs = {}", self.runs);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "threads = {}", self.threads.unwrap_or(0));
        let _ = writeln!(out, "\n[platform]");
        let _ = writeln!(out, "cores = {}", t.cores);
        let _ = writeln!(out, "policy = {}", t.policy);
        let _ = writeln!(out, "cba = {}", t.cba);
        if let Some(caps) = &t.caps {
            let _ = writeln!(out, "caps = {caps}");
        }
        let _ = writeln!(out, "lfsr = {}", switch(t.lfsr));
        let _ = writeln!(out, "engine = {}", t.engine);
        if let Some(topo) = &t.topology {
            let _ = writeln!(out, "\n[topology]");
            let _ = writeln!(out, "clusters = {}", topo.clusters);
            let _ = writeln!(out, "cores_per_cluster = {}", topo.cores_per_cluster);
            let _ = writeln!(out, "bridge_latency = {}", topo.bridge_latency);
            let _ = writeln!(out, "bridge_depth = {}", topo.bridge_depth);
            if let Some(p) = &topo.cluster_policy {
                let _ = writeln!(out, "cluster_policy = {p}");
            }
            let _ = writeln!(out, "cluster_cba = {}", topo.cluster_cba);
            if let Some(c) = &topo.cluster_caps {
                let _ = writeln!(out, "cluster_caps = {c}");
            }
            if let Some(p) = &topo.backbone_policy {
                let _ = writeln!(out, "backbone_policy = {p}");
            }
            if let Some(c) = &topo.backbone_cba {
                let _ = writeln!(out, "backbone_cba = {c}");
            }
            if let Some(c) = &topo.backbone_caps {
                let _ = writeln!(out, "backbone_caps = {c}");
            }
        }
        // Emitted only when configured, so scenarios predating the
        // [memory] section keep byte-identical canonical renders (and
        // stable scenario hashes).
        if let Some(mem) = &t.memory {
            let _ = writeln!(out, "\n[memory]");
            let _ = writeln!(out, "working_set = {}", mem.working_set);
            let _ = writeln!(out, "accesses = {}", mem.accesses);
            let _ = writeln!(out, "write_frac = {}", mem.write_frac);
            let _ = writeln!(out, "share_frac = {}", mem.share_frac);
            let _ = writeln!(out, "shared_lines = {}", mem.shared_lines);
            let _ = writeln!(out, "locality = {}", mem.locality);
            let _ = writeln!(out, "think = {}", mem.think);
            let _ = writeln!(out, "l1_sets = {}", mem.l1_sets);
            let _ = writeln!(out, "l1_ways = {}", mem.l1_ways);
        }
        let _ = writeln!(out, "\n[tua]");
        match &t.tua {
            TuaSpec::Load(spec) => {
                let _ = writeln!(out, "load = {spec}");
            }
            TuaSpec::Profile { name, overrides } => {
                let _ = writeln!(out, "profile = {name}");
                for (k, v) in overrides {
                    let _ = writeln!(out, "{k} = {v}");
                }
            }
            TuaSpec::Inline(profile) => {
                let _ = writeln!(out, "profile = {}", profile.name);
            }
        }
        let _ = writeln!(out, "\n[contenders]");
        match &t.contenders {
            ContenderSpec::Isolation => {
                let _ = writeln!(out, "scenario = iso");
            }
            ContenderSpec::MaxContention => {
                let _ = writeln!(out, "scenario = con");
            }
            ContenderSpec::Custom(specs) => {
                let _ = writeln!(out, "loads = {}", specs.join(","));
            }
            ContenderSpec::Fill(spec) => {
                let _ = writeln!(out, "fill = {spec}");
            }
        }
        if let Some(d) = t.duration {
            let _ = writeln!(out, "duration = {d}");
        }
        let wcet = match t.wcet {
            WcetSpec::Auto => "auto",
            WcetSpec::On => "on",
            WcetSpec::Off => "off",
        };
        let _ = writeln!(out, "wcet = {wcet}");
        let _ = writeln!(out, "stop = {}", t.stop);
        let _ = writeln!(out, "max_cycles = {}", t.max_cycles);
        let _ = writeln!(out, "trace = {}", switch(t.trace));
        if !self.axes.is_empty() {
            let _ = writeln!(out, "\n[sweep]");
            for axis in &self.axes {
                let values: Vec<&str> = axis.values.iter().map(AxisValue::raw).collect();
                let _ = writeln!(out, "{} = {}", axis.key, values.join(","));
            }
        }
        let _ = writeln!(out, "\n[report]");
        if let Some(w) = self.report.windows {
            let _ = writeln!(out, "windows = {w}");
        }
        if !self.report.baseline.is_empty() {
            let pairs: Vec<String> = self
                .report
                .baseline
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(out, "baseline = {}", pairs.join(","));
        }
        let pcts: Vec<String> = self
            .report
            .percentiles
            .iter()
            .map(|q| format!("{}", q * 100.0))
            .collect();
        let _ = writeln!(out, "percentiles = {}", pcts.join(","));
        // Only when configured: pre-pwcet scenarios keep byte-identical
        // canonical renders (and scenario hashes, so their checkpoint
        // journals stay resumable).
        if !self.report.pwcet.is_empty() {
            let ps: Vec<String> = self.report.pwcet.iter().map(|p| format!("{p:e}")).collect();
            let _ = writeln!(out, "pwcet = {}", ps.join(","));
        }
        // Emitted only when configured, so scenarios predating the
        // [checkpoint] section keep byte-identical canonical renders.
        if !self.checkpoint.is_default() {
            let _ = writeln!(out, "\n[checkpoint]");
            if let Some(dir) = &self.checkpoint.dir {
                let _ = writeln!(out, "dir = {dir}");
            }
            if let Some(ms) = self.checkpoint.cell_budget_ms {
                let _ = writeln!(out, "cell_budget_ms = {ms}");
            }
            if let Some(cycles) = self.checkpoint.run_budget_cycles {
                let _ = writeln!(out, "run_budget_cycles = {cycles}");
            }
        }
        out
    }

    /// A stable content hash of the scenario, keying the checkpoint
    /// journal: resuming validates that the journal on disk was written
    /// by *this* grid before skipping any cell.
    ///
    /// Hashed over the canonical [`render`](Self::render) with `threads`
    /// and the checkpoint `dir` cleared — neither affects results, so a
    /// resume may legitimately change them (`--threads 8` after an
    /// interrupted `--threads 1` run must pick the journal up). Everything
    /// that *does* shape results — seed, runs, template, axes, report
    /// shape, budgets — is included.
    pub fn scenario_hash(&self) -> u64 {
        let mut canon = self.clone();
        canon.threads = None;
        canon.checkpoint.dir = None;
        sim_core::export::fnv1a_64(canon.render().as_bytes())
    }

    /// Number of grid points (product of axis sizes; 1 with no sweep).
    pub fn n_cells(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// The campaign seed for the grid point at `indices`: the master seed
    /// XOR the axis indices packed into 20-bit fields, innermost axis in
    /// the low bits (matching the hand-written experiment drivers' seed
    /// derivation; indices above 2^20 would alias, far beyond any real
    /// grid). Axes beyond the three low fields are mixed in with a
    /// splitmix64 hash of `(axis, index)` instead of a shift, so deep
    /// grids cannot systematically collide with the packed fields.
    pub fn cell_seed(&self, indices: &[usize]) -> u64 {
        let a = indices.len();
        let mut packed = 0u64;
        for (k, &i) in indices.iter().enumerate() {
            let shift = (20 * (a - 1 - k)) as u32;
            if shift <= 40 {
                packed ^= (i as u64) << shift;
            } else {
                let mut z = ((k as u64) << 32) | i as u64;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                packed ^= z ^ (z >> 31);
            }
        }
        self.seed ^ packed
    }

    /// Materializes the cross-product of the sweep axes into run-ready
    /// [`Cell`]s, in row-major order (last axis varies fastest).
    ///
    /// # Errors
    ///
    /// Returns the first axis-application or spec-validation error, named
    /// with the offending cell's labels.
    pub fn expand(&self) -> Result<Vec<Cell>, ScenarioError> {
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(ScenarioError::new(format!(
                    "sweep axis '{}' is empty",
                    axis.key
                )));
            }
        }
        let sizes: Vec<usize> = self.axes.iter().map(|a| a.values.len()).collect();
        let total: usize = sizes.iter().product();
        let mut cells = Vec::with_capacity(total);
        for flat in 0..total {
            let mut indices = vec![0usize; sizes.len()];
            let mut rem = flat;
            for k in (0..sizes.len()).rev() {
                indices[k] = rem % sizes[k];
                rem /= sizes[k];
            }
            let mut template = self.template.clone();
            let mut labels = Vec::with_capacity(sizes.len());
            for (k, axis) in self.axes.iter().enumerate() {
                let label = apply_axis(&mut template, &axis.key, &axis.values[indices[k]])
                    .map_err(|e| {
                        ScenarioError::new(format!(
                            "axis '{}' value '{}': {e}",
                            axis.key,
                            axis.values[indices[k]].raw()
                        ))
                    })?;
                labels.push((axis.key.clone(), label));
            }
            let mut spec = template.build().map_err(|e| {
                let cell: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                ScenarioError::new(format!("cell [{}]: {e}", cell.join(", ")))
            })?;
            if self.report.windows.is_some() {
                spec.windows = self.report.windows;
                spec.validate().map_err(|e| {
                    let cell: Vec<String> =
                        labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    ScenarioError::new(format!("cell [{}]: [report] windows: {e}", cell.join(", ")))
                })?;
            }
            cells.push(Cell {
                seed: self.cell_seed(&indices),
                labels,
                indices,
                spec,
            });
        }
        Ok(cells)
    }
}

fn switch(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

fn parse_num<T: std::str::FromStr>(
    value: &str,
    what: &str,
    lineno: usize,
) -> Result<T, ScenarioError> {
    value
        .parse()
        .map_err(|_| ScenarioError::at(lineno, format!("bad number '{value}' for '{what}'")))
}

fn parse_switch(value: &str, what: &str, lineno: usize) -> Result<bool, ScenarioError> {
    match value.to_ascii_lowercase().as_str() {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(ScenarioError::at(
            lineno,
            format!("bad switch '{other}' for '{what}' (expected on/off)"),
        )),
    }
}

/// Profile knobs overridable in `[tua]` and sweepable as axes.
const PROFILE_KNOBS: &[&str] = &[
    "accesses",
    "working_set",
    "p_random",
    "p_store",
    "p_atomic",
    "p_ifetch",
    "burst",
    "gap",
    "between",
];

/// Parses a cycle-engine selector: `events` (the fast path), `naive`
/// (the per-cycle reference loop), or `fluid` (the continuous-event
/// fair-sharing backend), case-insensitively.
pub fn parse_engine(s: &str) -> Result<DriveMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "events" | "fast" => Ok(DriveMode::Events),
        "naive" | "cycle" => Ok(DriveMode::Naive),
        "fluid" => Ok(DriveMode::Fluid),
        other => Err(format!(
            "unknown engine '{other}' (expected events, naive, fluid)"
        )),
    }
}

/// Parses a policy name. Accepts the short CLI forms and the spelled-out
/// aliases (`lottery`, `randperm`, `priority`), case-insensitively.
pub fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "fifo" => Ok(PolicyKind::Fifo),
        "rr" | "roundrobin" => Ok(PolicyKind::RoundRobin),
        "tdma" => Ok(PolicyKind::Tdma),
        "lot" | "lottery" => Ok(PolicyKind::Lottery),
        "rp" | "randperm" => Ok(PolicyKind::RandomPermutation),
        "pri" | "priority" => Ok(PolicyKind::FixedPriority),
        other => Err(format!(
            "unknown policy '{other}' (expected fifo, rr, tdma, lot, rp, pri)"
        )),
    }
}

/// Parses a credit-filter spec for an `n_cores`-core platform:
/// `none`, `homog`, `hcba`, or `w:` followed by `:`- or `,`-separated
/// per-core weight numerators (denominator = their sum).
pub fn parse_cba_spec(
    s: &str,
    n_cores: usize,
    max_latency: u32,
) -> Result<Option<CreditConfig>, String> {
    match s.to_ascii_lowercase().as_str() {
        "none" => Ok(None),
        "homog" => CreditConfig::homogeneous(n_cores, max_latency)
            .map(Some)
            .map_err(|e| e.to_string()),
        "hcba" => {
            if n_cores != 4 {
                return Err(format!(
                    "'hcba' is the paper's 4-core configuration; use 'w:...' weights for \
                     {n_cores} cores"
                ));
            }
            CreditConfig::paper_hcba(max_latency)
                .map(Some)
                .map_err(|e| e.to_string())
        }
        other => {
            let weights = other.strip_prefix("w:").ok_or_else(|| {
                format!("unknown cba spec '{s}' (expected none, homog, hcba, w:...)")
            })?;
            let numerators: Vec<u32> = weights
                .split([':', ','])
                .map(|w| {
                    w.trim()
                        .parse()
                        .map_err(|_| format!("bad weight '{w}' in cba spec '{s}'"))
                })
                .collect::<Result<_, String>>()?;
            if numerators.len() != n_cores {
                return Err(format!(
                    "cba spec '{s}' has {} weights for a {n_cores}-core platform",
                    numerators.len()
                ));
            }
            let denominator: u32 = numerators.iter().sum();
            CreditConfig::weighted(max_latency, numerators, denominator)
                .map(Some)
                .map_err(|e| e.to_string())
        }
    }
}

/// Parses one load spec of the per-core mini-language shared with
/// `cba_sim --loads`:
///
/// ```text
/// bench:NAME             catalog benchmark through the core model
/// fixed:REQS:DUR:GAP     fixed-request task
/// sat:DUR                saturating contender
/// per:DUR:PERIOD:PHASE   periodic contender
/// stream:ACCESSES        streaming loads
/// idle                   nothing
/// agent:KIND:ARGS...     a user-registered agent kind (resolved against
///                        the AgentRegistry at run-build time)
/// ```
pub fn parse_load_spec(s: &str) -> Result<CoreLoad, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |p: &str| -> Result<u64, String> {
        p.parse()
            .map_err(|_| format!("bad number '{p}' in load '{s}'"))
    };
    match parts.as_slice() {
        ["idle"] => Ok(CoreLoad::Idle),
        ["bench", name] => Ok(CoreLoad::named(name)),
        ["agent", kind, args @ ..] if !kind.is_empty() => Ok(CoreLoad::Custom {
            kind: kind.to_string(),
            args: args.iter().map(|a| a.to_string()).collect(),
        }),
        ["fixed", r, d, g] => Ok(CoreLoad::FixedTask {
            n_requests: num(r)?,
            duration: num(d)? as u32,
            gap: num(g)? as u32,
        }),
        ["sat", d] => Ok(CoreLoad::Saturating {
            duration: num(d)? as u32,
        }),
        ["per", d, p, ph] => Ok(CoreLoad::Periodic {
            duration: num(d)? as u32,
            period: num(p)?,
            phase: num(ph)?,
        }),
        ["stream", a] => Ok(CoreLoad::Streaming { accesses: num(a)? }),
        _ => Err(format!(
            "unknown load spec '{s}' (expected bench:NAME, fixed:R:D:G, sat:D, per:D:P:PH, \
             stream:A, idle, agent:KIND:ARGS...)"
        )),
    }
}

fn parse_stop(s: &str) -> Result<StopCondition, String> {
    match s.to_ascii_lowercase().as_str() {
        "tua" => Ok(StopCondition::TuaDone),
        "all" => Ok(StopCondition::AllDone),
        other => {
            let h = other.strip_prefix("horizon:").ok_or_else(|| {
                format!("unknown stop condition '{s}' (expected tua, all, horizon:N)")
            })?;
            let cycles: u64 = h
                .parse()
                .map_err(|_| format!("bad horizon '{h}' in stop condition '{s}'"))?;
            Ok(StopCondition::Horizon(cycles))
        }
    }
}

/// Applies one sweep-axis value to a template clone; returns the value's
/// canonical label for reports and baseline matching.
fn apply_axis(t: &mut Template, key: &str, value: &AxisValue) -> Result<String, String> {
    // The benchmark axis is the only one accepting explicit profiles.
    if let AxisValue::Profile(profile) = value {
        if key != "bench" {
            return Err(format!("axis '{key}' cannot take a profile value"));
        }
        t.tua = TuaSpec::Inline(profile.clone());
        return Ok(profile.name.to_string());
    }
    let v = value.raw();
    match key {
        "bench" => {
            profile_by_name(v).ok_or_else(|| format!("unknown benchmark profile '{v}'"))?;
            // Keep knob overrides from the [tua] section, if any.
            let overrides = match &t.tua {
                TuaSpec::Profile { overrides, .. } => overrides.clone(),
                _ => Vec::new(),
            };
            t.tua = TuaSpec::Profile {
                name: v.to_string(),
                overrides,
            };
            Ok(v.to_string())
        }
        "setup" => match v.to_ascii_lowercase().as_str() {
            "rp" => {
                t.policy = "rp".into();
                t.cba = "none".into();
                Ok("RP".into())
            }
            "cba" => {
                t.policy = "rp".into();
                t.cba = "homog".into();
                Ok("CBA".into())
            }
            "hcba" => {
                t.policy = "rp".into();
                t.cba = "hcba".into();
                Ok("H-CBA".into())
            }
            custom => {
                // `POLICY` or `POLICY+CBASPEC`, e.g. `rr`, `fifo`,
                // `rr+homog`, `lot+w:3:1:1:1`.
                let (policy, cba) = match custom.split_once('+') {
                    Some((p, c)) => (p, c),
                    None => (custom, "none"),
                };
                parse_policy(policy)?;
                t.policy = policy.to_string();
                t.cba = cba.to_string();
                Ok(v.to_string())
            }
        },
        "scenario" => match v.to_ascii_lowercase().as_str() {
            "iso" => {
                t.contenders = ContenderSpec::Isolation;
                Ok("ISO".into())
            }
            "con" => {
                t.contenders = ContenderSpec::MaxContention;
                Ok("CON".into())
            }
            other => Err(format!("unknown scenario '{other}' (expected iso, con)")),
        },
        "cores" => {
            t.cores = v.parse().map_err(|_| format!("bad core count '{v}'"))?;
            Ok(v.to_string())
        }
        "policy" => {
            let kind = parse_policy(v)?;
            t.policy = v.to_string();
            Ok(kind.name().to_string())
        }
        "cba" => {
            t.cba = v.to_string();
            Ok(v.to_string())
        }
        "weights" => {
            t.cba = format!("w:{v}");
            Ok(v.to_string())
        }
        "caps" => {
            t.caps = Some(v.to_string());
            Ok(v.to_string())
        }
        "duration" => {
            t.duration = Some(v.parse().map_err(|_| format!("bad duration '{v}'"))?);
            Ok(v.to_string())
        }
        "tua" => {
            parse_load_spec(v)?;
            t.tua = TuaSpec::Load(v.to_string());
            Ok(v.to_string())
        }
        "fill" => {
            parse_load_spec(v)?;
            t.contenders = ContenderSpec::Fill(v.to_string());
            Ok(v.to_string())
        }
        "clusters" | "bridge_latency" | "bridge_depth" | "cluster_cba" | "backbone_cba" => {
            let topo = t.topology.as_mut().ok_or_else(|| {
                format!("axis '{key}' requires a [topology] section in the scenario")
            })?;
            match key {
                "clusters" => topo.clusters = v.parse().map_err(|_| bad_topo_num(key, v))?,
                "bridge_latency" => {
                    topo.bridge_latency = v.parse().map_err(|_| bad_topo_num(key, v))?
                }
                "bridge_depth" => {
                    topo.bridge_depth = v.parse().map_err(|_| bad_topo_num(key, v))?
                }
                "cluster_cba" => topo.cluster_cba = v.to_string(),
                "backbone_cba" => topo.backbone_cba = Some(v.to_string()),
                _ => unreachable!("matched above"),
            }
            Ok(v.to_string())
        }
        "mem_working_set" | "share_frac" | "write_frac" | "l1_sets" => {
            let mem = t.memory.as_mut().ok_or_else(|| {
                format!("axis '{key}' requires a [memory] section in the scenario")
            })?;
            let bad = |what: &str| format!("bad {what} '{v}' for memory axis '{key}'");
            match key {
                "mem_working_set" => {
                    mem.working_set = v.parse().map_err(|_| bad("size"))?;
                }
                "share_frac" => mem.share_frac = v.parse().map_err(|_| bad("fraction"))?,
                "write_frac" => mem.write_frac = v.parse().map_err(|_| bad("fraction"))?,
                "l1_sets" => mem.l1_sets = v.parse().map_err(|_| bad("count"))?,
                _ => unreachable!("matched above"),
            }
            // Domain errors surface with the cell label via
            // MemoryConfig::validate in Template::build.
            Ok(v.to_string())
        }
        knob if PROFILE_KNOBS.contains(&knob) => {
            match &mut t.tua {
                TuaSpec::Profile { overrides, .. } => {
                    overrides.push((knob.to_string(), v.to_string()));
                }
                TuaSpec::Inline(profile) => apply_profile_knob(profile, knob, v)?,
                TuaSpec::Load(_) => {
                    return Err(format!(
                        "knob '{knob}' requires a profile-based TuA (set 'profile = NAME' in [tua] \
                         or add a 'bench' axis)"
                    ))
                }
            }
            Ok(v.to_string())
        }
        other => Err(format!("unknown sweep key '{other}'")),
    }
}

fn bad_topo_num(key: &str, value: &str) -> String {
    format!("bad number '{value}' for topology axis '{key}'")
}

/// Applies a `2:1:1:1`-style cap-multiplier spec to a segment's credit
/// config (which must exist: caps without a filter are meaningless).
fn apply_caps(cba: Option<CreditConfig>, caps: &str, what: &str) -> Result<CreditConfig, String> {
    let multipliers: Vec<u32> = caps
        .split([':', ','])
        .map(|c| {
            c.trim()
                .parse()
                .map_err(|_| format!("bad cap multiplier '{c}' in {what}"))
        })
        .collect::<Result<_, String>>()?;
    let config = cba.ok_or_else(|| format!("{what} require a credit filter on that segment"))?;
    config
        .with_cap_multipliers(multipliers)
        .map_err(|e| e.to_string())
}

fn apply_profile_knob(p: &mut EembcProfile, knob: &str, value: &str) -> Result<(), String> {
    let bad = |what: &str| format!("bad {what} '{value}' for knob '{knob}'");
    let parse_range = |value: &str| -> Result<(u32, u32), String> {
        let (lo, hi) = value
            .split_once(':')
            .ok_or_else(|| format!("knob '{knob}' expects 'LO:HI', got '{value}'"))?;
        Ok((
            lo.parse().map_err(|_| bad("bound"))?,
            hi.parse().map_err(|_| bad("bound"))?,
        ))
    };
    match knob {
        "accesses" => p.accesses = value.parse().map_err(|_| bad("count"))?,
        "working_set" => p.working_set = value.parse().map_err(|_| bad("size"))?,
        "p_random" => p.p_random = value.parse().map_err(|_| bad("fraction"))?,
        "p_store" => p.p_store = value.parse().map_err(|_| bad("fraction"))?,
        "p_atomic" => p.p_atomic = value.parse().map_err(|_| bad("fraction"))?,
        "p_ifetch" => p.p_ifetch = value.parse().map_err(|_| bad("fraction"))?,
        "burst" => p.burst_len = parse_range(value)?,
        "gap" => p.within_gap = parse_range(value)?,
        "between" => p.between_gap_mean = value.parse().map_err(|_| bad("mean"))?,
        other => return Err(format!("unknown profile knob '{other}'")),
    }
    Ok(())
}

impl TuaSpec {
    /// Resolves this spec into a core-0 [`CoreLoad`].
    pub fn build(&self) -> Result<CoreLoad, String> {
        match self {
            TuaSpec::Load(spec) => parse_load_spec(spec),
            TuaSpec::Profile { name, overrides } => {
                let mut profile = profile_by_name(name)
                    .ok_or_else(|| format!("unknown benchmark profile '{name}'"))?;
                for (knob, value) in overrides {
                    apply_profile_knob(&mut profile, knob, value)?;
                }
                profile
                    .validate()
                    .map_err(|e| format!("profile '{name}' invalid after overrides: {e}"))?;
                Ok(CoreLoad::Profile(profile))
            }
            TuaSpec::Inline(profile) => {
                profile
                    .validate()
                    .map_err(|e| format!("inline profile '{}' invalid: {e}", profile.name))?;
                Ok(CoreLoad::Profile(profile.clone()))
            }
        }
    }
}

impl Template {
    /// Builds and validates the full [`RunSpec`] this template describes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field combination
    /// (unknown policy, weight/core-count mismatch, infinite TuA with a
    /// `tua` stop condition, ...).
    pub fn build(&self) -> Result<RunSpec, String> {
        let latency = LatencyModel::paper();
        let maxl = latency.max_latency();
        // With a [topology] the core count is derived from it; the flat
        // `cores` key is ignored (axes reshape the topology directly).
        let n = match &self.topology {
            Some(topo) => topo.clusters * topo.cores_per_cluster,
            None => self.cores,
        };
        if n == 0 || n > sim_core::CoreId::MAX_CORES {
            return Err(format!(
                "core count {n} outside 1..={}",
                sim_core::CoreId::MAX_CORES
            ));
        }
        let policy = parse_policy(&self.policy)?;
        let topology = match &self.topology {
            None => None,
            Some(topo) => {
                if self.caps.is_some() {
                    return Err(
                        "caps apply to the flat bus; fabric filters are configured per \
                         segment (cluster_cba / backbone_cba)"
                            .into(),
                    );
                }
                let cluster_policy =
                    parse_policy(topo.cluster_policy.as_deref().unwrap_or(&self.policy))?;
                let backbone_policy =
                    parse_policy(topo.backbone_policy.as_deref().unwrap_or(&self.policy))?;
                let mut cluster_cba =
                    parse_cba_spec(&topo.cluster_cba, topo.cores_per_cluster, maxl)?;
                let mut backbone_cba = parse_cba_spec(
                    topo.backbone_cba.as_deref().unwrap_or(&self.cba),
                    topo.clusters,
                    maxl,
                )?;
                if let Some(caps) = &topo.cluster_caps {
                    cluster_cba = Some(apply_caps(cluster_cba, caps, "cluster_caps")?);
                }
                if let Some(caps) = &topo.backbone_caps {
                    backbone_cba = Some(apply_caps(backbone_cba, caps, "backbone_caps")?);
                }
                Some(FabricTopology {
                    clusters: topo.clusters,
                    cores_per_cluster: topo.cores_per_cluster,
                    bridge_latency: topo.bridge_latency,
                    bridge_depth: topo.bridge_depth,
                    cluster_policy,
                    cluster_cba,
                    backbone_policy,
                    backbone_cba,
                })
            }
        };
        let mut cba = match topology {
            // The flat filter would be ambiguous on a fabric; the backbone
            // filter (defaulted from the same `cba` key) replaces it.
            Some(_) => None,
            None => parse_cba_spec(&self.cba, n, maxl)?,
        };
        if let Some(caps) = &self.caps {
            cba = Some(apply_caps(cba, caps, "caps")?);
        }
        if let Some(mem) = &self.memory {
            mem.validate().map_err(|e| e.to_string())?;
        }
        let platform = PlatformConfig {
            n_cores: n,
            latency,
            hierarchy: HierarchyConfig::paper(),
            policy,
            cba,
            store_buffer: cba_cpu::core::DEFAULT_STORE_BUFFER,
            lfsr_randbank: self.lfsr,
            topology,
            memory: self.memory.clone(),
        };
        let tua = self.tua.build()?;
        let scenario = match &self.contenders {
            ContenderSpec::Isolation => Scenario::Isolation,
            ContenderSpec::MaxContention => match self.duration {
                // Plain `con` delegates to the canonical MaxL contenders.
                None => Scenario::MaxContention,
                Some(d) => {
                    if d > maxl {
                        return Err(format!("contender duration {d} exceeds MaxL {maxl}"));
                    }
                    Scenario::Custom(vec![CoreLoad::Saturating { duration: d }; n - 1])
                }
            },
            ContenderSpec::Custom(specs) => {
                let loads: Vec<CoreLoad> = specs
                    .iter()
                    .map(|s| parse_load_spec(s))
                    .collect::<Result<_, String>>()?;
                Scenario::Custom(loads)
            }
            ContenderSpec::Fill(spec) => {
                let load = parse_load_spec(spec)?;
                Scenario::Custom(vec![load; n - 1])
            }
        };
        let declared_con = matches!(self.contenders, ContenderSpec::MaxContention);
        let mut spec = RunSpec::with_platform(platform, scenario, tua);
        spec.wcet_mode = match self.wcet {
            WcetSpec::Auto => declared_con,
            WcetSpec::On => true,
            WcetSpec::Off => false,
        };
        spec.stop = parse_stop(&self.stop)?;
        spec.max_cycles = self.max_cycles;
        spec.record_trace = self.trace;
        spec.drive = parse_engine(&self.engine)?;
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::StopCondition;

    const MINIMAL: &str = "\
[campaign]
name = mini
runs = 2
seed = 11

[tua]
load = fixed:10:6:4
";

    #[test]
    fn minimal_file_gets_defaults() {
        let def = ScenarioDef::parse(MINIMAL).unwrap();
        assert_eq!(def.name, "mini");
        assert_eq!(def.runs, 2);
        assert_eq!(def.seed, 11);
        assert_eq!(def.threads, None);
        assert_eq!(def.template.cores, 4);
        assert_eq!(def.template.policy, "rp");
        assert_eq!(def.template.cba, "none");
        assert!(def.template.lfsr);
        assert_eq!(def.template.contenders, ContenderSpec::MaxContention);
        assert_eq!(def.n_cells(), 1);
        let cells = def.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].seed, 11);
        assert!(cells[0].labels.is_empty());
        assert!(cells[0].spec.wcet_mode, "con defaults to WCET mode");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\n[campaign]\nname = c # trailing comment\nruns = 1\n\n[tua]\nload = idle # idle TuA\n[contenders]\nstop = horizon:100\n";
        let def = ScenarioDef::parse(text).unwrap();
        assert_eq!(def.name, "c");
        let cells = def.expand().unwrap();
        assert_eq!(cells[0].spec.stop, StopCondition::Horizon(100));
    }

    #[test]
    fn sweep_cross_product_order_and_seeds() {
        let text = "\
[campaign]
seed = 0
[tua]
load = fixed:10:6:4
[sweep]
setup = rp,cba,hcba
scenario = iso,con
";
        let def = ScenarioDef::parse(text).unwrap();
        let cells = def.expand().unwrap();
        assert_eq!(cells.len(), 6);
        // Last axis varies fastest.
        let labels: Vec<(String, String)> = cells
            .iter()
            .map(|c| {
                (
                    c.label("setup").unwrap().to_string(),
                    c.label("scenario").unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(labels[0], ("RP".to_string(), "ISO".to_string()));
        assert_eq!(labels[1], ("RP".to_string(), "CON".to_string()));
        assert_eq!(labels[2], ("CBA".to_string(), "ISO".to_string()));
        assert_eq!(labels[5], ("H-CBA".to_string(), "CON".to_string()));
        // Seeds pack indices into 20-bit fields, innermost low.
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[2].seed, 1 << 20);
        assert_eq!(cells[5].seed, (2 << 20) | 1);
        // The setup axis actually changes the platform.
        assert!(cells[0].spec.platform.cba.is_none());
        assert!(cells[2].spec.platform.cba.is_some());
    }

    #[test]
    fn three_axis_seed_matches_fig1_packing() {
        let def = ScenarioDef {
            seed: 2017,
            ..ScenarioDef::default()
        };
        assert_eq!(
            def.cell_seed(&[3, 2, 1]),
            2017 ^ ((3u64 << 40) | (2 << 20) | 1)
        );
    }

    #[test]
    fn deep_grids_do_not_alias_cell_seeds() {
        let def = ScenarioDef {
            seed: 0,
            ..ScenarioDef::default()
        };
        // 4 axes: the outermost would shift past 2^60 and wrap; the hash
        // path must keep all seeds distinct.
        let mut seen = std::collections::HashSet::new();
        for outer in 0..20usize {
            for inner in 0..4usize {
                assert!(
                    seen.insert(def.cell_seed(&[outer, 0, 0, inner])),
                    "seed collision at outer={outer} inner={inner}"
                );
            }
        }
        // 5 axes: two hashed fields must not cancel into a packed one.
        assert_ne!(
            def.cell_seed(&[16, 0, 0, 0, 0]),
            def.cell_seed(&[0, 0, 0, 1, 0])
        );
        // The 3-axis fast path is unchanged by the deep-grid handling.
        assert_eq!(def.cell_seed(&[1, 2, 3]), (1 << 40) | (2 << 20) | 3);
    }

    #[test]
    fn weights_cores_and_duration_axes() {
        let text = "\
[campaign]
runs = 1
[platform]
policy = rr
[tua]
load = fixed:10:5:0
[contenders]
wcet = off
[sweep]
cores = 2,4
weights = 1:1,3:1
duration = 5,56
";
        let def = ScenarioDef::parse(text).unwrap();
        // weights 1:1 / 3:1 are 2-core configs: 4-core cells must fail.
        let err = def.expand().unwrap_err();
        assert!(err.msg.contains("weights"), "{err}");
        let text2 = text.replace("cores = 2,4", "cores = 2");
        let cells = ScenarioDef::parse(&text2).unwrap().expand().unwrap();
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert_eq!(cell.spec.platform.n_cores, 2);
            assert!(cell.spec.platform.cba.is_some());
            assert!(!cell.spec.wcet_mode);
        }
        // The duration axis replaces MaxL contenders.
        match &cells[0].spec.loads[1] {
            CoreLoad::Saturating { duration } => assert_eq!(*duration, 5),
            other => panic!("expected saturating contender, got {other:?}"),
        }
    }

    #[test]
    fn profile_knobs_apply_in_order() {
        let text = "\
[campaign]
runs = 1
[tua]
profile = matrix
accesses = 500
burst = 2:4
[contenders]
scenario = iso
";
        let def = ScenarioDef::parse(text).unwrap();
        let cells = def.expand().unwrap();
        match &cells[0].spec.loads[0] {
            CoreLoad::Profile(p) => {
                assert_eq!(p.name, "matrix");
                assert_eq!(p.accesses, 500);
                assert_eq!(p.burst_len, (2, 4));
            }
            other => panic!("expected profile TuA, got {other:?}"),
        }
    }

    #[test]
    fn bench_axis_preserves_tua_knobs() {
        let text = "\
[campaign]
runs = 1
[tua]
profile = matrix
accesses = 300
[sweep]
bench = rspeed,tblook
";
        let cells = ScenarioDef::parse(text).unwrap().expand().unwrap();
        for (cell, name) in cells.iter().zip(["rspeed", "tblook"]) {
            match &cell.spec.loads[0] {
                CoreLoad::Profile(p) => {
                    assert_eq!(p.name, name);
                    assert_eq!(p.accesses, 300, "knob override must survive the bench axis");
                }
                other => panic!("expected profile, got {other:?}"),
            }
        }
    }

    #[test]
    fn fill_replicates_across_cores() {
        let text = "\
[campaign]
runs = 1
[tua]
load = fixed:10:5:0
[contenders]
fill = per:28:90:0
wcet = off
[sweep]
cores = 2,8
";
        let cells = ScenarioDef::parse(text).unwrap().expand().unwrap();
        assert_eq!(cells[0].spec.loads.len(), 2);
        assert_eq!(cells[1].spec.loads.len(), 8);
        assert!(matches!(
            cells[1].spec.loads[7],
            CoreLoad::Periodic { duration: 28, .. }
        ));
    }

    #[test]
    fn caps_require_a_filter_and_apply() {
        let text = "\
[campaign]
runs = 1
[platform]
cba = homog
caps = 2:1:1:1
[tua]
load = fixed:10:5:0
";
        let cells = ScenarioDef::parse(text).unwrap().expand().unwrap();
        let cba = cells[0].spec.platform.cba.as_ref().unwrap();
        assert_eq!(cba.scheme_name(), "CBA-cap");

        let text2 = text.replace("cba = homog\n", "");
        let err = ScenarioDef::parse(&text2).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("caps require a credit filter"), "{err}");
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = ScenarioDef::parse("[campaign]\nruns = many\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("bad number 'many'"), "{err}");

        let err = ScenarioDef::parse("[nope]\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.msg.contains("unknown section"), "{err}");

        let err = ScenarioDef::parse("[campaign]\nname= x\n[sweep]\nwarp = 1,2\n").unwrap_err();
        assert_eq!(err.line, Some(4));
        assert!(err.msg.contains("unknown sweep key 'warp'"), "{err}");

        let err = ScenarioDef::parse("runs = 3\n").unwrap_err();
        assert!(err.msg.contains("before any [section]"), "{err}");

        let err = ScenarioDef::parse("[sweep]\ncores = 2,4\ncores = 8\n").unwrap_err();
        assert_eq!(err.line, Some(3));
        assert!(err.msg.contains("duplicate sweep axis"), "{err}");

        let err = ScenarioDef::parse("[campaign]\nname\n").unwrap_err();
        assert!(err.msg.contains("expected 'key = value'"), "{err}");

        let err = ScenarioDef::parse("[campaign]\nruns = 0\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("runs must be positive"), "{err}");

        let err = ScenarioDef::parse("[tua]\nload = warp:9\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("unknown load spec"), "{err}");
    }

    #[test]
    fn render_round_trips() {
        let text = "\
[campaign]
name = rt
runs = 7
seed = 3
threads = 2
[platform]
cores = 8
policy = rr
cba = w:1:1:1:1:1:1:1:1
lfsr = off
[tua]
profile = matrix
accesses = 500
[contenders]
fill = sat:28
wcet = off
stop = horizon:5000
max_cycles = 100000
trace = on
[sweep]
policy = rr,lot
duration = 5,28,56
[report]
baseline = policy=rr
percentiles = 50,95,99.9
";
        let def = ScenarioDef::parse(text).unwrap();
        let rendered = def.render();
        let reparsed = ScenarioDef::parse(&rendered)
            .unwrap_or_else(|e| panic!("render must re-parse: {e}\n{rendered}"));
        assert_eq!(def, reparsed, "canonical render must round-trip");
        // And a second render is a fixed point.
        assert_eq!(rendered, reparsed.render());
    }

    #[test]
    fn memory_section_round_trips_and_sweeps() {
        let text = "\
[campaign]
name = mem
runs = 2
[platform]
cores = 4
[memory]
working_set = 2048
accesses = 300
write_frac = 0.4
share_frac = 0.5
shared_lines = 32
locality = 0.7
think = 2
l1_sets = 16
l1_ways = 2
[tua]
load = agent:shared
[contenders]
fill = agent:mem
[sweep]
mem_working_set = 512,2048
share_frac = 0.1,0.9
[report]
percentiles = 50,95
";
        let def = ScenarioDef::parse(text).unwrap();
        let mem = def.template.memory.as_ref().expect("[memory] parsed");
        assert_eq!(mem.working_set, 2048);
        assert_eq!(mem.l1_sets, 16);
        let rendered = def.render();
        let reparsed = ScenarioDef::parse(&rendered)
            .unwrap_or_else(|e| panic!("render must re-parse: {e}\n{rendered}"));
        assert_eq!(def, reparsed, "canonical render must round-trip");
        assert_eq!(rendered, reparsed.render());

        let cells = def.expand().unwrap();
        assert_eq!(cells.len(), 4);
        let m = |c: &super::Cell| c.spec.platform.memory.clone().unwrap();
        assert_eq!(m(&cells[0]).working_set, 512);
        assert_eq!(m(&cells[0]).share_frac, 0.1);
        assert_eq!(m(&cells[3]).working_set, 2048);
        assert_eq!(m(&cells[3]).share_frac, 0.9);
    }

    #[test]
    fn memory_axes_require_a_memory_section() {
        let text = "\
[campaign]
runs = 1
[tua]
load = fixed:10:6:4
[sweep]
share_frac = 0.1,0.5
";
        let err = ScenarioDef::parse(text).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("requires a [memory] section"), "{err}");
    }

    #[test]
    fn swept_memory_values_hit_domain_validation() {
        // The axis parser accepts any f64; MemoryConfig::validate catches
        // out-of-domain values at cell-build time with the cell named.
        let text = "\
[campaign]
runs = 1
[memory]
working_set = 1024
[tua]
load = agent:mem
[sweep]
share_frac = 0.5,1.5
";
        let err = ScenarioDef::parse(text).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("share_frac"), "{err}");
    }

    #[test]
    fn validation_failures_name_the_cell() {
        let text = "\
[campaign]
runs = 1
[tua]
load = sat:5
[sweep]
scenario = iso,con
";
        // A saturating TuA never finishes: TuaDone stop is invalid.
        let err = ScenarioDef::parse(text).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("cell [scenario=ISO]"), "{err}");
        assert!(err.msg.contains("finite"), "{err}");
    }

    const FABRIC: &str = "\
[campaign]
runs = 1
[platform]
policy = rr
[topology]
clusters = 2
cores_per_cluster = 3
bridge_latency = 3
bridge_depth = 2
cluster_cba = homog
backbone_cba = w:3:1
backbone_caps = 2:2
[tua]
load = fixed:10:5:0
[contenders]
fill = sat:28
wcet = off
stop = horizon:1000
";

    #[test]
    fn topology_section_builds_a_fabric_platform() {
        let def = ScenarioDef::parse(FABRIC).unwrap();
        let cells = def.expand().unwrap();
        let spec = &cells[0].spec;
        assert_eq!(spec.platform.n_cores, 6, "derived from the topology");
        assert_eq!(spec.loads.len(), 6);
        assert!(spec.platform.cba.is_none(), "filters live per segment");
        let topo = spec.platform.topology.as_ref().expect("fabric platform");
        assert_eq!(topo.clusters, 2);
        assert_eq!(topo.cores_per_cluster, 3);
        assert_eq!(topo.bridge_latency, 3);
        assert_eq!(topo.bridge_depth, 2);
        assert_eq!(topo.cluster_policy.name(), "RR", "defaults to [platform]");
        assert_eq!(topo.backbone_policy.name(), "RR");
        let cluster = topo.cluster_cba.as_ref().expect("cluster filter");
        assert_eq!(cluster.n_cores(), 3);
        let backbone = topo.backbone_cba.as_ref().expect("backbone filter");
        assert_eq!(backbone.n_cores(), 2);
        assert_eq!(backbone.scheme_name(), "H-CBA-cap", "weights + caps");
        spec.validate().expect("fabric spec validates");
    }

    #[test]
    fn topology_render_round_trips() {
        let def = ScenarioDef::parse(FABRIC).unwrap();
        let rendered = def.render();
        let reparsed = ScenarioDef::parse(&rendered)
            .unwrap_or_else(|e| panic!("render must re-parse: {e}\n{rendered}"));
        assert_eq!(def, reparsed);
        assert_eq!(
            rendered,
            reparsed.render(),
            "second render is a fixed point"
        );
    }

    #[test]
    fn topology_axes_reshape_the_fabric() {
        // A homogeneous backbone filter stays valid as the cluster count
        // sweeps (per-cluster `w:` weights would be sized for one count).
        let base = FABRIC.replace(
            "backbone_cba = w:3:1\nbackbone_caps = 2:2\n",
            "backbone_cba = homog\n",
        );
        let text = format!("{base}[sweep]\nclusters = 2,4\nbridge_latency = 1,8\n");
        let cells = ScenarioDef::parse(&text).unwrap().expand().unwrap();
        assert_eq!(cells.len(), 4);
        let topo = cells[0].spec.platform.topology.as_ref().unwrap();
        assert_eq!((topo.clusters, topo.bridge_latency), (2, 1));
        let topo = cells[1].spec.platform.topology.as_ref().unwrap();
        assert_eq!((topo.clusters, topo.bridge_latency), (2, 8));
        let topo = cells[2].spec.platform.topology.as_ref().unwrap();
        assert_eq!((topo.clusters, topo.bridge_latency), (4, 1));
        assert_eq!(cells[2].spec.platform.n_cores, 12, "4 clusters x 3 cores");
        assert_eq!(
            topo.backbone_cba.as_ref().unwrap().n_cores(),
            4,
            "homog filter re-derived per cluster count"
        );
    }

    #[test]
    fn topology_errors_are_specific() {
        // Axis without a [topology] section.
        let text = "[campaign]\nruns = 1\n[tua]\nload = idle\n[contenders]\nstop = horizon:10\n[sweep]\nclusters = 2,4\n";
        let err = ScenarioDef::parse(text).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("requires a [topology]"), "{err}");

        // Unknown key, with the line number.
        let err = ScenarioDef::parse("[topology]\nwarp = 9\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("unknown [topology] key"), "{err}");

        // Zero bridge latency rejected at parse time.
        let err = ScenarioDef::parse("[topology]\nbridge_latency = 0\n").unwrap_err();
        assert!(err.msg.contains("at least 1"), "{err}");

        // Backbone weights sized for the wrong cluster count.
        let text = FABRIC.replace("clusters = 2", "clusters = 4");
        let err = ScenarioDef::parse(&text).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("weights"), "{err}");

        // Caps without a filter on that segment.
        let text = FABRIC.replace("backbone_cba = w:3:1\n", "");
        let err = ScenarioDef::parse(&text).unwrap().expand().unwrap_err();
        assert!(err.msg.contains("require a credit filter"), "{err}");
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(parse_load_spec("sat").is_err());
        assert!(parse_load_spec("fixed:1:2").is_err());
        assert!(parse_cba_spec("w:1:2", 4, 56).is_err(), "length mismatch");
        assert!(parse_cba_spec("hcba", 8, 56).is_err(), "hcba is 4-core");
        assert!(parse_policy("best").is_err());
        assert!(parse_stop("never").is_err());
    }

    #[test]
    fn agent_load_spec_parses_to_custom_kinds() {
        match parse_load_spec("agent:burst:3:5").unwrap() {
            CoreLoad::Custom { kind, args } => {
                assert_eq!(kind, "burst");
                assert_eq!(args, vec!["3".to_string(), "5".to_string()]);
            }
            other => panic!("expected custom load, got {other:?}"),
        }
        match parse_load_spec("agent:noop").unwrap() {
            CoreLoad::Custom { kind, args } => {
                assert_eq!(kind, "noop");
                assert!(args.is_empty());
            }
            other => panic!("expected custom load, got {other:?}"),
        }
        assert!(parse_load_spec("agent:").is_err(), "empty kind rejected");
        // Display renders back to the spec syntax.
        assert_eq!(
            parse_load_spec("agent:burst:3:5").unwrap().to_string(),
            "agent:burst:3:5"
        );
        assert_eq!(parse_load_spec("idle").unwrap().to_string(), "idle");
        assert_eq!(
            parse_load_spec("per:28:90:0").unwrap().to_string(),
            "per:28:90:0"
        );
    }

    const WINDOWED: &str = "\
[campaign]
runs = 1
[tua]
load = sat:5
[contenders]
fill = sat:28
wcet = off
stop = horizon:8000
[report]
windows = 8
";

    #[test]
    fn report_windows_key_parses_renders_and_reaches_the_spec() {
        let def = ScenarioDef::parse(WINDOWED).unwrap();
        assert_eq!(def.report.windows, Some(8));
        let cells = def.expand().unwrap();
        assert_eq!(cells[0].spec.windows, Some(8));

        let rendered = def.render();
        assert!(rendered.contains("windows = 8"), "{rendered}");
        let reparsed = ScenarioDef::parse(&rendered).unwrap();
        assert_eq!(def, reparsed, "windows key must round-trip");
    }

    #[test]
    fn report_pwcet_key_parses_validates_and_round_trips() {
        let text = "\
[campaign]
runs = 2
[tua]
load = fixed:10:5:0
[report]
pwcet = 1e-9,1e-12
";
        let def = ScenarioDef::parse(text).unwrap();
        assert_eq!(def.report.pwcet, vec![1e-9, 1e-12]);

        let rendered = def.render();
        assert!(rendered.contains("pwcet = 1e-9,1e-12"), "{rendered}");
        let reparsed = ScenarioDef::parse(&rendered).unwrap();
        assert_eq!(def, reparsed, "pwcet key must round-trip");

        // Probabilities are per-run exceedances: (0, 1) exclusive.
        for bad in ["pwcet = 0", "pwcet = 1", "pwcet = -1e-9", "pwcet = nope"] {
            let err = ScenarioDef::parse(&text.replace("pwcet = 1e-9,1e-12", bad)).unwrap_err();
            assert!(
                err.msg.contains("pwcet"),
                "'{bad}' must name the key: {err}"
            );
        }

        // A pwcet-free scenario renders without the key, so pre-pwcet
        // scenario hashes (and their journals) are untouched.
        let plain = ScenarioDef::parse("[campaign]\nruns = 2\n[tua]\nload = fixed:10:5:0\n")
            .unwrap()
            .render();
        assert!(!plain.contains("pwcet"), "{plain}");
    }

    #[test]
    fn report_windows_require_a_dividing_horizon() {
        let finite_tua = WINDOWED
            .replace("load = sat:5", "load = fixed:10:5:0")
            .replace("stop = horizon:8000\n", "");
        let err = ScenarioDef::parse(&finite_tua)
            .unwrap()
            .expand()
            .unwrap_err();
        assert!(err.msg.contains("require a horizon stop"), "{err}");

        let err = ScenarioDef::parse(&WINDOWED.replace("horizon:8000", "horizon:8001"))
            .unwrap()
            .expand()
            .unwrap_err();
        assert!(err.msg.contains("divide the horizon"), "{err}");

        let err = ScenarioDef::parse(&WINDOWED.replace("windows = 8", "windows = 0")).unwrap_err();
        assert!(err.msg.contains("windows must be positive"), "{err}");
    }
}
