//! The grid-wide work-stealing task executor.
//!
//! Campaigns and scenario grids are embarrassingly parallel — every
//! `(cell, run)` pair is an independent, seeded simulation — but the old
//! implementation parallelized only *within* one cell's runs and funneled
//! every result through a `Mutex` over the whole results vector. This
//! module provides the one executor both layers now share:
//!
//! * **one pool for the whole workload** — [`run_indexed`] schedules all
//!   `n_tasks` tasks over one set of scoped workers, so a 48-cell ×
//!   1,000-run campaign keeps every core busy until the *last* run of the
//!   *last* cell finishes, instead of draining and refilling a pool per
//!   cell;
//! * **work stealing by atomic counter** — workers claim the next task
//!   index with a single `fetch_add`; no queues, no per-task locks;
//! * **streamed, lock-free result placement** — workers hand `(index,
//!   result)` pairs to the caller's thread over a channel as they finish
//!   ([`run_indexed_streamed`]); no shared results vector, no per-run
//!   `Mutex`, and consumers can aggregate/report incrementally (the
//!   scenario engine emits each cell's progress line the moment its last
//!   run lands). [`run_indexed`] scatters the stream into index order,
//!   so ordered output stays deterministic regardless of thread count or
//!   scheduling.

/// Runs `task(0..n_tasks)` across `threads` workers, delivering each
/// `(index, result)` to `on_result` **on the caller's thread** as soon as
/// it is produced.
///
/// Results arrive in scheduling order (not index order); callers that
/// need determinism place them by index — which also means streamed
/// consumers (the scenario engine's per-cell aggregation and progress
/// lines) see work as it completes instead of waiting for the whole
/// batch. `task` must be deterministic per index for the overall output
/// to be reproducible — which holds for simulation runs, whose
/// randomness is derived from per-index seeds. With `threads <= 1` (or a
/// single task) everything runs inline on the caller's thread, in index
/// order, which keeps single-run latency free of any thread overhead.
///
/// # Panics
///
/// Propagates a panic from any task (the scope joins all workers first).
pub fn run_indexed_streamed<T, F>(
    n_tasks: usize,
    threads: usize,
    task: F,
    mut on_result: impl FnMut(usize, T),
) where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_tasks <= 1 {
        for i in 0..n_tasks {
            on_result(i, task(i));
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.min(n_tasks);
    let (sender, receiver) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        let next = &next;
        let task = &task;
        for w in 0..workers {
            let sender = sender.clone();
            // Named threads let crash-tolerant callers (the CLI's panic
            // hook) tell an isolated worker panic from a caller-thread
            // one, and show up in debugger/`/proc` listings.
            std::thread::Builder::new()
                .name(format!("cba-worker-{w}"))
                .spawn_scoped(scope, move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n_tasks {
                        break;
                    }
                    if sender.send((i, task(i))).is_err() {
                        break;
                    }
                })
                .expect("spawning a named worker thread");
        }
        // The receive loop ends when the last worker drops its sender.
        drop(sender);
        for (i, result) in receiver {
            on_result(i, result);
        }
    });
}

/// Runs `task(0..n_tasks)` across `threads` workers and returns the
/// results in index order (a [`run_indexed_streamed`] that scatters into
/// ordered slots).
///
/// # Panics
///
/// Propagates a panic from any task.
pub fn run_indexed<T, F>(n_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_tasks);
    slots.resize_with(n_tasks, || None);
    run_indexed_streamed(n_tasks, threads, task, |i, result| slots[i] = Some(result));
    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// The default worker count: every hardware thread (no artificial cap —
/// campaigns are CPU-bound and cache-light, so the full machine is the
/// right default; `--threads` / `with_threads` override it).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = run_indexed(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_indexed(5, 1, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let slow = |i: usize| {
            // Uneven task sizes exercise the stealing.
            let mut acc = 0u64;
            for k in 0..(i % 7) * 1_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        };
        let a = run_indexed(64, 2, slow);
        let b = run_indexed(64, 16, slow);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = run_indexed(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn zero_tasks_yield_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn streamed_delivers_every_index_exactly_once() {
        let mut seen = vec![0u32; 50];
        let mut sum = 0u64;
        run_indexed_streamed(
            50,
            8,
            |i| (i as u64) * 2,
            |i, r| {
                seen[i] += 1;
                sum += r;
            },
        );
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        assert_eq!(sum, (0..50u64).map(|i| i * 2).sum());
    }

    #[test]
    fn streamed_single_thread_preserves_index_order() {
        let mut order = Vec::new();
        run_indexed_streamed(6, 1, |i| i, |i, _| order.push(i));
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
