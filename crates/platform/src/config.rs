//! Platform assembly configuration.

use cba::CreditConfig;
use cba_bus::PolicyKind;
use cba_mem::{HierarchyConfig, LatencyModel, MemoryConfig};

/// Hierarchical-fabric topology: clusters of cores behind store-and-forward
/// bridges onto a backbone bus, with an independent arbitration point
/// (policy + optional credit filter) per segment (see `cba_bus::fabric`).
///
/// When a [`PlatformConfig`] carries a topology, `n_cores` must equal
/// `clusters * cores_per_cluster` and the flat `policy`/`cba` fields are
/// unused — each segment arbitrates with the fields below.
#[derive(Debug, Clone)]
pub struct FabricTopology {
    /// Number of cluster buses.
    pub clusters: usize,
    /// Cores on each cluster bus.
    pub cores_per_cluster: usize,
    /// Store-and-forward delay of a bridge crossing, per direction.
    pub bridge_latency: u32,
    /// Capacity of each bridge's request and response queues.
    pub bridge_depth: usize,
    /// Arbitration policy instantiated on every cluster bus.
    pub cluster_policy: PolicyKind,
    /// Credit filter on every cluster bus (sized for `cores_per_cluster`).
    pub cluster_cba: Option<CreditConfig>,
    /// Arbitration policy on the backbone (over the bridges).
    pub backbone_policy: PolicyKind,
    /// Credit filter on the backbone (sized for `clusters`) — per-cluster
    /// bandwidth weights live here.
    pub backbone_cba: Option<CreditConfig>,
}

impl FabricTopology {
    /// Total core count (`clusters * cores_per_cluster`).
    pub fn n_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }
}

/// The paper's three evaluated bus configurations (Section IV.B), plus a
/// free slot for ablations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusSetup {
    /// Baseline: random-permutations arbitration, no credit filter.
    Rp,
    /// Random permutations + homogeneous credit-based arbitration.
    Cba,
    /// Random permutations + heterogeneous CBA (TuA gets 50% bandwidth via
    /// recovery weights 1/2 vs 1/6).
    HCba,
    /// Any other combination (ablations, fairness sweeps).
    Custom {
        /// Arbitration policy.
        policy: PolicyKind,
        /// Optional credit filter configuration.
        cba: Option<CreditConfig>,
    },
}

impl BusSetup {
    /// Display label matching the paper's figure legend.
    pub fn label(&self) -> String {
        match self {
            BusSetup::Rp => "RP".into(),
            BusSetup::Cba => "CBA".into(),
            BusSetup::HCba => "H-CBA".into(),
            BusSetup::Custom { policy, cba } => match cba {
                None => policy.name().to_string(),
                Some(c) => format!("{}+{}", policy.name(), c.scheme_name()),
            },
        }
    }

    /// The three paper configurations, in figure order.
    pub fn paper_setups() -> [BusSetup; 3] {
        [BusSetup::Rp, BusSetup::Cba, BusSetup::HCba]
    }
}

/// Full static platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Number of cores (the paper's platform has 4).
    pub n_cores: usize,
    /// Bus transaction latency model.
    pub latency: LatencyModel,
    /// Per-core cache geometry.
    pub hierarchy: HierarchyConfig,
    /// Arbitration policy.
    pub policy: PolicyKind,
    /// Credit filter, if any.
    pub cba: Option<CreditConfig>,
    /// Store-buffer depth per core.
    pub store_buffer: usize,
    /// Drive randomized arbitration from the hardware-faithful LFSR bank
    /// (true) or the fast software RNG (false). Both are deterministic per
    /// seed.
    pub lfsr_randbank: bool,
    /// Hierarchical-fabric topology; `None` = the flat single shared bus.
    pub topology: Option<FabricTopology>,
    /// Synthetic address-stream configuration for the `mem`/`shared`
    /// memory agents; `None` means no run spec may place such an agent.
    pub memory: Option<MemoryConfig>,
}

impl PlatformConfig {
    /// The paper's platform under a given bus setup: 4 cores, MaxL = 56,
    /// random-permutations arbitration.
    pub fn paper(setup: &BusSetup) -> Self {
        let latency = LatencyModel::paper();
        let maxl = latency.max_latency();
        let (policy, cba) = match setup {
            BusSetup::Rp => (PolicyKind::RandomPermutation, None),
            BusSetup::Cba => (
                PolicyKind::RandomPermutation,
                Some(CreditConfig::homogeneous(4, maxl).expect("paper constants")),
            ),
            BusSetup::HCba => (
                PolicyKind::RandomPermutation,
                Some(CreditConfig::paper_hcba(maxl).expect("paper constants")),
            ),
            BusSetup::Custom { policy, cba } => (*policy, cba.clone()),
        };
        PlatformConfig {
            n_cores: 4,
            latency,
            hierarchy: HierarchyConfig::paper(),
            policy,
            cba,
            store_buffer: cba_cpu::core::DEFAULT_STORE_BUFFER,
            lfsr_randbank: true,
            topology: None,
            memory: None,
        }
    }

    /// An `n`-core variant of the paper platform (for the slowdown-vs-N
    /// sweeps). The credit configuration, if present, is re-derived for
    /// `n` cores.
    pub fn paper_n_cores(setup: &BusSetup, n: usize) -> Self {
        let mut config = Self::paper(setup);
        config.n_cores = n;
        if let Some(c) = &config.cba {
            // Re-derive a homogeneous filter for n cores; heterogeneous
            // setups keep their explicit weights only when they match n.
            if c.n_cores() != n {
                config.cba = Some(
                    CreditConfig::homogeneous(n, config.latency.max_latency()).expect("valid n"),
                );
            }
        }
        config
    }

    /// Whether this configuration carries a credit filter.
    pub fn has_cba(&self) -> bool {
        self.cba.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setups_resolve() {
        for setup in BusSetup::paper_setups() {
            let c = PlatformConfig::paper(&setup);
            assert_eq!(c.n_cores, 4);
            assert_eq!(c.latency.max_latency(), 56);
            assert_eq!(c.policy, PolicyKind::RandomPermutation);
        }
        assert!(!PlatformConfig::paper(&BusSetup::Rp).has_cba());
        assert!(PlatformConfig::paper(&BusSetup::Cba).has_cba());
        assert!(PlatformConfig::paper(&BusSetup::HCba).has_cba());
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(BusSetup::Rp.label(), "RP");
        assert_eq!(BusSetup::Cba.label(), "CBA");
        assert_eq!(BusSetup::HCba.label(), "H-CBA");
        let custom = BusSetup::Custom {
            policy: PolicyKind::RoundRobin,
            cba: Some(CreditConfig::homogeneous(4, 56).unwrap()),
        };
        assert_eq!(custom.label(), "RR+CBA");
    }

    #[test]
    fn n_core_rederivation() {
        let c8 = PlatformConfig::paper_n_cores(&BusSetup::Cba, 8);
        assert_eq!(c8.n_cores, 8);
        let cba = c8.cba.unwrap();
        assert_eq!(cba.n_cores(), 8);
        assert_eq!(cba.denominator(), 8);
    }
}
