#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod config;
pub mod executor;
pub mod experiments;
pub mod platform;
pub mod report;
pub mod scenario;

pub use campaign::{run_seed, Campaign, CampaignResult};
pub use config::{BusSetup, FabricTopology, PlatformConfig};
pub use platform::{run_once, CoreLoad, DriveMode, RunResult, RunSpec, Scenario, StopCondition};
pub use report::{run_scenario, CellReport, ScenarioReport};
pub use scenario::{ScenarioDef, ScenarioError};
