#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod campaign;
pub mod checkpoint;
pub mod config;
pub mod executor;
pub mod experiments;
pub mod fluid;
pub mod platform;
pub mod probes;
pub mod report;
pub mod scenario;

pub use agents::{default_registry, AgentCtx, AgentRegistry, BoxedPortAgent, PortAgent};
pub use campaign::{run_seed, Campaign, CampaignResult};
pub use checkpoint::{FaultPlan, Journal, JournalReplay};
pub use config::{BusSetup, FabricTopology, PlatformConfig};
pub use platform::{
    run_once, run_once_with, CoreLoad, DriveMode, RunResult, RunSpec, Scenario, StopCondition,
};
pub use probes::{WindowedFairness, WindowedFairnessProbe};
pub use report::{
    run_scenario, run_scenario_controlled, CellOutcome, CellReport, RunControls, ScenarioReport,
};
pub use scenario::{CheckpointSpec, ScenarioDef, ScenarioError};
