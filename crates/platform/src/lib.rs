//! Whole-platform integration: the paper's 4-core LEON3-class multicore as
//! a cycle-accurate simulation.
//!
//! This crate wires the substrates together —
//! [`cba_cpu`] cores with private [`cba_mem`] hierarchies, the
//! [`cba_bus`] non-split bus with any arbitration policy, and the
//! [`cba`] credit filter — and exposes the experiment machinery used by
//! every bench, test and example of the repository:
//!
//! * [`PlatformConfig`] / [`BusSetup`] — platform assembly (the paper's
//!   three evaluated configurations: RP, CBA, H-CBA);
//! * [`RunSpec`] + [`run_once`] — one deterministic run of a workload
//!   placement under a seed;
//! * [`Campaign`] — Monte-Carlo campaigns (the paper averages 1,000
//!   randomized runs per configuration), multi-threaded;
//! * [`experiments`] — the drivers that regenerate each table/figure
//!   (Figure 1, the Section II illustrative example, fairness sweeps, the
//!   H-CBA ablation, pWCET analyses).
//!
//! # Example
//!
//! ```
//! use cba_platform::{BusSetup, Campaign, CoreLoad, RunSpec, Scenario};
//!
//! // matrix on core 0, worst-case contenders on cores 1..3, paper CBA bus.
//! let spec = RunSpec::paper(BusSetup::Cba, Scenario::MaxContention, CoreLoad::named("rspeed"));
//! let result = Campaign::new(spec, 5, 0xC0FFEE).run();
//! assert_eq!(result.samples().len(), 5);
//! assert!(result.summary().mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod config;
pub mod experiments;
pub mod platform;

pub use campaign::{Campaign, CampaignResult};
pub use config::{BusSetup, PlatformConfig};
pub use platform::{run_once, CoreLoad, RunResult, RunSpec, Scenario, StopCondition};
