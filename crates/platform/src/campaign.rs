//! Monte-Carlo campaigns: many randomized runs of one spec.
//!
//! The paper's evaluation averages **1,000 runs** per configuration
//! because cache placement and arbitration are randomized — a single run
//! is a sample, not a result. [`Campaign`] executes `runs` independent
//! [`run_once`] invocations with per-run forked seeds,
//! optionally across threads, and aggregates the execution times.

use crate::executor::{default_threads, run_indexed};
use crate::platform::{run_once, RunResult, RunSpec};
use sim_core::rng::SimRng;
use sim_core::stats::Summary;

/// The per-run seed for run `index` of a campaign seeded from
/// `master_seed` (stable, order-independent; shared by [`Campaign`] and
/// the grid-wide scenario executor so both derive identical runs).
pub fn run_seed(master_seed: u64, index: usize) -> u64 {
    SimRng::seed_from(master_seed).fork(index as u64).seed()
}

/// A batch of independent runs of one spec.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: RunSpec,
    runs: usize,
    master_seed: u64,
    threads: usize,
}

impl Campaign {
    /// Creates a campaign of `runs` runs seeded from `master_seed`,
    /// defaulting to one worker per hardware thread.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn new(spec: RunSpec, runs: usize, master_seed: u64) -> Self {
        assert!(runs > 0, "a campaign needs at least one run");
        Campaign {
            spec,
            runs,
            master_seed,
            threads: default_threads(),
        }
    }

    /// Overrides the worker-thread count (1 = fully sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The per-run seed for run `index` (stable, order-independent).
    pub fn seed_for(&self, index: usize) -> u64 {
        run_seed(self.master_seed, index)
    }

    /// Executes all runs on the work-stealing executor and aggregates.
    /// Workers write no shared state per run (results scatter lock-free
    /// into their ordered slots), so the result is identical for any
    /// thread count.
    pub fn run(&self) -> CampaignResult {
        let results = run_indexed(self.runs, self.threads, |i| {
            run_once(&self.spec, self.seed_for(i))
        });
        CampaignResult::aggregate(results)
    }
}

/// Aggregated campaign output.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    samples: Vec<f64>,
    summary: Summary,
    unfinished: usize,
    results: Vec<RunResult>,
}

impl CampaignResult {
    /// Aggregates raw per-run results (in run order) into a campaign
    /// result — the same reduction [`Campaign::run`] applies, exposed so
    /// the grid-wide scenario executor can run cells' runs interleaved on
    /// one pool and aggregate per cell afterwards.
    ///
    /// Takes any iterator so callers holding runs in slotted buffers (the
    /// streaming scenario engine, a mid-cell resume) can feed them
    /// directly instead of collecting into an intermediate `Vec` first —
    /// the runs are stored exactly once, here.
    pub fn from_runs(results: impl IntoIterator<Item = RunResult>) -> Self {
        Self::aggregate(results)
    }

    fn aggregate(results: impl IntoIterator<Item = RunResult>) -> Self {
        let results = results.into_iter();
        let mut out = Vec::with_capacity(results.size_hint().0);
        let mut samples = Vec::with_capacity(out.capacity());
        let mut summary = Summary::new();
        let mut unfinished = 0;
        for r in results {
            match (r.finished, r.tua_cycles) {
                (true, Some(t)) => {
                    samples.push(t as f64);
                    summary.record(t as f64);
                }
                (true, None) => {
                    // Horizon runs have no TuA completion; record the
                    // horizon itself so fairness campaigns still aggregate.
                    samples.push(r.total_cycles as f64);
                    summary.record(r.total_cycles as f64);
                }
                _ => unfinished += 1,
            }
            out.push(r);
        }
        CampaignResult {
            samples,
            summary,
            unfinished,
            results: out,
        }
    }

    /// Execution-time samples (cycles), in run order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Aggregate statistics over the samples.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Runs that hit the safety limit instead of finishing.
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// All raw run results, in run order.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Mean execution time (cycles).
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// The `q`-quantile of the execution-time samples (`q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if no run finished or `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        sim_core::stats::percentile(&self.samples, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusSetup, CoreLoad, Scenario};

    fn small_spec() -> RunSpec {
        RunSpec::paper(BusSetup::Rp, Scenario::Isolation, CoreLoad::named("rspeed"))
    }

    #[test]
    fn campaign_is_reproducible() {
        let a = Campaign::new(small_spec(), 6, 42).run();
        let b = Campaign::new(small_spec(), 6, 42).run();
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.unfinished(), 0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seq = Campaign::new(small_spec(), 8, 9).with_threads(1).run();
        let par = Campaign::new(small_spec(), 8, 9).with_threads(4).run();
        assert_eq!(seq.samples(), par.samples());
    }

    #[test]
    fn runs_vary_across_seeds() {
        let result = Campaign::new(small_spec(), 10, 1).run();
        let first = result.samples()[0];
        assert!(
            result.samples().iter().any(|&s| s != first),
            "randomized caches must produce spread: {:?}",
            result.samples()
        );
    }

    #[test]
    fn summary_matches_samples() {
        let result = Campaign::new(small_spec(), 5, 3).run();
        let mean = result.samples().iter().sum::<f64>() / 5.0;
        assert!((result.mean() - mean).abs() < 1e-9);
        assert_eq!(result.summary().count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = Campaign::new(small_spec(), 0, 0);
    }
}
