//! Campaign checkpointing: the append-only cell journal and the
//! deterministic fault-injection plan.
//!
//! Long campaigns must survive process death. The journal records every
//! *completed* cell — not raw runs — because cells are the unit the
//! streaming aggregation reduces to and the unit a resume can skip. The
//! format is deliberately paranoid for something written once per cell:
//!
//! * a fixed header — magic, format version, and the
//!   [`scenario_hash`](crate::scenario::ScenarioDef::scenario_hash) of the
//!   grid, so a journal can never be replayed into a different scenario;
//! * one record per cell — cell index, payload length, CRC-32, then the
//!   [`CellReport`] encoded with the fixed binary codec
//!   ([`sim_core::export::ByteWriter`]), floats as raw IEEE-754 bits so
//!   replayed statistics are bit-identical to freshly computed ones;
//! * an `fsync` after the header and after every record, so the journal
//!   on disk is always a valid prefix no matter where the process dies.
//!
//! Recovery is valid-prefix replay: a truncated tail, a failed CRC or an
//! undecodable record stops the replay at the last good record (the bad
//! tail is truncated away before appending continues), and a
//! version-skewed journal is discarded whole — each with a one-line
//! notice. Only two conditions are hard errors: a file that is not a
//! journal at all, and a scenario-hash mismatch (silently dropping
//! completed work the user asked to resume would be worse than stopping).
//!
//! [`FaultPlan`] is the test-side counterpart: seeded, injectable panics,
//! forced budget trips, and simulated kill-points *between* journal
//! writes, so `tests/crash_resume.rs` can kill campaigns at arbitrary
//! checkpoints and prove resume correctness deterministically.

use crate::report::{CellOutcome, CellReport, PwcetCell, PwcetFit};
use sim_core::export::{crc32, ByteReader, ByteWriter};
use sim_core::rng::SimRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "campaign.journal";

/// Journal format version this build reads and writes.
///
/// Version 2 added the pWCET columns (`[report] pwcet`) to the cell
/// codec; version 3 added the memory-agent columns (miss rate,
/// coherence fraction, writebacks). Older journals are discarded with a
/// notice on resume.
pub const JOURNAL_VERSION: u32 = 3;

const MAGIC: &[u8; 8] = b"CBACKPT\n";
/// magic + version + scenario hash + total cells + runs per cell.
const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 4;
/// cell index + payload length + CRC-32.
const RECORD_HEADER_LEN: usize = 4 + 4 + 4;

/// An open, append-position checkpoint journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: usize,
}

/// What a resume replayed out of an existing journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// `(cell index, report)` pairs from the valid prefix, in journal
    /// order.
    pub cells: Vec<(usize, CellReport)>,
    /// One-line recovery notices (truncated tail, CRC failure, version
    /// skew, ...) for the caller to surface.
    pub notices: Vec<String>,
}

impl Journal {
    /// The journal path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Number of records written or replayed so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Creates a fresh journal in `dir` (creating the directory,
    /// truncating any previous journal) and writes the fsynced header.
    ///
    /// # Errors
    ///
    /// One-line messages for an uncreatable directory or unwritable file.
    pub fn create(
        dir: &Path,
        scenario_hash: u64,
        total_cells: usize,
        runs: usize,
    ) -> Result<Journal, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create checkpoint directory {}: {e}", dir.display()))?;
        let path = Journal::path_in(dir);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| format!("cannot write checkpoint journal {}: {e}", path.display()))?;
        let mut header = ByteWriter::new();
        header.u32(JOURNAL_VERSION);
        header.u64(scenario_hash);
        header.u32(total_cells as u32);
        header.u32(runs as u32);
        let write = |file: &mut File| -> std::io::Result<()> {
            file.write_all(MAGIC)?;
            file.write_all(&header.clone().into_bytes())?;
            file.sync_data()
        };
        write(&mut file)
            .map_err(|e| format!("cannot write checkpoint journal {}: {e}", path.display()))?;
        Ok(Journal {
            file,
            path,
            records: 0,
        })
    }

    /// Opens `dir`'s journal for resumption: validates the header,
    /// replays the valid record prefix, truncates any corrupt tail, and
    /// returns the journal positioned for appending. A missing,
    /// header-truncated or version-skewed journal starts over from
    /// scratch (with a notice for the latter two).
    ///
    /// # Errors
    ///
    /// A file that is not a journal, a scenario-hash mismatch, or I/O
    /// failure — each a one-line message.
    pub fn resume(
        dir: &Path,
        scenario_hash: u64,
        total_cells: usize,
        runs: usize,
    ) -> Result<(Journal, JournalReplay), String> {
        let path = Journal::path_in(dir);
        if !path.exists() {
            return Ok((
                Journal::create(dir, scenario_hash, total_cells, runs)?,
                JournalReplay::default(),
            ));
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("cannot read checkpoint journal {}: {e}", path.display()))?;
        let mut replay = JournalReplay::default();
        if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
            if bytes.len() >= 8 && &bytes[..8] != MAGIC {
                return Err(format!(
                    "{}: not a campaign journal (bad magic)",
                    path.display()
                ));
            }
            replay.notices.push(format!(
                "{}: shorter than a journal header; discarding it and starting over",
                path.display()
            ));
            let journal = Journal::create(dir, scenario_hash, total_cells, runs)?;
            return Ok((journal, replay));
        }
        let mut header = ByteReader::new(&bytes[8..HEADER_LEN]);
        let version = header.u32().expect("header length checked");
        let file_hash = header.u64().expect("header length checked");
        if version != JOURNAL_VERSION {
            replay.notices.push(format!(
                "{}: format version {version} (this build reads {JOURNAL_VERSION}); \
                 discarding the journal and starting over",
                path.display()
            ));
            let journal = Journal::create(dir, scenario_hash, total_cells, runs)?;
            return Ok((journal, replay));
        }
        if file_hash != scenario_hash {
            return Err(format!(
                "{}: journal was written by a different scenario \
                 (hash {file_hash:#018x}, expected {scenario_hash:#018x}); \
                 use a fresh --checkpoint directory or rerun the matching scenario",
                path.display()
            ));
        }

        // Valid-prefix replay: stop at the first truncated, corrupt or
        // undecodable record and keep everything before it.
        let mut offset = HEADER_LEN;
        let mut records = 0usize;
        loop {
            let remaining = bytes.len() - offset;
            if remaining == 0 {
                break;
            }
            let next = records + 1;
            if remaining < RECORD_HEADER_LEN {
                replay.notices.push(format!(
                    "{}: record {next} has a truncated header; \
                     resuming from the {records} valid records",
                    path.display()
                ));
                break;
            }
            let mut rec = ByteReader::new(&bytes[offset..]);
            let cell = rec.u32().expect("record header length checked") as usize;
            let len = rec.u32().expect("record header length checked") as usize;
            let crc = rec.u32().expect("record header length checked");
            if remaining - RECORD_HEADER_LEN < len {
                replay.notices.push(format!(
                    "{}: record {next} has a truncated payload; \
                     resuming from the {records} valid records",
                    path.display()
                ));
                break;
            }
            let payload = &bytes[offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + len];
            if crc32(payload) != crc {
                replay.notices.push(format!(
                    "{}: record {next} failed its CRC check; \
                     resuming from the {records} valid records",
                    path.display()
                ));
                break;
            }
            let report = match decode_cell_report(payload) {
                Ok(r) => r,
                Err(e) => {
                    replay.notices.push(format!(
                        "{}: record {next} is undecodable ({e}); \
                         resuming from the {records} valid records",
                        path.display()
                    ));
                    break;
                }
            };
            if cell >= total_cells {
                replay.notices.push(format!(
                    "{}: record {next} names cell {cell} outside the grid; \
                     resuming from the {records} valid records",
                    path.display()
                ));
                break;
            }
            replay.cells.push((cell, report));
            records = next;
            offset += RECORD_HEADER_LEN + len;
        }

        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| format!("cannot write checkpoint journal {}: {e}", path.display()))?;
        // Drop the corrupt tail so subsequent appends extend the valid
        // prefix instead of burying new records behind garbage.
        file.set_len(offset as u64)
            .and_then(|()| file.seek(SeekFrom::End(0)))
            .map_err(|e| format!("cannot write checkpoint journal {}: {e}", path.display()))?;
        Ok((
            Journal {
                file,
                path,
                records,
            },
            replay,
        ))
    }

    /// Appends one completed cell, flushes, and fsyncs — after this
    /// returns, the record survives process death.
    ///
    /// # Errors
    ///
    /// A one-line message on I/O failure (disk full, revoked permissions).
    pub fn append(&mut self, cell: usize, report: &CellReport) -> Result<(), String> {
        let payload = encode_cell_report(report);
        let mut rec = ByteWriter::new();
        rec.u32(cell as u32);
        rec.u32(payload.len() as u32);
        rec.u32(crc32(&payload));
        let bytes = rec.into_bytes();
        let write = |file: &mut File| -> std::io::Result<()> {
            file.write_all(&bytes)?;
            file.write_all(&payload)?;
            file.sync_data()
        };
        write(&mut self.file).map_err(|e| {
            format!(
                "cannot append to checkpoint journal {}: {e}",
                self.path.display()
            )
        })?;
        self.records += 1;
        Ok(())
    }
}

/// Encodes a [`CellReport`] with the fixed binary codec. Floats are
/// written as raw bits, so `decode(encode(r))` reproduces every statistic
/// bit-for-bit — the property the resume determinism contract rests on.
pub fn encode_cell_report(r: &CellReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(r.labels.len() as u32);
    for (k, v) in &r.labels {
        w.str(k);
        w.str(v);
    }
    w.u64(r.seed);
    w.u64(r.runs as u64);
    w.u64(r.unfinished as u64);
    w.u64(r.panicked as u64);
    w.u64(r.budget_trips as u64);
    match &r.outcome {
        CellOutcome::Ok => w.u8(0),
        CellOutcome::Panicked(msg) => {
            w.u8(1);
            w.str(msg);
        }
        CellOutcome::Budget => w.u8(2),
    }
    w.f64(r.mean);
    w.f64(r.ci95);
    w.f64(r.min);
    w.f64(r.max);
    w.u32(r.percentiles.len() as u32);
    for &(q, v) in &r.percentiles {
        w.f64(q);
        w.f64(v);
    }
    w.f64(r.utilization);
    w.opt_f64(r.normalized);
    w.opt_f64(r.normalized_ci95);
    w.opt_f64(r.tua_max_burst);
    w.opt_f64(r.contender_max_gap);
    match &r.cluster_shares {
        None => w.u8(0),
        Some(shares) => {
            w.u8(1);
            w.f64s(shares);
        }
    }
    w.opt_f64(r.cluster_fairness);
    match &r.window_jain {
        None => w.u8(0),
        Some(jain) => {
            w.u8(1);
            w.f64s(jain);
        }
    }
    match &r.window_shares {
        None => w.u8(0),
        Some(shares) => {
            w.u8(1);
            w.u32(shares.len() as u32);
            for row in shares {
                w.f64s(row);
            }
        }
    }
    match &r.pwcet {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.f64s(&p.probs);
            match &p.fit {
                None => w.u8(0),
                Some(f) => {
                    w.u8(1);
                    w.f64s(&f.bounds);
                    w.f64(f.mu);
                    w.f64(f.beta);
                    w.u32(f.blocks);
                    w.f64(f.ks_p);
                    w.f64(f.lb_p);
                    w.f64(f.runs_p);
                    w.u8(f.iid_ok as u8);
                }
            }
            match &p.diag {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.str(d);
                }
            }
        }
    }
    w.opt_f64(r.mem_miss_rate);
    w.opt_f64(r.mem_coherence_frac);
    w.opt_f64(r.mem_writebacks);
    w.into_bytes()
}

/// Decodes a journal payload back into a [`CellReport`].
///
/// # Errors
///
/// A short or malformed buffer (the replay loop stops the valid prefix
/// there).
pub fn decode_cell_report(bytes: &[u8]) -> Result<CellReport, String> {
    let mut r = ByteReader::new(bytes);
    let n_labels = r.u32()? as usize;
    let mut labels = Vec::with_capacity(n_labels.min(64));
    for _ in 0..n_labels {
        labels.push((r.str()?, r.str()?));
    }
    let seed = r.u64()?;
    let runs = r.u64()? as usize;
    let unfinished = r.u64()? as usize;
    let panicked = r.u64()? as usize;
    let budget_trips = r.u64()? as usize;
    let outcome = match r.u8()? {
        0 => CellOutcome::Ok,
        1 => CellOutcome::Panicked(r.str()?),
        2 => CellOutcome::Budget,
        other => return Err(format!("bad outcome tag {other}")),
    };
    let mean = r.f64()?;
    let ci95 = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    let n_pcts = r.u32()? as usize;
    let mut percentiles = Vec::with_capacity(n_pcts.min(64));
    for _ in 0..n_pcts {
        percentiles.push((r.f64()?, r.f64()?));
    }
    let utilization = r.f64()?;
    let normalized = r.opt_f64()?;
    let normalized_ci95 = r.opt_f64()?;
    let tua_max_burst = r.opt_f64()?;
    let contender_max_gap = r.opt_f64()?;
    let cluster_shares = match r.u8()? {
        0 => None,
        1 => Some(r.f64s()?),
        other => return Err(format!("bad option flag {other}")),
    };
    let cluster_fairness = r.opt_f64()?;
    let window_jain = match r.u8()? {
        0 => None,
        1 => Some(r.f64s()?),
        other => return Err(format!("bad option flag {other}")),
    };
    let window_shares = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()? as usize;
            if n > bytes.len() {
                return Err(format!("window matrix length {n} exceeds the record"));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.f64s()?);
            }
            Some(rows)
        }
        other => return Err(format!("bad option flag {other}")),
    };
    let pwcet = match r.u8()? {
        0 => None,
        1 => {
            let probs = r.f64s()?;
            let fit = match r.u8()? {
                0 => None,
                1 => Some(PwcetFit {
                    bounds: r.f64s()?,
                    mu: r.f64()?,
                    beta: r.f64()?,
                    blocks: r.u32()?,
                    ks_p: r.f64()?,
                    lb_p: r.f64()?,
                    runs_p: r.f64()?,
                    iid_ok: match r.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(format!("bad iid_ok flag {other}")),
                    },
                }),
                other => return Err(format!("bad option flag {other}")),
            };
            let diag = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                other => return Err(format!("bad option flag {other}")),
            };
            Some(PwcetCell { probs, fit, diag })
        }
        other => return Err(format!("bad option flag {other}")),
    };
    let mem_miss_rate = r.opt_f64()?;
    let mem_coherence_frac = r.opt_f64()?;
    let mem_writebacks = r.opt_f64()?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes", r.remaining()));
    }
    Ok(CellReport {
        labels,
        seed,
        runs,
        unfinished,
        outcome,
        panicked,
        budget_trips,
        mean,
        ci95,
        min,
        max,
        percentiles,
        utilization,
        normalized,
        normalized_ci95,
        tua_max_burst,
        contender_max_gap,
        cluster_shares,
        cluster_fairness,
        window_jain,
        window_shares,
        pwcet,
        mem_miss_rate,
        mem_coherence_frac,
        mem_writebacks,
    })
}

/// A deterministic fault-injection plan for campaign robustness tests:
/// which `(cell, run)` tasks panic, which cells trip their budget, and
/// after how many journal records the campaign "dies".
///
/// Everything is seeded or explicit, so an injected failure reproduces
/// bit-for-bit — the crash-resume suite relies on replaying the *same*
/// faults across different thread counts and interruption points.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panics: BTreeSet<(usize, usize)>,
    /// cell → first run index that trips the (forced) budget; every run
    /// of the cell from that index on is skipped.
    budget_from: BTreeMap<usize, usize>,
    kill_after_records: Option<usize>,
    hard_kill: bool,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Makes run `run` of cell `cell` panic inside the simulator.
    pub fn panic_at(mut self, cell: usize, run: usize) -> FaultPlan {
        self.panics.insert((cell, run));
        self
    }

    /// Forces cell `cell`'s budget to trip from run index `from_run` on:
    /// those runs are skipped exactly as if a wall-clock budget expired,
    /// but deterministically.
    pub fn budget_trip_from(mut self, cell: usize, from_run: usize) -> FaultPlan {
        self.budget_from.insert(cell, from_run);
        self
    }

    /// Stops the campaign (with an `interrupted:` error) right after the
    /// `records`-th journal record is fsynced — a simulated kill-point
    /// between journal writes.
    pub fn kill_after(mut self, records: usize) -> FaultPlan {
        self.kill_after_records = Some(records);
        self.hard_kill = false;
        self
    }

    /// Like [`kill_after`](Self::kill_after), but aborts the whole
    /// process (`std::process::abort`) instead of returning — true
    /// SIGKILL semantics for subprocess crash tests and the CI job.
    pub fn hard_kill_after(mut self, records: usize) -> FaultPlan {
        self.kill_after_records = Some(records);
        self.hard_kill = true;
        self
    }

    /// A seeded random plan over an `n_cells` × `runs` grid: roughly a
    /// quarter of the cells get one panicking run and an eighth get a
    /// forced budget trip. Deterministic in `seed`.
    pub fn seeded(seed: u64, n_cells: usize, runs: usize) -> FaultPlan {
        let mut rng = SimRng::seed_from(seed).fork(0xFA07);
        let mut plan = FaultPlan::new();
        for cell in 0..n_cells {
            if rng.gen_bool(0.25) {
                plan = plan.panic_at(cell, rng.gen_range_usize(0..runs));
            }
            if rng.gen_bool(0.125) {
                plan = plan.budget_trip_from(cell, rng.gen_range_usize(0..runs));
            }
        }
        plan
    }

    /// Does run `run` of cell `cell` panic?
    pub fn panics_at(&self, cell: usize, run: usize) -> bool {
        self.panics.contains(&(cell, run))
    }

    /// Is run `run` of cell `cell` skipped by a forced budget trip?
    pub fn forces_budget_trip(&self, cell: usize, run: usize) -> bool {
        self.budget_from.get(&cell).is_some_and(|&from| run >= from)
    }

    /// Does the campaign die once `records` journal records exist?
    pub fn kills_after(&self, records: usize) -> bool {
        self.kill_after_records.is_some_and(|k| records >= k)
    }

    /// Whether the kill-point aborts the process instead of returning.
    pub fn is_hard_kill(&self) -> bool {
        self.hard_kill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CellReport {
        CellReport {
            labels: vec![
                ("setup".into(), "RP".into()),
                ("scenario".into(), "ISO".into()),
            ],
            seed: 0xDEAD_BEEF,
            runs: 7,
            unfinished: 1,
            outcome: CellOutcome::Panicked("boom".into()),
            panicked: 2,
            budget_trips: 1,
            mean: 1234.5678,
            ci95: 0.1 + 0.2, // a value with no short decimal form
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            percentiles: vec![(0.5, 1200.0), (0.999, 9999.25)],
            utilization: 0.7315,
            normalized: None,
            normalized_ci95: Some(0.001),
            tua_max_burst: Some(3.5),
            contender_max_gap: None,
            cluster_shares: Some(vec![0.25, 0.5]),
            cluster_fairness: Some(0.9),
            window_jain: Some(vec![1.0, 0.8]),
            window_shares: Some(vec![vec![0.1, 0.2], vec![0.3, 0.4]]),
            pwcet: Some(PwcetCell {
                probs: vec![1e-9, 1e-12],
                fit: Some(PwcetFit {
                    bounds: vec![61234.5, 73456.875],
                    mu: 50_000.25,
                    beta: 512.125,
                    blocks: 30,
                    ks_p: 0.42,
                    lb_p: 0.17,
                    runs_p: 0.91,
                    iid_ok: true,
                }),
                diag: None,
            }),
            mem_miss_rate: Some(0.0625),
            mem_coherence_frac: Some(0.375),
            mem_writebacks: None,
        }
    }

    #[test]
    fn cell_report_round_trips_bit_for_bit() {
        let report = sample_report();
        let decoded = decode_cell_report(&encode_cell_report(&report)).unwrap();
        assert_eq!(decoded.labels, report.labels);
        assert_eq!(decoded.outcome, report.outcome);
        assert_eq!(decoded.mean.to_bits(), report.mean.to_bits());
        assert_eq!(decoded.ci95.to_bits(), report.ci95.to_bits());
        assert_eq!(decoded.min.to_bits(), report.min.to_bits());
        assert_eq!(decoded.max.to_bits(), report.max.to_bits());
        assert_eq!(decoded.percentiles, report.percentiles);
        assert_eq!(decoded.normalized, report.normalized);
        assert_eq!(decoded.normalized_ci95, report.normalized_ci95);
        assert_eq!(decoded.cluster_shares, report.cluster_shares);
        assert_eq!(decoded.window_shares, report.window_shares);
        assert_eq!(decoded.panicked, report.panicked);
        assert_eq!(decoded.budget_trips, report.budget_trips);
        assert_eq!(decoded.pwcet, report.pwcet);
        assert_eq!(decoded.mem_miss_rate, report.mem_miss_rate);
        assert_eq!(decoded.mem_coherence_frac, report.mem_coherence_frac);
        assert_eq!(decoded.mem_writebacks, report.mem_writebacks);
    }

    #[test]
    fn pwcet_diag_and_absent_pwcet_round_trip() {
        let mut diag = sample_report();
        diag.pwcet = Some(PwcetCell {
            probs: vec![1e-9],
            fit: None,
            diag: Some("too few samples: got 2, need at least 100".into()),
        });
        let decoded = decode_cell_report(&encode_cell_report(&diag)).unwrap();
        assert_eq!(decoded.pwcet, diag.pwcet);

        let mut none = sample_report();
        none.pwcet = None;
        let decoded = decode_cell_report(&encode_cell_report(&none)).unwrap();
        assert_eq!(decoded.pwcet, None);
    }

    #[test]
    fn truncated_payload_fails_to_decode() {
        let bytes = encode_cell_report(&sample_report());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_cell_report(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn fault_plan_is_deterministic_in_its_seed() {
        let a = FaultPlan::seeded(42, 16, 5);
        let b = FaultPlan::seeded(42, 16, 5);
        for cell in 0..16 {
            for run in 0..5 {
                assert_eq!(a.panics_at(cell, run), b.panics_at(cell, run));
                assert_eq!(
                    a.forces_budget_trip(cell, run),
                    b.forces_budget_trip(cell, run)
                );
            }
        }
        let c = FaultPlan::seeded(43, 16, 5);
        let differs = (0..16).any(|cell| {
            (0..5).any(|run| {
                a.panics_at(cell, run) != c.panics_at(cell, run)
                    || a.forces_budget_trip(cell, run) != c.forces_budget_trip(cell, run)
            })
        });
        assert!(differs, "different seeds should draw different faults");
    }

    #[test]
    fn budget_trip_skips_every_run_from_its_index() {
        let plan = FaultPlan::new().budget_trip_from(3, 2);
        assert!(!plan.forces_budget_trip(3, 1));
        assert!(plan.forces_budget_trip(3, 2));
        assert!(plan.forces_budget_trip(3, 4));
        assert!(!plan.forces_budget_trip(2, 4));
    }
}
