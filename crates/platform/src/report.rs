//! Structured campaign results: per-cell statistics, baseline
//! normalization, and JSON/CSV/table export.
//!
//! [`run_scenario`] flattens every grid cell of a [`ScenarioDef`] into one
//! batch of *(cell × run)* tasks, executes the whole batch on the
//! grid-wide work-stealing pool ([`crate::executor`]) and aggregates each
//! cell into a [`CellReport`]: mean, 95% confidence interval, percentiles,
//! and (for trace-recording scenarios) burst/starvation summaries. When
//! the definition names a `[report]` baseline (e.g. `baseline =
//! setup=rp,scenario=iso`), cells are normalized against the matching cell
//! of their group — exactly how the paper's Figure 1 normalizes every bar
//! to the benchmark's RP-ISO mean.
//!
//! The writers are dependency-free ([`sim_core::export`]): `to_json` for
//! plots/dashboards, `to_csv` for spreadsheets, `render_table` for the
//! terminal.

use crate::campaign::run_seed;
use crate::checkpoint::{FaultPlan, Journal};
use crate::executor::{default_threads, run_indexed_streamed};
use crate::platform::{run_once, RunResult, RunSpec};
use crate::probes::WindowedFairness;
use crate::scenario::{ScenarioDef, ScenarioError};
use cba_mbpta::pwcet::{MbptaConfig, PWcetModel};
use sim_core::agent::MemStats;
use sim_core::export::{csv_field, fmt_number, Json};
use sim_core::stats::{percentile_sorted, Summary};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// How a cell's campaign ended: the per-cell fault-containment status.
///
/// A degraded campaign reports *which* cells failed instead of aborting —
/// a panicking run is caught ([`catch_unwind`]) and a budget-tripped cell
/// is cut short, and either way the cell still produces a report row
/// carrying this status through JSON (`"outcome"`), CSV (the `outcome`
/// column) and the terminal table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Every run executed normally.
    Ok,
    /// At least one run panicked; carries the first panic message.
    Panicked(String),
    /// At least one run was skipped or truncated by a `[checkpoint]`
    /// budget (`cell_budget_ms` / `run_budget_cycles`) or a forced trip
    /// from a [`FaultPlan`].
    Budget,
}

impl CellOutcome {
    /// The stable machine-readable label (`ok` / `panicked` / `budget`).
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Panicked(_) => "panicked",
            CellOutcome::Budget => "budget",
        }
    }

    /// True when the cell completed without faults.
    pub fn is_ok(&self) -> bool {
        *self == CellOutcome::Ok
    }
}

/// Aggregated result of one grid cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// `(axis key, value label)` pairs identifying the cell.
    pub labels: Vec<(String, String)>,
    /// The campaign seed this cell ran under.
    pub seed: u64,
    /// Completed runs (samples).
    pub runs: usize,
    /// Runs that hit the cycle safety limit instead of finishing.
    pub unfinished: usize,
    /// Fault-containment status of the cell.
    pub outcome: CellOutcome,
    /// Runs that panicked (caught; excluded from every statistic).
    pub panicked: usize,
    /// Runs skipped or truncated by a budget guard.
    pub budget_trips: usize,
    /// Mean execution time (cycles).
    pub mean: f64,
    /// Half-width of the 95% confidence interval on the mean (cycles).
    pub ci95: f64,
    /// Smallest sample (cycles).
    pub min: f64,
    /// Largest sample (cycles).
    pub max: f64,
    /// `(quantile, value)` pairs per the definition's `percentiles`.
    pub percentiles: Vec<(f64, f64)>,
    /// Mean bus utilization over the runs.
    pub utilization: f64,
    /// Mean normalized to the group's baseline cell, when a baseline is
    /// configured.
    pub normalized: Option<f64>,
    /// `ci95` divided by the baseline mean, when a baseline is configured.
    pub normalized_ci95: Option<f64>,
    /// Mean (over runs) of the TuA's longest back-to-back grant burst;
    /// trace-recording cells only.
    pub tua_max_burst: Option<f64>,
    /// Mean (over runs) of the worst contender grant gap; trace-recording
    /// cells only.
    pub contender_max_gap: Option<f64>,
    /// Mean per-cluster share of the backbone (busy cycles of the
    /// cluster's cores / total cycles); fabric cells only.
    pub cluster_shares: Option<Vec<f64>>,
    /// Jain fairness index over the cluster shares (1 = perfectly even);
    /// fabric cells only.
    pub cluster_fairness: Option<f64>,
    /// Mean (over runs) per-window Jain index series; cells with
    /// `[report] windows = N` only.
    pub window_jain: Option<Vec<f64>>,
    /// Mean (over runs) per-window per-core share matrix
    /// (`[window][core]`); windowed cells only.
    pub window_shares: Option<Vec<Vec<f64>>>,
    /// pWCET tail columns; cells of scenarios with `[report] pwcet =
    /// P1,P2,...` only.
    pub pwcet: Option<PwcetCell>,
    /// Miss rate of the cell's memory agents (misses / accesses over the
    /// campaign-wide exact integer sums); cells with `mem`/`shared`
    /// loads only.
    pub mem_miss_rate: Option<f64>,
    /// Coherence share of the memory agents' bus traffic (coherence
    /// transactions / all their bus transactions); memory cells only.
    pub mem_coherence_frac: Option<f64>,
    /// Mean writebacks per run (dirty evictions + coherence flushes);
    /// memory cells only.
    pub mem_writebacks: Option<f64>,
}

/// Per-cell pWCET columns (`[report] pwcet = P1,P2,...`): the requested
/// per-run exceedance probabilities plus either the fitted tail model or
/// the [`cba_mbpta::MbptaError`] diagnostic explaining why this cell has
/// none. Fit failures (too few samples, degenerate/constant latencies,
/// no MLE convergence) are data, not faults: they surface as a
/// diagnostic column and never abort the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PwcetCell {
    /// Requested per-run exceedance probabilities, in scenario order.
    pub probs: Vec<f64>,
    /// The fitted tail columns; `None` when the fit or iid battery
    /// failed on this cell's samples.
    pub fit: Option<PwcetFit>,
    /// The `MbptaError` rendering when `fit` is `None`.
    pub diag: Option<String>,
}

/// The fitted pWCET column values of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PwcetFit {
    /// `pwcet@P` execution-time bounds (cycles), one per probability in
    /// [`PwcetCell::probs`].
    pub bounds: Vec<f64>,
    /// Fitted Gumbel location (block-maxima scale).
    pub mu: f64,
    /// Fitted Gumbel scale.
    pub beta: f64,
    /// Number of block maxima behind the fit.
    pub blocks: u32,
    /// Split-half Kolmogorov–Smirnov p-value.
    pub ks_p: f64,
    /// Ljung–Box (20 lags) p-value.
    pub lb_p: f64,
    /// Wald–Wolfowitz runs-test p-value.
    pub runs_p: f64,
    /// All three iid tests pass at α = 0.05 (the MBPTA convention); a
    /// failing battery still reports the fit, flagged.
    pub iid_ok: bool,
}

impl CellReport {
    /// The label of axis `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Mean of the per-window Jain indices (windowed cells only).
    pub fn window_jain_mean(&self) -> Option<f64> {
        let jain = self.window_jain.as_ref()?;
        if jain.is_empty() {
            return None;
        }
        Some(jain.iter().sum::<f64>() / jain.len() as f64)
    }

    /// Worst (smallest) per-window Jain index (windowed cells only).
    pub fn window_jain_min(&self) -> Option<f64> {
        let jain = self.window_jain.as_ref()?;
        jain.iter().copied().reduce(f64::min)
    }

    /// Aggregates a finished campaign into a report cell. The `spec`
    /// decides which optional summaries are extracted: burst/starvation
    /// metrics for trace-recording cells, per-cluster shares and the
    /// cross-cluster fairness index for fabric cells.
    ///
    /// Delegates to the same streaming `CellAccumulator` the scenario
    /// engine folds live runs into, so flag-mode campaigns and grid cells
    /// share one aggregation path (and one set of numerics).
    pub fn from_campaign(
        labels: Vec<(String, String)>,
        seed: u64,
        result: &crate::campaign::CampaignResult,
        qs: &[f64],
        spec: &RunSpec,
    ) -> CellReport {
        let mut acc = CellAccumulator::new(result.results().len());
        for (i, r) in result.results().iter().enumerate() {
            acc.record(
                i,
                RunOutcome::Done(Box::new(RunTally::from_run(r.clone(), spec, None))),
            );
        }
        acc.finish(labels, seed, qs, &[], spec)
    }
}

/// One finished run, reduced to the few scalars (and small window/cluster
/// vectors) the cell-level statistics need. Folding each [`RunResult`]
/// into a `RunTally` the moment it lands lets the engine drop the per-core
/// trace vectors immediately instead of retaining every raw run of every
/// in-flight cell.
#[derive(Debug, Clone)]
pub(crate) struct RunTally {
    /// The execution-time sample (cycles); `None` for unfinished runs.
    /// Kept as the simulator's native `u64` — conversion to the f64
    /// statistics domain happens once, at aggregation/fit time, so long
    /// campaigns never round samples on the way in.
    sample: Option<u64>,
    utilization: f64,
    /// TuA longest back-to-back grant burst (trace-recording runs).
    burst: Option<f64>,
    /// Worst contender grant gap (0 when no contender recorded one).
    gap: f64,
    /// Per-cluster backbone-share contribution of this run (fabric runs).
    cluster_busy: Option<Vec<f64>>,
    windows: Option<WindowedFairness>,
    /// Summed memory-agent counters of this run (memory cells only).
    mem: Option<MemStats>,
    /// The run stopped at a `run_budget_cycles` cap instead of finishing.
    budget_tripped: bool,
}

impl RunTally {
    pub(crate) fn from_run(r: RunResult, spec: &RunSpec, run_budget: Option<u64>) -> RunTally {
        let sample = match (r.finished, r.tua_cycles) {
            (true, Some(t)) => Some(t),
            // Horizon runs have no TuA completion; record the horizon
            // itself so fairness campaigns still aggregate.
            (true, None) => Some(r.total_cycles),
            _ => None,
        };
        let budget_tripped = !r.finished && run_budget.is_some_and(|b| r.total_cycles >= b);
        let burst = r.max_burst.first().copied().flatten().map(|b| b as f64);
        let gap = r
            .max_grant_gap
            .iter()
            .skip(1)
            .filter_map(|g| *g)
            .max()
            .unwrap_or(0) as f64;
        let cluster_busy = spec.platform.topology.as_ref().map(|topo| {
            (0..topo.clusters)
                .map(|k| {
                    if r.total_cycles == 0 {
                        return 0.0;
                    }
                    let lo = k * topo.cores_per_cluster;
                    let busy: u64 = r.bus_busy[lo..lo + topo.cores_per_cluster].iter().sum();
                    busy as f64 / r.total_cycles as f64
                })
                .collect()
        });
        RunTally {
            sample,
            utilization: r.utilization(),
            burst,
            gap,
            cluster_busy,
            mem: r.mem,
            windows: r.windows,
            budget_tripped,
        }
    }
}

/// What one `(cell, run)` task produced.
#[derive(Debug, Clone)]
pub(crate) enum RunOutcome {
    /// The run executed (finished or hit a cycle limit).
    Done(Box<RunTally>),
    /// The run panicked; the payload message was captured.
    Panicked(String),
    /// The run was skipped by a wall-clock budget or a forced fault-plan
    /// trip before it started.
    BudgetSkipped,
}

/// Streaming per-cell aggregation: run outcomes land in per-run slots in
/// any order, and once the last one arrives [`finish`](Self::finish)
/// reduces them **in run-index order** — f64 accumulation is
/// order-sensitive, so index-order reduction is what keeps cell
/// statistics bit-identical across thread counts and across
/// interrupted-and-resumed executions.
#[derive(Debug, Default)]
pub(crate) struct CellAccumulator {
    slots: Vec<Option<RunOutcome>>,
    received: usize,
}

impl CellAccumulator {
    pub(crate) fn new(runs: usize) -> CellAccumulator {
        let mut slots = Vec::with_capacity(runs);
        slots.resize_with(runs, || None);
        CellAccumulator { slots, received: 0 }
    }

    pub(crate) fn record(&mut self, run: usize, outcome: RunOutcome) {
        debug_assert!(self.slots[run].is_none(), "run {run} delivered twice");
        self.slots[run] = Some(outcome);
        self.received += 1;
    }

    pub(crate) fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    pub(crate) fn finish(
        self,
        labels: Vec<(String, String)>,
        seed: u64,
        qs: &[f64],
        pwcet_probs: &[f64],
        spec: &RunSpec,
    ) -> CellReport {
        // Samples stay u64 (exact) until each consumer's conversion
        // point: the Welford summary converts per value (exact below
        // 2^53, same as the simulator's own cycle arithmetic), the
        // percentile sort runs on u64, and the pWCET fit guards the
        // conversion explicitly.
        let mut samples: Vec<u64> = Vec::new();
        let mut summary = Summary::new();
        let mut unfinished = 0usize;
        let mut panicked = 0usize;
        let mut first_panic: Option<String> = None;
        let mut budget_trips = 0usize;
        let mut n_done = 0usize;
        let mut util_sum = 0.0f64;
        let mut burst_sum = 0.0f64;
        let mut gap_sum = 0.0f64;
        let mut cluster_sum: Option<Vec<f64>> = spec
            .platform
            .topology
            .as_ref()
            .map(|topo| vec![0.0f64; topo.clusters]);
        // Memory counters accumulate as exact u64 sums (not per-run
        // floats), so the derived ratios are thread-count-independent.
        let mut mem_sum: Option<MemStats> = None;
        let mut mem_runs = 0usize;
        let (mut window_jain_sum, mut window_share_sum, mut windows_counted) = match spec.windows {
            None => (None, None, 0usize),
            Some(w) => (
                Some(vec![0.0f64; w as usize]),
                Some(vec![vec![0.0f64; spec.platform.n_cores]; w as usize]),
                0usize,
            ),
        };
        for slot in self.slots {
            match slot.expect("every run delivered before finish()") {
                RunOutcome::Done(t) => {
                    n_done += 1;
                    match t.sample {
                        Some(s) => {
                            samples.push(s);
                            summary.record(s as f64);
                        }
                        None => unfinished += 1,
                    }
                    if t.budget_tripped {
                        budget_trips += 1;
                    }
                    util_sum += t.utilization;
                    if let Some(b) = t.burst {
                        burst_sum += b;
                    }
                    gap_sum += t.gap;
                    if let (Some(acc), Some(c)) = (&mut cluster_sum, &t.cluster_busy) {
                        for (a, x) in acc.iter_mut().zip(c) {
                            *a += x;
                        }
                    }
                    if let Some(m) = t.mem {
                        mem_sum.get_or_insert_with(MemStats::default).accumulate(m);
                        mem_runs += 1;
                    }
                    if let Some(wf) = &t.windows {
                        windows_counted += 1;
                        if let Some(jain) = &mut window_jain_sum {
                            for (a, j) in jain.iter_mut().zip(&wf.jain) {
                                *a += j;
                            }
                        }
                        if let Some(shares) = &mut window_share_sum {
                            for (row, wrow) in shares.iter_mut().zip(&wf.shares) {
                                for (a, s) in row.iter_mut().zip(wrow) {
                                    *a += s;
                                }
                            }
                        }
                    }
                }
                RunOutcome::Panicked(msg) => {
                    panicked += 1;
                    first_panic.get_or_insert(msg);
                }
                RunOutcome::BudgetSkipped => budget_trips += 1,
            }
        }
        // Denominator: runs that actually executed. With no faults this is
        // every run, matching the pre-containment aggregation exactly.
        let denom = (n_done as f64).max(1.0);
        let percentiles = if samples.is_empty() {
            Vec::new()
        } else {
            // Sort once per cell (u64 sort: exact, total order, no NaN
            // edge cases) and interpolate every requested quantile on
            // the same sorted view.
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let sorted: Vec<f64> = sorted.iter().map(|&s| s as f64).collect();
            qs.iter()
                .map(|&q| (q, percentile_sorted(&sorted, q)))
                .collect()
        };
        // The pWCET fit consumes the samples in run-index order — the
        // iid battery is order-sensitive, and index order is what stays
        // bit-identical across thread counts and resumes.
        let pwcet = (!pwcet_probs.is_empty()).then(|| fit_pwcet_columns(&samples, pwcet_probs));
        let (tua_max_burst, contender_max_gap) = if spec.record_trace {
            (Some(burst_sum / denom), Some(gap_sum / denom))
        } else {
            (None, None)
        };
        let (cluster_shares, cluster_fairness) = match cluster_sum {
            None => (None, None),
            Some(mut shares) => {
                shares.iter_mut().for_each(|s| *s /= denom);
                let sum: f64 = shares.iter().sum();
                let sq: f64 = shares.iter().map(|s| s * s).sum();
                let jain = if sq > 0.0 {
                    (sum * sum) / (shares.len() as f64 * sq)
                } else {
                    1.0
                };
                (Some(shares), Some(jain))
            }
        };
        let wdenom = (windows_counted as f64).max(1.0);
        let window_jain = window_jain_sum.map(|mut jain| {
            jain.iter_mut().for_each(|j| *j /= wdenom);
            jain
        });
        let window_shares = window_share_sum.map(|mut shares| {
            shares
                .iter_mut()
                .for_each(|row| row.iter_mut().for_each(|s| *s /= wdenom));
            shares
        });
        let (mem_miss_rate, mem_coherence_frac, mem_writebacks) = match mem_sum {
            None => (None, None, None),
            Some(m) => {
                let ratio = |num: u64, den: u64| {
                    if den == 0 {
                        0.0
                    } else {
                        num as f64 / den as f64
                    }
                };
                (
                    Some(ratio(m.misses, m.accesses)),
                    Some(ratio(m.coherence, m.bus_txns)),
                    Some(m.writebacks as f64 / (mem_runs as f64).max(1.0)),
                )
            }
        };
        let outcome = if let Some(msg) = first_panic {
            CellOutcome::Panicked(msg)
        } else if budget_trips > 0 {
            CellOutcome::Budget
        } else {
            CellOutcome::Ok
        };
        CellReport {
            labels,
            seed,
            runs: samples.len(),
            unfinished,
            outcome,
            panicked,
            budget_trips,
            mean: summary.mean(),
            ci95: summary.ci95_half_width(),
            min: summary.min(),
            max: summary.max(),
            percentiles,
            utilization: util_sum / denom,
            normalized: None,
            normalized_ci95: None,
            tua_max_burst,
            contender_max_gap,
            cluster_shares,
            cluster_fairness,
            window_jain,
            window_shares,
            pwcet,
            mem_miss_rate,
            mem_coherence_frac,
            mem_writebacks,
        }
    }
}

/// Runs the full MBPTA protocol (iid battery + Gumbel block-maxima fit)
/// on one cell's samples and reduces it to export columns. Every
/// [`cba_mbpta::MbptaError`] becomes the cell's diagnostic column — a
/// degenerate cell reports *why* it has no tail model instead of
/// panicking or emitting NaN.
fn fit_pwcet_columns(samples: &[u64], probs: &[f64]) -> PwcetCell {
    match PWcetModel::analyze_u64(samples, MbptaConfig::default()) {
        Ok((model, iid)) => PwcetCell {
            probs: probs.to_vec(),
            fit: Some(PwcetFit {
                bounds: probs.iter().map(|&p| model.quantile_per_run(p)).collect(),
                mu: model.gumbel().mu,
                beta: model.gumbel().beta,
                blocks: model.n_blocks() as u32,
                ks_p: iid.ks.p_value,
                lb_p: iid.ljung_box.p_value,
                runs_p: iid.runs.p_value,
                iid_ok: iid.passes(0.05),
            }),
            diag: None,
        },
        Err(e) => PwcetCell {
            probs: probs.to_vec(),
            fit: None,
            diag: Some(e.to_string()),
        },
    }
}

/// The full result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Campaign name from the definition.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Runs per cell.
    pub runs: usize,
    /// One report per grid cell, in expansion order.
    pub cells: Vec<CellReport>,
}

/// Expands `def` and executes every cell, applying baseline
/// normalization when the definition configures one.
///
/// The whole grid runs as one flat batch of *(cell × run)* tasks on one
/// grid-wide work-stealing pool (`def.threads`, default: every hardware
/// thread), so a multi-cell campaign scales with the thread count well
/// beyond a single cell's run count. Every run's seed depends only on
/// `(cell seed, run index)`, so results are deterministic — bit-identical
/// for any thread count or scheduling.
///
/// # Errors
///
/// Propagates expansion errors; a configured baseline that matches no
/// cell in some group is also an error.
pub fn run_scenario(def: &ScenarioDef) -> Result<ScenarioReport, ScenarioError> {
    run_scenario_with(def, |_done, _total, _cell| {})
}

/// [`run_scenario`] with a progress callback `(cells done, total, just
/// finished)` invoked per cell, for CLI progress lines. Cells are
/// aggregated and reported as their last run completes (so the callback
/// fires in completion order, live); the returned report is in cell
/// (expansion) order regardless, and identical for any thread count.
pub fn run_scenario_with(
    def: &ScenarioDef,
    progress: impl FnMut(usize, usize, &CellReport),
) -> Result<ScenarioReport, ScenarioError> {
    run_scenario_controlled(def, &RunControls::default(), progress)
}

/// Crash-safety controls for [`run_scenario_controlled`]: where (and
/// whether) to journal completed cells, whether to resume from an
/// existing journal, and an optional fault-injection plan for tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunControls<'a> {
    /// Journal completed cells into this directory (`campaign.journal`
    /// inside it). `None` = no checkpointing.
    pub checkpoint: Option<&'a Path>,
    /// Replay the journal first and run only the missing cells. Without
    /// this flag an existing journal is overwritten.
    pub resume: bool,
    /// Deterministic fault injection (tests and the crash-resume CI job).
    pub faults: Option<&'a FaultPlan>,
}

/// Wall-clock budget state of one in-flight cell: the clock starts when
/// the cell's first run starts, and is checked before each later run.
/// Inherently host-dependent — see
/// [`CheckpointSpec`](crate::scenario::CheckpointSpec).
#[derive(Debug, Default)]
struct CellClock {
    started: std::sync::OnceLock<std::time::Instant>,
}

impl CellClock {
    fn begin(&self) {
        self.started.get_or_init(std::time::Instant::now);
    }

    fn expired(&self, budget_ms: u64) -> bool {
        self.started
            .get()
            .is_some_and(|t| t.elapsed().as_millis() as u64 > budget_ms)
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// The full crash-safe scenario executor: [`run_scenario_with`] plus
/// checkpoint/resume journaling and per-cell fault containment.
///
/// * **Streaming aggregation** — every finished `(cell, run)` is folded
///   into its cell's `CellAccumulator` the moment it lands; raw
///   [`RunResult`]s are never retained. Reduction happens in run-index
///   order, so reports are bit-identical for any thread count.
/// * **Checkpointing** — with `controls.checkpoint`, each completed cell
///   is appended (fsynced, CRC-guarded) to the journal before the next
///   result is consumed. With `controls.resume`, journaled cells are
///   replayed and skipped; normalization runs at the end over the merged
///   set, so an interrupted-and-resumed campaign reports **bit-for-bit**
///   the same as a single-shot one.
/// * **Fault containment** — each run executes under [`catch_unwind`];
///   panicking runs and budget-tripped cells degrade into
///   [`CellOutcome`] rows instead of aborting the campaign.
///
/// # Errors
///
/// Propagates expansion/baseline errors like [`run_scenario`], plus
/// journal I/O errors (unwritable directory, mismatched scenario hash) —
/// and an `interrupted:` error when a [`FaultPlan`] kill-point fires
/// (the journal stays valid for a subsequent resume).
pub fn run_scenario_controlled(
    def: &ScenarioDef,
    controls: &RunControls<'_>,
    mut progress: impl FnMut(usize, usize, &CellReport),
) -> Result<ScenarioReport, ScenarioError> {
    let mut cells = def.expand()?;
    let total = cells.len();
    let runs = def.runs;
    let threads = def.threads.unwrap_or_else(default_threads);
    let run_budget = def.checkpoint.run_budget_cycles;
    if let Some(budget) = run_budget {
        // The deterministic budget is just a tighter safety limit.
        for cell in &mut cells {
            cell.spec.max_cycles = cell.spec.max_cycles.min(budget);
        }
    }
    let default_plan = FaultPlan::default();
    let plan = controls.faults.unwrap_or(&default_plan);

    let mut reports: Vec<Option<CellReport>> = (0..total).map(|_| None).collect();
    let mut journal: Option<Journal> = None;
    // --checkpoint overrides the scenario's own [checkpoint] dir key.
    let def_dir = def.checkpoint.dir.as_ref().map(Path::new);
    if let Some(dir) = controls.checkpoint.or(def_dir) {
        let hash = def.scenario_hash();
        let (j, replay) = if controls.resume {
            Journal::resume(dir, hash, total, runs).map_err(ScenarioError::new)?
        } else {
            (
                Journal::create(dir, hash, total, runs).map_err(ScenarioError::new)?,
                crate::checkpoint::JournalReplay::default(),
            )
        };
        for notice in &replay.notices {
            eprintln!("cba: checkpoint: {notice}");
        }
        for (ci, report) in replay.cells {
            reports[ci] = Some(report);
        }
        journal = Some(j);
    }

    // Only the missing cells are scheduled: one flat task list, task i is
    // run (i % runs) of work[i / runs], seeded exactly as a single-shot
    // execution would seed it (seeds depend on the cell, not on the
    // schedule, which is what makes resume bit-exact).
    let work: Vec<usize> = (0..total).filter(|&ci| reports[ci].is_none()).collect();
    let mut done_cells = total - work.len();
    let mut pending: Vec<CellAccumulator> =
        work.iter().map(|_| CellAccumulator::new(runs)).collect();
    let clocks: Vec<CellClock> = work.iter().map(|_| CellClock::default()).collect();
    let budget_ms = def.checkpoint.cell_budget_ms;
    let mut journal_error: Option<String> = None;
    let mut killed: Option<usize> = None;
    run_indexed_streamed(
        work.len() * runs,
        threads,
        |i| {
            let wi = i / runs;
            let run = i % runs;
            let ci = work[wi];
            let cell = &cells[ci];
            if plan.forces_budget_trip(ci, run) {
                return RunOutcome::BudgetSkipped;
            }
            if let Some(ms) = budget_ms {
                if clocks[wi].expired(ms) {
                    return RunOutcome::BudgetSkipped;
                }
            }
            clocks[wi].begin();
            let seed = run_seed(cell.seed, run);
            match catch_unwind(AssertUnwindSafe(|| {
                if plan.panics_at(ci, run) {
                    panic!("injected fault (cell {ci}, run {run})");
                }
                run_once(&cell.spec, seed)
            })) {
                Ok(r) => RunOutcome::Done(Box::new(RunTally::from_run(r, &cell.spec, run_budget))),
                Err(payload) => RunOutcome::Panicked(panic_message(payload)),
            }
        },
        |i, outcome| {
            // After a simulated kill-point or a journal write failure the
            // campaign is "dead": drain remaining results without
            // journaling or reporting them.
            if killed.is_some() || journal_error.is_some() {
                return;
            }
            let wi = i / runs;
            let ci = work[wi];
            pending[wi].record(i % runs, outcome);
            if !pending[wi].is_complete() {
                return;
            }
            let cell = &cells[ci];
            let report = std::mem::take(&mut pending[wi]).finish(
                cell.labels.clone(),
                cell.seed,
                &def.report.percentiles,
                &def.report.pwcet,
                &cell.spec,
            );
            if let Some(j) = &mut journal {
                match j.append(ci, &report) {
                    Ok(()) => {
                        if plan.kills_after(j.records()) {
                            if plan.is_hard_kill() {
                                // True crash semantics: no unwinding, no
                                // cleanup, no flushing beyond the fsynced
                                // journal — as close to SIGKILL as the
                                // process can do to itself.
                                eprintln!(
                                    "cba: simulated crash after {} journal records",
                                    j.records()
                                );
                                std::process::abort();
                            }
                            killed = Some(j.records());
                            return;
                        }
                    }
                    Err(e) => {
                        journal_error = Some(e);
                        return;
                    }
                }
            }
            done_cells += 1;
            progress(done_cells, total, &report);
            reports[ci] = Some(report);
        },
    );
    if let Some(e) = journal_error {
        return Err(ScenarioError::new(e));
    }
    if let Some(records) = killed {
        return Err(ScenarioError::new(format!(
            "interrupted: simulated kill after {records} journal records"
        )));
    }
    let mut reports: Vec<CellReport> = reports
        .into_iter()
        .map(|r| r.expect("every cell completed"))
        .collect();
    normalize(&mut reports, &def.report.baseline)?;
    Ok(ScenarioReport {
        name: def.name.clone(),
        seed: def.seed,
        runs: def.runs,
        cells: reports,
    })
}

/// Divides every cell's mean by the mean of its group's baseline cell.
///
/// The group of a cell is the set of cells agreeing on every axis *not*
/// named by the selector; within a group the baseline is the cell whose
/// selector-axis labels match the selector values (case-insensitively,
/// against the canonical label).
fn normalize(cells: &mut [CellReport], baseline: &[(String, String)]) -> Result<(), ScenarioError> {
    if baseline.is_empty() || cells.is_empty() {
        return Ok(());
    }
    let group_key = |cell: &CellReport| -> Vec<(String, String)> {
        cell.labels
            .iter()
            .filter(|(k, _)| !baseline.iter().any(|(bk, _)| bk == k))
            .cloned()
            .collect()
    };
    let is_baseline = |cell: &CellReport| -> bool {
        baseline.iter().all(|(bk, bv)| {
            cell.label(bk)
                .is_some_and(|label| label.eq_ignore_ascii_case(bv))
        })
    };
    // Resolve each group's baseline mean first (groups are tiny: linear
    // scans beat building a map keyed by label vectors).
    let base_means: Vec<Option<f64>> = cells
        .iter()
        .map(|cell| {
            let key = group_key(cell);
            cells
                .iter()
                .find(|c| is_baseline(c) && group_key(c) == key)
                .map(|c| c.mean)
        })
        .collect();
    for (cell, base) in cells.iter_mut().zip(base_means) {
        let base = base.ok_or_else(|| {
            let selector: Vec<String> = baseline.iter().map(|(k, v)| format!("{k}={v}")).collect();
            ScenarioError::new(format!(
                "baseline [{}] matches no cell in the group of [{}]",
                selector.join(", "),
                cell.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        cell.normalized = Some(cell.mean / base);
        cell.normalized_ci95 = Some(cell.ci95 / base);
    }
    Ok(())
}

impl ScenarioReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let mut pairs: Vec<(String, Json)> = Vec::new();
                for (k, v) in &c.labels {
                    pairs.push((k.clone(), Json::str(v.clone())));
                }
                pairs.push(("seed".into(), Json::Num(c.seed as f64)));
                pairs.push(("runs".into(), Json::Num(c.runs as f64)));
                pairs.push(("unfinished".into(), Json::Num(c.unfinished as f64)));
                pairs.push(("outcome".into(), Json::str(c.outcome.label())));
                if let CellOutcome::Panicked(msg) = &c.outcome {
                    pairs.push(("panic".into(), Json::str(msg.clone())));
                }
                if c.panicked > 0 {
                    pairs.push(("panicked_runs".into(), Json::Num(c.panicked as f64)));
                }
                if c.budget_trips > 0 {
                    pairs.push((
                        "budget_tripped_runs".into(),
                        Json::Num(c.budget_trips as f64),
                    ));
                }
                pairs.push(("mean_cycles".into(), Json::Num(c.mean)));
                pairs.push(("ci95".into(), Json::Num(c.ci95)));
                pairs.push(("min".into(), Json::Num(c.min)));
                pairs.push(("max".into(), Json::Num(c.max)));
                for (q, v) in &c.percentiles {
                    pairs.push((format!("p{}", fmt_quantile(*q)), Json::Num(*v)));
                }
                pairs.push(("utilization".into(), Json::Num(c.utilization)));
                pairs.push(("normalized".into(), Json::opt_num(c.normalized)));
                pairs.push(("normalized_ci95".into(), Json::opt_num(c.normalized_ci95)));
                if let Some(b) = c.tua_max_burst {
                    pairs.push(("tua_max_burst".into(), Json::Num(b)));
                }
                if let Some(g) = c.contender_max_gap {
                    pairs.push(("contender_max_gap".into(), Json::Num(g)));
                }
                if let Some(shares) = &c.cluster_shares {
                    pairs.push((
                        "cluster_shares".into(),
                        Json::Arr(shares.iter().map(|&s| Json::Num(s)).collect()),
                    ));
                }
                if let Some(f) = c.cluster_fairness {
                    pairs.push(("cluster_fairness".into(), Json::Num(f)));
                }
                if let Some(jain) = &c.window_jain {
                    pairs.push((
                        "window_jain".into(),
                        Json::Arr(jain.iter().map(|&j| Json::Num(j)).collect()),
                    ));
                    if let Some(mean) = c.window_jain_mean() {
                        pairs.push(("window_jain_mean".into(), Json::Num(mean)));
                    }
                    if let Some(min) = c.window_jain_min() {
                        pairs.push(("window_jain_min".into(), Json::Num(min)));
                    }
                }
                if let Some(shares) = &c.window_shares {
                    pairs.push((
                        "window_shares".into(),
                        Json::Arr(
                            shares
                                .iter()
                                .map(|row| Json::Arr(row.iter().map(|&s| Json::Num(s)).collect()))
                                .collect(),
                        ),
                    ));
                }
                if let Some(p) = &c.pwcet {
                    match &p.fit {
                        Some(f) => {
                            for (prob, bound) in p.probs.iter().zip(&f.bounds) {
                                pairs.push((
                                    format!("pwcet@{}", fmt_prob(*prob)),
                                    Json::Num(*bound),
                                ));
                            }
                            pairs.push(("gumbel_mu".into(), Json::Num(f.mu)));
                            pairs.push(("gumbel_beta".into(), Json::Num(f.beta)));
                            pairs.push(("gumbel_blocks".into(), Json::Num(f.blocks as f64)));
                            pairs.push(("iid_ks_p".into(), Json::Num(f.ks_p)));
                            pairs.push(("iid_lb_p".into(), Json::Num(f.lb_p)));
                            pairs.push(("iid_runs_p".into(), Json::Num(f.runs_p)));
                            pairs.push(("iid_ok".into(), Json::Bool(f.iid_ok)));
                        }
                        None => {
                            if let Some(d) = &p.diag {
                                pairs.push(("pwcet_diag".into(), Json::str(d.clone())));
                            }
                        }
                    }
                }
                if let Some(m) = c.mem_miss_rate {
                    pairs.push(("mem_miss_rate".into(), Json::Num(m)));
                }
                if let Some(m) = c.mem_coherence_frac {
                    pairs.push(("mem_coherence_frac".into(), Json::Num(m)));
                }
                if let Some(m) = c.mem_writebacks {
                    pairs.push(("mem_writebacks".into(), Json::Num(m)));
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("runs_per_cell", Json::Num(self.runs as f64)),
            ("cells", Json::Arr(cells)),
        ])
        .render()
    }

    /// Renders the report as CSV: one header row (axis keys, then the
    /// statistics), one row per cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.cells.first() else {
            return out;
        };
        let mut header: Vec<String> = first.labels.iter().map(|(k, _)| k.clone()).collect();
        header.extend(
            [
                "seed",
                "runs",
                "unfinished",
                "outcome",
                "mean_cycles",
                "ci95",
                "min",
                "max",
            ]
            .map(String::from),
        );
        for (q, _) in &first.percentiles {
            header.push(format!("p{}", fmt_quantile(*q)));
        }
        header.extend(["utilization", "normalized", "normalized_ci95"].map(String::from));
        let trace = first.tua_max_burst.is_some();
        if trace {
            header.extend(["tua_max_burst", "contender_max_gap"].map(String::from));
        }
        // Column count must cover every cell: a `clusters` sweep makes the
        // share vectors ragged, and shorter cells pad with empty fields.
        let clusters = self
            .cells
            .iter()
            .map(|c| c.cluster_shares.as_ref().map(Vec::len).unwrap_or(0))
            .max()
            .unwrap_or(0);
        for k in 0..clusters {
            header.push(format!("cluster{k}_share"));
        }
        if clusters > 0 {
            header.push("cluster_fairness".into());
        }
        let windowed = self.cells.iter().any(|c| c.window_jain.is_some());
        if windowed {
            header.extend(["window_jain_mean", "window_jain_min"].map(String::from));
        }
        // `[report] pwcet` applies scenario-wide, so every cell agrees
        // on the probability list; cells whose fit failed pad the value
        // columns empty and fill `pwcet_diag` instead.
        let pwcet_probs = self
            .cells
            .iter()
            .find_map(|c| c.pwcet.as_ref())
            .map(|p| p.probs.clone())
            .unwrap_or_default();
        if !pwcet_probs.is_empty() {
            for p in &pwcet_probs {
                header.push(format!("pwcet@{}", fmt_prob(*p)));
            }
            header.extend(
                [
                    "gumbel_mu",
                    "gumbel_beta",
                    "gumbel_blocks",
                    "iid_ks_p",
                    "iid_lb_p",
                    "iid_runs_p",
                    "iid_ok",
                    "pwcet_diag",
                ]
                .map(String::from),
            );
        }
        // Gated on any cell carrying memory stats, so baseline campaigns
        // keep their exact pre-memory column set.
        let mem = self.cells.iter().any(|c| c.mem_miss_rate.is_some());
        if mem {
            header.extend(
                ["mem_miss_rate", "mem_coherence_frac", "mem_writebacks"].map(String::from),
            );
        }
        out.push_str(&header.join(","));
        out.push('\n');
        for c in &self.cells {
            let mut row: Vec<String> = c.labels.iter().map(|(_, v)| csv_field(v)).collect();
            row.push(c.seed.to_string());
            row.push(c.runs.to_string());
            row.push(c.unfinished.to_string());
            row.push(c.outcome.label().to_string());
            row.push(fmt_number(c.mean));
            row.push(fmt_number(c.ci95));
            row.push(fmt_number(c.min));
            row.push(fmt_number(c.max));
            for (_, v) in &c.percentiles {
                row.push(fmt_number(*v));
            }
            row.push(fmt_number(c.utilization));
            row.push(c.normalized.map(fmt_number).unwrap_or_default());
            row.push(c.normalized_ci95.map(fmt_number).unwrap_or_default());
            if trace {
                row.push(c.tua_max_burst.map(fmt_number).unwrap_or_default());
                row.push(c.contender_max_gap.map(fmt_number).unwrap_or_default());
            }
            if clusters > 0 {
                let shares = c.cluster_shares.as_deref().unwrap_or(&[]);
                for k in 0..clusters {
                    row.push(shares.get(k).copied().map(fmt_number).unwrap_or_default());
                }
                row.push(c.cluster_fairness.map(fmt_number).unwrap_or_default());
            }
            if windowed {
                row.push(c.window_jain_mean().map(fmt_number).unwrap_or_default());
                row.push(c.window_jain_min().map(fmt_number).unwrap_or_default());
            }
            if !pwcet_probs.is_empty() {
                let fit = c.pwcet.as_ref().and_then(|p| p.fit.as_ref());
                match fit {
                    Some(f) => {
                        for b in &f.bounds {
                            row.push(fmt_number(*b));
                        }
                        row.push(fmt_number(f.mu));
                        row.push(fmt_number(f.beta));
                        row.push(f.blocks.to_string());
                        row.push(fmt_number(f.ks_p));
                        row.push(fmt_number(f.lb_p));
                        row.push(fmt_number(f.runs_p));
                        row.push(if f.iid_ok { "pass" } else { "fail" }.into());
                        row.push(String::new());
                    }
                    None => {
                        for _ in 0..pwcet_probs.len() + 7 {
                            row.push(String::new());
                        }
                        let diag = c.pwcet.as_ref().and_then(|p| p.diag.as_deref());
                        row.push(csv_field(diag.unwrap_or_default()));
                    }
                }
            }
            if mem {
                row.push(c.mem_miss_rate.map(fmt_number).unwrap_or_default());
                row.push(c.mem_coherence_frac.map(fmt_number).unwrap_or_default());
                row.push(c.mem_writebacks.map(fmt_number).unwrap_or_default());
            }
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders a fixed-width terminal table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — {} cells, {} runs each, seed {}",
            self.name,
            self.cells.len(),
            self.runs,
            self.seed
        );
        let normalized = self.cells.iter().any(|c| c.normalized.is_some());
        for c in &self.cells {
            let label = if c.labels.is_empty() {
                "(single cell)".to_string()
            } else {
                c.labels
                    .iter()
                    .map(|(_, v)| v.clone())
                    .collect::<Vec<_>>()
                    .join(" · ")
            };
            let _ = write!(out, "  {label:<32} {:>12.1} ±{:>8.1}", c.mean, c.ci95);
            if normalized {
                match c.normalized {
                    Some(n) => {
                        let _ = write!(out, "  {n:>6.3}x");
                    }
                    None => {
                        let _ = write!(out, "        ");
                    }
                }
            }
            if let Some(shares) = &c.cluster_shares {
                let rendered: Vec<String> = shares.iter().map(|s| format!("{s:.3}")).collect();
                let _ = write!(out, "  shares {}", rendered.join("/"));
            }
            if let (Some(mean), Some(min)) = (c.window_jain_mean(), c.window_jain_min()) {
                let _ = write!(out, "  winJ {mean:.3}/{min:.3}");
            }
            if let Some(p) = &c.pwcet {
                match (&p.fit, p.probs.last()) {
                    (Some(f), Some(&prob)) => {
                        let bound = f.bounds.last().copied().unwrap_or(f64::NAN);
                        let _ = write!(
                            out,
                            "  pWCET@{} {bound:.0}{}",
                            fmt_prob(prob),
                            if f.iid_ok { "" } else { " (iid?)" }
                        );
                    }
                    _ => {
                        if let Some(d) = &p.diag {
                            let _ = write!(out, "  [pwcet: {d}]");
                        }
                    }
                }
            }
            if let (Some(miss), Some(coh)) = (c.mem_miss_rate, c.mem_coherence_frac) {
                let _ = write!(out, "  miss {miss:.3} coh {coh:.3}");
            }
            if c.unfinished > 0 {
                let _ = write!(out, "  [{} unfinished]", c.unfinished);
            }
            match &c.outcome {
                CellOutcome::Ok => {}
                CellOutcome::Panicked(msg) => {
                    let _ = write!(out, "  [PANICKED x{}: {msg}]", c.panicked);
                }
                CellOutcome::Budget => {
                    let _ = write!(out, "  [budget x{}]", c.budget_trips);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// `1e-9`-style exceedance-probability labels for `pwcet@P` columns;
/// `{:e}` round-trips through parse, so scenario files, column names and
/// canonical renders all agree.
fn fmt_prob(p: f64) -> String {
    format!("{p:e}")
}

/// `0.95` → `"95"`, `0.999` → `"99.9"` (for `p95` / `p99.9` column names).
fn fmt_quantile(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}", pct.round() as i64)
    } else {
        format!("{pct}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioDef;

    fn tiny_def(extra: &str) -> ScenarioDef {
        let text = format!(
            "[campaign]\nname = tiny\nruns = 2\nseed = 5\n[tua]\nload = fixed:40:6:4\n{extra}"
        );
        ScenarioDef::parse(&text).unwrap()
    }

    #[test]
    fn single_cell_report_has_statistics() {
        let report = run_scenario(&tiny_def("")).unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.runs, 2);
        assert!(cell.mean > 0.0);
        assert!(cell.min <= cell.mean && cell.mean <= cell.max);
        assert_eq!(cell.percentiles.len(), 3, "default percentiles 50/95/99");
        assert!(cell.normalized.is_none(), "no baseline configured");
    }

    #[test]
    fn runs_are_reproducible_across_invocations() {
        let a = run_scenario(&tiny_def("[sweep]\nsetup = rp,cba\n")).unwrap();
        let b = run_scenario(&tiny_def("[sweep]\nsetup = rp,cba\n")).unwrap();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn baseline_normalization_matches_group() {
        let def = tiny_def(
            "[sweep]\nsetup = rp,cba\nscenario = iso,con\n[report]\nbaseline = setup=rp,scenario=iso\n",
        );
        let report = run_scenario(&def).unwrap();
        assert_eq!(report.cells.len(), 4);
        let rp_iso = &report.cells[0];
        assert_eq!(rp_iso.label("setup"), Some("RP"));
        assert_eq!(rp_iso.label("scenario"), Some("ISO"));
        assert_eq!(rp_iso.normalized, Some(1.0), "baseline normalizes to 1");
        for c in &report.cells {
            let expect = c.mean / rp_iso.mean;
            assert!((c.normalized.unwrap() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_baseline_is_an_error() {
        let def = tiny_def("[sweep]\nsetup = rp,cba\n[report]\nbaseline = setup=hcba\n");
        let err = run_scenario(&def).unwrap_err();
        assert!(err.msg.contains("matches no cell"), "{err}");
    }

    #[test]
    fn json_and_csv_outputs_are_well_formed() {
        let def = tiny_def("[sweep]\nsetup = rp,cba\n[report]\nbaseline = setup=rp\n");
        let report = run_scenario(&def).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"name\": \"tiny\""));
        assert!(json.contains("\"setup\": \"RP\""));
        assert!(json.contains("\"normalized\": 1"));
        assert!(json.contains("\"p95\":"));

        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "setup,seed,runs,unfinished,outcome,mean_cycles,ci95,min,max,p50,p95,p99,utilization,normalized,normalized_ci95"
        );
        assert_eq!(lines.count(), 2, "one row per cell");
    }

    #[test]
    fn trace_cells_expose_burst_metrics() {
        let def = tiny_def("[contenders]\ntrace = on\n");
        let report = run_scenario(&def).unwrap();
        let cell = &report.cells[0];
        assert!(cell.tua_max_burst.is_some());
        assert!(cell.contender_max_gap.is_some());
        let csv = report.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("tua_max_burst,contender_max_gap"));
    }

    #[test]
    fn csv_covers_the_widest_cell_of_a_cluster_sweep() {
        let text = "\
[campaign]
runs = 1
[platform]
policy = rr
[topology]
clusters = 2
cores_per_cluster = 2
backbone_cba = homog
[tua]
load = fixed:10:5:0
[contenders]
fill = sat:28
wcet = off
stop = horizon:2000
[sweep]
clusters = 2,4
";
        let report = run_scenario(&ScenarioDef::parse(text).unwrap()).unwrap();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert!(
            header.contains(&"cluster3_share"),
            "header must cover the 4-cluster cell: {header:?}"
        );
        // Every row has the full column set; the 2-cluster cell pads its
        // missing shares with empty fields.
        let row2: Vec<&str> = lines.next().unwrap().split(',').collect();
        let row4: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row2.len(), header.len());
        assert_eq!(row4.len(), header.len());
        let col = header.iter().position(|&h| h == "cluster3_share").unwrap();
        assert!(row2[col].is_empty(), "2-cluster cell pads: {row2:?}");
        assert!(!row4[col].is_empty(), "4-cluster cell fills: {row4:?}");
    }

    #[test]
    fn windowed_cells_expose_jain_series_in_every_export() {
        let text = "\
[campaign]
name = windowed
runs = 2
seed = 9
[platform]
policy = rr
[tua]
load = sat:5
[contenders]
fill = sat:56
wcet = off
stop = horizon:20000
[sweep]
cba = none,homog
[report]
windows = 4
";
        let report = run_scenario(&ScenarioDef::parse(text).unwrap()).unwrap();
        for cell in &report.cells {
            let jain = cell.window_jain.as_ref().expect("windowed cell");
            assert_eq!(jain.len(), 4);
            let shares = cell.window_shares.as_ref().expect("windowed cell");
            assert_eq!(shares.len(), 4);
            assert_eq!(shares[0].len(), 4, "one share per core");
            assert!(cell.window_jain_mean().unwrap() > 0.0);
            assert!(cell.window_jain_min().unwrap() <= cell.window_jain_mean().unwrap());
        }
        // The credit filter improves windowed fairness for this 5-vs-56
        // mix (the paper's core claim, now visible per window).
        let none = report.cells[0].window_jain_mean().unwrap();
        let homog = report.cells[1].window_jain_mean().unwrap();
        assert!(
            homog > none,
            "CBA must beat no-filter per-window: {homog} vs {none}"
        );

        let json = report.to_json();
        assert!(json.contains("\"window_jain\""), "{json}");
        assert!(json.contains("\"window_shares\""), "{json}");
        let csv = report.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(
            header.ends_with("window_jain_mean,window_jain_min"),
            "{header}"
        );
        let table = report.render_table();
        assert!(table.contains("winJ "), "{table}");
    }

    #[test]
    fn table_renders_one_line_per_cell() {
        let def = tiny_def("[sweep]\nscenario = iso,con\n");
        let report = run_scenario(&def).unwrap();
        let table = report.render_table();
        assert!(table.contains("ISO"));
        assert!(table.contains("CON"));
        assert_eq!(table.lines().count(), 3, "header + two cells");
    }
}
