//! Structured campaign results: per-cell statistics, baseline
//! normalization, and JSON/CSV/table export.
//!
//! [`run_scenario`] flattens every grid cell of a [`ScenarioDef`] into one
//! batch of *(cell × run)* tasks, executes the whole batch on the
//! grid-wide work-stealing pool ([`crate::executor`]) and aggregates each
//! cell into a [`CellReport`]: mean, 95% confidence interval, percentiles,
//! and (for trace-recording scenarios) burst/starvation summaries. When
//! the definition names a `[report]` baseline (e.g. `baseline =
//! setup=rp,scenario=iso`), cells are normalized against the matching cell
//! of their group — exactly how the paper's Figure 1 normalizes every bar
//! to the benchmark's RP-ISO mean.
//!
//! The writers are dependency-free ([`sim_core::export`]): `to_json` for
//! plots/dashboards, `to_csv` for spreadsheets, `render_table` for the
//! terminal.

use crate::campaign::{run_seed, CampaignResult};
use crate::executor::{default_threads, run_indexed_streamed};
use crate::platform::{run_once, RunResult, RunSpec};
use crate::scenario::{ScenarioDef, ScenarioError};
use sim_core::export::{csv_field, fmt_number, Json};

/// Aggregated result of one grid cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// `(axis key, value label)` pairs identifying the cell.
    pub labels: Vec<(String, String)>,
    /// The campaign seed this cell ran under.
    pub seed: u64,
    /// Completed runs (samples).
    pub runs: usize,
    /// Runs that hit the cycle safety limit instead of finishing.
    pub unfinished: usize,
    /// Mean execution time (cycles).
    pub mean: f64,
    /// Half-width of the 95% confidence interval on the mean (cycles).
    pub ci95: f64,
    /// Smallest sample (cycles).
    pub min: f64,
    /// Largest sample (cycles).
    pub max: f64,
    /// `(quantile, value)` pairs per the definition's `percentiles`.
    pub percentiles: Vec<(f64, f64)>,
    /// Mean bus utilization over the runs.
    pub utilization: f64,
    /// Mean normalized to the group's baseline cell, when a baseline is
    /// configured.
    pub normalized: Option<f64>,
    /// `ci95` divided by the baseline mean, when a baseline is configured.
    pub normalized_ci95: Option<f64>,
    /// Mean (over runs) of the TuA's longest back-to-back grant burst;
    /// trace-recording cells only.
    pub tua_max_burst: Option<f64>,
    /// Mean (over runs) of the worst contender grant gap; trace-recording
    /// cells only.
    pub contender_max_gap: Option<f64>,
    /// Mean per-cluster share of the backbone (busy cycles of the
    /// cluster's cores / total cycles); fabric cells only.
    pub cluster_shares: Option<Vec<f64>>,
    /// Jain fairness index over the cluster shares (1 = perfectly even);
    /// fabric cells only.
    pub cluster_fairness: Option<f64>,
    /// Mean (over runs) per-window Jain index series; cells with
    /// `[report] windows = N` only.
    pub window_jain: Option<Vec<f64>>,
    /// Mean (over runs) per-window per-core share matrix
    /// (`[window][core]`); windowed cells only.
    pub window_shares: Option<Vec<Vec<f64>>>,
}

impl CellReport {
    /// The label of axis `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Mean of the per-window Jain indices (windowed cells only).
    pub fn window_jain_mean(&self) -> Option<f64> {
        let jain = self.window_jain.as_ref()?;
        if jain.is_empty() {
            return None;
        }
        Some(jain.iter().sum::<f64>() / jain.len() as f64)
    }

    /// Worst (smallest) per-window Jain index (windowed cells only).
    pub fn window_jain_min(&self) -> Option<f64> {
        let jain = self.window_jain.as_ref()?;
        jain.iter().copied().reduce(f64::min)
    }

    /// Aggregates a finished campaign into a report cell. The `spec`
    /// decides which optional summaries are extracted: burst/starvation
    /// metrics for trace-recording cells, per-cluster shares and the
    /// cross-cluster fairness index for fabric cells.
    pub fn from_campaign(
        labels: Vec<(String, String)>,
        seed: u64,
        result: &crate::campaign::CampaignResult,
        qs: &[f64],
        spec: &RunSpec,
    ) -> CellReport {
        let record_trace = spec.record_trace;
        let summary = result.summary();
        let percentiles = if result.samples().is_empty() {
            Vec::new()
        } else {
            qs.iter().map(|&q| (q, result.percentile(q))).collect()
        };
        let n_runs = result.results().len() as f64;
        let utilization = result
            .results()
            .iter()
            .map(|r| r.utilization())
            .sum::<f64>()
            / n_runs.max(1.0);
        let (tua_max_burst, contender_max_gap) = if record_trace {
            let burst: f64 = result
                .results()
                .iter()
                .filter_map(|r| r.max_burst.first().copied().flatten())
                .map(|b| b as f64)
                .sum();
            let gap: f64 = result
                .results()
                .iter()
                .map(|r| {
                    r.max_grant_gap
                        .iter()
                        .skip(1)
                        .filter_map(|g| *g)
                        .max()
                        .unwrap_or(0) as f64
                })
                .sum();
            (Some(burst / n_runs.max(1.0)), Some(gap / n_runs.max(1.0)))
        } else {
            (None, None)
        };
        let (cluster_shares, cluster_fairness) = match &spec.platform.topology {
            None => (None, None),
            Some(topo) => {
                let mut shares = vec![0.0f64; topo.clusters];
                for r in result.results() {
                    if r.total_cycles == 0 {
                        continue;
                    }
                    for (k, share) in shares.iter_mut().enumerate() {
                        let lo = k * topo.cores_per_cluster;
                        let busy: u64 = r.bus_busy[lo..lo + topo.cores_per_cluster].iter().sum();
                        *share += busy as f64 / r.total_cycles as f64;
                    }
                }
                shares.iter_mut().for_each(|s| *s /= n_runs.max(1.0));
                let sum: f64 = shares.iter().sum();
                let sq: f64 = shares.iter().map(|s| s * s).sum();
                let jain = if sq > 0.0 {
                    (sum * sum) / (shares.len() as f64 * sq)
                } else {
                    1.0
                };
                (Some(shares), Some(jain))
            }
        };
        let (window_jain, window_shares) = match spec.windows {
            None => (None, None),
            Some(w) => {
                let n_windows = w as usize;
                let n_cores = spec.platform.n_cores;
                let mut jain = vec![0.0f64; n_windows];
                let mut shares = vec![vec![0.0f64; n_cores]; n_windows];
                let mut counted = 0usize;
                for r in result.results() {
                    let Some(wf) = &r.windows else { continue };
                    counted += 1;
                    for (wi, j) in wf.jain.iter().enumerate() {
                        jain[wi] += j;
                    }
                    for (wi, row) in wf.shares.iter().enumerate() {
                        for (ci, s) in row.iter().enumerate() {
                            shares[wi][ci] += s;
                        }
                    }
                }
                let denom = (counted as f64).max(1.0);
                jain.iter_mut().for_each(|j| *j /= denom);
                shares
                    .iter_mut()
                    .for_each(|row| row.iter_mut().for_each(|s| *s /= denom));
                (Some(jain), Some(shares))
            }
        };
        CellReport {
            labels,
            seed,
            runs: result.samples().len(),
            unfinished: result.unfinished(),
            mean: result.mean(),
            ci95: summary.ci95_half_width(),
            min: summary.min(),
            max: summary.max(),
            percentiles,
            utilization,
            normalized: None,
            normalized_ci95: None,
            tua_max_burst,
            contender_max_gap,
            cluster_shares,
            cluster_fairness,
            window_jain,
            window_shares,
        }
    }
}

/// The full result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Campaign name from the definition.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Runs per cell.
    pub runs: usize,
    /// One report per grid cell, in expansion order.
    pub cells: Vec<CellReport>,
}

/// Expands `def` and executes every cell, applying baseline
/// normalization when the definition configures one.
///
/// The whole grid runs as one flat batch of *(cell × run)* tasks on one
/// grid-wide work-stealing pool (`def.threads`, default: every hardware
/// thread), so a multi-cell campaign scales with the thread count well
/// beyond a single cell's run count. Every run's seed depends only on
/// `(cell seed, run index)`, so results are deterministic — bit-identical
/// for any thread count or scheduling.
///
/// # Errors
///
/// Propagates expansion errors; a configured baseline that matches no
/// cell in some group is also an error.
pub fn run_scenario(def: &ScenarioDef) -> Result<ScenarioReport, ScenarioError> {
    run_scenario_with(def, |_done, _total, _cell| {})
}

/// [`run_scenario`] with a progress callback `(cells done, total, just
/// finished)` invoked per cell, for CLI progress lines. Cells are
/// aggregated and reported as their last run completes (so the callback
/// fires in completion order, live); the returned report is in cell
/// (expansion) order regardless, and identical for any thread count.
pub fn run_scenario_with(
    def: &ScenarioDef,
    mut progress: impl FnMut(usize, usize, &CellReport),
) -> Result<ScenarioReport, ScenarioError> {
    let cells = def.expand()?;
    let total = cells.len();
    let runs = def.runs;
    let threads = def.threads.unwrap_or_else(default_threads);
    // One flat task list over the whole grid: task i is run (i % runs) of
    // cell (i / runs), seeded exactly as Campaign would seed it. Results
    // stream back in completion order; a cell is aggregated (and its
    // progress line fired) the moment its last run lands, so long grids
    // report live and only in-flight cells' raw results stay in memory.
    let mut pending: Vec<Vec<Option<RunResult>>> = (0..total).map(|_| Vec::new()).collect();
    let mut missing: Vec<usize> = vec![runs; total];
    let mut reports: Vec<Option<CellReport>> = (0..total).map(|_| None).collect();
    let mut done_cells = 0usize;
    run_indexed_streamed(
        total * runs,
        threads,
        |i| {
            let cell = &cells[i / runs];
            run_once(&cell.spec, run_seed(cell.seed, i % runs))
        },
        |i, result| {
            let ci = i / runs;
            let buf = &mut pending[ci];
            if buf.is_empty() {
                buf.resize_with(runs, || None);
            }
            buf[i % runs] = Some(result);
            missing[ci] -= 1;
            if missing[ci] == 0 {
                // Take (not drain) so the buffer's allocation is freed the
                // moment its cell aggregates.
                let cell_runs: Vec<RunResult> = std::mem::take(&mut pending[ci])
                    .into_iter()
                    .map(|r| r.expect("all runs delivered"))
                    .collect();
                let campaign = CampaignResult::from_runs(cell_runs);
                let cell = &cells[ci];
                let report = CellReport::from_campaign(
                    cell.labels.clone(),
                    cell.seed,
                    &campaign,
                    &def.report.percentiles,
                    &cell.spec,
                );
                done_cells += 1;
                progress(done_cells, total, &report);
                reports[ci] = Some(report);
            }
        },
    );
    let mut reports: Vec<CellReport> = reports
        .into_iter()
        .map(|r| r.expect("every cell completed"))
        .collect();
    normalize(&mut reports, &def.report.baseline)?;
    Ok(ScenarioReport {
        name: def.name.clone(),
        seed: def.seed,
        runs: def.runs,
        cells: reports,
    })
}

/// Divides every cell's mean by the mean of its group's baseline cell.
///
/// The group of a cell is the set of cells agreeing on every axis *not*
/// named by the selector; within a group the baseline is the cell whose
/// selector-axis labels match the selector values (case-insensitively,
/// against the canonical label).
fn normalize(cells: &mut [CellReport], baseline: &[(String, String)]) -> Result<(), ScenarioError> {
    if baseline.is_empty() || cells.is_empty() {
        return Ok(());
    }
    let group_key = |cell: &CellReport| -> Vec<(String, String)> {
        cell.labels
            .iter()
            .filter(|(k, _)| !baseline.iter().any(|(bk, _)| bk == k))
            .cloned()
            .collect()
    };
    let is_baseline = |cell: &CellReport| -> bool {
        baseline.iter().all(|(bk, bv)| {
            cell.label(bk)
                .is_some_and(|label| label.eq_ignore_ascii_case(bv))
        })
    };
    // Resolve each group's baseline mean first (groups are tiny: linear
    // scans beat building a map keyed by label vectors).
    let base_means: Vec<Option<f64>> = cells
        .iter()
        .map(|cell| {
            let key = group_key(cell);
            cells
                .iter()
                .find(|c| is_baseline(c) && group_key(c) == key)
                .map(|c| c.mean)
        })
        .collect();
    for (cell, base) in cells.iter_mut().zip(base_means) {
        let base = base.ok_or_else(|| {
            let selector: Vec<String> = baseline.iter().map(|(k, v)| format!("{k}={v}")).collect();
            ScenarioError::new(format!(
                "baseline [{}] matches no cell in the group of [{}]",
                selector.join(", "),
                cell.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        cell.normalized = Some(cell.mean / base);
        cell.normalized_ci95 = Some(cell.ci95 / base);
    }
    Ok(())
}

impl ScenarioReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let mut pairs: Vec<(String, Json)> = Vec::new();
                for (k, v) in &c.labels {
                    pairs.push((k.clone(), Json::str(v.clone())));
                }
                pairs.push(("seed".into(), Json::Num(c.seed as f64)));
                pairs.push(("runs".into(), Json::Num(c.runs as f64)));
                pairs.push(("unfinished".into(), Json::Num(c.unfinished as f64)));
                pairs.push(("mean_cycles".into(), Json::Num(c.mean)));
                pairs.push(("ci95".into(), Json::Num(c.ci95)));
                pairs.push(("min".into(), Json::Num(c.min)));
                pairs.push(("max".into(), Json::Num(c.max)));
                for (q, v) in &c.percentiles {
                    pairs.push((format!("p{}", fmt_quantile(*q)), Json::Num(*v)));
                }
                pairs.push(("utilization".into(), Json::Num(c.utilization)));
                pairs.push(("normalized".into(), Json::opt_num(c.normalized)));
                pairs.push(("normalized_ci95".into(), Json::opt_num(c.normalized_ci95)));
                if let Some(b) = c.tua_max_burst {
                    pairs.push(("tua_max_burst".into(), Json::Num(b)));
                }
                if let Some(g) = c.contender_max_gap {
                    pairs.push(("contender_max_gap".into(), Json::Num(g)));
                }
                if let Some(shares) = &c.cluster_shares {
                    pairs.push((
                        "cluster_shares".into(),
                        Json::Arr(shares.iter().map(|&s| Json::Num(s)).collect()),
                    ));
                }
                if let Some(f) = c.cluster_fairness {
                    pairs.push(("cluster_fairness".into(), Json::Num(f)));
                }
                if let Some(jain) = &c.window_jain {
                    pairs.push((
                        "window_jain".into(),
                        Json::Arr(jain.iter().map(|&j| Json::Num(j)).collect()),
                    ));
                    if let Some(mean) = c.window_jain_mean() {
                        pairs.push(("window_jain_mean".into(), Json::Num(mean)));
                    }
                    if let Some(min) = c.window_jain_min() {
                        pairs.push(("window_jain_min".into(), Json::Num(min)));
                    }
                }
                if let Some(shares) = &c.window_shares {
                    pairs.push((
                        "window_shares".into(),
                        Json::Arr(
                            shares
                                .iter()
                                .map(|row| Json::Arr(row.iter().map(|&s| Json::Num(s)).collect()))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("runs_per_cell", Json::Num(self.runs as f64)),
            ("cells", Json::Arr(cells)),
        ])
        .render()
    }

    /// Renders the report as CSV: one header row (axis keys, then the
    /// statistics), one row per cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.cells.first() else {
            return out;
        };
        let mut header: Vec<String> = first.labels.iter().map(|(k, _)| k.clone()).collect();
        header.extend(
            [
                "seed",
                "runs",
                "unfinished",
                "mean_cycles",
                "ci95",
                "min",
                "max",
            ]
            .map(String::from),
        );
        for (q, _) in &first.percentiles {
            header.push(format!("p{}", fmt_quantile(*q)));
        }
        header.extend(["utilization", "normalized", "normalized_ci95"].map(String::from));
        let trace = first.tua_max_burst.is_some();
        if trace {
            header.extend(["tua_max_burst", "contender_max_gap"].map(String::from));
        }
        // Column count must cover every cell: a `clusters` sweep makes the
        // share vectors ragged, and shorter cells pad with empty fields.
        let clusters = self
            .cells
            .iter()
            .map(|c| c.cluster_shares.as_ref().map(Vec::len).unwrap_or(0))
            .max()
            .unwrap_or(0);
        for k in 0..clusters {
            header.push(format!("cluster{k}_share"));
        }
        if clusters > 0 {
            header.push("cluster_fairness".into());
        }
        let windowed = self.cells.iter().any(|c| c.window_jain.is_some());
        if windowed {
            header.extend(["window_jain_mean", "window_jain_min"].map(String::from));
        }
        out.push_str(&header.join(","));
        out.push('\n');
        for c in &self.cells {
            let mut row: Vec<String> = c.labels.iter().map(|(_, v)| csv_field(v)).collect();
            row.push(c.seed.to_string());
            row.push(c.runs.to_string());
            row.push(c.unfinished.to_string());
            row.push(fmt_number(c.mean));
            row.push(fmt_number(c.ci95));
            row.push(fmt_number(c.min));
            row.push(fmt_number(c.max));
            for (_, v) in &c.percentiles {
                row.push(fmt_number(*v));
            }
            row.push(fmt_number(c.utilization));
            row.push(c.normalized.map(fmt_number).unwrap_or_default());
            row.push(c.normalized_ci95.map(fmt_number).unwrap_or_default());
            if trace {
                row.push(c.tua_max_burst.map(fmt_number).unwrap_or_default());
                row.push(c.contender_max_gap.map(fmt_number).unwrap_or_default());
            }
            if clusters > 0 {
                let shares = c.cluster_shares.as_deref().unwrap_or(&[]);
                for k in 0..clusters {
                    row.push(shares.get(k).copied().map(fmt_number).unwrap_or_default());
                }
                row.push(c.cluster_fairness.map(fmt_number).unwrap_or_default());
            }
            if windowed {
                row.push(c.window_jain_mean().map(fmt_number).unwrap_or_default());
                row.push(c.window_jain_min().map(fmt_number).unwrap_or_default());
            }
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders a fixed-width terminal table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — {} cells, {} runs each, seed {}",
            self.name,
            self.cells.len(),
            self.runs,
            self.seed
        );
        let normalized = self.cells.iter().any(|c| c.normalized.is_some());
        for c in &self.cells {
            let label = if c.labels.is_empty() {
                "(single cell)".to_string()
            } else {
                c.labels
                    .iter()
                    .map(|(_, v)| v.clone())
                    .collect::<Vec<_>>()
                    .join(" · ")
            };
            let _ = write!(out, "  {label:<32} {:>12.1} ±{:>8.1}", c.mean, c.ci95);
            if normalized {
                match c.normalized {
                    Some(n) => {
                        let _ = write!(out, "  {n:>6.3}x");
                    }
                    None => {
                        let _ = write!(out, "        ");
                    }
                }
            }
            if let Some(shares) = &c.cluster_shares {
                let rendered: Vec<String> = shares.iter().map(|s| format!("{s:.3}")).collect();
                let _ = write!(out, "  shares {}", rendered.join("/"));
            }
            if let (Some(mean), Some(min)) = (c.window_jain_mean(), c.window_jain_min()) {
                let _ = write!(out, "  winJ {mean:.3}/{min:.3}");
            }
            if c.unfinished > 0 {
                let _ = write!(out, "  [{} unfinished]", c.unfinished);
            }
            out.push('\n');
        }
        out
    }
}

/// `0.95` → `"95"`, `0.999` → `"99.9"` (for `p95` / `p99.9` column names).
fn fmt_quantile(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}", pct.round() as i64)
    } else {
        format!("{pct}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioDef;

    fn tiny_def(extra: &str) -> ScenarioDef {
        let text = format!(
            "[campaign]\nname = tiny\nruns = 2\nseed = 5\n[tua]\nload = fixed:40:6:4\n{extra}"
        );
        ScenarioDef::parse(&text).unwrap()
    }

    #[test]
    fn single_cell_report_has_statistics() {
        let report = run_scenario(&tiny_def("")).unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.runs, 2);
        assert!(cell.mean > 0.0);
        assert!(cell.min <= cell.mean && cell.mean <= cell.max);
        assert_eq!(cell.percentiles.len(), 3, "default percentiles 50/95/99");
        assert!(cell.normalized.is_none(), "no baseline configured");
    }

    #[test]
    fn runs_are_reproducible_across_invocations() {
        let a = run_scenario(&tiny_def("[sweep]\nsetup = rp,cba\n")).unwrap();
        let b = run_scenario(&tiny_def("[sweep]\nsetup = rp,cba\n")).unwrap();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn baseline_normalization_matches_group() {
        let def = tiny_def(
            "[sweep]\nsetup = rp,cba\nscenario = iso,con\n[report]\nbaseline = setup=rp,scenario=iso\n",
        );
        let report = run_scenario(&def).unwrap();
        assert_eq!(report.cells.len(), 4);
        let rp_iso = &report.cells[0];
        assert_eq!(rp_iso.label("setup"), Some("RP"));
        assert_eq!(rp_iso.label("scenario"), Some("ISO"));
        assert_eq!(rp_iso.normalized, Some(1.0), "baseline normalizes to 1");
        for c in &report.cells {
            let expect = c.mean / rp_iso.mean;
            assert!((c.normalized.unwrap() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_baseline_is_an_error() {
        let def = tiny_def("[sweep]\nsetup = rp,cba\n[report]\nbaseline = setup=hcba\n");
        let err = run_scenario(&def).unwrap_err();
        assert!(err.msg.contains("matches no cell"), "{err}");
    }

    #[test]
    fn json_and_csv_outputs_are_well_formed() {
        let def = tiny_def("[sweep]\nsetup = rp,cba\n[report]\nbaseline = setup=rp\n");
        let report = run_scenario(&def).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"name\": \"tiny\""));
        assert!(json.contains("\"setup\": \"RP\""));
        assert!(json.contains("\"normalized\": 1"));
        assert!(json.contains("\"p95\":"));

        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "setup,seed,runs,unfinished,mean_cycles,ci95,min,max,p50,p95,p99,utilization,normalized,normalized_ci95"
        );
        assert_eq!(lines.count(), 2, "one row per cell");
    }

    #[test]
    fn trace_cells_expose_burst_metrics() {
        let def = tiny_def("[contenders]\ntrace = on\n");
        let report = run_scenario(&def).unwrap();
        let cell = &report.cells[0];
        assert!(cell.tua_max_burst.is_some());
        assert!(cell.contender_max_gap.is_some());
        let csv = report.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("tua_max_burst,contender_max_gap"));
    }

    #[test]
    fn csv_covers_the_widest_cell_of_a_cluster_sweep() {
        let text = "\
[campaign]
runs = 1
[platform]
policy = rr
[topology]
clusters = 2
cores_per_cluster = 2
backbone_cba = homog
[tua]
load = fixed:10:5:0
[contenders]
fill = sat:28
wcet = off
stop = horizon:2000
[sweep]
clusters = 2,4
";
        let report = run_scenario(&ScenarioDef::parse(text).unwrap()).unwrap();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert!(
            header.contains(&"cluster3_share"),
            "header must cover the 4-cluster cell: {header:?}"
        );
        // Every row has the full column set; the 2-cluster cell pads its
        // missing shares with empty fields.
        let row2: Vec<&str> = lines.next().unwrap().split(',').collect();
        let row4: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row2.len(), header.len());
        assert_eq!(row4.len(), header.len());
        let col = header.iter().position(|&h| h == "cluster3_share").unwrap();
        assert!(row2[col].is_empty(), "2-cluster cell pads: {row2:?}");
        assert!(!row4[col].is_empty(), "4-cluster cell fills: {row4:?}");
    }

    #[test]
    fn windowed_cells_expose_jain_series_in_every_export() {
        let text = "\
[campaign]
name = windowed
runs = 2
seed = 9
[platform]
policy = rr
[tua]
load = sat:5
[contenders]
fill = sat:56
wcet = off
stop = horizon:20000
[sweep]
cba = none,homog
[report]
windows = 4
";
        let report = run_scenario(&ScenarioDef::parse(text).unwrap()).unwrap();
        for cell in &report.cells {
            let jain = cell.window_jain.as_ref().expect("windowed cell");
            assert_eq!(jain.len(), 4);
            let shares = cell.window_shares.as_ref().expect("windowed cell");
            assert_eq!(shares.len(), 4);
            assert_eq!(shares[0].len(), 4, "one share per core");
            assert!(cell.window_jain_mean().unwrap() > 0.0);
            assert!(cell.window_jain_min().unwrap() <= cell.window_jain_mean().unwrap());
        }
        // The credit filter improves windowed fairness for this 5-vs-56
        // mix (the paper's core claim, now visible per window).
        let none = report.cells[0].window_jain_mean().unwrap();
        let homog = report.cells[1].window_jain_mean().unwrap();
        assert!(
            homog > none,
            "CBA must beat no-filter per-window: {homog} vs {none}"
        );

        let json = report.to_json();
        assert!(json.contains("\"window_jain\""), "{json}");
        assert!(json.contains("\"window_shares\""), "{json}");
        let csv = report.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(
            header.ends_with("window_jain_mean,window_jain_min"),
            "{header}"
        );
        let table = report.render_table();
        assert!(table.contains("winJ "), "{table}");
    }

    #[test]
    fn table_renders_one_line_per_cell() {
        let def = tiny_def("[sweep]\nscenario = iso,con\n");
        let report = run_scenario(&def).unwrap();
        let table = report.render_table();
        assert!(table.contains("ISO"));
        assert!(table.contains("CON"));
        assert_eq!(table.lines().count(), 3, "header + two cells");
    }
}
