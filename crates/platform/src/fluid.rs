//! The `engine = fluid` executor: a continuous-event drive loop that
//! treats a run as a stream of *grant events* instead of cycles.
//!
//! # What "fluid" means here
//!
//! The events engine ([`DriveMode::Events`](crate::DriveMode::Events))
//! still executes every *eventful* cycle through the full
//! [`Bus`](cba_bus::Bus) object graph — virtual policy/filter dispatch,
//! trace bookkeeping, probe fan-out. The fluid engine replaces that object
//! graph with a flattened continuous-time model of the same semantics:
//!
//! * **Flat platforms** run on `FlatModel`, a de-virtualized replica of
//!   the non-split bus's cycle protocol (same arbitration order, same
//!   filter hooks, same accounting) whose state is plain data — which is
//!   what makes the *limit-cycle fast-forward* possible: once the model,
//!   the filter and every synthetic workload return to a previously seen
//!   state (all absolute times taken relative to "now"), the run has
//!   entered a periodic regime and whole periods are applied
//!   arithmetically — counters jump by `m × Δ`, clocks shift by `m × dt`
//!   — instead of being replayed. Saturated fair-sharing runs (the
//!   scaling and WCET sweeps) reach their limit cycle within a few
//!   rotations and then finish in O(1) per period.
//! * **Fabric platforms** drive the real [`Fabric`]
//!   through its [`BusModel`] event interface; bridge pipelines make the
//!   state space too rich for signature matching, so the fabric path is
//!   event-sparse but not fast-forwarded.
//!
//! Both paths reuse the *real* client state machines
//! ([`FixedRequestTask`], [`Contender`], [`PeriodicContender`], and any
//! registry-built agent), so the fluid engine is an independent executor
//! of the same specification, not a re-derivation of the workloads. The
//! cross-validation harness (`tests/fluid_accuracy.rs`,
//! `tests/random_differential.rs`) holds it to the events engine's
//! results on every shipped scenario.
//!
//! The underlying continuous fair-sharing mathematics (virtual-time lane,
//! O(log n) completion heap) lives in [`sim_core::fluid`]; this module is
//! the platform-level executor that [`DriveMode::Fluid`](crate::DriveMode::Fluid) dispatches to.

use crate::agents::{AgentRegistry, BoxedPortAgent};
use crate::platform::{build_fabric, CoreLoad, RunResult, RunSpec, StopCondition};
use crate::probes::WindowedFairnessProbe;
use cba::{CreditFilter, Mode};
use cba_bus::fabric::Fabric;
use cba_bus::{
    ArbitrationPolicy, BusError, BusRequest, Candidate, CompletedTransaction, EligibilityFilter,
    FilterHorizon, PendingSet, PolicyKind, RandomSource, RequestKind, RequestPort,
};
use cba_cpu::{Contender, FixedRequestTask, PeriodicContender};
use cba_mem::{shared_hub, SharedHub};
use sim_core::agent::MemStats;
use sim_core::lfsr::LfsrBank;
use sim_core::rng::SimRng;
use sim_core::trace::GrantTrace;
use sim_core::{BusModel, Control, CoreId, Cycle, Probe};
use std::collections::HashMap;

/// Cap on the limit-cycle signature table; a run whose state never recurs
/// (e.g. priority starvation with unboundedly aging requests) would
/// otherwise grow one entry per completion.
const MAX_SIGNATURES: usize = 4096;

/// Executes `spec` under the fluid engine. Entry point for
/// [`DriveMode::Fluid`](crate::DriveMode::Fluid); same contract as the
/// events path of [`run_once_with`](crate::run_once_with) — the spec is
/// already validated by the caller.
pub fn run_fluid(spec: &RunSpec, seed: u64, registry: &AgentRegistry) -> RunResult {
    let rng = SimRng::seed_from(seed);
    match &spec.platform.topology {
        None => run_flat(spec, &rng, registry),
        Some(topo) => {
            let fabric = build_fabric(spec, topo, &rng);
            run_fabric_fluid(spec, fabric, &rng, registry)
        }
    }
}

// ---------------------------------------------------------------------
// Client flows
// ---------------------------------------------------------------------

/// One core's workload in the fluid executor. The synthetic kinds embed
/// the cpu crate's state machines directly (no boxing, no virtual
/// dispatch); anything else goes through the registry-built agent, exactly
/// as in the events path.
enum Flow {
    Fixed(FixedRequestTask),
    Sat(Contender),
    Per(PeriodicContender),
    Idle,
    Agent(BoxedPortAgent),
}

impl Flow {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut (dyn RequestPort + 'static),
    ) -> Control {
        match self {
            Flow::Fixed(t) => {
                t.tick(now, completed, port);
                Control::Sleep(t.wake_at().unwrap_or(Cycle::MAX))
            }
            Flow::Sat(c) => {
                c.tick(now, completed, port);
                Control::Sleep(Cycle::MAX)
            }
            Flow::Per(p) => {
                p.tick(now, completed, port);
                Control::Sleep(p.wake_at().unwrap_or(Cycle::MAX))
            }
            Flow::Idle => Control::Sleep(Cycle::MAX),
            Flow::Agent(a) => a.tick(now, completed, port),
        }
    }

    fn wake_at(&self) -> Option<Cycle> {
        match self {
            Flow::Fixed(t) => t.wake_at(),
            Flow::Sat(c) => c.wake_at(),
            Flow::Per(p) => p.wake_at(),
            Flow::Idle => Some(Cycle::MAX),
            Flow::Agent(a) => a.wake_at(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            Flow::Fixed(t) => t.done_at().is_some(),
            Flow::Sat(_) | Flow::Per(_) => false,
            Flow::Idle => true,
            Flow::Agent(a) => a.is_done(),
        }
    }

    fn is_inert(&self) -> bool {
        match self {
            Flow::Idle => true,
            Flow::Agent(a) => a.is_inert(),
            _ => false,
        }
    }

    fn done_at(&self) -> Option<Cycle> {
        match self {
            Flow::Fixed(t) => t.done_at(),
            Flow::Agent(a) => a.done_at(),
            _ => None,
        }
    }

    fn absorb(&mut self, skipped: u64) {
        if let Flow::Agent(a) = self {
            a.absorb_skipped(skipped);
        }
    }

    /// Memory-side counters, for registry-built memory agents (`None`
    /// for every synthetic flow).
    fn mem_stats(&self) -> Option<MemStats> {
        match self {
            Flow::Agent(a) => a.stats().mem,
            _ => None,
        }
    }
}

/// Sums the memory counters over all flows, mirroring the events path's
/// extraction (exact integer sums, `None` when no memory agent ran).
fn sum_mem(flows: &[Flow]) -> Option<MemStats> {
    let mut mem: Option<MemStats> = None;
    for flow in flows {
        if let Some(m) = flow.mem_stats() {
            mem.get_or_insert_with(MemStats::default).accumulate(m);
        }
    }
    mem
}

/// Builds the per-core flows, forking the agent RNG streams exactly like
/// the events path (`rng.fork(0xC0 + i)`), so registry-built agents see
/// bit-identical randomness under either engine.
fn build_flows(spec: &RunSpec, rng: &SimRng, registry: &AgentRegistry) -> Vec<Flow> {
    // One coherence hub per run when any load is the coherent `shared`
    // kind, exactly as in the events path.
    let hub: Option<SharedHub> = spec.loads.iter().any(|l| l.kind() == "shared").then(|| {
        let mem = spec
            .platform
            .memory
            .as_ref()
            .expect("validated: shared loads require a memory configuration");
        shared_hub(spec.platform.n_cores, mem.shared_lines)
    });
    spec.loads
        .iter()
        .enumerate()
        .map(|(i, load)| {
            let core = CoreId::from_index(i);
            match load {
                CoreLoad::FixedTask {
                    n_requests,
                    duration,
                    gap,
                } => Flow::Fixed(FixedRequestTask::new(core, *n_requests, *duration, *gap)),
                CoreLoad::Saturating { duration } => Flow::Sat(Contender::new(core, *duration)),
                CoreLoad::Periodic {
                    duration,
                    period,
                    phase,
                } => Flow::Per(PeriodicContender::new(core, *duration, *period, *phase)),
                CoreLoad::Idle => Flow::Idle,
                other => {
                    let mut agent_rng = rng.fork(0xC0 + i as u64);
                    let agent = registry
                        .build_shared(other, core, &spec.platform, hub.clone(), &mut agent_rng)
                        .unwrap_or_else(|why| {
                            panic!("cannot build agent '{other}' for core {i}: {why}")
                        });
                    Flow::Agent(agent)
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Flat model: the de-virtualized non-split bus
// ---------------------------------------------------------------------

/// Grant latency statistics for core 0 (the only core the
/// [`RunResult`] reports wait metrics for), mirroring
/// [`cba_bus::WaitStats`]'s accounting.
#[derive(Default)]
struct WaitAgg {
    count: u64,
    sum: u64,
    max: u64,
}

impl WaitAgg {
    fn record(&mut self, wait: u64) {
        self.count += 1;
        self.sum += wait;
        self.max = self.max.max(wait);
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The transaction currently holding the bus.
#[derive(Clone, Copy)]
struct InFlight {
    core: CoreId,
    kind: RequestKind,
    started: Cycle,
    ends_at: Cycle,
}

/// A data-plane replica of the non-split [`Bus`](cba_bus::Bus)'s cycle
/// protocol: same arbitration order, same filter hook sequence, same
/// statistics semantics — but with the policy, filter and counters held as
/// plain fields so the limit-cycle detector can read (and the
/// fast-forward can shift) the *complete* simulation state.
struct FlatModel {
    n_cores: usize,
    max_latency: u32,
    pending: PendingSet,
    scratch: Vec<Candidate>,
    policy: Box<dyn ArbitrationPolicy>,
    filter: Option<CreditFilter>,
    rng: Box<dyn RandomSource>,
    state: Option<InFlight>,
    slots: Vec<u64>,
    busy: Vec<u64>,
    idle: u64,
    /// Full grant trace, recording runs only (fast-forward is disabled for
    /// those: gap/burst metrics need every grant instant).
    trace: Option<GrantTrace>,
    wait0: WaitAgg,
    last_granted: Option<usize>,
}

impl FlatModel {
    fn new(spec: &RunSpec, rng: &SimRng) -> Self {
        let platform = &spec.platform;
        let n = platform.n_cores;
        let maxl = platform.latency.max_latency();
        let filter = platform.cba.as_ref().map(|credit| {
            let mode = if spec.wcet_mode {
                Mode::WcetEstimation {
                    tua: CoreId::from_index(0),
                }
            } else {
                Mode::Operation
            };
            CreditFilter::with_mode(credit.clone(), mode)
        });
        let random: Box<dyn RandomSource> = if platform.lfsr_randbank {
            let bank_seed = rng.fork(0xA9).next_u64();
            Box::new(LfsrBank::new(16, bank_seed).expect("valid width"))
        } else {
            Box::new(rng.fork(0xA9))
        };
        FlatModel {
            n_cores: n,
            max_latency: maxl,
            pending: PendingSet::new(n),
            scratch: Vec::with_capacity(n),
            policy: platform.policy.build(n, maxl),
            filter,
            rng: random,
            state: None,
            slots: vec![0; n],
            busy: vec![0; n],
            idle: 0,
            trace: spec.record_trace.then(|| GrantTrace::recording(n)),
            wait0: WaitAgg::default(),
            last_granted: None,
        }
    }

    fn owner(&self) -> Option<CoreId> {
        self.state.map(|f| f.core)
    }

    /// Phase 1: a transaction ending at `now` completes.
    fn begin_cycle(&mut self, now: Cycle) -> Option<CompletedTransaction> {
        if let Some(f) = self.state {
            if now >= f.ends_at {
                self.state = None;
                return Some(CompletedTransaction {
                    core: f.core,
                    kind: f.kind,
                    duration: (f.ends_at - f.started) as u32,
                });
            }
        }
        None
    }

    /// Phase 3: arbitration (if free) and filter bookkeeping, replicating
    /// `Bus::end_cycle` statement for statement.
    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        let mut granted = None;
        if self.state.is_none() {
            self.pending.candidates_into(&mut self.scratch);
            if let Some(f) = &self.filter {
                let filter = f;
                self.scratch.retain(|c| filter.is_eligible(c.core, now));
            }
            if let Some(winner) = self.policy.select(&self.scratch, now, self.rng.as_mut()) {
                let req = self
                    .pending
                    .remove(winner)
                    .expect("policy selected a core that is not pending");
                self.grant(req, now);
                self.policy.on_grant(winner, now);
                granted = Some(winner);
            }
        }
        let owner = self.owner();
        if owner.is_none() {
            self.idle += 1;
        }
        if let Some(f) = &mut self.filter {
            f.tick(now, owner, &self.pending);
        }
        granted
    }

    fn grant(&mut self, req: BusRequest, now: Cycle) {
        let core = req.core();
        let i = core.index();
        self.state = Some(InFlight {
            core,
            kind: req.kind(),
            started: now,
            ends_at: now + req.duration() as Cycle,
        });
        self.slots[i] += 1;
        self.busy[i] += req.duration() as u64;
        if let Some(t) = &mut self.trace {
            t.record(now, core, req.duration());
        }
        if i == 0 {
            self.wait0.record(now.saturating_sub(req.issued_at()));
        }
        if let Some(f) = &mut self.filter {
            f.on_grant(core, req.duration(), now);
        }
        self.last_granted = Some(i);
    }

    /// The model's event horizon, replicating `Bus::next_event`: `None`
    /// means "step per cycle".
    fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        if let Some(f) = &self.state {
            return Some(f.ends_at);
        }
        if self.pending.is_empty() {
            return Some(Cycle::MAX);
        }
        self.pending.candidates_into(&mut self.scratch);
        if let Some(f) = &self.filter {
            let filter = f;
            self.scratch.retain(|c| filter.is_eligible(c.core, now + 1));
        }
        if !self.scratch.is_empty() && self.policy.is_work_conserving() {
            return Some(now + 1);
        }
        let flip = match self
            .filter
            .as_ref()
            .map(|f| f.next_eligibility_flip(now, &self.pending))
            .unwrap_or(FilterHorizon::Static)
        {
            FilterHorizon::Unknown => return None,
            FilterHorizon::Static => Cycle::MAX,
            FilterHorizon::At(t) => t,
        };
        let window = if self.scratch.is_empty() {
            Cycle::MAX
        } else {
            self.policy.next_grant_at(&self.scratch, now)?
        };
        Some(flip.min(window))
    }

    /// Bulk-advances the uneventful cycles `from + 1 ..= to - 1`,
    /// replicating `Bus::advance`.
    fn advance(&mut self, from: Cycle, to: Cycle) {
        let k = (to - from).saturating_sub(1);
        if k == 0 {
            return;
        }
        let owner = self.owner();
        if owner.is_none() {
            self.idle += k;
        }
        if let Some(f) = &mut self.filter {
            f.advance(from + 1, k, owner, &self.pending);
        }
    }
}

impl RequestPort for FlatModel {
    fn post(&mut self, req: BusRequest) -> Result<(), BusError> {
        if req.core().index() >= self.n_cores {
            return Err(BusError::UnknownCore(req.core()));
        }
        if req.duration() > self.max_latency {
            return Err(BusError::DurationOutOfRange {
                got: req.duration(),
                max: self.max_latency,
            });
        }
        self.pending.insert(req)
    }

    fn withdraw(&mut self, core: CoreId) -> Option<BusRequest> {
        self.pending.remove(core)
    }

    fn can_accept(&self, core: CoreId) -> bool {
        !self.pending.contains(core) && self.owner() != Some(core)
    }
}

// ---------------------------------------------------------------------
// Limit-cycle fast-forward
// ---------------------------------------------------------------------

/// Absolute counters captured alongside a state signature; the deltas
/// against a recurrence give the per-period increments.
struct FfSnap {
    at: Cycle,
    idle: u64,
    slots: Vec<u64>,
    busy: Vec<u64>,
    wait0_count: u64,
    wait0_sum: u64,
    /// Per-flow completed-request counters (fixed tasks only; 0 for the
    /// other kinds).
    completed: Vec<u64>,
}

/// Whether the spec's dynamics are closed over the signature state: every
/// workload a known synthetic state machine, a policy with no RNG draws
/// and no hidden state beyond the round-robin cursor, no probe or trace
/// that needs individual grant instants.
fn ff_eligible(spec: &RunSpec) -> bool {
    if spec.platform.topology.is_some()
        || spec.record_trace
        || spec.windows.is_some()
        || !matches!(
            spec.platform.policy,
            PolicyKind::RoundRobin | PolicyKind::Fifo | PolicyKind::FixedPriority
        )
    {
        return false;
    }
    spec.loads.iter().all(|l| {
        matches!(
            l,
            CoreLoad::FixedTask { .. }
                | CoreLoad::Saturating { .. }
                | CoreLoad::Periodic { .. }
                | CoreLoad::Idle
        )
    })
}

/// The complete dynamic state of a flat run at the end of an executed
/// cycle, with every absolute time taken relative to `now`. Two equal
/// signatures mean the runs evolve identically from those instants on —
/// monotone counters (completed requests, statistics) are deliberately
/// excluded and handled via [`FfSnap`] deltas.
fn signature(model: &FlatModel, flows: &[Flow], now: Cycle, sig: &mut Vec<u64>) {
    let n = model.n_cores;
    sig.clear();
    sig.reserve(4 + 1 + 2 * n + 2 * n + 3 * flows.len());
    match &model.state {
        None => sig.extend([0u64, 0, 0, 0]),
        Some(f) => sig.extend([
            1,
            f.core.index() as u64 + 1,
            f.ends_at - now,
            f.ends_at - f.started,
        ]),
    }
    sig.push(model.last_granted.map(|i| i as u64 + 1).unwrap_or(0));
    for core in CoreId::all(n) {
        match model.pending.get(core) {
            Some(r) => {
                sig.push(r.duration() as u64 + 1);
                sig.push(now - r.issued_at());
            }
            None => {
                sig.push(0);
                sig.push(0);
            }
        }
    }
    if let Some(f) = &model.filter {
        for core in CoreId::all(n) {
            sig.push(f.budget(core));
            sig.push(f.comp(core) as u64);
        }
    }
    for flow in flows {
        match flow {
            Flow::Fixed(t) => {
                if t.done_at().is_some() {
                    sig.extend([1, 2, 0]);
                } else {
                    match t.wake_at() {
                        // Computing: the next post is an absolute time.
                        Some(at) if at != Cycle::MAX => sig.extend([1, 0, at - now]),
                        // Waiting on the bus: position captured by pending.
                        _ => sig.extend([1, 1, 0]),
                    }
                }
            }
            Flow::Sat(_) => sig.extend([2, 0, 0]),
            Flow::Per(p) => sig.extend([3, 0, p.wake_at().unwrap_or(Cycle::MAX) - now]),
            Flow::Idle => sig.extend([4, 0, 0]),
            Flow::Agent(_) => unreachable!("fast-forward is gated to synthetic loads"),
        }
    }
}

fn snap_of(model: &FlatModel, flows: &[Flow], now: Cycle) -> FfSnap {
    FfSnap {
        at: now,
        idle: model.idle,
        slots: model.slots.clone(),
        busy: model.busy.clone(),
        wait0_count: model.wait0.count,
        wait0_sum: model.wait0.sum,
        completed: flows
            .iter()
            .map(|f| match f {
                Flow::Fixed(t) => t.completed(),
                _ => 0,
            })
            .collect(),
    }
}

/// Detects a recurrence of the run's state and, if one is found, applies
/// as many whole periods as fit before `hard_limit` (and before any fixed
/// task's **final** completion — that one must execute live so stop
/// conditions and `done_at` are exact). Returns the cycles skipped.
fn try_fast_forward(
    model: &mut FlatModel,
    flows: &mut [Flow],
    spec: &RunSpec,
    now: Cycle,
    hard_limit: Cycle,
    table: &mut HashMap<Vec<u64>, FfSnap>,
    sig_buf: &mut Vec<u64>,
) -> Option<Cycle> {
    signature(model, flows, now, sig_buf);
    let snap = match table.get(sig_buf.as_slice()) {
        Some(snap) => snap,
        None => {
            if table.len() >= MAX_SIGNATURES {
                table.clear();
            }
            table.insert(sig_buf.clone(), snap_of(model, flows, now));
            return None;
        }
    };
    let dt = now - snap.at;
    debug_assert!(dt > 0, "signatures are recorded once per instant");
    let mut m = hard_limit.saturating_sub(now) / dt;
    for (i, load) in spec.loads.iter().enumerate() {
        if let (CoreLoad::FixedTask { n_requests, .. }, Flow::Fixed(t)) = (load, &flows[i]) {
            let dc = t.completed() - snap.completed[i];
            let remaining = n_requests - t.completed();
            if let Some(periods) = remaining.saturating_sub(1).checked_div(dc) {
                m = m.min(periods);
            }
        }
    }
    if m == 0 {
        return None;
    }
    let shift = m * dt;

    // Counters jump by m periods' worth.
    model.idle += m * (model.idle - snap.idle);
    for i in 0..model.n_cores {
        model.slots[i] += m * (model.slots[i] - snap.slots[i]);
        model.busy[i] += m * (model.busy[i] - snap.busy[i]);
    }
    model.wait0.count += m * (model.wait0.count - snap.wait0_count);
    model.wait0.sum += m * (model.wait0.sum - snap.wait0_sum);
    // (wait0.max is unchanged: the periodic regime repeats the latencies
    // already observed live in the detection period.)

    // Absolute clocks shift by the skipped span.
    if let Some(f) = &mut model.state {
        f.started += shift;
        f.ends_at += shift;
    }
    let shifted: Vec<BusRequest> = CoreId::all(model.n_cores)
        .filter_map(|core| model.pending.remove(core))
        .map(|r| {
            BusRequest::new(r.core(), r.duration(), r.kind(), r.issued_at() + shift)
                .expect("shifting a valid request keeps it valid")
        })
        .collect();
    for req in shifted {
        model
            .pending
            .insert(req)
            .expect("re-inserting into the slots just vacated");
    }
    for (i, flow) in flows.iter_mut().enumerate() {
        match flow {
            Flow::Fixed(t) => {
                let dc = t.completed() - snap.completed[i];
                t.shift_time(shift);
                if dc > 0 {
                    t.absorb_completions(m * dc);
                }
            }
            Flow::Per(p) => p.shift_time(shift),
            _ => {}
        }
    }
    // The filter's credit counters and COMP latches are time-invariant
    // state machines: equal signatures already imply equal filter state,
    // so the jump leaves them untouched. Old snapshots reference the
    // pre-jump timeline; drop them.
    table.clear();
    Some(shift)
}

// ---------------------------------------------------------------------
// Drive loops
// ---------------------------------------------------------------------

/// The flat-path drive loop: the events engine's sparse cycle walk (same
/// ordering of completion delivery, client ticks, arbitration and stop
/// checks as [`sim_core::Simulation::run`]) plus the limit-cycle
/// fast-forward at completion instants.
fn run_flat(spec: &RunSpec, rng: &SimRng, registry: &AgentRegistry) -> RunResult {
    let n = spec.platform.n_cores;
    let mut model = FlatModel::new(spec, rng);
    let mut flows = build_flows(spec, rng, registry);
    let active: Vec<usize> = (0..flows.len()).filter(|&i| !flows[i].is_inert()).collect();
    let horizon = match spec.stop {
        StopCondition::Horizon(h) => Some(h),
        _ => None,
    };
    let limit = spec.max_cycles;
    let mut probe = spec.windows.map(|w| {
        let h = horizon.expect("validated: windows require a horizon stop");
        WindowedFairnessProbe::new(n, h / w as Cycle, w as usize)
    });
    let ff = ff_eligible(spec);
    // Sample the state once per "lap": signatures are only taken at
    // completions of one reference core (the first that ever completes),
    // which detects the same limit cycles at a fraction of the hashing
    // cost of checking every completion.
    let ff_core = spec
        .loads
        .iter()
        .position(|l| !matches!(l, CoreLoad::Idle))
        .unwrap_or(usize::MAX);
    // Fast-forward may land *on* any cycle except the stop-firing one
    // (horizon h stops at cycle h - 1, which must execute live).
    let hard_limit = horizon
        .map(|h| h.saturating_sub(2))
        .unwrap_or(Cycle::MAX)
        .min(limit.saturating_sub(1));
    let mut table: HashMap<Vec<u64>, FfSnap> = HashMap::new();
    let mut sig_buf: Vec<u64> = Vec::new();

    let mut now: Cycle = 0;
    let mut prev: Option<Cycle> = None;
    let mut stopped = false;
    while now < limit {
        let completed = model.begin_cycle(now);
        if let (Some(p), Some(ct)) = (probe.as_mut(), completed.as_ref()) {
            p.on_completion(now, ct);
        }
        if let Some(prev) = prev {
            let skipped = now - prev - 1;
            if skipped > 0 {
                for &i in &active {
                    flows[i].absorb(skipped);
                }
            }
        }
        prev = Some(now);
        let mut agent_stop = false;
        let mut until = Cycle::MAX;
        let mut can_sleep = true;
        for &i in &active {
            match flows[i].tick(now, completed.as_ref(), &mut model) {
                Control::Stop => agent_stop = true,
                Control::Continue => can_sleep = false,
                Control::Sleep(t) => until = until.min(t),
            }
        }
        let granted = model.end_cycle(now);
        if let (Some(p), Some(core)) = (probe.as_mut(), granted) {
            p.on_grant(now, core);
        }
        let stop = agent_stop
            || match spec.stop {
                StopCondition::TuaDone => flows[0].is_done(),
                StopCondition::AllDone => active.iter().all(|&i| flows[i].is_done()),
                StopCondition::Horizon(h) => now + 1 >= h,
            };
        if stop {
            now += 1;
            stopped = true;
            break;
        }
        if ff && completed.as_ref().map(|c| c.core.index()) == Some(ff_core) {
            if let Some(shift) = try_fast_forward(
                &mut model,
                &mut flows,
                spec,
                now,
                hard_limit,
                &mut table,
                &mut sig_buf,
            ) {
                now += shift;
                prev = Some(now);
                // The pre-jump sleep horizons are stale; recompute from
                // the shifted flows (all synthetic, hence all `Sleep`).
                until = Cycle::MAX;
                for &i in &active {
                    until = until.min(flows[i].wake_at().unwrap_or(Cycle::MAX));
                }
            }
        }
        if let Some(h) = horizon {
            until = until.min(h - 1);
        }
        if can_sleep && until > now + 1 {
            if let Some(event) = model.next_event(now) {
                let jump = event.min(until).min(limit);
                if jump > now + 1 {
                    model.advance(now, jump);
                    now = jump;
                    continue;
                }
            }
        }
        now += 1;
    }
    if let Some(prev) = prev {
        let tail = (now - 1).saturating_sub(prev);
        if tail > 0 {
            for &i in &active {
                flows[i].absorb(tail);
            }
        }
    }
    if let Some(p) = probe.as_mut() {
        p.on_finish(now);
    }

    let ids: Vec<CoreId> = (0..n).map(CoreId::from_index).collect();
    RunResult {
        tua_cycles: flows[0].done_at(),
        finished: stopped,
        total_cycles: now,
        bus_slots: model.slots.clone(),
        bus_busy: model.busy.clone(),
        bus_idle: model.idle,
        tua_mean_wait: model.wait0.mean(),
        tua_max_wait: model.wait0.max,
        max_grant_gap: match &model.trace {
            Some(t) => ids.iter().map(|&c| t.max_grant_gap(c)).collect(),
            None => vec![None; n],
        },
        max_burst: match &model.trace {
            Some(t) => ids.iter().map(|&c| t.max_burst_len(c)).collect(),
            None => vec![None; n],
        },
        windows: probe.map(|p| p.snapshot()),
        mem: sum_mem(&flows),
    }
}

/// The fabric-path drive loop: the same sparse walk over the *real*
/// [`Fabric`] via its [`BusModel`] protocol — per-segment continuous
/// composition happens inside the fabric's own event horizon
/// (`next_event` spans cluster, bridge and backbone clocks).
fn run_fabric_fluid(
    spec: &RunSpec,
    mut fabric: Fabric,
    rng: &SimRng,
    registry: &AgentRegistry,
) -> RunResult {
    let n = spec.platform.n_cores;
    let mut flows = build_flows(spec, rng, registry);
    let active: Vec<usize> = (0..flows.len()).filter(|&i| !flows[i].is_inert()).collect();
    let horizon = match spec.stop {
        StopCondition::Horizon(h) => Some(h),
        _ => None,
    };
    let limit = spec.max_cycles;
    let mut probe = spec.windows.map(|w| {
        let h = horizon.expect("validated: windows require a horizon stop");
        WindowedFairnessProbe::new(n, h / w as Cycle, w as usize)
    });

    let mut now: Cycle = 0;
    let mut prev: Option<Cycle> = None;
    let mut stopped = false;
    while now < limit {
        let completed = BusModel::begin_cycle(&mut fabric, now);
        if let (Some(p), Some(ct)) = (probe.as_mut(), completed.as_ref()) {
            p.on_completion(now, ct);
        }
        if let Some(prev) = prev {
            let skipped = now - prev - 1;
            if skipped > 0 {
                for &i in &active {
                    flows[i].absorb(skipped);
                }
            }
        }
        prev = Some(now);
        let mut agent_stop = false;
        let mut until = Cycle::MAX;
        let mut can_sleep = true;
        for &i in &active {
            match flows[i].tick(now, completed.as_ref(), &mut fabric) {
                Control::Stop => agent_stop = true,
                Control::Continue => can_sleep = false,
                Control::Sleep(t) => until = until.min(t),
            }
        }
        let granted = BusModel::end_cycle(&mut fabric, now);
        if let (Some(p), Some(core)) = (probe.as_mut(), granted) {
            p.on_grant(now, core);
        }
        let stop = agent_stop
            || match spec.stop {
                StopCondition::TuaDone => flows[0].is_done(),
                StopCondition::AllDone => active.iter().all(|&i| flows[i].is_done()),
                StopCondition::Horizon(h) => now + 1 >= h,
            };
        if stop {
            now += 1;
            stopped = true;
            break;
        }
        if let Some(h) = horizon {
            until = until.min(h - 1);
        }
        if can_sleep && until > now + 1 {
            if let Some(event) = BusModel::next_event(&mut fabric, now) {
                let jump = event.min(until).min(limit);
                if jump > now + 1 {
                    BusModel::advance(&mut fabric, now, jump);
                    now = jump;
                    continue;
                }
            }
        }
        now += 1;
    }
    if let Some(prev) = prev {
        let tail = (now - 1).saturating_sub(prev);
        if tail > 0 {
            for &i in &active {
                flows[i].absorb(tail);
            }
        }
    }
    if let Some(p) = probe.as_mut() {
        p.on_finish(now);
    }

    let ids: Vec<CoreId> = (0..n).map(CoreId::from_index).collect();
    let trace = BusModel::trace(&fabric);
    let c0 = CoreId::from_index(0);
    let stats = fabric.local_wait_stats(c0);
    let local = fabric.local_id(c0);
    RunResult {
        tua_cycles: flows[0].done_at(),
        finished: stopped,
        total_cycles: now,
        bus_slots: ids.iter().map(|&c| trace.slots(c)).collect(),
        bus_busy: ids.iter().map(|&c| trace.busy_cycles(c)).collect(),
        bus_idle: fabric.idle_cycles(),
        tua_mean_wait: stats.mean_wait(local),
        tua_max_wait: stats.max_wait(local),
        max_grant_gap: ids.iter().map(|&c| trace.max_grant_gap(c)).collect(),
        max_burst: ids.iter().map(|&c| trace.max_burst_len(c)).collect(),
        windows: probe.map(|p| p.snapshot()),
        mem: sum_mem(&flows),
    }
}

#[cfg(test)]
mod tests {
    use crate::platform::{run_once, CoreLoad, DriveMode, RunSpec, Scenario, StopCondition};
    use crate::BusSetup;

    fn both(spec: &RunSpec, seed: u64) -> (crate::RunResult, crate::RunResult) {
        let mut events = spec.clone();
        events.drive = DriveMode::Events;
        let mut fluid = spec.clone();
        fluid.drive = DriveMode::Fluid;
        (run_once(&events, seed), run_once(&fluid, seed))
    }

    #[test]
    fn fluid_matches_events_on_paper_cells() {
        for setup in [BusSetup::Rp, BusSetup::Cba, BusSetup::HCba] {
            let spec = RunSpec::paper(
                setup.clone(),
                Scenario::MaxContention,
                CoreLoad::FixedTask {
                    n_requests: 200,
                    duration: 6,
                    gap: 4,
                },
            );
            let (e, f) = both(&spec, 7);
            assert_eq!(e, f, "{setup:?}");
        }
    }

    #[test]
    fn fluid_matches_events_with_fast_forward_active() {
        // RR + fixed/sat loads: the fast-forward eligible shape.
        let rr = BusSetup::Custom {
            policy: cba_bus::PolicyKind::RoundRobin,
            cba: None,
        };
        let mut spec = RunSpec::paper(
            rr,
            Scenario::Custom(vec![
                CoreLoad::Saturating { duration: 28 },
                CoreLoad::Saturating { duration: 56 },
                CoreLoad::Periodic {
                    duration: 8,
                    period: 100,
                    phase: 13,
                },
            ]),
            CoreLoad::FixedTask {
                n_requests: 500,
                duration: 6,
                gap: 0,
            },
        );
        spec.wcet_mode = false;
        let (e, f) = both(&spec, 3);
        assert_eq!(e, f);
    }

    #[test]
    fn fluid_matches_events_on_horizon_and_windows() {
        let mut spec = RunSpec::paper(
            BusSetup::Cba,
            Scenario::MaxContention,
            CoreLoad::FixedTask {
                n_requests: 1,
                duration: 5,
                gap: 0,
            },
        );
        spec.loads[0] = CoreLoad::Saturating { duration: 5 };
        spec.wcet_mode = false;
        spec.stop = StopCondition::Horizon(24_000);
        spec.windows = Some(8);
        let (e, f) = both(&spec, 11);
        assert_eq!(e, f);
    }

    #[test]
    fn fluid_matches_events_on_recording_runs() {
        let mut spec = RunSpec::paper(
            BusSetup::Cba,
            Scenario::MaxContention,
            CoreLoad::named("matrix"),
        );
        spec.record_trace = true;
        let (e, f) = both(&spec, 5);
        assert_eq!(e, f);
    }

    #[test]
    fn fluid_matches_events_on_a_fabric() {
        use crate::config::{FabricTopology, PlatformConfig};
        let topo = FabricTopology {
            clusters: 4,
            cores_per_cluster: 4,
            bridge_latency: 4,
            bridge_depth: 2,
            cluster_policy: cba_bus::PolicyKind::RoundRobin,
            cluster_cba: None,
            backbone_policy: cba_bus::PolicyKind::RoundRobin,
            backbone_cba: None,
        };
        let mut platform = PlatformConfig::paper(&BusSetup::Rp);
        platform.n_cores = 16;
        platform.cba = None;
        platform.topology = Some(topo);
        let mut spec = RunSpec::with_platform(
            platform,
            Scenario::Custom(vec![CoreLoad::Saturating { duration: 28 }; 15]),
            CoreLoad::Saturating { duration: 28 },
        );
        spec.wcet_mode = false;
        spec.stop = StopCondition::Horizon(50_000);
        let (e, f) = both(&spec, 2);
        assert_eq!(e, f);
    }
}
