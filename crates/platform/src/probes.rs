//! Shipped [`Probe`] implementations.
//!
//! Fairness of a credit scheme is a *temporal* property: an arbiter can
//! hit the right long-run shares while starving a core for long windows
//! (exactly the multi-timescale concern of the bandwidth-profile
//! literature). The [`WindowedFairnessProbe`] therefore measures shares
//! **per time window** while the run streams by, instead of once at the
//! end: the run's horizon is split into `n_windows` equal windows, each
//! completion's bus occupancy is attributed to the windows it overlaps,
//! and every window gets a per-core share vector plus a Jain fairness
//! index.
//!
//! The probe is fed from *completions* only, which occur exclusively at
//! executed cycles — so its output is **bit-identical** between the
//! naive and event-horizon engines (asserted by the workspace identity
//! tests). A transaction still in flight when the run stops is not
//! attributed.
//!
//! On a hierarchical fabric, a completion is reported when the response
//! reaches its originating core — after the return bridge crossing —
//! so the attributed occupancy interval `[now - duration, now)` lags
//! the backbone's wire-level service by up to two bridge crossings.
//! Shares near window boundaries can therefore land one window late
//! relative to the physical bus; with windows much longer than
//! `bridge_latency` (the intended regime) the skew is negligible, but
//! compare fabric window series only against other completion-attributed
//! series, not against wire-level traces.
//!
//! Scenario files attach it with `[report] windows = N` (horizon-stop
//! runs only); the per-window Jain series and share matrix surface as
//! `window_jain` / `window_shares` report columns.

use cba_bus::CompletedTransaction;
use sim_core::{Cycle, Probe};

/// The result of one windowed-fairness measurement: a per-window share
/// matrix and Jain-index series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedFairness {
    /// Window length in cycles.
    pub window_len: Cycle,
    /// `shares[w][c]`: bus-cycle share of core `c` within window `w`
    /// (attributed busy cycles / window length).
    pub shares: Vec<Vec<f64>>,
    /// Per-window Jain fairness index over the core shares (1.0 =
    /// perfectly even; an all-idle window also reports 1.0).
    pub jain: Vec<f64>,
}

impl WindowedFairness {
    /// Number of windows.
    pub fn n_windows(&self) -> usize {
        self.jain.len()
    }

    /// Mean of the per-window Jain indices.
    pub fn jain_mean(&self) -> f64 {
        if self.jain.is_empty() {
            1.0
        } else {
            self.jain.iter().sum::<f64>() / self.jain.len() as f64
        }
    }

    /// Worst (smallest) per-window Jain index.
    pub fn jain_min(&self) -> f64 {
        self.jain.iter().copied().fold(1.0, f64::min)
    }
}

/// Streams completions into per-window per-core busy-cycle counters (see
/// the [module documentation](self)).
#[derive(Debug, Clone)]
pub struct WindowedFairnessProbe {
    n_cores: usize,
    window_len: Cycle,
    n_windows: usize,
    /// Flattened `[window][core]` busy-cycle counters.
    busy: Vec<u64>,
}

impl WindowedFairnessProbe {
    /// Creates a probe for `n_cores` cores over `n_windows` windows of
    /// `window_len` cycles each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n_cores: usize, window_len: Cycle, n_windows: usize) -> Self {
        assert!(n_cores > 0, "n_cores must be positive");
        assert!(window_len > 0, "window_len must be positive");
        assert!(n_windows > 0, "n_windows must be positive");
        WindowedFairnessProbe {
            n_cores,
            window_len,
            n_windows,
            busy: vec![0; n_cores * n_windows],
        }
    }

    /// Snapshots the accumulated counters into shares and Jain indices.
    pub fn snapshot(&self) -> WindowedFairness {
        let mut shares = Vec::with_capacity(self.n_windows);
        let mut jain = Vec::with_capacity(self.n_windows);
        for w in 0..self.n_windows {
            let row: Vec<f64> = (0..self.n_cores)
                .map(|c| self.busy[w * self.n_cores + c] as f64 / self.window_len as f64)
                .collect();
            let sum: f64 = row.iter().sum();
            let sq: f64 = row.iter().map(|s| s * s).sum();
            jain.push(if sq > 0.0 {
                (sum * sum) / (self.n_cores as f64 * sq)
            } else {
                1.0
            });
            shares.push(row);
        }
        WindowedFairness {
            window_len: self.window_len,
            shares,
            jain,
        }
    }
}

impl Probe<CompletedTransaction> for WindowedFairnessProbe {
    fn on_completion(&mut self, now: Cycle, completion: &CompletedTransaction) {
        // The transaction occupied the bus over [now - duration, now);
        // split that range across the windows it overlaps.
        let mut start = now.saturating_sub(completion.duration as Cycle);
        let core = completion.core.index();
        while start < now {
            let w = (start / self.window_len) as usize;
            if w >= self.n_windows {
                break;
            }
            let window_end = (w as Cycle + 1) * self.window_len;
            let end = window_end.min(now);
            self.busy[w * self.n_cores + core] += end - start;
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::RequestKind;
    use sim_core::CoreId;

    fn ct(core: usize, duration: u32) -> CompletedTransaction {
        CompletedTransaction {
            core: CoreId::from_index(core),
            kind: RequestKind::Synthetic,
            duration,
        }
    }

    #[test]
    fn completions_split_across_window_boundaries() {
        let mut probe = WindowedFairnessProbe::new(2, 100, 3);
        // Core 0: [90, 110) — 10 cycles in window 0, 10 in window 1.
        probe.on_completion(110, &ct(0, 20));
        // Core 1: [150, 200) — fully in window 1.
        probe.on_completion(200, &ct(1, 50));
        let snap = probe.snapshot();
        assert_eq!(snap.shares[0], vec![0.10, 0.0]);
        assert_eq!(snap.shares[1], vec![0.10, 0.50]);
        assert_eq!(snap.shares[2], vec![0.0, 0.0]);
        assert_eq!(snap.jain[2], 1.0, "idle window reports perfect fairness");
        assert!(snap.jain[1] < 1.0, "skewed window is unfair");
        assert_eq!(snap.n_windows(), 3);
    }

    #[test]
    fn jain_summary_statistics() {
        let mut probe = WindowedFairnessProbe::new(2, 10, 2);
        // Window 0: perfectly even. Window 1: one-sided.
        probe.on_completion(5, &ct(0, 5));
        probe.on_completion(10, &ct(1, 5));
        probe.on_completion(20, &ct(0, 10));
        let snap = probe.snapshot();
        assert!((snap.jain[0] - 1.0).abs() < 1e-12);
        assert!((snap.jain[1] - 0.5).abs() < 1e-12);
        assert!((snap.jain_mean() - 0.75).abs() < 1e-12);
        assert!((snap.jain_min() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_past_the_last_window_is_clamped() {
        let mut probe = WindowedFairnessProbe::new(1, 10, 1);
        probe.on_completion(25, &ct(0, 20));
        let snap = probe.snapshot();
        // Only [5, 10) lands in window 0.
        assert_eq!(snap.shares[0], vec![0.5]);
    }
}
