//! One deterministic platform run: assembly, cycle loop, result
//! extraction.

use crate::agents::{default_registry, AgentRegistry, PortAgent};
use crate::config::{FabricTopology, PlatformConfig};
use crate::probes::{WindowedFairness, WindowedFairnessProbe};
use cba::{CreditFilter, Mode};
use cba_bus::fabric::{Fabric, FabricConfig};
use cba_bus::{Bus, BusConfig, BusError, BusRequest, CompletedTransaction, RequestPort};
use cba_mem::shared_hub;
use cba_workloads::EembcProfile;
use sim_core::agent::MemStats;
use sim_core::lfsr::LfsrBank;
use sim_core::rng::SimRng;
use sim_core::{BusModel, CoreId, Cycle, Engine, Probe, Simulation, StopWhen};
use std::fmt;

/// What one core runs during a run.
///
/// Each variant corresponds to an agent **kind** in the
/// [`AgentRegistry`]; [`CoreLoad::Custom`]
/// names a user-registered kind, so downstream crates can add workload
/// shapes without touching this enum (which is why it is
/// `#[non_exhaustive]`).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CoreLoad {
    /// A synthetic benchmark profile through the full core + cache model.
    Profile(EembcProfile),
    /// A catalog benchmark by name (see [`cba_workloads::by_name`]).
    Named(String),
    /// The streaming workload (sequential always-missing loads).
    Streaming {
        /// Number of loads.
        accesses: u64,
    },
    /// A saturating contender: always one `duration`-cycle request posted
    /// (the WCET-mode contention generator; duration is clamped nowhere —
    /// it must not exceed the platform MaxL).
    Saturating {
        /// Bus hold time per request.
        duration: u32,
    },
    /// A periodic co-runner.
    Periodic {
        /// Bus hold time per request.
        duration: u32,
        /// Issue period in cycles.
        period: Cycle,
        /// First issue cycle.
        phase: Cycle,
    },
    /// A fixed-request task (exact request stream, no cache model).
    FixedTask {
        /// Number of requests.
        n_requests: u64,
        /// Bus hold time per request.
        duration: u32,
        /// Compute cycles before each request.
        gap: u32,
    },
    /// Nothing runs on this core.
    Idle,
    /// A user-registered agent kind (scenario syntax
    /// `agent:KIND:ARGS...`): resolved against the
    /// [`AgentRegistry`] at build time, so
    /// new workload shapes need no edit to this crate.
    Custom {
        /// Registered kind name.
        kind: String,
        /// Raw `:`-separated arguments, interpreted by the kind's
        /// builder.
        args: Vec<String>,
    },
}

impl CoreLoad {
    /// Convenience constructor for a catalog benchmark.
    pub fn named(name: &str) -> Self {
        CoreLoad::Named(name.to_string())
    }

    /// Whether this load finishes on its own. [`CoreLoad::Custom`] kinds
    /// are assumed finite (an infinite custom agent under a `TuaDone` /
    /// `AllDone` stop runs into the `max_cycles` safety limit).
    pub fn is_finite(&self) -> bool {
        !matches!(
            self,
            CoreLoad::Saturating { .. } | CoreLoad::Periodic { .. }
        )
    }

    /// The agent-registry kind name this load resolves through.
    pub fn kind(&self) -> &str {
        match self {
            CoreLoad::Profile(_) => "profile",
            CoreLoad::Named(_) => "bench",
            CoreLoad::Streaming { .. } => "stream",
            CoreLoad::Saturating { .. } => "sat",
            CoreLoad::Periodic { .. } => "per",
            CoreLoad::FixedTask { .. } => "fixed",
            CoreLoad::Idle => "idle",
            CoreLoad::Custom { kind, .. } => kind,
        }
    }
}

/// Renders in the scenario load-spec mini-language (`bench:NAME`,
/// `fixed:R:D:G`, `sat:D`, `per:D:P:PH`, `stream:A`, `idle`,
/// `agent:KIND:ARGS...`), so error messages read like scenario files.
impl fmt::Display for CoreLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreLoad::Profile(p) => write!(f, "bench:{}", p.name),
            CoreLoad::Named(name) => write!(f, "bench:{name}"),
            CoreLoad::Streaming { accesses } => write!(f, "stream:{accesses}"),
            CoreLoad::Saturating { duration } => write!(f, "sat:{duration}"),
            CoreLoad::Periodic {
                duration,
                period,
                phase,
            } => write!(f, "per:{duration}:{period}:{phase}"),
            CoreLoad::FixedTask {
                n_requests,
                duration,
                gap,
            } => write!(f, "fixed:{n_requests}:{duration}:{gap}"),
            CoreLoad::Idle => f.write_str("idle"),
            CoreLoad::Custom { kind, args } => {
                write!(f, "agent:{kind}")?;
                for a in args {
                    write!(f, ":{a}")?;
                }
                Ok(())
            }
        }
    }
}

/// Workload placement patterns for the paper's experiments.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Scenario {
    /// The task under analysis runs alone.
    Isolation,
    /// WCET-estimation maximum contention: every other core is a
    /// saturating MaxL contender (gated by `COMP` when a CBA filter is
    /// present and the spec enables WCET mode).
    MaxContention,
    /// Explicit loads for cores `1..n`.
    Custom(Vec<CoreLoad>),
}

/// Renders with the scenario-file vocabulary (`iso`, `con`, or the
/// custom load list).
impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::Isolation => f.write_str("iso"),
            Scenario::MaxContention => f.write_str("con"),
            Scenario::Custom(loads) => {
                f.write_str("custom[")?;
                for (i, load) in loads.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{load}")?;
                }
                f.write_str("]")
            }
        }
    }
}

/// Which cycle loop executes a run.
///
/// Both produce **bit-identical** results (asserted by the workspace's
/// property tests); the naive loop exists as the reference implementation
/// and as the debugging fallback when a fast-path divergence is suspected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum DriveMode {
    /// The event-horizon fast path ([`sim_core::drive_events`]): skips
    /// provably uneventful cycle ranges (mid-transaction stretches, idle
    /// TDMA slots, credit-recovery waits). The default.
    #[default]
    Events,
    /// The per-cycle reference loop ([`sim_core::drive`]): visits every
    /// cycle. Selectable per scenario (`engine = naive`) or via
    /// `cba_sim --engine naive`.
    Naive,
    /// The continuous-event executor ([`crate::fluid`]): grants and
    /// completions as a sparse event stream over a de-virtualized model,
    /// with limit-cycle fast-forward on flat synthetic runs. Selectable
    /// per scenario (`engine = fluid`) or via `cba_sim --engine fluid`;
    /// cross-validated against the events engine by the workspace's
    /// accuracy and differential test suites.
    Fluid,
}

/// Renders as the scenario `engine` key's vocabulary (`events`,
/// `naive`, `fluid`).
impl fmt::Display for DriveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DriveMode::Events => "events",
            DriveMode::Naive => "naive",
            DriveMode::Fluid => "fluid",
        })
    }
}

/// When the run loop stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopCondition {
    /// Stop when core 0 (the TuA) finishes.
    TuaDone,
    /// Stop when every finite load finishes.
    AllDone,
    /// Run exactly this many cycles (for share/fairness measurements).
    Horizon(Cycle),
}

/// Renders as the scenario `stop` key's vocabulary (`tua`, `all`,
/// `horizon:N`).
impl fmt::Display for StopCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCondition::TuaDone => f.write_str("tua"),
            StopCondition::AllDone => f.write_str("all"),
            StopCondition::Horizon(h) => write!(f, "horizon:{h}"),
        }
    }
}

/// Full specification of one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Platform assembly.
    pub platform: PlatformConfig,
    /// Per-core loads (`loads[0]` is the TuA).
    pub loads: Vec<CoreLoad>,
    /// Put the credit filter in WCET-estimation mode (TuA budget starts at
    /// zero; contenders gated by the latched `COMP` bits). Ignored when the
    /// platform has no CBA filter.
    pub wcet_mode: bool,
    /// Stop condition.
    pub stop: StopCondition,
    /// Hard safety limit on simulated cycles.
    pub max_cycles: Cycle,
    /// Record the full grant trace (burst/starvation metrics).
    pub record_trace: bool,
    /// Which cycle loop to use (fast path by default; results are
    /// bit-identical either way).
    pub drive: DriveMode,
    /// Attach a [`WindowedFairnessProbe`] splitting the run into this
    /// many equal windows (scenario key `[report] windows = N`).
    /// Requires a [`StopCondition::Horizon`] stop whose horizon the
    /// window count divides evenly; `None` = no windowed measurement.
    /// Attribution is completion-based — on a fabric it lags wire-level
    /// service by up to two bridge crossings, so keep windows much
    /// longer than the bridge latency (see [`crate::probes`]).
    pub windows: Option<u32>,
}

impl RunSpec {
    /// The paper's canonical specs: `tua` on core 0 of the 4-core paper
    /// platform under `setup`, with the scenario's co-runners.
    pub fn paper(setup: crate::BusSetup, scenario: Scenario, tua: CoreLoad) -> Self {
        let platform = PlatformConfig::paper(&setup);
        Self::with_platform(platform, scenario, tua)
    }

    /// Like [`RunSpec::paper`] with an explicit platform configuration.
    pub fn with_platform(platform: PlatformConfig, scenario: Scenario, tua: CoreLoad) -> Self {
        let n = platform.n_cores;
        let maxl = platform.latency.max_latency();
        let mut loads = Vec::with_capacity(n);
        loads.push(tua);
        match &scenario {
            Scenario::Isolation => loads.extend((1..n).map(|_| CoreLoad::Idle)),
            Scenario::MaxContention => {
                loads.extend((1..n).map(|_| CoreLoad::Saturating { duration: maxl }))
            }
            Scenario::Custom(rest) => loads.extend(rest.iter().cloned()),
        }
        RunSpec {
            platform,
            loads,
            wcet_mode: matches!(scenario, Scenario::MaxContention),
            stop: StopCondition::TuaDone,
            max_cycles: 50_000_000,
            record_trace: false,
            drive: DriveMode::default(),
            windows: None,
        }
    }

    /// Validates the spec (load count, stop-condition finiteness).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.loads.len() != self.platform.n_cores {
            return Err(format!(
                "expected {} loads, got {}",
                self.platform.n_cores,
                self.loads.len()
            ));
        }
        match self.stop {
            StopCondition::TuaDone => {
                if !self.loads[0].is_finite() {
                    return Err(format!(
                        "stop condition '{}' requires a finite load on core 0, got '{}'",
                        self.stop, self.loads[0]
                    ));
                }
            }
            StopCondition::AllDone => {
                if let Some(infinite) = self.loads.iter().find(|l| !l.is_finite()) {
                    return Err(format!(
                        "stop condition '{}' requires every load to be finite, got '{infinite}'",
                        self.stop
                    ));
                }
            }
            StopCondition::Horizon(h) => {
                if h == 0 {
                    return Err("horizon must be positive".into());
                }
            }
        }
        if let Some(w) = self.windows {
            if w == 0 {
                return Err("windows must be positive".into());
            }
            match self.stop {
                StopCondition::Horizon(h) => {
                    if h % w as u64 != 0 {
                        return Err(format!("windows = {w} must divide the horizon {h} evenly"));
                    }
                    if self.max_cycles < h {
                        // A truncated run would report its never-reached
                        // windows as perfectly fair.
                        return Err(format!(
                            "windows require max_cycles >= the horizon ({} < {h})",
                            self.max_cycles
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "windows require a horizon stop (run length must be known \
                         up front), got stop condition '{}'",
                        self.stop
                    ))
                }
            }
        }
        if let Some(cba) = &self.platform.cba {
            if cba.n_cores() != self.platform.n_cores {
                return Err(format!(
                    "credit config sized for {} cores on a {}-core platform",
                    cba.n_cores(),
                    self.platform.n_cores
                ));
            }
            if cba.max_latency() != self.platform.latency.max_latency() {
                return Err("credit MaxL differs from the latency model's MaxL".into());
            }
        }
        if let Some(mem) = &self.platform.memory {
            mem.validate().map_err(|e| e.to_string())?;
        }
        for load in &self.loads {
            let kind = load.kind();
            if kind != "mem" && kind != "shared" {
                continue;
            }
            if self.platform.memory.is_none() {
                return Err(format!(
                    "load 'agent:{kind}' requires a [memory] section on the platform"
                ));
            }
            if kind == "shared" && self.platform.topology.is_some() {
                return Err(
                    "load 'agent:shared' requires the flat snooped bus; a fabric topology \
                     has no shared coherent segment"
                        .into(),
                );
            }
        }
        if let Some(topo) = &self.platform.topology {
            let maxl = self.platform.latency.max_latency();
            if topo.clusters == 0 || topo.cores_per_cluster == 0 {
                return Err("topology needs at least one cluster and one core each".into());
            }
            if topo.n_cores() != self.platform.n_cores {
                return Err(format!(
                    "topology has {} x {} cores but the platform declares {}",
                    topo.clusters, topo.cores_per_cluster, self.platform.n_cores
                ));
            }
            if topo.bridge_latency == 0 || topo.bridge_depth == 0 {
                return Err("bridge latency and depth must be positive".into());
            }
            if self.platform.cba.is_some() {
                return Err(
                    "a fabric platform configures filters per segment (cluster_cba / \
                     backbone_cba), not via the flat cba field"
                        .into(),
                );
            }
            if let Some(c) = &topo.cluster_cba {
                if c.n_cores() != topo.cores_per_cluster {
                    return Err(format!(
                        "cluster credit config sized for {} cores, clusters have {}",
                        c.n_cores(),
                        topo.cores_per_cluster
                    ));
                }
                if c.max_latency() != maxl {
                    return Err("cluster credit MaxL differs from the platform MaxL".into());
                }
            }
            if let Some(c) = &topo.backbone_cba {
                if c.n_cores() != topo.clusters {
                    return Err(format!(
                        "backbone credit config sized for {} bridges, fabric has {}",
                        c.n_cores(),
                        topo.clusters
                    ));
                }
                if c.max_latency() != maxl {
                    return Err("backbone credit MaxL differs from the platform MaxL".into());
                }
            }
        }
        Ok(())
    }
}

/// Result of one run.
///
/// `PartialEq` is exact (no float tolerance): the naive and event-driven
/// cycle loops are required to agree **bit for bit**, and the property
/// tests compare whole results with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Core 0's completion cycle (None if it did not finish).
    pub tua_cycles: Option<Cycle>,
    /// Whether the stop condition was met within `max_cycles`.
    pub finished: bool,
    /// Cycles simulated.
    pub total_cycles: Cycle,
    /// Grants per core.
    pub bus_slots: Vec<u64>,
    /// Bus-busy cycles per core.
    pub bus_busy: Vec<u64>,
    /// Idle bus cycles.
    pub bus_idle: u64,
    /// Mean grant latency of core 0's requests.
    pub tua_mean_wait: f64,
    /// Worst grant latency of core 0's requests.
    pub tua_max_wait: u64,
    /// Per-core longest start-to-start grant gap (recording runs only).
    pub max_grant_gap: Vec<Option<Cycle>>,
    /// Per-core longest back-to-back grant burst (recording runs only).
    pub max_burst: Vec<Option<u64>>,
    /// Windowed fairness measurement (runs with [`RunSpec::windows`]
    /// only): per-window core shares and Jain indices, streamed by the
    /// [`WindowedFairnessProbe`]. Completion-attributed, so bit-identical
    /// between the naive and events engines.
    pub windows: Option<WindowedFairness>,
    /// Memory-side counters summed over every memory agent in the run
    /// (`None` when no load placed one, so baseline reports keep their
    /// exact column set). Exact integer sums, so thread-count-independent.
    pub mem: Option<MemStats>,
}

impl RunResult {
    /// Cycle share of `core` relative to the whole run (busy / total).
    pub fn absolute_cycle_share(&self, core: usize) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.bus_busy[core] as f64 / self.total_cycles as f64
        }
    }

    /// Bus utilization (busy cycles / total).
    pub fn utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.bus_busy.iter().sum::<u64>() as f64 / self.total_cycles as f64
        }
    }
}

/// The simulation models [`run_once`] can drive: the workspace-wide cycle
/// protocol plus the client request port and the per-run statistics the
/// result extraction needs. Implemented by the flat [`Bus`] and the
/// hierarchical [`Fabric`].
trait SimModel:
    BusModel<Request = BusRequest, Completion = CompletedTransaction, Error = BusError> + RequestPort
{
    /// Idle cycles of the shared resource (the bus / the backbone).
    fn model_idle_cycles(&self) -> u64;
    /// `(mean, max)` grant latency of core 0's requests at its first
    /// arbitration point.
    fn tua_wait(&self) -> (f64, u64);
}

impl SimModel for Bus {
    fn model_idle_cycles(&self) -> u64 {
        self.idle_cycles()
    }

    fn tua_wait(&self) -> (f64, u64) {
        let c0 = CoreId::from_index(0);
        (
            self.wait_stats().mean_wait(c0),
            self.wait_stats().max_wait(c0),
        )
    }
}

impl SimModel for Fabric {
    fn model_idle_cycles(&self) -> u64 {
        self.idle_cycles()
    }

    fn tua_wait(&self) -> (f64, u64) {
        // Core 0 lives on cluster 0 as local core 0: its first arbitration
        // point is that cluster bus.
        let c0 = CoreId::from_index(0);
        let stats = self.local_wait_stats(c0);
        let local = self.local_id(c0);
        (stats.mean_wait(local), stats.max_wait(local))
    }
}

/// Executes one run of `spec` under `seed`, fully deterministically,
/// building agents through the shared
/// [`default_registry`].
///
/// # Panics
///
/// Panics if the spec fails [`RunSpec::validate`] (specs are constructed
/// programmatically; an invalid one is a harness bug, not an input error).
pub fn run_once(spec: &RunSpec, seed: u64) -> RunResult {
    run_once_with(spec, seed, default_registry())
}

/// [`run_once`] with an explicit [`AgentRegistry`], for callers that
/// register custom agent kinds ([`CoreLoad::Custom`]).
///
/// # Panics
///
/// Panics if the spec fails [`RunSpec::validate`] or names an agent kind
/// the registry cannot build.
pub fn run_once_with(spec: &RunSpec, seed: u64, registry: &AgentRegistry) -> RunResult {
    if let Err(why) = spec.validate() {
        panic!("invalid run spec: {why}");
    }
    if spec.drive == DriveMode::Fluid {
        return crate::fluid::run_fluid(spec, seed, registry);
    }
    let rng = SimRng::seed_from(seed);
    match &spec.platform.topology {
        None => execute(build_bus(spec, &rng), spec, &rng, registry),
        Some(topo) => execute(build_fabric(spec, topo, &rng), spec, &rng, registry),
    }
}

/// Assembles the flat shared bus: policy, filter, random source, trace.
fn build_bus(spec: &RunSpec, rng: &SimRng) -> Bus {
    let platform = &spec.platform;
    let n = platform.n_cores;
    let maxl = platform.latency.max_latency();
    let mut bus = Bus::new(
        BusConfig::new(n, maxl).expect("validated platform"),
        platform.policy.build(n, maxl),
    );
    if let Some(credit) = &platform.cba {
        let mode = if spec.wcet_mode {
            Mode::WcetEstimation {
                tua: CoreId::from_index(0),
            }
        } else {
            Mode::Operation
        };
        bus.set_filter(Box::new(CreditFilter::with_mode(credit.clone(), mode)));
    }
    if platform.lfsr_randbank {
        let bank_seed = rng.fork(0xA9).next_u64();
        bus.set_random_source(Box::new(LfsrBank::new(16, bank_seed).expect("valid width")));
    } else {
        bus.set_random_source(Box::new(rng.fork(0xA9)));
    }
    if spec.record_trace {
        bus.enable_recording_trace();
    }
    bus
}

/// Assembles the hierarchical fabric: per-cluster policies and filters,
/// the backbone's, and one random source per segment. In WCET-estimation
/// mode the TuA's cluster (cluster 0, local core 0) runs its filter in
/// `WcetEstimation` mode; every other segment arbitrates in operation
/// mode — contenders on remote clusters never share the TuA's segment, so
/// the COMP gating applies exactly where the TuA competes.
pub(crate) fn build_fabric(spec: &RunSpec, topo: &FabricTopology, rng: &SimRng) -> Fabric {
    let maxl = spec.platform.latency.max_latency();
    let config = FabricConfig::new(
        topo.clusters,
        topo.cores_per_cluster,
        maxl,
        topo.bridge_latency,
        topo.bridge_depth,
    )
    .expect("validated topology");
    let cluster_policies = (0..topo.clusters)
        .map(|_| topo.cluster_policy.build(topo.cores_per_cluster, maxl))
        .collect();
    let mut fabric = Fabric::new(
        config,
        cluster_policies,
        topo.backbone_policy.build(topo.clusters, maxl),
    )
    .expect("validated topology");
    if let Some(credit) = &topo.cluster_cba {
        for k in 0..topo.clusters {
            let mode = if spec.wcet_mode && k == 0 {
                Mode::WcetEstimation {
                    tua: CoreId::from_index(0),
                }
            } else {
                Mode::Operation
            };
            fabric.set_cluster_filter(k, Box::new(CreditFilter::with_mode(credit.clone(), mode)));
        }
    }
    if let Some(credit) = &topo.backbone_cba {
        fabric.set_backbone_filter(Box::new(CreditFilter::new(credit.clone())));
    }
    // One independent random stream per arbitration point, all forked off
    // the run seed (segment 0 = backbone, 1.. = clusters).
    let arb = rng.fork(0xA9);
    let segment_seed = |i: u64| arb.fork(i).next_u64();
    if spec.platform.lfsr_randbank {
        fabric.set_backbone_random_source(Box::new(
            LfsrBank::new(16, segment_seed(0)).expect("valid width"),
        ));
        for k in 0..topo.clusters {
            fabric.set_cluster_random_source(
                k,
                Box::new(LfsrBank::new(16, segment_seed(1 + k as u64)).expect("valid width")),
            );
        }
    } else {
        fabric.set_backbone_random_source(Box::new(SimRng::seed_from(segment_seed(0))));
        for k in 0..topo.clusters {
            fabric.set_cluster_random_source(
                k,
                Box::new(SimRng::seed_from(segment_seed(1 + k as u64))),
            );
        }
    }
    if spec.record_trace {
        fabric.enable_recording_trace();
    }
    fabric
}

/// Builds the agents through the registry, assembles a
/// [`Simulation`] over `bus` and extracts the [`RunResult`] — shared
/// verbatim by the flat-bus and fabric paths, so both run the exact same
/// engine and accounting.
fn execute<M: SimModel + 'static>(
    bus: M,
    spec: &RunSpec,
    rng: &SimRng,
    registry: &AgentRegistry,
) -> RunResult {
    let platform = &spec.platform;
    // One coherence hub per run, shared by every `shared` agent so their
    // snoops see each other (validated: such loads imply `memory`).
    let hub = spec.loads.iter().any(|l| l.kind() == "shared").then(|| {
        let mem = platform
            .memory
            .as_ref()
            .expect("validated: shared loads require a memory configuration");
        shared_hub(platform.n_cores, mem.shared_lines)
    });
    let agents: Vec<sim_core::BoxedAgent<M>> = spec
        .loads
        .iter()
        .enumerate()
        .map(|(i, load)| {
            let mut agent_rng = rng.fork(0xC0 + i as u64);
            let agent = registry
                .build_shared(
                    load,
                    CoreId::from_index(i),
                    platform,
                    hub.clone(),
                    &mut agent_rng,
                )
                .unwrap_or_else(|why| panic!("cannot build agent '{load}' for core {i}: {why}"));
            Box::new(PortAgent::new(agent)) as sim_core::BoxedAgent<M>
        })
        .collect();
    let builder = Simulation::builder()
        .model(bus)
        .agents(agents)
        .stop(match spec.stop {
            StopCondition::TuaDone => StopWhen::AgentDone(0),
            StopCondition::AllDone => StopWhen::AllAgentsDone,
            StopCondition::Horizon(h) => StopWhen::Horizon(h),
        })
        .engine(match spec.drive {
            DriveMode::Events => Engine::Events,
            DriveMode::Naive => Engine::Naive,
            DriveMode::Fluid => unreachable!("fluid runs dispatch to crate::fluid::run_fluid"),
        })
        .max_cycles(spec.max_cycles);
    match spec.windows {
        None => {
            let sim = builder.run();
            extract(&sim, spec, None)
        }
        Some(w) => {
            let StopCondition::Horizon(h) = spec.stop else {
                unreachable!("validated: windows require a horizon stop");
            };
            let window_len = h / w as Cycle;
            let probe = WindowedFairnessProbe::new(platform.n_cores, window_len, w as usize);
            let sim = builder.observe(probe).run();
            let windows = sim.probe().snapshot();
            extract(&sim, spec, Some(windows))
        }
    }
}

/// Pulls the [`RunResult`] out of a finished [`Simulation`].
fn extract<M: SimModel, P: Probe<CompletedTransaction>>(
    sim: &Simulation<M, P>,
    spec: &RunSpec,
    windows: Option<WindowedFairness>,
) -> RunResult {
    let outcome = sim.outcome().expect("simulation ran");
    let bus = sim.model();
    let trace = bus.trace();
    let ids: Vec<CoreId> = (0..spec.platform.n_cores).map(CoreId::from_index).collect();
    let (tua_mean_wait, tua_max_wait) = bus.tua_wait();
    let mut mem: Option<MemStats> = None;
    for i in 0..spec.platform.n_cores {
        if let Some(m) = sim.agent(i).stats().mem {
            mem.get_or_insert_with(MemStats::default).accumulate(m);
        }
    }
    RunResult {
        tua_cycles: sim.agent(0).done_at(),
        finished: outcome.stopped,
        total_cycles: outcome.cycles,
        bus_slots: ids.iter().map(|&c| trace.slots(c)).collect(),
        bus_busy: ids.iter().map(|&c| trace.busy_cycles(c)).collect(),
        bus_idle: bus.model_idle_cycles(),
        tua_mean_wait,
        tua_max_wait,
        max_grant_gap: ids.iter().map(|&c| trace.max_grant_gap(c)).collect(),
        max_burst: ids.iter().map(|&c| trace.max_burst_len(c)).collect(),
        windows,
        mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusSetup;

    #[test]
    fn isolation_run_finishes_deterministically() {
        let spec = RunSpec::paper(BusSetup::Rp, Scenario::Isolation, CoreLoad::named("rspeed"));
        let a = run_once(&spec, 7);
        let b = run_once(&spec, 7);
        assert!(a.finished);
        assert_eq!(a.tua_cycles, b.tua_cycles, "same seed, same cycles");
        assert_eq!(a.bus_slots, b.bus_slots);
        let c = run_once(&spec, 8);
        assert_ne!(
            a.tua_cycles, c.tua_cycles,
            "different seeds should perturb the run (randomized caches)"
        );
    }

    #[test]
    fn contention_slows_the_tua_down() {
        let iso = RunSpec::paper(BusSetup::Rp, Scenario::Isolation, CoreLoad::named("matrix"));
        let con = RunSpec::paper(
            BusSetup::Rp,
            Scenario::MaxContention,
            CoreLoad::named("matrix"),
        );
        let iso_t = run_once(&iso, 1).tua_cycles.unwrap();
        let con_t = run_once(&con, 1).tua_cycles.unwrap();
        assert!(
            con_t > iso_t + iso_t / 2,
            "contention must hurt: iso {iso_t}, con {con_t}"
        );
    }

    #[test]
    fn fixed_task_isolation_matches_analytic_time() {
        let spec = RunSpec::paper(
            BusSetup::Rp,
            Scenario::Isolation,
            CoreLoad::FixedTask {
                n_requests: 100,
                duration: 6,
                gap: 4,
            },
        );
        let r = run_once(&spec, 3);
        assert_eq!(r.tua_cycles, Some(1_000));
    }

    #[test]
    fn horizon_runs_exactly_that_long() {
        let mut spec = RunSpec::paper(
            BusSetup::Rp,
            Scenario::MaxContention,
            CoreLoad::FixedTask {
                n_requests: 1,
                duration: 5,
                gap: 0,
            },
        );
        spec.loads[0] = CoreLoad::Saturating { duration: 5 };
        spec.stop = StopCondition::Horizon(10_000);
        let r = run_once(&spec, 1);
        assert!(r.finished);
        assert_eq!(r.total_cycles, 10_000);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut spec = RunSpec::paper(BusSetup::Rp, Scenario::Isolation, CoreLoad::named("rspeed"));
        spec.loads.pop();
        assert!(spec.validate().is_err());

        let mut spec = RunSpec::paper(
            BusSetup::Rp,
            Scenario::Isolation,
            CoreLoad::Saturating { duration: 5 },
        );
        assert!(spec.validate().is_err(), "TuaDone with infinite TuA");
        spec.stop = StopCondition::Horizon(100);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn unknown_benchmark_panics_with_context() {
        let spec = RunSpec::paper(
            BusSetup::Rp,
            Scenario::Isolation,
            CoreLoad::named("not-a-benchmark"),
        );
        let result = std::panic::catch_unwind(|| run_once(&spec, 0));
        assert!(result.is_err());
    }

    #[test]
    fn shares_accounting_consistent() {
        let mut spec = RunSpec::paper(
            BusSetup::Cba,
            Scenario::MaxContention,
            CoreLoad::named("matrix"),
        );
        spec.record_trace = true;
        let r = run_once(&spec, 5);
        assert!(r.finished);
        let busy: u64 = r.bus_busy.iter().sum();
        // Busy cycles are recorded at grant time for the full transaction,
        // so a transaction in flight when the TuA finishes can overhang the
        // simulated horizon by up to MaxL cycles.
        assert!(busy + r.bus_idle >= r.total_cycles);
        assert!(busy + r.bus_idle <= r.total_cycles + 56);
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
        // Recording traces expose burst metrics.
        assert!(r.max_burst.iter().any(|b| b.is_some()));
    }

    /// The two cycle loops must agree exactly — whole `RunResult`s,
    /// including traces, wait statistics and cycle counters.
    #[test]
    fn naive_and_event_loops_are_bit_identical() {
        let specs = [
            RunSpec::paper(BusSetup::Rp, Scenario::Isolation, CoreLoad::named("rspeed")),
            RunSpec::paper(
                BusSetup::Cba,
                Scenario::MaxContention,
                CoreLoad::named("matrix"),
            ),
            RunSpec::paper(
                BusSetup::HCba,
                Scenario::MaxContention,
                CoreLoad::FixedTask {
                    n_requests: 200,
                    duration: 6,
                    gap: 4,
                },
            ),
        ];
        for (i, spec) in specs.into_iter().enumerate() {
            for seed in [1, 7] {
                let mut naive = spec.clone();
                naive.drive = DriveMode::Naive;
                let mut events = spec.clone();
                events.drive = DriveMode::Events;
                assert_eq!(
                    run_once(&naive, seed),
                    run_once(&events, seed),
                    "spec {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn event_loop_handles_horizon_and_trace_runs() {
        let mut spec = RunSpec::paper(
            BusSetup::Cba,
            Scenario::MaxContention,
            CoreLoad::Saturating { duration: 56 },
        );
        spec.loads[0] = CoreLoad::Saturating { duration: 5 };
        spec.stop = StopCondition::Horizon(20_000);
        spec.wcet_mode = false;
        spec.record_trace = true;
        let mut naive = spec.clone();
        naive.drive = DriveMode::Naive;
        let a = run_once(&naive, 3);
        let b = run_once(&spec, 3);
        assert_eq!(a, b);
        assert!(a.finished);
        assert_eq!(a.total_cycles, 20_000, "horizon must not be overshot");
    }

    #[test]
    fn lfsr_and_software_rng_both_work() {
        for lfsr in [true, false] {
            let mut spec = RunSpec::paper(
                BusSetup::Rp,
                Scenario::MaxContention,
                CoreLoad::named("rspeed"),
            );
            spec.platform.lfsr_randbank = lfsr;
            let r = run_once(&spec, 11);
            assert!(r.finished, "lfsr={lfsr}");
        }
    }
}
