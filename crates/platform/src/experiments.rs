//! Experiment drivers: one function per paper artifact, shared by the
//! bench regenerators, the integration tests and the examples.
//!
//! Every driver takes a run count and a master seed so the same code can
//! power quick CI checks (tens of runs) and full reproductions (the
//! paper's 1,000 runs per configuration).
//!
//! The grid-shaped drivers ([`fig1`], [`illustrative`], [`fairness_sweep`])
//! are thin wrappers over [`crate::scenario`] definitions — the same
//! engine that executes `scenarios/*.scn` files from the CLI — so the
//! shipped scenario files and the Rust API produce identical numbers (see
//! `EXPERIMENTS.md`). The remaining drivers ([`ablation_hcba`],
//! [`pwcet_analysis`]) need per-variant credit configs or model fitting
//! and stay hand-written.

use crate::campaign::Campaign;
use crate::config::BusSetup;
use crate::platform::{CoreLoad, RunSpec, Scenario};
use crate::report::run_scenario;
use crate::scenario::{
    Axis, AxisValue, ContenderSpec, ReportSpec, ScenarioDef, Template, TuaSpec, WcetSpec,
};
use cba::CreditConfig;
use cba_bus::PolicyKind;
use cba_mbpta::iid::IidReport;
use cba_mbpta::pwcet::{MbptaConfig, PWcetModel};
use cba_mbpta::MbptaError;
use cba_workloads::EembcProfile;

fn raw_axis(key: &str, values: &[&str]) -> Axis {
    Axis {
        key: key.to_string(),
        values: values
            .iter()
            .map(|v| AxisValue::Raw(v.to_string()))
            .collect(),
    }
}

/// One bar of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Bus setup label ("RP", "CBA", "H-CBA").
    pub setup: String,
    /// "ISO" or "CON".
    pub scenario: &'static str,
    /// Mean execution time over the campaign (cycles).
    pub mean_cycles: f64,
    /// Normalized to the benchmark's RP-ISO mean (the figure's y-axis).
    pub normalized: f64,
    /// Half-width of the 95% confidence interval on the normalized mean.
    pub ci95: f64,
}

/// The scenario definition behind [`fig1`]: benchmarks × the paper's
/// three bus setups × {ISO, CON}, normalized to each benchmark's RP-ISO
/// mean. The shipped `scenarios/paper_fig1.scn` expands to exactly this
/// grid for the Figure-1 suite (asserted by the conformance tests).
pub fn fig1_def(benchmarks: &[EembcProfile], runs: usize, seed: u64) -> ScenarioDef {
    ScenarioDef {
        name: "paper_fig1".into(),
        runs,
        seed,
        threads: None,
        checkpoint: Default::default(),
        template: Template::default(),
        axes: vec![
            Axis {
                key: "bench".into(),
                values: benchmarks.iter().cloned().map(AxisValue::Profile).collect(),
            },
            raw_axis("setup", &["rp", "cba", "hcba"]),
            raw_axis("scenario", &["iso", "con"]),
        ],
        report: ReportSpec {
            baseline: vec![
                ("setup".into(), "rp".into()),
                ("scenario".into(), "iso".into()),
            ],
            ..ReportSpec::default()
        },
    }
}

/// Regenerates Figure 1: normalized average execution times for
/// {RP, CBA, H-CBA} x {isolation, max contention} over `benchmarks`,
/// `runs` randomized runs per bar.
pub fn fig1(benchmarks: &[EembcProfile], runs: usize, seed: u64) -> Vec<Fig1Cell> {
    if benchmarks.is_empty() {
        return Vec::new();
    }
    let report = run_scenario(&fig1_def(benchmarks, runs, seed))
        .expect("the paper grid is a valid scenario");
    report
        .cells
        .into_iter()
        .map(|c| Fig1Cell {
            benchmark: c.label("bench").expect("bench axis").to_string(),
            setup: c.label("setup").expect("setup axis").to_string(),
            scenario: if c.label("scenario") == Some("ISO") {
                "ISO"
            } else {
                "CON"
            },
            mean_cycles: c.mean,
            normalized: c.normalized.expect("fig1 normalizes to RP-ISO"),
            ci95: c.normalized_ci95.expect("fig1 normalizes to RP-ISO"),
        })
        .collect()
}

/// Derived statistics the paper quotes in Section IV.B.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Digest {
    /// Worst CON slowdown without CBA and the benchmark it occurs on
    /// (paper: 3.34x, matrix).
    pub worst_rp_con: (String, f64),
    /// Worst CON slowdown with CBA (paper: 2.34x).
    pub worst_cba_con: (String, f64),
    /// Average ISO overhead of CBA vs RP (paper: ~3%).
    pub cba_iso_overhead: f64,
    /// Average ISO overhead of H-CBA vs RP (paper: negligible).
    pub hcba_iso_overhead: f64,
}

/// Computes the paper's quoted digest numbers from Figure-1 cells.
pub fn fig1_digest(cells: &[Fig1Cell]) -> Fig1Digest {
    fn pick<'a>(
        cells: &'a [Fig1Cell],
        setup: &'a str,
        scenario: &'a str,
    ) -> impl Iterator<Item = &'a Fig1Cell> {
        cells
            .iter()
            .filter(move |c| c.setup == setup && c.scenario == scenario)
    }
    let worst = |setup: &str| {
        pick(cells, setup, "CON")
            .max_by(|a, b| a.normalized.partial_cmp(&b.normalized).expect("finite"))
            .map(|c| (c.benchmark.clone(), c.normalized))
            .unwrap_or_default()
    };
    let mean_overhead = |setup: &str| {
        let overheads: Vec<f64> = pick(cells, setup, "ISO")
            .map(|c| c.normalized - 1.0)
            .collect();
        if overheads.is_empty() {
            0.0
        } else {
            overheads.iter().sum::<f64>() / overheads.len() as f64
        }
    };
    Fig1Digest {
        worst_rp_con: worst("RP"),
        worst_cba_con: worst("CBA"),
        cba_iso_overhead: mean_overhead("CBA"),
        hcba_iso_overhead: mean_overhead("H-CBA"),
    }
}

/// One row of the Section II illustrative-example table.
#[derive(Debug, Clone, PartialEq)]
pub struct IllustrativeRow {
    /// Configuration label.
    pub config: String,
    /// Mean execution time of the TuA (cycles).
    pub mean_cycles: f64,
    /// Slowdown vs the 10,000-cycle isolation time.
    pub slowdown: f64,
}

/// The paper's analytic reference points for the illustrative example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IllustrativeAnalytic {
    /// Isolation execution time (10,000 cycles).
    pub isolation: f64,
    /// Request-fair prediction: `4,000 + 1,000 x (6 + 3x28) = 94,000`.
    pub request_fair: f64,
    /// Idealized cycle-fair prediction: `4,000 + 1,000 x (6+18) = 28,000`.
    pub cycle_fair: f64,
}

impl IllustrativeAnalytic {
    /// The paper's numbers.
    pub fn paper() -> Self {
        IllustrativeAnalytic {
            isolation: 10_000.0,
            request_fair: 94_000.0,
            cycle_fair: 28_000.0,
        }
    }
}

/// The scenario definition behind [`illustrative`]: the paper's fixed
/// 1,000-request TuA against three 28-cycle saturating co-runners, swept
/// over the five arbitration configurations of the Section II table.
/// `scenarios/paper_illustrative.scn` is this definition as a file.
pub fn illustrative_def(runs: usize, seed: u64) -> ScenarioDef {
    ScenarioDef {
        name: "paper_illustrative".into(),
        runs,
        seed,
        threads: None,
        checkpoint: Default::default(),
        template: Template {
            tua: TuaSpec::Load("fixed:1000:6:4".into()),
            contenders: ContenderSpec::Fill("sat:28".into()),
            // Live streaming co-runners, not WCET-mode generators.
            wcet: WcetSpec::Off,
            ..Template::default()
        },
        axes: vec![raw_axis("setup", &["rr", "rp", "fifo", "cba", "hcba"])],
        report: ReportSpec::default(),
    }
}

/// Regenerates the Section II illustrative example: a TuA issuing 1,000
/// 6-cycle requests every 10 cycles against three streaming co-runners
/// with 28-cycle requests, under request-fair policies and under CBA.
pub fn illustrative(runs: usize, seed: u64) -> Vec<IllustrativeRow> {
    let report = run_scenario(&illustrative_def(runs, seed))
        .expect("the illustrative grid is a valid scenario");
    report
        .cells
        .into_iter()
        .map(|c| {
            let config = match c.label("setup").expect("setup axis") {
                "rr" => "RR (request-fair)",
                "RP" => "RP (request-fair)",
                "fifo" => "FIFO (request-fair)",
                "CBA" => "RP + CBA (cycle-fair)",
                "H-CBA" => "RP + H-CBA (TuA 50%)",
                other => other,
            }
            .to_string();
            IllustrativeRow {
                config,
                mean_cycles: c.mean,
                slowdown: c.mean / 10_000.0,
            }
        })
        .collect()
}

/// One row of the fairness sweep (conclusion claim: CBA bounds the
/// slowdown by ~N while request-fair arbitration degrades with the
/// request-length ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Core count.
    pub n_cores: usize,
    /// Whether the credit filter was active.
    pub cba: bool,
    /// Contender request duration (TuA requests are 5 cycles).
    pub contender_duration: u32,
    /// TuA slowdown vs isolation.
    pub slowdown: f64,
}

/// The scenario definition behind [`fairness_sweep`]: a short-request
/// saturating-ish TuA (400 back-to-back 5-cycle requests) on a
/// round-robin bus, swept over core count × {no filter, CBA} ×
/// contender request duration. `scenarios/fairness_sweep.scn` ships the
/// paper-scale instance of this grid.
pub fn fairness_sweep_def(
    core_counts: &[usize],
    durations: &[u32],
    runs: usize,
    seed: u64,
) -> ScenarioDef {
    let cores: Vec<String> = core_counts.iter().map(|n| n.to_string()).collect();
    let durs: Vec<String> = durations.iter().map(|d| d.to_string()).collect();
    let as_axis = |key: &str, values: &[String]| Axis {
        key: key.to_string(),
        values: values.iter().cloned().map(AxisValue::Raw).collect(),
    };
    ScenarioDef {
        name: "fairness_sweep".into(),
        runs,
        seed,
        threads: None,
        checkpoint: Default::default(),
        template: Template {
            policy: "rr".into(),
            tua: TuaSpec::Load("fixed:400:5:0".into()),
            contenders: ContenderSpec::MaxContention,
            // Live contenders: measure operation-mode fairness, not the
            // WCET-estimation gating.
            wcet: WcetSpec::Off,
            ..Template::default()
        },
        axes: vec![
            as_axis("cores", &cores),
            raw_axis("cba", &["none", "homog"]),
            as_axis("duration", &durs),
        ],
        report: ReportSpec::default(),
    }
}

/// Sweeps contender request duration and core count for a short-request
/// saturating TuA, with and without CBA on a round-robin bus.
pub fn fairness_sweep(
    core_counts: &[usize],
    durations: &[u32],
    runs: usize,
    seed: u64,
) -> Vec<SweepRow> {
    if core_counts.is_empty() || durations.is_empty() {
        return Vec::new();
    }
    let report = run_scenario(&fairness_sweep_def(core_counts, durations, runs, seed))
        .expect("the fairness grid is a valid scenario");
    report
        .cells
        .into_iter()
        .map(|c| {
            // Isolation time of the TuA: 400 back-to-back 5-cycle requests.
            let iso = 400.0 * 5.0;
            SweepRow {
                n_cores: c
                    .label("cores")
                    .expect("cores axis")
                    .parse()
                    .expect("numeric"),
                cba: c.label("cba") == Some("homog"),
                contender_duration: c
                    .label("duration")
                    .expect("duration axis")
                    .parse()
                    .expect("numeric"),
                slowdown: c.mean / iso,
            }
        })
        .collect()
}

/// One row of the H-CBA ablation (Section III.A: heterogeneous bandwidth
/// via recovery weights vs budget caps above MaxL).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// TuA mean execution time (cycles).
    pub tua_cycles: f64,
    /// TuA slowdown vs isolation.
    pub slowdown: f64,
    /// Longest back-to-back grant run of the TuA (burst capability).
    pub tua_max_burst: f64,
    /// Worst contender grant gap (temporal starvation), mean over runs.
    pub contender_max_gap: f64,
}

/// Compares the two heterogeneous-allocation mechanisms for a long-request
/// TuA: recovery weights (variant 2, the paper's evaluated H-CBA) vs a
/// budget cap of `2 x MaxL` (variant 1, enabling back-to-back bursts).
///
/// Contenders are *periodic* (one MaxL request every 500 cycles), leaving
/// quiet windows: under the base scheme the TuA still waits out its
/// `(N-1) x MaxL` recovery between any two requests, while the cap
/// variant banks idle-time budget and issues pairs back-to-back — at the
/// price of longer worst-case gaps for the contenders, exactly the
/// trade-off Section III.A describes.
pub fn ablation_hcba(runs: usize, seed: u64) -> Vec<AblationRow> {
    let maxl = 56;
    let tua = CoreLoad::FixedTask {
        n_requests: 150,
        duration: maxl,
        gap: 0,
    };
    let iso = 150.0 * maxl as f64;
    let variants: Vec<(String, CreditConfig)> = vec![
        (
            "CBA (homogeneous)".into(),
            CreditConfig::homogeneous(4, maxl).expect("valid"),
        ),
        (
            "H-CBA weights (TuA 1/2)".into(),
            CreditConfig::paper_hcba(maxl).expect("valid"),
        ),
        (
            "CBA cap 2xMaxL on TuA".into(),
            CreditConfig::homogeneous(4, maxl)
                .expect("valid")
                .with_cap_multipliers(vec![2, 1, 1, 1])
                .expect("valid"),
        ),
    ];
    let mut rows = Vec::new();
    for (i, (label, credit)) in variants.into_iter().enumerate() {
        let setup = BusSetup::Custom {
            policy: PolicyKind::RandomPermutation,
            cba: Some(credit),
        };
        let contenders: Vec<CoreLoad> = (0..3)
            .map(|i| CoreLoad::Periodic {
                duration: maxl,
                period: 500,
                phase: 150 * i as u64,
            })
            .collect();
        let mut spec = RunSpec::paper(setup, Scenario::Custom(contenders), tua.clone());
        spec.wcet_mode = false;
        spec.record_trace = true;
        let result = Campaign::new(spec, runs, seed ^ (i as u64) << 8).run();
        let mut burst = 0.0;
        let mut gap = 0.0;
        let mut counted = 0.0;
        for r in result.results() {
            if let Some(b) = r.max_burst[0] {
                burst += b as f64;
            }
            let worst_gap = (1..4).filter_map(|c| r.max_grant_gap[c]).max().unwrap_or(0);
            gap += worst_gap as f64;
            counted += 1.0;
        }
        rows.push(AblationRow {
            variant: label,
            tua_cycles: result.mean(),
            slowdown: result.mean() / iso,
            tua_max_burst: burst / counted,
            contender_max_gap: gap / counted,
        });
    }
    rows
}

/// Full MBPTA analysis of one benchmark under one setup: WCET-mode
/// campaign, iid battery, pWCET fit, plus an operation-mode campaign (the
/// "deployment" contention) whose maximum the pWCET bound must dominate.
#[derive(Debug, Clone)]
pub struct PwcetAnalysis {
    /// Benchmark name.
    pub benchmark: String,
    /// Setup label.
    pub setup: String,
    /// The fitted model (WCET-estimation-mode samples).
    pub model: PWcetModel,
    /// The iid applicability report.
    pub iid: IidReport,
    /// Highest execution time seen in WCET-estimation mode.
    pub max_analysis: f64,
    /// Highest execution time seen in operation mode with real co-runners.
    pub max_operation: f64,
}

/// Runs the MBPTA protocol for `profile` on the paper platform under
/// `setup`.
///
/// # Errors
///
/// Propagates fit errors (degenerate samples etc.).
pub fn pwcet_analysis(
    profile: &EembcProfile,
    setup: BusSetup,
    runs: usize,
    seed: u64,
) -> Result<PwcetAnalysis, MbptaError> {
    // Analysis-time campaign: WCET-estimation mode.
    let spec = RunSpec::paper(
        setup.clone(),
        Scenario::MaxContention,
        CoreLoad::Profile(profile.clone()),
    );
    let analysis = Campaign::new(spec, runs, seed).run();
    let (model, iid) = PWcetModel::analyze(analysis.samples(), MbptaConfig::default())?;

    // Deployment-time campaign: real periodic co-runners, operation mode.
    let co_runners: Vec<CoreLoad> = (0..3)
        .map(|i| CoreLoad::Periodic {
            duration: 28,
            period: 90 + 10 * i as u64,
            phase: 13 * i as u64,
        })
        .collect();
    let mut op_spec = RunSpec::paper(
        setup.clone(),
        Scenario::Custom(co_runners),
        CoreLoad::Profile(profile.clone()),
    );
    op_spec.wcet_mode = false;
    let operation = Campaign::new(op_spec, runs, seed ^ 0x0D15EA5E).run();

    let max_of = |samples: &[f64]| samples.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    Ok(PwcetAnalysis {
        benchmark: profile.name.to_string(),
        setup: setup.label(),
        model,
        iid,
        max_analysis: max_of(analysis.samples()),
        max_operation: max_of(operation.samples()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_workloads::suite;

    #[test]
    fn fig1_produces_six_cells_per_benchmark() {
        let mut quick = suite::rspeed();
        quick.accesses = 300;
        let cells = fig1(&[quick], 3, 1);
        assert_eq!(cells.len(), 6);
        // First cell is the RP-ISO normalizer.
        assert_eq!(cells[0].setup, "RP");
        assert_eq!(cells[0].scenario, "ISO");
        assert!((cells[0].normalized - 1.0).abs() < 1e-12);
        // CON must not be faster than ISO for the same setup.
        for pair in cells.chunks(2) {
            assert!(
                pair[1].normalized >= pair[0].normalized * 0.95,
                "CON faster than ISO: {pair:?}"
            );
        }
    }

    #[test]
    fn digest_extracts_extremes() {
        let cells = vec![
            Fig1Cell {
                benchmark: "a".into(),
                setup: "RP".into(),
                scenario: "CON",
                mean_cycles: 0.0,
                normalized: 3.0,
                ci95: 0.0,
            },
            Fig1Cell {
                benchmark: "b".into(),
                setup: "RP".into(),
                scenario: "CON",
                mean_cycles: 0.0,
                normalized: 2.0,
                ci95: 0.0,
            },
            Fig1Cell {
                benchmark: "a".into(),
                setup: "CBA".into(),
                scenario: "CON",
                mean_cycles: 0.0,
                normalized: 1.8,
                ci95: 0.0,
            },
            Fig1Cell {
                benchmark: "a".into(),
                setup: "CBA".into(),
                scenario: "ISO",
                mean_cycles: 0.0,
                normalized: 1.05,
                ci95: 0.0,
            },
        ];
        let digest = fig1_digest(&cells);
        assert_eq!(digest.worst_rp_con, ("a".into(), 3.0));
        assert_eq!(digest.worst_cba_con, ("a".into(), 1.8));
        assert!((digest.cba_iso_overhead - 0.05).abs() < 1e-12);
    }

    #[test]
    fn illustrative_request_fair_far_worse_than_cba() {
        let rows = illustrative(2, 3);
        let rr = rows.iter().find(|r| r.config.starts_with("RR")).unwrap();
        let cba = rows.iter().find(|r| r.config.contains("CBA")).unwrap();
        assert!(
            rr.slowdown > cba.slowdown * 1.5,
            "request-fair {} vs CBA {}",
            rr.slowdown,
            cba.slowdown
        );
    }

    #[test]
    fn sweep_cba_bounds_slowdown() {
        let rows = fairness_sweep(&[2], &[5, 56], 2, 5);
        let unbounded = rows
            .iter()
            .find(|r| !r.cba && r.contender_duration == 56)
            .unwrap();
        let bounded = rows
            .iter()
            .find(|r| r.cba && r.contender_duration == 56)
            .unwrap();
        assert!(unbounded.slowdown > bounded.slowdown);
        // The credit filter bounds the slowdown even at an 11x request-
        // length mismatch. The bound is ~2N, not N: the bus is
        // non-preemptive, so each of the TuA's short recovery windows can
        // admit one full MaxL contender transaction (see EXPERIMENTS.md).
        assert!(
            bounded.slowdown < 2.0 * 2.0 + 0.3,
            "2-core CBA slowdown must stay under ~2N: {}",
            bounded.slowdown
        );
        // Without CBA the slowdown scales with the duration ratio instead:
        // 1 + 56/5 ≈ 12.
        assert!(
            unbounded.slowdown > 8.0,
            "RR slowdown should scale with the ratio: {}",
            unbounded.slowdown
        );
    }
}
