//! The name-keyed [`AgentRegistry`]: how [`CoreLoad`]s become live
//! [`SimAgent`]s.
//!
//! PR 1 unified the bus side behind `sim_core::BusModel`; this module
//! opens the *client* side the same way. Every workload kind the
//! platform can place on a core — the full core model running a
//! benchmark, saturating/periodic contenders, fixed-request tasks, the
//! idle slot — is registered under a **kind name** (the prefix of the
//! scenario load-spec mini-language: `bench`, `profile`, `stream`,
//! `sat`, `per`, `fixed`, `idle`), and `run_once` builds agents purely
//! through the registry. Downstream users register new kinds with
//! [`AgentRegistry::register`] and reference them from scenario files as
//! `agent:KIND:ARGS...` ([`CoreLoad::Custom`]) — no edit to
//! `cba-platform` required.
//!
//! Agents are built against the *port* trait object
//! (`dyn RequestPort`), so one registration drives the flat [`Bus`](cba_bus::Bus)
//! and the hierarchical [`Fabric`](cba_bus::fabric::Fabric) alike;
//! [`PortAgent`] bridges the boxed port-generic agent into the
//! model-generic [`Simulation`](sim_core::Simulation) facade.

use crate::config::PlatformConfig;
use crate::platform::CoreLoad;
use cba_bus::{CompletedTransaction, RequestPort};
use cba_cpu::{Contender, Core, FixedRequestTask, MemAgent, PeriodicContender};
use cba_mem::{shared_hub, SharedHub};
use cba_workloads::{Streaming, SyntheticEembc};
use sim_core::agent::{AgentStats, SimAgent};
use sim_core::rng::SimRng;
use sim_core::{Control, CoreId, Cycle};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A boxed agent posting through the workspace's client port — the
/// currency of the registry.
pub type BoxedPortAgent = Box<dyn SimAgent<dyn RequestPort, CompletedTransaction>>;

/// Everything an agent builder may consult.
pub struct AgentCtx<'a> {
    /// The core the agent will drive.
    pub core: CoreId,
    /// The load being built (builders for custom kinds usually only need
    /// [`AgentCtx::args`]).
    pub load: &'a CoreLoad,
    /// Raw `:`-separated arguments, for [`CoreLoad::Custom`] kinds
    /// (empty for built-ins, whose parameters live in the enum variant).
    pub args: &'a [String],
    /// The platform being assembled (latency model, cache geometry,
    /// store-buffer depth).
    pub platform: &'a PlatformConfig,
    /// This agent's private random stream, already forked per core from
    /// the run seed. Fork sub-streams from it; never reseed it.
    pub rng: &'a mut SimRng,
    /// The run's MESI coherence hub, present when the run spec placed at
    /// least one `shared` load (the engines create one hub per run).
    /// When a `shared` agent is built with `None` here — e.g. in a
    /// single-agent conformance harness — the builder makes a private
    /// per-call hub.
    pub hub: Option<SharedHub>,
}

type Builder = Box<dyn Fn(&mut AgentCtx<'_>) -> Result<BoxedPortAgent, String> + Send + Sync>;

/// A name-keyed table of agent builders.
///
/// [`AgentRegistry::builtin`] covers every load kind the scenario format
/// ships; [`AgentRegistry::register`] adds (or overrides) kinds. Pass a
/// custom registry to [`run_once_with`](crate::platform::run_once_with)
/// — the plain [`run_once`](crate::platform::run_once) uses the shared
/// [`default_registry`].
pub struct AgentRegistry {
    builders: BTreeMap<String, Builder>,
}

impl std::fmt::Debug for AgentRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl Default for AgentRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl AgentRegistry {
    /// An empty registry (no kinds at all).
    pub fn empty() -> Self {
        AgentRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// The built-in kinds: `bench`, `profile`, `stream` (the full core
    /// model), `sat`, `per`, `fixed` (the synthetic clients), `idle`, and
    /// the miss-stream memory agents `mem` (private hierarchy only) and
    /// `shared` (coherent through the run's MESI hub).
    pub fn builtin() -> Self {
        let mut reg = Self::empty();
        for kind in ["bench", "profile", "stream"] {
            reg.register(kind, build_core_agent);
        }
        for kind in ["mem", "shared"] {
            reg.register(kind, build_mem_agent);
        }
        reg.register("sat", |ctx: &mut AgentCtx<'_>| {
            let CoreLoad::Saturating { duration } = ctx.load else {
                return Err(format!("kind 'sat' cannot build '{}'", ctx.load));
            };
            let maxl = ctx.platform.latency.max_latency();
            if *duration > maxl {
                return Err(format!("contender duration {duration} exceeds MaxL {maxl}"));
            }
            Ok(Box::new(Contender::new(ctx.core, *duration)))
        });
        reg.register("per", |ctx: &mut AgentCtx<'_>| {
            let CoreLoad::Periodic {
                duration,
                period,
                phase,
            } = ctx.load
            else {
                return Err(format!("kind 'per' cannot build '{}'", ctx.load));
            };
            Ok(Box::new(PeriodicContender::new(
                ctx.core, *duration, *period, *phase,
            )))
        });
        reg.register("fixed", |ctx: &mut AgentCtx<'_>| {
            let CoreLoad::FixedTask {
                n_requests,
                duration,
                gap,
            } = ctx.load
            else {
                return Err(format!("kind 'fixed' cannot build '{}'", ctx.load));
            };
            Ok(Box::new(FixedRequestTask::new(
                ctx.core,
                *n_requests,
                *duration,
                *gap,
            )))
        });
        reg.register("idle", |_ctx: &mut AgentCtx<'_>| {
            Ok(Box::new(sim_core::agent::Idle::new()) as BoxedPortAgent)
        });
        reg
    }

    /// Registers (or overrides) the builder for `kind`.
    pub fn register(
        &mut self,
        kind: &str,
        builder: impl Fn(&mut AgentCtx<'_>) -> Result<BoxedPortAgent, String> + Send + Sync + 'static,
    ) {
        self.builders.insert(kind.to_string(), Box::new(builder));
    }

    /// The registered kind names, sorted.
    pub fn kinds(&self) -> Vec<&str> {
        self.builders.keys().map(String::as_str).collect()
    }

    /// Whether `kind` is registered.
    pub fn contains(&self, kind: &str) -> bool {
        self.builders.contains_key(kind)
    }

    /// Builds the agent for `load` on `core`.
    ///
    /// # Errors
    ///
    /// Returns a description when the load's kind is unregistered or its
    /// arguments are invalid.
    pub fn build(
        &self,
        load: &CoreLoad,
        core: CoreId,
        platform: &PlatformConfig,
        rng: &mut SimRng,
    ) -> Result<BoxedPortAgent, String> {
        self.build_shared(load, core, platform, None, rng)
    }

    /// Builds the agent for `load` on `core`, handing shared-state
    /// builders (the `shared` memory kind) the run's coherence hub.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AgentRegistry::build`].
    pub fn build_shared(
        &self,
        load: &CoreLoad,
        core: CoreId,
        platform: &PlatformConfig,
        hub: Option<SharedHub>,
        rng: &mut SimRng,
    ) -> Result<BoxedPortAgent, String> {
        let kind = load.kind();
        let builder = self.builders.get(kind).ok_or_else(|| {
            format!(
                "no agent kind '{kind}' registered (available: {})",
                self.kinds().join(", ")
            )
        })?;
        let empty: &[String] = &[];
        let args = match load {
            CoreLoad::Custom { args, .. } => args.as_slice(),
            _ => empty,
        };
        let mut ctx = AgentCtx {
            core,
            load,
            args,
            platform,
            rng,
            hub,
        };
        builder(&mut ctx)
    }
}

/// Builds a miss-stream [`MemAgent`] for the `mem` (private) and
/// `shared` (coherent) kinds. The stream parameters come from the
/// platform's `[memory]` configuration, not from load-spec arguments.
fn build_mem_agent(ctx: &mut AgentCtx<'_>) -> Result<BoxedPortAgent, String> {
    let kind = ctx.load.kind();
    if !ctx.args.is_empty() {
        return Err(format!(
            "kind '{kind}' takes no arguments; its parameters live in the [memory] section"
        ));
    }
    let config = ctx.platform.memory.clone().ok_or_else(|| {
        format!("load 'agent:{kind}' requires the platform's [memory] configuration")
    })?;
    config.validate().map_err(|e| e.to_string())?;
    let hub = if kind == "shared" {
        Some(match &ctx.hub {
            Some(hub) => hub.clone(),
            // Single-agent harnesses (conformance, unit tests) build
            // without a run-wide hub; a private one is behaviorally
            // identical when no sibling shares the segment.
            None => shared_hub(ctx.platform.n_cores, config.shared_lines),
        })
    } else {
        None
    };
    Ok(Box::new(MemAgent::new(
        ctx.core,
        config,
        ctx.platform.latency,
        hub,
        ctx.rng,
    )))
}

/// Builds the full core model for the `bench` / `profile` / `stream`
/// kinds (one builder: they differ only in the program fed to the core).
fn build_core_agent(ctx: &mut AgentCtx<'_>) -> Result<BoxedPortAgent, String> {
    let program: Box<dyn cba_cpu::Program> = match ctx.load {
        CoreLoad::Profile(profile) => Box::new(SyntheticEembc::new(profile.clone())),
        CoreLoad::Named(name) => {
            cba_workloads::by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?
        }
        CoreLoad::Streaming { accesses } => Box::new(Streaming::new(*accesses)),
        other => return Err(format!("core-model kinds cannot build '{other}'")),
    };
    let platform = ctx.platform;
    Ok(Box::new(Core::with_store_buffer(
        ctx.core,
        program,
        &platform.hierarchy,
        platform.latency,
        platform.store_buffer,
        ctx.rng,
    )))
}

/// The shared built-in registry used by
/// [`run_once`](crate::platform::run_once).
pub fn default_registry() -> &'static AgentRegistry {
    static REGISTRY: OnceLock<AgentRegistry> = OnceLock::new();
    REGISTRY.get_or_init(AgentRegistry::builtin)
}

/// Bridges a port-generic boxed agent into the model-generic
/// [`Simulation`](sim_core::Simulation) facade: the registry builds
/// agents against `dyn RequestPort`, the facade drives a concrete model
/// `M`, and this adapter unsizes `&mut M` per call. One virtual hop per
/// tick — measured to be within noise of the old closed-enum dispatch.
pub struct PortAgent(BoxedPortAgent);

impl PortAgent {
    /// Wraps a registry-built agent.
    pub fn new(inner: BoxedPortAgent) -> Self {
        PortAgent(inner)
    }

    /// The wrapped agent.
    pub fn inner(&self) -> &dyn SimAgent<dyn RequestPort, CompletedTransaction> {
        &*self.0
    }
}

impl<M: RequestPort + 'static> SimAgent<M, CompletedTransaction> for PortAgent {
    fn tick(
        &mut self,
        now: Cycle,
        completed: Option<&CompletedTransaction>,
        port: &mut M,
    ) -> Control {
        self.0.tick(now, completed, port as &mut dyn RequestPort)
    }

    fn wake_at(&self) -> Option<Cycle> {
        self.0.wake_at()
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn is_inert(&self) -> bool {
        self.0.is_inert()
    }

    fn done_at(&self) -> Option<Cycle> {
        self.0.done_at()
    }

    fn absorb_skipped(&mut self, skipped: u64) {
        self.0.absorb_skipped(skipped);
    }

    fn reset(&mut self, rng: &mut SimRng) {
        self.0.reset(rng);
    }

    fn stats(&self) -> AgentStats {
        self.0.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusSetup;
    use cba_bus::{Bus, BusConfig, BusRequest, PolicyKind, RequestKind};

    fn ctx_platform() -> PlatformConfig {
        PlatformConfig::paper(&BusSetup::Rp)
    }

    #[test]
    fn builtin_registry_covers_every_shipped_kind() {
        let reg = AgentRegistry::builtin();
        for kind in [
            "bench", "profile", "stream", "sat", "per", "fixed", "idle", "mem", "shared",
        ] {
            assert!(reg.contains(kind), "missing builtin kind '{kind}'");
        }
        let mut platform = ctx_platform();
        platform.memory = Some(cba_mem::MemoryConfig::default());
        let mut rng = SimRng::seed_from(7);
        let loads = [
            CoreLoad::named("rspeed"),
            CoreLoad::Streaming { accesses: 10 },
            CoreLoad::Saturating { duration: 56 },
            CoreLoad::Periodic {
                duration: 5,
                period: 100,
                phase: 0,
            },
            CoreLoad::FixedTask {
                n_requests: 10,
                duration: 6,
                gap: 4,
            },
            CoreLoad::Idle,
            CoreLoad::Custom {
                kind: "mem".into(),
                args: vec![],
            },
            CoreLoad::Custom {
                kind: "shared".into(),
                args: vec![],
            },
        ];
        for load in &loads {
            reg.build(load, CoreId::from_index(0), &platform, &mut rng)
                .unwrap_or_else(|e| panic!("{load}: {e}"));
        }
    }

    #[test]
    fn mem_kinds_require_a_memory_configuration() {
        let reg = AgentRegistry::builtin();
        let platform = ctx_platform();
        assert!(platform.memory.is_none());
        for kind in ["mem", "shared"] {
            let load = CoreLoad::Custom {
                kind: kind.into(),
                args: vec![],
            };
            let err = match reg.build(
                &load,
                CoreId::from_index(0),
                &platform,
                &mut SimRng::seed_from(1),
            ) {
                Err(e) => e,
                Ok(_) => panic!("must demand [memory]"),
            };
            assert!(err.contains("[memory]"), "{err}");
        }
        // Arguments on the load spec are rejected: parameters live in
        // [memory], not in the spec.
        let mut with_mem = ctx_platform();
        with_mem.memory = Some(cba_mem::MemoryConfig::default());
        let load = CoreLoad::Custom {
            kind: "mem".into(),
            args: vec!["64".into()],
        };
        let err = match reg.build(
            &load,
            CoreId::from_index(0),
            &with_mem,
            &mut SimRng::seed_from(1),
        ) {
            Err(e) => e,
            Ok(_) => panic!("args must be rejected"),
        };
        assert!(err.contains("takes no arguments"), "{err}");
    }

    #[test]
    fn unknown_kind_is_a_build_error_naming_the_alternatives() {
        let reg = AgentRegistry::builtin();
        let load = CoreLoad::Custom {
            kind: "warp".into(),
            args: vec!["9".into()],
        };
        let err = match reg.build(
            &load,
            CoreId::from_index(0),
            &ctx_platform(),
            &mut SimRng::seed_from(0),
        ) {
            Err(e) => e,
            Ok(_) => panic!("unknown kind must not build"),
        };
        assert!(err.contains("no agent kind 'warp'"), "{err}");
        assert!(err.contains("idle"), "alternatives listed: {err}");
    }

    #[test]
    fn custom_kinds_register_and_build_without_touching_the_platform() {
        /// A burst agent: posts `count` back-to-back `duration`-cycle
        /// requests, then goes silent.
        struct Burst {
            core: CoreId,
            left: u64,
            duration: u32,
            done_at: Option<Cycle>,
        }

        impl<P: RequestPort + ?Sized> SimAgent<P, CompletedTransaction> for Burst {
            fn tick(
                &mut self,
                now: Cycle,
                _completed: Option<&CompletedTransaction>,
                port: &mut P,
            ) -> Control {
                if self.left > 0 && port.can_accept(self.core) {
                    port.post(
                        BusRequest::new(self.core, self.duration, RequestKind::Synthetic, now)
                            .unwrap(),
                    )
                    .unwrap();
                    self.left -= 1;
                    if self.left == 0 {
                        self.done_at = Some(now);
                    }
                }
                Control::Sleep(Cycle::MAX)
            }
            fn wake_at(&self) -> Option<Cycle> {
                Some(Cycle::MAX)
            }
            fn is_done(&self) -> bool {
                self.left == 0
            }
            fn done_at(&self) -> Option<Cycle> {
                self.done_at
            }
            fn reset(&mut self, _rng: &mut SimRng) {}
        }

        let mut reg = AgentRegistry::builtin();
        reg.register("burst", |ctx: &mut AgentCtx<'_>| {
            let [count, duration] = ctx.args else {
                return Err("burst expects COUNT:DURATION".into());
            };
            Ok(Box::new(Burst {
                core: ctx.core,
                left: count.parse().map_err(|_| "bad count".to_string())?,
                duration: duration.parse().map_err(|_| "bad duration".to_string())?,
                done_at: None,
            }))
        });
        let load = CoreLoad::Custom {
            kind: "burst".into(),
            args: vec!["3".into(), "5".into()],
        };
        let mut agent = reg
            .build(
                &load,
                CoreId::from_index(0),
                &ctx_platform(),
                &mut SimRng::seed_from(1),
            )
            .expect("custom kind builds");

        // Drive it on a real bus through the port object.
        let mut bus = Bus::new(
            BusConfig::new(1, 56).unwrap(),
            PolicyKind::RoundRobin.build(1, 56),
        );
        for now in 0..100u64 {
            let done = sim_core::BusModel::begin_cycle(&mut bus, now);
            agent.tick(now, done.as_ref(), &mut bus as &mut dyn RequestPort);
            sim_core::BusModel::end_cycle(&mut bus, now);
        }
        assert!(agent.is_done());
        assert_eq!(bus.trace().total_slots(), 3);
    }
}
