//! Slot-probability weighting is not bandwidth weighting: LOTTERYBUS-style
//! ticket skew vs H-CBA recovery-weight skew.
//!
//! The paper's Section II argument applies to every slot-fair mechanism,
//! including weighted ones: giving a core 3x the lottery tickets triples
//! its *grant probability*, but with short requests against long-request
//! contenders that still translates into a small *cycle* share. H-CBA
//! allocates bandwidth directly. This bench quantifies the difference for
//! the favored short-request core.

use cba_bench::{print_row, rule, runs_from_env, seed_from_env};
use cba_bus::policies::Lottery;
use cba_bus::{Bus, BusConfig};
use cba_cpu::Contender;
use cba_platform::{run_once, BusSetup, CoreLoad, RunSpec, Scenario, StopCondition};
use sim_core::{CoreId, Simulation, StopWhen};

/// Favored core issues 5-cycle requests, three contenders issue 56-cycle
/// requests, all saturating; returns the favored core's absolute cycle
/// share under the given raw-bus assembly. Built on the `Simulation`
/// facade: the saturating traffic *is* the `Contender` agent, no
/// hand-rolled drive closure needed.
fn lottery_share(tickets: Vec<u32>, horizon: u64) -> f64 {
    let bus = Bus::new(
        BusConfig::new(4, 56).unwrap(),
        Box::new(Lottery::with_tickets(tickets).unwrap()),
    );
    let mut builder = Simulation::builder().model(bus);
    for i in 0..4 {
        let d = if i == 0 { 5 } else { 56 };
        builder = builder.agent(Contender::new(CoreId::from_index(i), d));
    }
    let sim = builder.stop(StopWhen::Horizon(horizon)).run();
    sim.model().trace().busy_cycles(CoreId::from_index(0)) as f64 / horizon as f64
}

fn platform_share(setup: BusSetup, seed: u64, horizon: u64) -> f64 {
    let mut spec = RunSpec::paper(
        setup,
        Scenario::Custom(
            (0..3)
                .map(|_| CoreLoad::Saturating { duration: 56 })
                .collect(),
        ),
        CoreLoad::FixedTask {
            n_requests: 1,
            duration: 5,
            gap: 0,
        },
    );
    spec.loads[0] = CoreLoad::Saturating { duration: 5 };
    spec.wcet_mode = false;
    spec.stop = StopCondition::Horizon(horizon);
    run_once(&spec, seed).absolute_cycle_share(0)
}

fn main() {
    let _ = runs_from_env(1);
    let seed = seed_from_env();
    let horizon = 300_000u64;
    println!("SLOT WEIGHTING vs BANDWIDTH WEIGHTING (horizon {horizon} cycles, seed {seed})");
    println!("core 0: saturating 5-cycle requests; cores 1-3: saturating 56-cycle requests\n");

    rule(66);
    print_row(&[
        ("mechanism", 34),
        ("target for core 0", 19),
        ("cycle share", 12),
    ]);
    rule(66);
    let rows: Vec<(String, String, f64)> = vec![
        (
            "lottery, equal tickets".into(),
            "25% of grants".into(),
            lottery_share(vec![1, 1, 1, 1], horizon),
        ),
        (
            "lottery, 3x tickets for core 0".into(),
            "50% of grants".into(),
            lottery_share(vec![3, 1, 1, 1], horizon),
        ),
        (
            "lottery, 9x tickets for core 0".into(),
            "75% of grants".into(),
            lottery_share(vec![9, 1, 1, 1], horizon),
        ),
        (
            "RP + CBA (homogeneous)".into(),
            "25% of cycles".into(),
            platform_share(BusSetup::Cba, seed, horizon),
        ),
        (
            "RP + H-CBA (weights 3/1/1/1)".into(),
            "50% of cycles".into(),
            platform_share(BusSetup::HCba, seed, horizon),
        ),
    ];
    for (mechanism, target, share) in &rows {
        print_row(&[
            (mechanism, 34),
            (target, 19),
            (&format!("{:.1}%", 100.0 * share), 12),
        ]);
    }
    rule(66);
    println!();
    println!("Even a 9x ticket skew (75% of grants) leaves the short-request core");
    println!("with a small fraction of the bandwidth — slot probability does not");
    println!("compose with heterogeneous durations. H-CBA's recovery weights act");
    println!("on cycles directly, which is the paper's point.");
}
