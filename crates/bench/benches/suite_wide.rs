//! Extension of Figure 1 to the whole synthetic Autobench catalog (the
//! paper evaluates four benchmarks; the other four validate that the
//! orderings generalize across traffic shapes, including the
//! ifetch-heavy, store-dominated and genuinely memory-bound members).

use cba_bench::{print_row, rule, runs_from_env, seed_from_env};
use cba_platform::experiments::{fig1, fig1_digest};
use cba_workloads::suite;

fn main() {
    let runs = runs_from_env(40);
    let seed = seed_from_env();
    println!("SUITE-WIDE FIGURE 1 ({runs} runs per bar, seed {seed}) — all 8 catalog benchmarks\n");

    let cells = fig1(&suite::all_profiles(), runs, seed);
    rule(76);
    print_row(&[
        ("benchmark", 10),
        ("RP-CON", 8),
        ("CBA-ISO", 9),
        ("CBA-CON", 9),
        ("H-CBA-CON", 10),
        ("CBA gain", 9),
    ]);
    rule(76);
    for profile in suite::all_profiles() {
        let get = |setup: &str, scen: &str| {
            cells
                .iter()
                .find(|c| c.benchmark == profile.name && c.setup == setup && c.scenario == scen)
                .map(|c| c.normalized)
                .unwrap_or(f64::NAN)
        };
        print_row(&[
            (profile.name, 10),
            (&format!("{:.2}", get("RP", "CON")), 8),
            (&format!("{:.3}", get("CBA", "ISO")), 9),
            (&format!("{:.2}", get("CBA", "CON")), 9),
            (&format!("{:.2}", get("H-CBA", "CON")), 10),
            (&format!("{:.2}x", get("RP", "CON") / get("CBA", "CON")), 9),
        ]);
    }
    rule(76);

    let digest = fig1_digest(&cells);
    println!();
    println!(
        "suite-wide worst RP-CON: {:.2}x on {}; worst CBA-CON: {:.2}x on {}",
        digest.worst_rp_con.1,
        digest.worst_rp_con.0,
        digest.worst_cba_con.1,
        digest.worst_cba_con.0
    );
    println!(
        "CBA reduces the CON slowdown for every benchmark: {}",
        suite::all_profiles().iter().all(|p| {
            let find = |setup: &str| {
                cells
                    .iter()
                    .find(|c| c.benchmark == p.name && c.setup == setup && c.scenario == "CON")
                    .map(|c| c.normalized)
                    .unwrap_or(f64::NAN)
            };
            find("CBA") <= find("RP") * 1.02
        })
    );
}
