//! E3 — regenerates the **Section II illustrative example**: a task with
//! 1,000 six-cycle requests (10,000 cycles in isolation) against three
//! streaming co-runners with 28-cycle requests.
//!
//! The paper's arithmetic: request-fair arbitration yields
//! `(10,000 - 6,000) + 1,000 x (6 + 84) = 94,000` cycles (9.4x); idealized
//! cycle-fair sharing yields `(10,000 - 6,000) + 1,000 x (6 + 18) =
//! 28,000` (2.8x). The simulation shows where the implementable mechanism
//! lands: CBA cannot reach the idealized 2.8x because the bus is
//! non-preemptive (a 28-cycle streamer transaction can always park in the
//! TuA's 18-cycle recovery window), but it stays bounded near the core
//! count while request-fair policies do not.

use cba_bench::{fmt_slowdown, print_row, rule, runs_from_env, seed_from_env};
use cba_platform::experiments::{illustrative, IllustrativeAnalytic};

fn main() {
    let runs = runs_from_env(40);
    let seed = seed_from_env();
    let analytic = IllustrativeAnalytic::paper();
    println!("SECTION II ILLUSTRATIVE EXAMPLE ({runs} runs per config, seed {seed})");
    println!("TuA: 1,000 requests x 6 cycles, 4-cycle gaps (isolation: 10,000 cycles)");
    println!("co-runners: 3 streamers, 28-cycle requests, always pending\n");

    println!("paper's analytic references:");
    println!(
        "  request-fair: {:.0} cycles ({})",
        analytic.request_fair,
        fmt_slowdown(analytic.request_fair / analytic.isolation)
    );
    println!(
        "  idealized cycle-fair: {:.0} cycles ({})",
        analytic.cycle_fair,
        fmt_slowdown(analytic.cycle_fair / analytic.isolation)
    );
    println!();

    let rows = illustrative(runs, seed);
    rule(56);
    print_row(&[("configuration", 24), ("mean cycles", 14), ("slowdown", 10)]);
    rule(56);
    for r in &rows {
        print_row(&[
            (&r.config, 24),
            (&format!("{:.0}", r.mean_cycles), 14),
            (&fmt_slowdown(r.slowdown), 10),
        ]);
    }
    rule(56);

    let request_fair_worst = rows
        .iter()
        .filter(|r| r.config.contains("request-fair"))
        .map(|r| r.slowdown)
        .fold(f64::NEG_INFINITY, f64::max);
    let cba = rows
        .iter()
        .find(|r| r.config.contains("CBA (cycle-fair)"))
        .expect("CBA row present");
    println!();
    println!(
        "request-fair worst {} vs CBA {} — CBA improves by {:.2}x (paper's analytic: 3.36x)",
        fmt_slowdown(request_fair_worst),
        fmt_slowdown(cba.slowdown),
        request_fair_worst / cba.slowdown
    );
}
