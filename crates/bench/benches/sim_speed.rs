//! End-to-end simulator throughput: the naive per-cycle loop versus the
//! event-horizon fast path, in simulated **cycles per second**.
//!
//! For each scenario the same seeded runs execute under both engines
//! (`DriveMode::Naive` / `DriveMode::Events`); the results are asserted
//! bit-identical, wall time is measured, and a machine-readable summary is
//! written to `BENCH_sim_speed.json` (via `sim_core::export`) so CI can
//! record the perf trajectory. `CBA_RUNS` scales the per-spec run count
//! (smoke mode in CI); `CBA_SEED` sets the master seed.
//!
//! Expected shape: multi-× speedups wherever the bus is idle for long
//! stretches (TDMA slot waits, credit-recovery gaps) or held by long
//! transactions (MaxL contenders), smaller but real wins on the cache-model
//! Figure-1 workloads whose compute phases still step per cycle.

use cba_bench::{print_row, rule, runs_from_env, seed_from_env};
use cba_platform::scenario::ScenarioDef;
use cba_platform::{run_once, DriveMode, RunResult, RunSpec};
use sim_core::export::Json;
use std::time::Instant;

/// One benchmark scenario: a label and the specs it runs.
struct Case {
    name: &'static str,
    what: &'static str,
    specs: Vec<RunSpec>,
}

fn specs_of(text: &str) -> Vec<RunSpec> {
    ScenarioDef::parse(text)
        .expect("bench scenario parses")
        .expand()
        .expect("bench scenario expands")
        .into_iter()
        .map(|cell| cell.spec)
        .collect()
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "paper_fig1",
            what: "canrdr through the core model, {RP,CBA} x {ISO,CON}",
            specs: specs_of(
                "[campaign]\nname = b\n[tua]\nload = bench:canrdr\n\
                 [sweep]\nsetup = rp,cba\nscenario = iso,con\n",
            ),
        },
        Case {
            name: "illustrative",
            what: "fixed 1000x(6+4) TuA vs 3 streaming 28-cycle co-runners, RR+CBA",
            specs: specs_of(
                "[campaign]\nname = b\n[platform]\npolicy = rr\ncba = homog\n\
                 [tua]\nload = fixed:1000:6:4\n[contenders]\nfill = sat:28\nwcet = off\n",
            ),
        },
        Case {
            name: "tdma_idle",
            what: "TDMA slots with a lone fixed-request TuA (idle-heavy)",
            specs: specs_of(
                "[campaign]\nname = b\n[platform]\npolicy = tdma\n\
                 [tua]\nload = fixed:1000:6:4\n[contenders]\nscenario = iso\n",
            ),
        },
        Case {
            name: "credit_recovery",
            what: "CBA WCET mode: MaxL contenders gated by budget recovery",
            specs: specs_of(
                "[campaign]\nname = b\n[platform]\ncba = homog\n\
                 [tua]\nload = fixed:500:6:4\n[contenders]\nscenario = con\n",
            ),
        },
    ]
}

/// Executes every (spec, run) of a case under `mode`; returns (simulated
/// cycles, elapsed seconds, the full run results for the identity check).
fn measure(case: &Case, runs: usize, seed: u64, mode: DriveMode) -> (u64, f64, Vec<RunResult>) {
    let mut cycles = 0u64;
    let mut results = Vec::with_capacity(case.specs.len() * runs);
    let start = Instant::now();
    for (si, spec) in case.specs.iter().enumerate() {
        let mut spec = spec.clone();
        spec.drive = mode;
        for run in 0..runs {
            let result = run_once(&spec, seed ^ ((si as u64) << 32 | run as u64));
            cycles += result.total_cycles;
            results.push(result);
        }
    }
    (cycles, start.elapsed().as_secs_f64(), results)
}

fn main() {
    let runs = runs_from_env(20);
    let seed = seed_from_env();
    println!("sim_speed: {runs} runs per spec, seed {seed}");
    rule(86);
    print_row(&[
        ("scenario", 16),
        ("sim cycles", 14),
        ("naive cyc/s", 14),
        ("events cyc/s", 14),
        ("speedup", 10),
    ]);
    rule(86);

    let mut rows = Vec::new();
    for case in cases() {
        let (naive_cycles, naive_secs, naive_results) =
            measure(&case, runs, seed, DriveMode::Naive);
        let (event_cycles, event_secs, event_results) =
            measure(&case, runs, seed, DriveMode::Events);
        assert_eq!(
            naive_results, event_results,
            "{}: engines disagree on run results",
            case.name
        );
        let naive_rate = naive_cycles as f64 / naive_secs;
        let event_rate = event_cycles as f64 / event_secs;
        let speedup = event_rate / naive_rate;
        print_row(&[
            (case.name, 16),
            (&format!("{naive_cycles}"), 14),
            (&format!("{naive_rate:.3e}"), 14),
            (&format!("{event_rate:.3e}"), 14),
            (&format!("{speedup:.2}x"), 10),
        ]);
        rows.push(Json::obj([
            ("name", Json::str(case.name)),
            ("what", Json::str(case.what)),
            ("specs", Json::Num(case.specs.len() as f64)),
            ("simulated_cycles", Json::Num(naive_cycles as f64)),
            ("naive_seconds", Json::Num(naive_secs)),
            ("events_seconds", Json::Num(event_secs)),
            ("naive_cycles_per_sec", Json::Num(naive_rate)),
            ("events_cycles_per_sec", Json::Num(event_rate)),
            ("speedup", Json::Num(speedup)),
        ]));
    }
    rule(86);

    let doc = Json::obj([
        ("bench", Json::str("sim_speed")),
        ("runs_per_spec", Json::Num(runs as f64)),
        ("seed", Json::Num(seed as f64)),
        ("scenarios", Json::Arr(rows)),
    ]);
    // Cargo runs benches with the package directory as CWD; anchor the
    // artifact at the workspace root so CI finds it in one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_speed.json");
    std::fs::write(path, doc.render()).expect("write BENCH_sim_speed.json");
    println!("sim_speed: wrote {path}");
}
