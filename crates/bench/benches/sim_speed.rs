//! Criterion benchmark of end-to-end simulation throughput: full-platform
//! runs (4 cores + caches + bus + credit filter), reported per run so the
//! cost of Monte-Carlo campaigns can be budgeted.

use cba_platform::{run_once, BusSetup, CoreLoad, RunSpec, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_run_once(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_once");
    group.sample_size(20);
    for (label, setup) in [("rp", BusSetup::Rp), ("cba", BusSetup::Cba)] {
        for (scen_label, scenario) in [
            ("iso", Scenario::Isolation),
            ("con", Scenario::MaxContention),
        ] {
            let spec = RunSpec::paper(setup.clone(), scenario.clone(), CoreLoad::named("canrdr"));
            let mut seed = 0u64;
            group.bench_function(format!("canrdr_{label}_{scen_label}"), |b| {
                b.iter(|| {
                    seed += 1;
                    black_box(run_once(&spec, seed))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_run_once);
criterion_main!(benches);
