//! End-to-end simulator throughput on the shipped scenarios: the naive
//! per-cycle loop, the event-horizon fast path, and the fluid
//! continuous-event backend, in simulated **cycles per second**.
//!
//! Every `scenarios/*.scn` expands to its full sweep grid; the same seeded
//! runs execute under each engine listed in `CBA_ENGINES` (comma-separated,
//! default `naive,events,fluid`). Listing an engine that does not exist is
//! a hard error — the bench panics with the parser's message instead of
//! emitting null columns for a backend nobody ran. Cross-checks ride
//! along: naive and events results are asserted bit-identical, and the
//! fluid rows record the worst per-core share deviation from events
//! (`fluid_share_dev`, expected ~0 — the in-tree fluid executor is exact).
//!
//! A machine-readable summary is written to `BENCH_sim_speed.json` (via
//! `sim_core::export`) so CI can record the perf trajectory. `CBA_RUNS`
//! scales the per-spec run count (smoke mode in CI); `CBA_SEED` sets the
//! master seed.
//!
//! Expected shape: the events engine wins multi-× wherever the bus idles
//! for long stretches; the fluid engine adds an order of magnitude or two
//! on top wherever a run settles into a steady limit cycle it can
//! fast-forward (`fairness_sweep`, `scaling_16core`), and roughly ties
//! events where every cycle carries fresh randomness or cache-model state.

use cba_bench::{print_row, rule, runs_from_env, seed_from_env};
use cba_platform::scenario::{parse_engine, ScenarioDef};
use cba_platform::{run_once, DriveMode, RunResult, RunSpec};
use sim_core::export::Json;
use std::time::Instant;

/// One benchmark scenario: a label and the specs of its expanded grid.
struct Case {
    name: String,
    specs: Vec<RunSpec>,
}

/// Every shipped `scenarios/*.scn`, expanded.
fn cases() -> Vec<Case> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            (p.extension().map(|x| x == "scn") == Some(true)).then_some(p)
        })
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no shipped scenarios under {dir}");
    paths
        .into_iter()
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().to_string();
            let text = std::fs::read_to_string(&path).expect("scenario readable");
            let specs = ScenarioDef::parse(&text)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .expand()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .into_iter()
                .map(|cell| cell.spec)
                .collect();
            Case { name, specs }
        })
        .collect()
}

/// The engine list under measurement. Unknown names are a hard error so a
/// stale `CBA_ENGINES` (or a removed backend) fails loudly instead of
/// producing a JSON row full of nulls.
fn engines_from_env() -> Vec<DriveMode> {
    let raw = std::env::var("CBA_ENGINES").unwrap_or_else(|_| "naive,events,fluid".into());
    let engines: Vec<DriveMode> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            parse_engine(name)
                .unwrap_or_else(|e| panic!("CBA_ENGINES: {e}; no columns were emitted"))
        })
        .collect();
    assert!(!engines.is_empty(), "CBA_ENGINES selected no engines");
    engines
}

/// Executes every (spec, run) of a case under `mode`; returns (simulated
/// cycles, elapsed seconds, the full run results for the cross-checks).
fn measure(case: &Case, runs: usize, seed: u64, mode: DriveMode) -> (u64, f64, Vec<RunResult>) {
    let mut cycles = 0u64;
    let mut results = Vec::with_capacity(case.specs.len() * runs);
    let start = Instant::now();
    for (si, spec) in case.specs.iter().enumerate() {
        let mut spec = spec.clone();
        spec.drive = mode;
        for run in 0..runs {
            let result = run_once(&spec, seed ^ ((si as u64) << 32 | run as u64));
            cycles += result.total_cycles;
            results.push(result);
        }
    }
    (cycles, start.elapsed().as_secs_f64(), results)
}

/// Worst per-core absolute share deviation between two engines' runs.
fn max_share_dev(a: &[RunResult], b: &[RunResult]) -> f64 {
    let mut dev = 0.0f64;
    for (ra, rb) in a.iter().zip(b) {
        for core in 0..ra.bus_busy.len() {
            dev = dev.max((ra.absolute_cycle_share(core) - rb.absolute_cycle_share(core)).abs());
        }
    }
    dev
}

fn main() {
    let runs = runs_from_env(20);
    let seed = seed_from_env();
    let engines = engines_from_env();
    let labels: Vec<String> = engines.iter().map(|e| e.to_string()).collect();
    println!(
        "sim_speed: {runs} runs per spec, seed {seed}, engines {}",
        labels.join(",")
    );
    rule(98);
    print_row(&[
        ("scenario", 20),
        ("sim cycles", 12),
        ("naive cyc/s", 13),
        ("events cyc/s", 13),
        ("fluid cyc/s", 13),
        ("ev/naive", 9),
        ("fluid/ev", 9),
    ]);
    rule(98);

    let mut rows = Vec::new();
    for case in cases() {
        // (seconds, cycles/sec, results) per engine, in naive/events/fluid
        // slots; engines not listed in CBA_ENGINES simply leave their slot
        // empty and their JSON keys absent (never null).
        let mut slots: [Option<(f64, f64, Vec<RunResult>)>; 3] = [None, None, None];
        let mut cycles = 0u64;
        for &engine in &engines {
            let (c, secs, results) = measure(&case, runs, seed, engine);
            cycles = c;
            let slot = match engine {
                DriveMode::Naive => 0,
                DriveMode::Events => 1,
                DriveMode::Fluid => 2,
                other => panic!("sim_speed has no column for engine '{other}'"),
            };
            slots[slot] = Some((secs, c as f64 / secs, results));
        }
        let [naive, events, fluid] = &slots;

        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::str(&case.name)),
            ("specs".into(), Json::Num(case.specs.len() as f64)),
            ("simulated_cycles".into(), Json::Num(cycles as f64)),
        ];
        for (label, slot) in [("naive", naive), ("events", events), ("fluid", fluid)] {
            if let Some((secs, rate, _)) = slot {
                fields.push((format!("{label}_seconds"), Json::Num(*secs)));
                fields.push((format!("{label}_cycles_per_sec"), Json::Num(*rate)));
            }
        }

        if let (Some((_, _, n)), Some((_, _, e))) = (naive, events) {
            assert_eq!(n, e, "{}: naive and events engines disagree", case.name);
        }
        let speedup = match (naive, events) {
            (Some((_, nr, _)), Some((_, er, _))) => {
                let s = er / nr;
                fields.push(("speedup".into(), Json::Num(s)));
                Some(s)
            }
            _ => None,
        };
        let fluid_speedup = match (events, fluid) {
            (Some((_, er, ev)), Some((_, fr, fl))) => {
                let s = fr / er;
                fields.push(("fluid_speedup_vs_events".into(), Json::Num(s)));
                let dev = max_share_dev(ev, fl);
                assert!(
                    dev <= 0.02,
                    "{}: fluid share deviation {dev:.4} above the 2% contract",
                    case.name
                );
                fields.push(("fluid_share_dev".into(), Json::Num(dev)));
                Some(s)
            }
            _ => None,
        };

        let fmt_rate = |slot: &Option<(f64, f64, Vec<RunResult>)>| {
            slot.as_ref()
                .map(|(_, r, _)| format!("{r:.3e}"))
                .unwrap_or_else(|| "-".into())
        };
        print_row(&[
            (&case.name, 20),
            (&format!("{cycles}"), 12),
            (&fmt_rate(naive), 13),
            (&fmt_rate(events), 13),
            (&fmt_rate(fluid), 13),
            (
                &speedup.map(|s| format!("{s:.2}x")).unwrap_or("-".into()),
                9,
            ),
            (
                &fluid_speedup
                    .map(|s| format!("{s:.1}x"))
                    .unwrap_or("-".into()),
                9,
            ),
        ]);
        rows.push(Json::obj(fields));
    }
    rule(98);

    let doc = Json::obj([
        ("bench", Json::str("sim_speed")),
        ("runs_per_spec", Json::Num(runs as f64)),
        ("seed", Json::Num(seed as f64)),
        ("engines", Json::Arr(labels.iter().map(Json::str).collect())),
        ("scenarios", Json::Arr(rows)),
    ]);
    // Cargo runs benches with the package directory as CWD; anchor the
    // artifact at the workspace root so CI finds it in one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_speed.json");
    std::fs::write(path, doc.render()).expect("write BENCH_sim_speed.json");
    println!("sim_speed: wrote {path}");
}
