//! E1 — regenerates **Figure 1**: normalized average execution times of
//! the EEMBC suite under {RP, CBA, H-CBA} x {isolation, max contention}.
//!
//! Defaults to a reduced run count; set `CBA_RUNS=1000` for the paper's
//! full campaign size.

use cba_bench::{print_row, rule, runs_from_env, seed_from_env};
use cba_platform::experiments::{fig1, fig1_digest};
use cba_workloads::suite;

fn main() {
    let runs = runs_from_env(120);
    let seed = seed_from_env();
    println!("FIGURE 1 — slowdown with and without CBA ({runs} runs per bar, seed {seed})");
    println!("normalized to each benchmark's RP-ISO mean; paper: Fig. 1\n");

    let cells = fig1(&suite::fig1_suite(), runs, seed);

    rule(72);
    print_row(&[
        ("benchmark", 10),
        ("config", 12),
        ("mean cycles", 12),
        ("normalized", 11),
        ("95% CI", 9),
    ]);
    rule(72);
    for c in &cells {
        print_row(&[
            (&c.benchmark, 10),
            (&format!("{}-{}", c.setup, c.scenario), 12),
            (&format!("{:.0}", c.mean_cycles), 12),
            (&format!("{:.3}", c.normalized), 11),
            (&format!("±{:.3}", c.ci95), 9),
        ]);
    }
    rule(72);

    let digest = fig1_digest(&cells);
    println!();
    println!("digest vs paper (Section IV.B):");
    println!(
        "  worst CON slowdown without CBA : {:.2}x on {:<8} (paper: 3.34x on matrix)",
        digest.worst_rp_con.1, digest.worst_rp_con.0
    );
    println!(
        "  worst CON slowdown with CBA    : {:.2}x on {:<8} (paper: 2.34x)",
        digest.worst_cba_con.1, digest.worst_cba_con.0
    );
    println!(
        "  CBA isolation overhead (mean)  : {:+.1}%          (paper: ~3%)",
        100.0 * digest.cba_iso_overhead
    );
    println!(
        "  H-CBA isolation overhead (mean): {:+.1}%          (paper: negligible)",
        100.0 * digest.hcba_iso_overhead
    );
    let all_below_4 = cells.iter().all(|c| c.normalized < 4.0);
    println!(
        "  all slowdowns below 4x         : {all_below_4}           (paper: \"slowdowns are below 4x\")"
    );
}
