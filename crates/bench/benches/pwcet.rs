//! E6 — the **MBPTA / WCET estimation** experiment (paper Section III.B):
//! CBA is compatible with measurement-based probabilistic timing analysis.
//!
//! For each Figure-1 benchmark on the CBA bus: collect execution times in
//! WCET-estimation mode (zero initial TuA budget, COMP-gated MaxL
//! contenders), check the iid hypothesis battery, fit the Gumbel pWCET
//! model, and verify that the resulting curve dominates both the analysis
//! measurements and an operation-mode deployment with live co-runners.

use cba_bench::{print_row, rule, runs_from_env, seed_from_env};
use cba_platform::experiments::pwcet_analysis;
use cba_platform::BusSetup;
use cba_workloads::suite;

fn main() {
    let runs = runs_from_env(150);
    let seed = seed_from_env();
    println!("pWCET ANALYSIS under CBA ({runs} analysis runs per benchmark, seed {seed})\n");
    let mut estimate_rows: Vec<(String, f64, f64)> = Vec::new();

    let ps = [1e-3, 1e-6, 1e-9, 1e-12, 1e-15];
    for profile in suite::fig1_suite() {
        match pwcet_analysis(&profile, BusSetup::Cba, runs, seed) {
            Err(e) => println!("{}: analysis failed: {e}\n", profile.name),
            Ok(a) => {
                println!("{} (setup {}):", a.benchmark, a.setup);
                println!(
                    "  iid battery: KS p={:.3}, Ljung-Box p={:.3}, runs-test p={:.3} -> {}",
                    a.iid.ks.p_value,
                    a.iid.ljung_box.p_value,
                    a.iid.runs.p_value,
                    if a.iid.passes(0.05) {
                        "PASS"
                    } else {
                        "MARGINAL"
                    }
                );
                println!(
                    "  Gumbel fit (block maxima): mu={:.0}, beta={:.1}",
                    a.model.gumbel().mu,
                    a.model.gumbel().beta
                );
                rule(44);
                print_row(&[("exceedance / run", 18), ("pWCET bound (cycles)", 22)]);
                rule(44);
                for &p in &ps {
                    print_row(&[
                        (&format!("{p:.0e}"), 18),
                        (&format!("{:.0}", a.model.quantile_per_run(p)), 22),
                    ]);
                }
                rule(44);
                let bound = a.model.quantile_per_run(1e-12);
                println!(
                    "  max observed: analysis {:.0}, operation {:.0}; pWCET(1e-12) dominates both: {}",
                    a.max_analysis,
                    a.max_operation,
                    bound >= a.max_analysis && bound >= a.max_operation
                );
                println!(
                    "  analysis-mode measurements upper-bound deployment: {}\n",
                    a.max_analysis >= a.max_operation
                );
                // Baseline comparison: the same analysis on the RP bus.
                if let Ok(rp) = pwcet_analysis(&profile, BusSetup::Rp, runs, seed) {
                    estimate_rows.push((
                        a.benchmark.clone(),
                        rp.model.quantile_per_run(1e-12),
                        a.model.quantile_per_run(1e-12),
                    ));
                }
            }
        }
    }

    // The paper's opening motivation: "Fair arbitration ... is fundamental
    // to obtain low WCET estimates". Compare the pWCET estimates the two
    // arbiters admit.
    println!("WCET-estimate comparison at 1e-12/run (lower is a tighter budget):");
    rule(58);
    print_row(&[
        ("benchmark", 10),
        ("RP pWCET", 14),
        ("CBA pWCET", 14),
        ("CBA/RP", 8),
    ]);
    rule(58);
    for (bench, rp, cba) in &estimate_rows {
        print_row(&[
            (bench, 10),
            (&format!("{rp:.0}"), 14),
            (&format!("{cba:.0}"), 14),
            (&format!("{:.2}", cba / rp), 8),
        ]);
    }
    rule(58);
}
