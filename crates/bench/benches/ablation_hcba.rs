//! E8 — ablation of the **Section III.A heterogeneous-allocation
//! choices**: recovery weights (the paper's evaluated H-CBA, variant 2)
//! versus letting the favored core's budget cap grow above MaxL (variant
//! 1).
//!
//! The paper's qualitative claim: the cap variant lets the favored core
//! issue requests back-to-back, "which is good for this core but creates
//! some temporal starvation to the others". The ablation measures both
//! effects: the TuA's longest grant burst and the contenders' worst
//! grant-to-grant gap.

use cba_bench::{fmt_slowdown, print_row, rule, runs_from_env, seed_from_env};
use cba_platform::experiments::ablation_hcba;

fn main() {
    let runs = runs_from_env(15);
    let seed = seed_from_env();
    println!("H-CBA ABLATION ({runs} runs per variant, seed {seed})");
    println!("TuA: 150 back-to-back MaxL (56-cycle) requests; contenders: one MaxL request per 500 cycles\n");

    let rows = ablation_hcba(runs, seed);
    rule(86);
    print_row(&[
        ("variant", 26),
        ("TuA cycles", 12),
        ("slowdown", 10),
        ("TuA max burst", 14),
        ("contender max gap", 18),
    ]);
    rule(86);
    for r in &rows {
        print_row(&[
            (&r.variant, 26),
            (&format!("{:.0}", r.tua_cycles), 12),
            (&fmt_slowdown(r.slowdown), 10),
            (&format!("{:.1}", r.tua_max_burst), 14),
            (&format!("{:.0}", r.contender_max_gap), 18),
        ]);
    }
    rule(86);

    let base = &rows[0];
    let weights = &rows[1];
    let cap = &rows[2];
    println!();
    println!("reading:");
    println!(
        "  weights speed up the TuA vs base CBA ({} -> {}),",
        fmt_slowdown(base.slowdown),
        fmt_slowdown(weights.slowdown)
    );
    println!(
        "  the cap enables bursts (max burst {:.1} -> {:.1}) at the price of",
        base.tua_max_burst, cap.tua_max_burst
    );
    println!(
        "  contender starvation (max gap {:.0} -> {:.0} cycles) — the paper's trade-off.",
        base.contender_max_gap, cap.contender_max_gap
    );
}
