//! Section III.C extension — split-transaction buses: "despite buses with
//! split transactions have more homogeneous request sizes, the worst-case
//! situation, having very long and very short requests, is possible since
//! atomic operations by definition cannot be split."
//!
//! A short-request core shares a split bus with three memory-bound
//! contenders. When the contenders' misses are split transactions, bus
//! occupancy homogenizes (5-cycle phases) and the short core thrives even
//! under slot-fair arbitration. Replace the contenders' traffic with
//! unsplittable atomics and the non-split pathology returns — and the CBA
//! filter restores the bandwidth split.

use cba::{CreditConfig, CreditFilter};
use cba_bench::{print_row, rule, seed_from_env};
use cba_bus::split::{SplitBus, SplitBusConfig, SplitRequest};
use cba_bus::{BusModel, PolicyKind};
use sim_core::CoreId;

#[derive(Clone, Copy)]
enum ContenderTraffic {
    SplitMisses,
    Atomics,
}

/// Returns (short-core completions, short-core absolute cycle share).
fn run(traffic: ContenderTraffic, with_cba: bool, horizon: u64) -> (u64, f64) {
    let mut bus = SplitBus::new(
        SplitBusConfig::paper(),
        PolicyKind::RandomPermutation.build(4, 56),
    )
    .expect("paper config");
    if with_cba {
        bus.set_filter(Box::new(CreditFilter::new(
            CreditConfig::homogeneous(4, 56).expect("paper config"),
        )));
    }
    let c0 = CoreId::from_index(0);
    let mut completions = 0u64;
    for now in 0..horizon {
        if bus.is_idle(c0) {
            bus.post(c0, SplitRequest::Immediate { duration: 5 })
                .expect("idle core accepts");
        }
        for i in 1..4 {
            let c = CoreId::from_index(i);
            if bus.is_idle(c) {
                let req = match traffic {
                    ContenderTraffic::SplitMisses => SplitRequest::Split,
                    ContenderTraffic::Atomics => SplitRequest::Atomic { duration: 56 },
                };
                bus.post(c, req).expect("idle core accepts");
            }
        }
        for comp in bus.tick(now) {
            if comp.core == c0 {
                completions += 1;
            }
        }
    }
    let share = bus.inner().trace().busy_cycles(c0) as f64 / horizon as f64;
    (completions, share)
}

fn main() {
    let _seed = seed_from_env();
    let horizon = 200_000u64;
    println!("SPLIT-TRANSACTION BUS (RP arbitration, horizon {horizon} cycles)");
    println!("core 0: saturating 5-cycle requests; cores 1-3: memory-bound traffic\n");

    rule(74);
    print_row(&[
        ("contender traffic", 22),
        ("filter", 8),
        ("short-core grants", 18),
        ("short-core share", 17),
    ]);
    rule(74);
    for (label, traffic) in [
        ("split misses", ContenderTraffic::SplitMisses),
        ("unsplittable atomics", ContenderTraffic::Atomics),
    ] {
        for with_cba in [false, true] {
            let (grants, share) = run(traffic, with_cba, horizon);
            print_row(&[
                (label, 22),
                (if with_cba { "CBA" } else { "none" }, 8),
                (&format!("{grants}"), 18),
                (&format!("{:.1}%", 100.0 * share), 17),
            ]);
        }
    }
    rule(74);
    println!();
    println!("With split misses the bus sees homogeneous 5-cycle phases and the");
    println!("short core is healthy without any filter. Atomics cannot be split:");
    println!("they restore the long-vs-short pathology on the bus — and the");
    println!("credit filter restores the short core's throughput, which is why");
    println!("the paper argues CBA is relevant even for split-transaction buses.");
}
