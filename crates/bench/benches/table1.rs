//! E2 — regenerates **Table I**: the arbiter's signal summary, generated
//! directly from the implementation's configuration (so the table can
//! never drift from the code). Prints the paper's homogeneous 4-core
//! configuration plus the H-CBA variant.

use cba::{CreditConfig, SignalTable};

fn main() {
    let base = CreditConfig::homogeneous(4, 56).expect("paper constants");
    println!("{}", SignalTable::new(&base));

    println!();
    println!("H-CBA variant (TuA recovers 1/2 per cycle, contenders 1/6):");
    println!();
    let hcba = CreditConfig::paper_hcba(56).expect("paper constants");
    println!("{}", SignalTable::new(&hcba));

    println!(
        "counter width: {} bits (paper: \"8-bit budget counter\")",
        base.counter_bits()
    );
    println!(
        "eligibility threshold: {} scaled units = MaxL x den = 56 x 4",
        base.scaled_threshold()
    );
    println!(
        "recovery after a MaxL transaction: {} cycles ((N-1) x MaxL)",
        base.recovery_cycles(sim_core::CoreId::from_index(0), 56)
    );
}
