//! Criterion microbenchmarks of the arbitration-path primitives: policy
//! selection, credit-filter eligibility/tick, and a full bus cycle. These
//! quantify the software cost of the "one clock cycle" hardware decision.

use cba::{CreditConfig, CreditFilter};
use cba_bus::{
    drive, Bus, BusConfig, BusRequest, Candidate, Control, EligibilityFilter, PendingSet,
    PolicyKind, RandomSource, RequestKind,
};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::rng::SimRng;
use sim_core::CoreId;
use std::hint::black_box;

fn candidates(n: usize) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            core: CoreId::from_index(i),
            issued_at: 0,
            duration: 56,
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_select");
    let cands = candidates(4);
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(4, 56);
        let mut rng = SimRng::seed_from(7);
        let mut t = 0u64;
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let w = policy.select(black_box(&cands), t, &mut rng as &mut dyn RandomSource);
                if let Some(core) = w {
                    policy.on_grant(core, t);
                }
                t += 1;
                black_box(w)
            })
        });
    }
    group.finish();
}

fn bench_credit_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("credit_filter");
    let pending = PendingSet::new(4);
    let mut filter = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
    group.bench_function("tick", |b| {
        let mut t = 0u64;
        b.iter(|| {
            filter.tick(t, Some(CoreId::from_index(0)), black_box(&pending));
            t += 1;
        })
    });
    group.bench_function("is_eligible_x4", |b| {
        b.iter(|| {
            let mut mask = 0u8;
            for i in 0..4 {
                if filter.is_eligible(CoreId::from_index(i), 0) {
                    mask |= 1 << i;
                }
            }
            black_box(mask)
        })
    });
    group.finish();
}

fn bench_bus_cycle(c: &mut Criterion) {
    // Timed through the shared engine: each sample drives a saturated bus
    // for CYCLES_PER_ITER cycles, so divide the reported time accordingly
    // for the per-cycle cost.
    const CYCLES_PER_ITER: u64 = 4096;
    let mut group = c.benchmark_group("bus_cycle");
    for (label, with_cba) in [("rp_x4096", false), ("rp_cba_x4096", true)] {
        let mut bus = Bus::new(
            BusConfig::new(4, 56).unwrap(),
            PolicyKind::RandomPermutation.build(4, 56),
        );
        if with_cba {
            bus.set_filter(Box::new(CreditFilter::new(
                CreditConfig::homogeneous(4, 56).unwrap(),
            )));
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                bus.reset();
                let outcome = drive(&mut bus, CYCLES_PER_ITER, |bus, now, _completed| {
                    for i in 0..4 {
                        let core = CoreId::from_index(i);
                        if !bus.has_pending(core) && bus.owner() != Some(core) {
                            bus.post(
                                BusRequest::new(core, 28, RequestKind::Contender, now).unwrap(),
                            )
                            .unwrap();
                        }
                    }
                    Control::Continue
                });
                black_box(outcome)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_credit_filter,
    bench_bus_cycle
);
criterion_main!(benches);
