//! E5 — the **implementation overheads** report (paper Section IV.B,
//! "Implementation Overheads").
//!
//! The paper synthesizes CBA into a 4-core LEON3 on a Stratix-IV FPGA:
//! occupancy grows from 73% by "far less than 0.1%", timing still closes
//! at 100 MHz. We cannot synthesize RTL here; the documented substitution
//! (EXPERIMENTS.md, E5) is (a) an auditable gate-level inventory of the logic CBA
//! adds, and (b) a software decision-latency measurement showing the
//! arbitration step is trivially cheap (the 1-cycle decision the paper
//! reports corresponds to a handful of gate levels).

use cba::cost::{PAPER_BASELINE_LUTS, STRATIX_IV_EP4SGX230_ALMS};
use cba::{CreditConfig, CreditFilter, HardwareCost};
use cba_bus::{Candidate, EligibilityFilter, PendingSet, PolicyKind, RandomSource};
use sim_core::rng::SimRng;
use sim_core::CoreId;
use std::time::Instant;

fn main() {
    println!("IMPLEMENTATION OVERHEADS (paper: <0.1% FPGA occupancy growth, 100 MHz)\n");

    println!("(a) hardware inventory added by CBA:");
    for (label, config) in [
        (
            "CBA  (4 cores, MaxL=56)",
            CreditConfig::homogeneous(4, 56).unwrap(),
        ),
        (
            "H-CBA (weights 3/1/1/1)",
            CreditConfig::paper_hcba(56).unwrap(),
        ),
        (
            "CBA  (8 cores, MaxL=56)",
            CreditConfig::homogeneous(8, 56).unwrap(),
        ),
    ] {
        let cost = HardwareCost::of(&config);
        println!(
            "  {label}: {cost}, ~{} ALMs -> +{:.3}pp device occupancy, {:.3}% of the LEON3 baseline",
            cost.alms,
            cost.device_occupancy_growth_pp(STRATIX_IV_EP4SGX230_ALMS),
            100.0 * cost.occupancy_fraction(PAPER_BASELINE_LUTS)
        );
    }
    let growth = HardwareCost::of(&CreditConfig::homogeneous(4, 56).unwrap())
        .device_occupancy_growth_pp(STRATIX_IV_EP4SGX230_ALMS);
    println!(
        "  paper claim (occupancy 73% grows by far less than 0.1%): {} ({growth:.3}pp on a {} ALM device)\n",
        growth < 0.1,
        STRATIX_IV_EP4SGX230_ALMS
    );

    println!("(b) software decision latency (arbitration step, this machine):");
    let mut policy = PolicyKind::RandomPermutation.build(4, 56);
    let mut filter = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
    let mut rng = SimRng::seed_from(1);
    let candidates: Vec<Candidate> = (0..4)
        .map(|i| Candidate {
            core: CoreId::from_index(i),
            issued_at: 0,
            duration: 56,
        })
        .collect();
    let pending = PendingSet::new(4);

    let iterations = 2_000_000u64;
    let start = Instant::now();
    let mut sink = 0u64;
    for t in 0..iterations {
        // One full arbitration step: filter the candidates, select, update
        // budgets.
        let eligible: Vec<Candidate> = candidates
            .iter()
            .filter(|c| filter.is_eligible(c.core, t))
            .copied()
            .collect();
        if let Some(w) = policy.select(&eligible, t, &mut rng as &mut dyn RandomSource) {
            policy.on_grant(w, t);
            sink = sink.wrapping_add(w.index() as u64);
        }
        filter.tick(t, None, &pending);
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iterations as f64;
    println!(
        "  {iterations} filter+select+tick steps in {elapsed:.2?} -> {ns:.1} ns/decision (sink {sink})",
    );
    println!("  (on the FPGA the same step is one 100 MHz clock = 10 ns of hardware time)");
}
