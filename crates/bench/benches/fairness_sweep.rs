//! E7 — the **conclusion claim**: request-fair arbitration degrades
//! linearly with the request-length ratio ("virtually unbounded"), while
//! CBA pins every contender at its 1/N cycle entitlement so the
//! short-request task's slowdown *saturates* as the ratio grows. (The
//! saturation level exceeds the paper's idealized N for N > 2 because the
//! bus is non-preemptive: a full MaxL transaction can park in each of the
//! TuA's short recovery windows — see EXPERIMENTS.md.)
//!
//! A saturating 5-cycle-request task runs against `N-1` saturating
//! contenders whose request duration sweeps 5..=56, on a round-robin bus
//! with and without the credit filter, for N in {2, 4, 8}.

use cba_bench::{fmt_slowdown, print_row, rule, runs_from_env, seed_from_env};
use cba_platform::experiments::fairness_sweep;

fn main() {
    let runs = runs_from_env(12);
    let seed = seed_from_env();
    println!("FAIRNESS SWEEP ({runs} runs per point, seed {seed})");
    println!("TuA: saturating 5-cycle requests; contenders: saturating d-cycle requests\n");

    let core_counts = [2usize, 4, 8];
    let durations = [5u32, 11, 28, 56];
    let rows = fairness_sweep(&core_counts, &durations, runs, seed);

    for &n in &core_counts {
        println!("N = {n} cores (request-fair grows ~1 + (N-1)d/5; CBA saturates in d):");
        rule(58);
        print_row(&[
            ("contender d", 12),
            ("RR slowdown", 13),
            ("RR+CBA slowdown", 16),
            ("ratio", 8),
        ]);
        rule(58);
        for &d in &durations {
            let rr = rows
                .iter()
                .find(|r| r.n_cores == n && !r.cba && r.contender_duration == d)
                .expect("row exists");
            let cba = rows
                .iter()
                .find(|r| r.n_cores == n && r.cba && r.contender_duration == d)
                .expect("row exists");
            print_row(&[
                (&format!("{d}"), 12),
                (&fmt_slowdown(rr.slowdown), 13),
                (&fmt_slowdown(cba.slowdown), 16),
                (&format!("{:.2}", rr.slowdown / cba.slowdown), 8),
            ]);
        }
        rule(58);
        // The headline: going from d=28 to d=56 doubles the request-fair
        // slowdown but barely moves the CBA one.
        let get = |cba: bool, d: u32| {
            rows.iter()
                .find(|r| r.n_cores == n && r.cba == cba && r.contender_duration == d)
                .map(|r| r.slowdown)
                .unwrap_or(f64::NAN)
        };
        println!(
            "  doubling d 28 -> 56 multiplies request-fair by {:.2} but CBA only by {:.2}\n",
            get(false, 56) / get(false, 28),
            get(true, 56) / get(true, 28),
        );
    }
}
