//! Full-scale Figure-1 reproduction: the paper's 1,000 randomized runs per
//! bar (override with `CBA_RUNS`). Expect minutes of wall time; the
//! reduced-scale regenerator is `cargo bench -p cba-bench --bench fig1`.

use cba_bench::{runs_from_env, seed_from_env};
use cba_platform::experiments::{fig1, fig1_digest};
use cba_workloads::suite;

fn main() {
    let runs = runs_from_env(1000);
    let seed = seed_from_env();
    eprintln!("running Figure 1 at full scale: {runs} runs x 24 bars ...");
    let start = std::time::Instant::now();
    let cells = fig1(&suite::fig1_suite(), runs, seed);
    eprintln!("done in {:.1?}", start.elapsed());

    println!("benchmark,setup,scenario,mean_cycles,normalized,ci95");
    for c in &cells {
        println!(
            "{},{},{},{:.1},{:.4},{:.4}",
            c.benchmark, c.setup, c.scenario, c.mean_cycles, c.normalized, c.ci95
        );
    }
    let digest = fig1_digest(&cells);
    eprintln!(
        "worst RP-CON {:.2}x on {} (paper 3.34x on matrix); worst CBA-CON {:.2}x on {} (paper 2.34x)",
        digest.worst_rp_con.1, digest.worst_rp_con.0, digest.worst_cba_con.1, digest.worst_cba_con.0
    );
    eprintln!(
        "CBA ISO overhead {:+.2}% (paper ~3%); H-CBA ISO overhead {:+.2}% (paper negligible)",
        100.0 * digest.cba_iso_overhead,
        100.0 * digest.hcba_iso_overhead
    );
}
