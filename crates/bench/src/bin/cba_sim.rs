//! `cba-sim` — the scenario CLI: run custom platform campaigns without
//! writing Rust.
//!
//! Two modes:
//!
//! * **Scenario-file mode** (`--scenario-file grid.scn`): parse a
//!   declarative scenario file, expand its `[sweep]` grid into cells, run
//!   every cell as a Monte-Carlo campaign and print/export the per-cell
//!   statistics. The shipped grids live in `scenarios/` at the repository
//!   root; `scenarios/README.md` documents every key of the format.
//! * **Flag mode** (`--bench`/`--loads`): a single ad-hoc configuration
//!   from command-line flags, as before.
//!
//! Both modes accept `--out results.json|csv` for structured export.
//!
//! Scenario-file mode is crash-safe: `--checkpoint DIR` journals every
//! finished cell (fsynced) and `--resume` skips the journaled cells after
//! a crash, producing a report bit-identical to an uninterrupted run. The
//! `CBA_CRASH_AFTER_RECORDS=N` environment variable aborts the process
//! right after the `N`-th journal record — the hook the crash-resume CI
//! job and local reproductions use to die at a deterministic point.

use cba_platform::checkpoint::FaultPlan;
use cba_platform::report::{run_scenario_controlled, CellReport, RunControls, ScenarioReport};
use cba_platform::scenario::{
    parse_cba_spec, parse_engine, parse_load_spec, parse_policy, ScenarioDef,
};
use cba_platform::{Campaign, CoreLoad, DriveMode, PlatformConfig, RunSpec, Scenario};
use std::path::Path;

const USAGE: &str = "\
usage: cba_sim --scenario-file FILE [--runs N] [--seed S] [--threads N]
               [--engine events|naive|fluid] [--out FILE] [--format json|csv]
               [--checkpoint DIR] [--resume]
       cba_sim [--policy fifo|rr|tdma|lot|rp|pri] [--cba none|homog|hcba|w:a,b,..]
               [--bench NAME | --loads SPEC] [--scenario iso|con] [--wcet]
               [--runs N] [--seed S] [--cores N] [--engine events|naive|fluid]
               [--out FILE] [--format json|csv]

--threads N   worker threads for the grid-wide run executor (0 = one per
              hardware thread); every (cell x run) task of a campaign is
              scheduled on one shared pool
--engine      cycle loop: 'events' (event-horizon fast path, default),
              'naive' (per-cycle reference loop, for debugging; results
              are bit-identical to events), or 'fluid' (continuous-event
              fair-sharing backend with limit-cycle fast-forward)
--checkpoint  journal each finished cell to DIR/campaign.journal, fsynced
              per record, so a crashed campaign loses at most the cells
              in flight (scenario-file mode only)
--resume      skip the cells already journaled in the --checkpoint DIR;
              the resumed report is bit-identical to an uninterrupted run
              at any thread count (the journal refuses to resume a
              different scenario)

load SPEC entries (comma-separated, first entry = core 0, the TuA):
    bench:NAME             catalog benchmark through the core model
    fixed:REQS:DUR:GAP     fixed-request task
    sat:DUR                saturating contender
    per:DUR:PERIOD:PHASE   periodic contender
    stream:ACCESSES        streaming loads
    idle                   nothing

scenario-file format (see scenarios/README.md for the commented example):
    # '#' starts a comment; keys live under [section] headers
    [campaign]    name, runs, seed, threads (0 = auto)
    [platform]    cores, policy, cba (none|homog|hcba|w:3:1:1:1),
                  caps (2:1:1:1), lfsr (on|off)
    [topology]    hierarchical fabric instead of the flat bus: clusters,
                  cores_per_cluster (core count is derived), bridge_latency,
                  bridge_depth, cluster_policy, cluster_cba,
                  backbone_policy, backbone_cba (per-cluster weights)
    [tua]         load = SPEC, or profile = NAME plus knob overrides:
                  accesses, working_set, p_random, p_store, p_atomic,
                  p_ifetch, burst = LO:HI, gap = LO:HI, between = MEAN
    [contenders]  scenario (iso|con), loads = SPEC,..., fill = SPEC,
                  duration = D (con contender duration, default MaxL),
                  wcet (auto|on|off), stop (tua|all|horizon:N),
                  max_cycles, trace (on|off)
    [sweep]       each key is one grid axis, values comma-separated;
                  the cross-product runs as one campaign batch. Keys:
                  bench, setup (rp|cba|hcba|POLICY[+CBA]), scenario,
                  cores, policy, cba, weights (3:1:1:1), caps, duration,
                  tua, fill, clusters, bridge_latency, bridge_depth,
                  cluster_cba, backbone_cba, and the [tua] profile knobs
    [report]      baseline = axis=value,... (normalize each group to the
                  matching cell, like Fig. 1's RP-ISO), percentiles = 50,95,99,
                  pwcet = 1e-9,1e-12 (per-run exceedance probabilities:
                  Gumbel pWCET bounds, fit parameters and iid-verdict columns)
    [checkpoint]  dir (journal directory; --checkpoint overrides it),
                  cell_budget_ms (wall-clock budget per cell — runs past
                  it are skipped and counted; non-deterministic),
                  run_budget_cycles (deterministic per-run cycle cap)

examples:
    cba_sim --scenario-file scenarios/paper_fig1.scn --runs 50 --out /tmp/fig1.json
    cba_sim --bench matrix --scenario con --cba homog --runs 100
    cba_sim --loads fixed:1000:6:4,sat:28,sat:28,sat:28 --policy rr
";

fn usage(err: &str) -> ! {
    eprintln!("error: {err}\n");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// Runtime failure (unreadable scenario, unwritable path, interrupted or
/// mismatched journal): one clear line, exit 1, no usage dump and no
/// panic backtrace.
fn die(err: &str) -> ! {
    eprintln!("error: {err}");
    std::process::exit(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut policy: Option<String> = None;
    let mut cba: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut loads: Option<String> = None;
    let mut scenario: Option<String> = None;
    let mut wcet = false;
    let mut runs: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut cores: Option<usize> = None;
    let mut scenario_file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut format: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut engine: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--policy" => policy = Some(val("--policy")),
            "--cba" => cba = Some(val("--cba")),
            "--bench" => bench = Some(val("--bench")),
            "--loads" => loads = Some(val("--loads")),
            "--scenario" => scenario = Some(val("--scenario")),
            "--scenario-file" => scenario_file = Some(val("--scenario-file")),
            "--out" => out = Some(val("--out")),
            "--format" => format = Some(val("--format")),
            "--wcet" => wcet = true,
            "--runs" => {
                let n: usize = val("--runs")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --runs"));
                if n == 0 {
                    usage("--runs must be positive");
                }
                runs = Some(n)
            }
            "--seed" => {
                seed = Some(
                    val("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed")),
                )
            }
            "--cores" => {
                cores = Some(
                    val("--cores")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --cores")),
                )
            }
            "--threads" => {
                // 0 = auto, matching the scenario-file `threads` key.
                threads = Some(
                    val("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --threads")),
                )
            }
            "--engine" => engine = Some(val("--engine")),
            "--checkpoint" => checkpoint = Some(val("--checkpoint")),
            "--resume" => resume = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0)
            }
            other => usage(&format!("unknown flag '{other}'")),
        }
    }

    // Resolve the export format BEFORE running anything: a typo must not
    // discard a long campaign.
    let export = out.map(|path| {
        let format = format.unwrap_or_else(|| {
            if path.ends_with(".csv") {
                "csv".into()
            } else {
                "json".into()
            }
        });
        if format != "json" && format != "csv" {
            usage(&format!("unknown format '{format}' (expected json, csv)"));
        }
        (path, format)
    });
    // Probe writability BEFORE running anything, for the same reason: an
    // unwritable path must not discard a long campaign at export time.
    if let Some((path, _)) = &export {
        let existed = Path::new(path).exists();
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            die(&format!("cannot write {path}: {e}"));
        }
        if !existed {
            // The probe only proves writability; don't leave an empty
            // file behind if the campaign is interrupted.
            let _ = std::fs::remove_file(path);
        }
    }

    let report = match scenario_file {
        Some(path) => {
            // Flag-mode options don't apply to a scenario file; reject
            // them loudly instead of silently running the file as-is.
            let ignored: Vec<&str> = [
                ("--bench", bench.is_some()),
                ("--loads", loads.is_some()),
                ("--policy", policy.is_some()),
                ("--cba", cba.is_some()),
                ("--scenario", scenario.is_some()),
                ("--cores", cores.is_some()),
                ("--wcet", wcet),
            ]
            .iter()
            .filter(|(_, set)| *set)
            .map(|(flag, _)| *flag)
            .collect();
            if !ignored.is_empty() {
                usage(&format!(
                    "{} cannot be combined with --scenario-file (set the equivalent keys \
                     in the file; only --runs/--seed/--threads override it)",
                    ignored.join(", ")
                ));
            }
            run_scenario_file(&path, runs, seed, threads, engine, checkpoint, resume)
        }
        None => {
            if checkpoint.is_some() || resume {
                usage("--checkpoint/--resume require --scenario-file (flag mode has one cell)");
            }
            run_flag_mode(
                policy.as_deref().unwrap_or("rp"),
                cba.as_deref().unwrap_or("none"),
                &bench,
                &loads,
                scenario.as_deref().unwrap_or("con"),
                wcet,
                runs,
                seed,
                cores.unwrap_or(4),
                threads,
                engine,
            )
        }
    };

    print!("{}", report.render_table());
    if let Some((path, format)) = export {
        let body = match format.as_str() {
            "json" => report.to_json(),
            "csv" => report.to_csv(),
            _ => unreachable!("validated before the run"),
        };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("cba-sim: wrote {format} report to {path}");
    }
}

/// Silences the default panic report for the executor's worker threads:
/// a panicking run is contained by the engine and surfaced as its cell's
/// `outcome = panicked` row, so the raw backtrace line is pure noise on a
/// campaign's progress output. Panics on any *other* thread still print.
fn quiet_worker_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("cba-worker"));
        if !in_worker {
            default_hook(info);
        }
    }));
}

/// Scenario-file mode: parse, apply CLI overrides, run every cell.
fn run_scenario_file(
    path: &str,
    runs: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    engine: Option<String>,
    checkpoint: Option<String>,
    resume: bool,
) -> ScenarioReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut def = ScenarioDef::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    if let Some(r) = runs {
        def.runs = r;
    }
    if let Some(s) = seed {
        def.seed = s;
    }
    if let Some(t) = threads {
        // 0 = auto, like the file's `threads` key.
        def.threads = if t == 0 { None } else { Some(t) };
    }
    if let Some(e) = engine {
        parse_engine(&e).unwrap_or_else(|e| usage(&e));
        def.template.engine = e;
    }
    if resume && checkpoint.is_none() && def.checkpoint.dir.is_none() {
        usage("--resume needs --checkpoint DIR (or a [checkpoint] dir key in the scenario)");
    }
    // Test/CI hook: abort the process (SIGKILL semantics) right after the
    // N-th journal record has been fsynced.
    let faults = match std::env::var("CBA_CRASH_AFTER_RECORDS") {
        Ok(v) => {
            let n: usize = v.parse().unwrap_or_else(|_| {
                die(&format!(
                    "bad CBA_CRASH_AFTER_RECORDS '{v}' (expected a record count)"
                ))
            });
            Some(FaultPlan::new().hard_kill_after(n))
        }
        Err(_) => None,
    };
    eprintln!(
        "cba-sim: scenario '{}' from {path}: {} cells x {} runs, seed {}",
        def.name,
        def.n_cells(),
        def.runs,
        def.seed
    );
    quiet_worker_panics();
    let controls = RunControls {
        checkpoint: checkpoint.as_deref().map(Path::new),
        resume,
        faults: faults.as_ref(),
    };
    run_scenario_controlled(&def, &controls, |done, total, cell| {
        let label: Vec<&str> = cell.labels.iter().map(|(_, v)| v.as_str()).collect();
        eprintln!(
            "cba-sim: [{done}/{total}] {} mean {:.1} cycles",
            label.join(" · "),
            cell.mean
        );
    })
    .unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Flag mode: one ad-hoc cell from command-line flags, reported in the
/// same structure as a one-cell scenario so `--out` works identically.
#[allow(clippy::too_many_arguments)]
fn run_flag_mode(
    policy: &str,
    cba: &str,
    bench: &Option<String>,
    loads: &Option<String>,
    scenario: &str,
    wcet: bool,
    runs: Option<usize>,
    seed: Option<u64>,
    cores: usize,
    threads: Option<usize>,
    engine: Option<String>,
) -> ScenarioReport {
    let runs = runs.unwrap_or(30);
    let seed = seed.unwrap_or(2017);
    let drive = engine
        .map(|e| parse_engine(&e).unwrap_or_else(|e| usage(&e)))
        .unwrap_or(DriveMode::Events);
    let policy_kind = parse_policy(policy).unwrap_or_else(|e| usage(&e));
    let setup = cba_platform::BusSetup::Custom {
        policy: policy_kind,
        cba: parse_cba_spec(cba, cores, 56).unwrap_or_else(|e| usage(&e)),
    };
    let mut platform = PlatformConfig::paper_n_cores(&setup, cores);
    platform.policy = policy_kind;

    let mut spec = match (bench, loads) {
        (Some(_), Some(_)) => usage("--bench and --loads are mutually exclusive"),
        (Some(name), None) => {
            let scen = match scenario {
                "iso" => Scenario::Isolation,
                "con" => Scenario::MaxContention,
                other => usage(&format!("unknown scenario '{other}'")),
            };
            RunSpec::with_platform(platform, scen, CoreLoad::named(name))
        }
        (None, Some(spec_str)) => {
            let all: Vec<CoreLoad> = spec_str
                .split(',')
                .map(|s| parse_load_spec(s.trim()).unwrap_or_else(|e| usage(&e)))
                .collect();
            if all.is_empty() {
                usage("--loads needs at least one entry");
            }
            let tua = all[0].clone();
            let rest = all[1..].to_vec();
            RunSpec::with_platform(platform, Scenario::Custom(rest), tua)
        }
        (None, None) => usage("one of --scenario-file, --bench or --loads is required"),
    };
    spec.wcet_mode = wcet;
    spec.drive = drive;
    if let Err(e) = spec.validate() {
        usage(&e);
    }

    eprintln!(
        "cba-sim: {} cores, policy {}, filter {}, {} runs, seed {seed}",
        spec.platform.n_cores,
        spec.platform.policy.name(),
        spec.platform
            .cba
            .as_ref()
            .map(|c| c.scheme_name())
            .unwrap_or("none"),
        runs
    );
    let mut campaign = Campaign::new(spec.clone(), runs, seed);
    if let Some(t) = threads {
        if t > 0 {
            // 0 = auto: keep the campaign's own thread heuristic.
            campaign = campaign.with_threads(t);
        }
    }
    let result = campaign.run();
    // Bus-side view of the first run.
    let first = &result.results()[0];
    eprintln!(
        "cba-sim: bus (run 0): utilization {:.1}%, TuA mean wait {:.1} cycles, max wait {}",
        100.0 * first.utilization(),
        first.tua_mean_wait,
        first.tua_max_wait
    );
    let config_label = match (bench, loads) {
        (Some(name), _) => format!("bench:{name}:{scenario}"),
        (_, Some(spec_str)) => spec_str.clone(),
        _ => unreachable!("validated above"),
    };
    let cell = CellReport::from_campaign(
        vec![
            ("policy".into(), policy.to_string()),
            ("cba".into(), cba.to_string()),
            ("config".into(), config_label),
        ],
        seed,
        &result,
        &[0.50, 0.95, 0.99],
        &spec,
    );
    ScenarioReport {
        name: "cli".into(),
        seed,
        runs,
        cells: vec![cell],
    }
}
