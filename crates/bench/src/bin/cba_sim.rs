//! `cba-sim` — a small CLI for running custom platform scenarios without
//! writing Rust.
//!
//! ```text
//! cba_sim [--policy fifo|rr|tdma|lot|rp|pri] [--cba none|homog|hcba|w:a,b,c,d]
//!         [--bench NAME | --loads SPEC] [--scenario iso|con] [--wcet]
//!         [--runs N] [--seed S] [--cores N]
//!
//! load SPEC: comma-separated per-core entries:
//!     bench:NAME             catalog benchmark through the core model
//!     fixed:REQS:DUR:GAP     fixed-request task
//!     sat:DUR                saturating contender
//!     per:DUR:PERIOD:PHASE   periodic contender
//!     stream:ACCESSES        streaming loads
//!     idle
//!
//! examples:
//!     cba_sim --bench matrix --scenario con --cba homog --runs 100
//!     cba_sim --loads fixed:1000:6:4,sat:28,sat:28,sat:28 --policy rr
//! ```

use cba::CreditConfig;
use cba_bus::PolicyKind;
use cba_platform::{BusSetup, Campaign, CoreLoad, PlatformConfig, RunSpec, Scenario};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}\n");
    eprintln!("usage: cba_sim [--policy fifo|rr|tdma|lot|rp|pri] [--cba none|homog|hcba|w:a,b,..]");
    eprintln!("               [--bench NAME | --loads SPEC] [--scenario iso|con] [--wcet]");
    eprintln!("               [--runs N] [--seed S] [--cores N]");
    eprintln!("load SPEC entries: bench:NAME fixed:R:D:G sat:D per:D:P:PH stream:A idle");
    std::process::exit(2)
}

fn parse_policy(s: &str) -> PolicyKind {
    match s {
        "fifo" => PolicyKind::Fifo,
        "rr" => PolicyKind::RoundRobin,
        "tdma" => PolicyKind::Tdma,
        "lot" => PolicyKind::Lottery,
        "rp" => PolicyKind::RandomPermutation,
        "pri" => PolicyKind::FixedPriority,
        other => usage(&format!("unknown policy '{other}'")),
    }
}

fn parse_load(s: &str) -> CoreLoad {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |p: &str| -> u64 {
        p.parse()
            .unwrap_or_else(|_| usage(&format!("bad number '{p}' in load '{s}'")))
    };
    match parts.as_slice() {
        ["idle"] => CoreLoad::Idle,
        ["bench", name] => CoreLoad::named(name),
        ["fixed", r, d, g] => CoreLoad::FixedTask {
            n_requests: num(r),
            duration: num(d) as u32,
            gap: num(g) as u32,
        },
        ["sat", d] => CoreLoad::Saturating {
            duration: num(d) as u32,
        },
        ["per", d, p, ph] => CoreLoad::Periodic {
            duration: num(d) as u32,
            period: num(p),
            phase: num(ph),
        },
        ["stream", a] => CoreLoad::Streaming { accesses: num(a) },
        _ => usage(&format!("unknown load spec '{s}'")),
    }
}

fn parse_cba(s: &str, n_cores: usize, maxl: u32) -> Option<CreditConfig> {
    match s {
        "none" => None,
        "homog" => Some(CreditConfig::homogeneous(n_cores, maxl).expect("valid")),
        "hcba" => Some(CreditConfig::paper_hcba(maxl).unwrap_or_else(|e| usage(&e.to_string()))),
        other => {
            let Some(weights) = other.strip_prefix("w:") else {
                usage(&format!("unknown cba mode '{other}'"));
            };
            let nums: Vec<u32> = weights
                .split(',')
                .map(|w| w.parse().unwrap_or_else(|_| usage("bad weight")))
                .collect();
            let den = nums.iter().sum();
            Some(CreditConfig::weighted(maxl, nums, den).unwrap_or_else(|e| usage(&e.to_string())))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut policy = "rp".to_string();
    let mut cba = "none".to_string();
    let mut bench: Option<String> = None;
    let mut loads: Option<String> = None;
    let mut scenario = "con".to_string();
    let mut wcet = false;
    let mut runs = 30usize;
    let mut seed = 2017u64;
    let mut cores = 4usize;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--policy" => policy = val("--policy"),
            "--cba" => cba = val("--cba"),
            "--bench" => bench = Some(val("--bench")),
            "--loads" => loads = Some(val("--loads")),
            "--scenario" => scenario = val("--scenario"),
            "--wcet" => wcet = true,
            "--runs" => {
                runs = val("--runs")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --runs"))
            }
            "--seed" => {
                seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--cores" => {
                cores = val("--cores")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --cores"))
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }

    let setup = BusSetup::Custom {
        policy: parse_policy(&policy),
        cba: parse_cba(&cba, cores, 56),
    };
    let mut platform = PlatformConfig::paper_n_cores(&setup, cores);
    platform.policy = parse_policy(&policy);

    let mut spec = match (&bench, &loads) {
        (Some(_), Some(_)) => usage("--bench and --loads are mutually exclusive"),
        (Some(name), None) => {
            let scen = match scenario.as_str() {
                "iso" => Scenario::Isolation,
                "con" => Scenario::MaxContention,
                other => usage(&format!("unknown scenario '{other}'")),
            };
            RunSpec::with_platform(platform, scen, CoreLoad::named(name))
        }
        (None, Some(spec_str)) => {
            let all: Vec<CoreLoad> = spec_str.split(',').map(parse_load).collect();
            if all.is_empty() {
                usage("--loads needs at least one entry");
            }
            let tua = all[0].clone();
            let rest = all[1..].to_vec();
            RunSpec::with_platform(platform, Scenario::Custom(rest), tua)
        }
        (None, None) => usage("one of --bench or --loads is required"),
    };
    spec.wcet_mode = wcet;
    if let Err(e) = spec.validate() {
        usage(&e);
    }

    eprintln!(
        "cba-sim: {} cores, policy {}, filter {}, {} runs, seed {seed}",
        spec.platform.n_cores,
        spec.platform.policy.name(),
        spec.platform
            .cba
            .as_ref()
            .map(|c| c.scheme_name())
            .unwrap_or("none"),
        runs
    );
    let result = Campaign::new(spec, runs, seed).run();
    let s = result.summary();
    println!("runs       : {}", s.count());
    println!(
        "mean       : {:.1} cycles (±{:.1} at 95%)",
        s.mean(),
        s.ci95_half_width()
    );
    println!("min / max  : {:.0} / {:.0}", s.min(), s.max());
    println!("p50        : {:.0}", result.percentile(0.50));
    println!("p95        : {:.0}", result.percentile(0.95));
    println!("p99        : {:.0}", result.percentile(0.99));
    if result.unfinished() > 0 {
        println!(
            "unfinished : {} runs hit the cycle limit",
            result.unfinished()
        );
    }
    // Bus-side view of the first run.
    let first = &result.results()[0];
    println!(
        "bus (run 0): utilization {:.1}%, TuA mean wait {:.1} cycles, max wait {}",
        100.0 * first.utilization(),
        first.tua_mean_wait,
        first.tua_max_wait
    );
}
