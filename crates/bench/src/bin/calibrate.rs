//! Workload calibration probe: per-benchmark ISO characteristics and the
//! Figure-1 cells at a reduced run count. Used while tuning the synthetic
//! EEMBC profiles; kept as a diagnostic tool.

use cba_bench::{runs_from_env, seed_from_env};
use cba_platform::experiments::fig1;
use cba_platform::{run_once, BusSetup, CoreLoad, RunSpec, Scenario};
use cba_workloads::suite;

fn main() {
    let runs = runs_from_env(30);
    let seed = seed_from_env();
    println!("== ISO characteristics (single run, seed {seed}) ==");
    println!(
        "{:<10} {:>9} {:>7} {:>7} {:>8} {:>8}",
        "bench", "cycles", "util%", "reqs", "per-req", "avg-dur"
    );
    for profile in suite::all_profiles() {
        let spec = RunSpec::paper(
            BusSetup::Rp,
            Scenario::Isolation,
            CoreLoad::Profile(profile.clone()),
        );
        let r = run_once(&spec, seed);
        let cycles = r.tua_cycles.unwrap_or(0);
        let reqs = r.bus_slots[0];
        let busy = r.bus_busy[0];
        println!(
            "{:<10} {:>9} {:>6.1}% {:>7} {:>8.1} {:>8.1}",
            profile.name,
            cycles,
            100.0 * busy as f64 / cycles.max(1) as f64,
            reqs,
            cycles as f64 / reqs.max(1) as f64,
            busy as f64 / reqs.max(1) as f64,
        );
    }

    println!();
    println!("== Figure 1 cells ({runs} runs/bar) ==");
    let cells = fig1(&suite::fig1_suite(), runs, seed);
    println!(
        "{:<10} {:<7} {:<5} {:>12} {:>8}",
        "bench", "setup", "scen", "mean-cycles", "norm"
    );
    for c in &cells {
        println!(
            "{:<10} {:<7} {:<5} {:>12.0} {:>8.3}",
            c.benchmark, c.setup, c.scenario, c.mean_cycles, c.normalized
        );
    }
}
