//! One-shot full reproduction report: runs every experiment of the paper
//! at a configurable scale and prints the consolidated paper-vs-measured
//! comparison that `EXPERIMENTS.md` records.
//!
//! `CBA_RUNS` scales the Figure-1 campaigns (default 300 here; the paper
//! uses 1,000); the other experiments use proportional counts.

use cba::cost::STRATIX_IV_EP4SGX230_ALMS;
use cba::{CreditConfig, HardwareCost, SignalTable};
use cba_bench::{runs_from_env, seed_from_env};
use cba_platform::experiments::{
    ablation_hcba, fairness_sweep, fig1, fig1_digest, illustrative, pwcet_analysis,
};
use cba_platform::BusSetup;
use cba_workloads::suite;

fn main() {
    let runs = runs_from_env(300);
    let seed = seed_from_env();
    let start = std::time::Instant::now();
    println!("=== CBA PAPER REPRODUCTION REPORT (runs={runs}, seed={seed}) ===\n");

    // E2: Table I.
    println!("--- E2: Table I (signal summary, generated from the implementation) ---");
    println!(
        "{}",
        SignalTable::new(&CreditConfig::homogeneous(4, 56).unwrap())
    );

    // E1/E4: Figure 1 + digest.
    println!("--- E1: Figure 1 ({runs} runs per bar) ---");
    let cells = fig1(&suite::fig1_suite(), runs, seed);
    for c in &cells {
        println!(
            "  {:<8} {:<6}-{:<4} {:>10.0} cycles  {:>6.3} (±{:.3})",
            c.benchmark, c.setup, c.scenario, c.mean_cycles, c.normalized, c.ci95
        );
    }
    let digest = fig1_digest(&cells);
    println!("--- E4: Section IV.B quoted numbers ---");
    println!(
        "  worst RP-CON : measured {:.2}x on {:<7} | paper 3.34x on matrix",
        digest.worst_rp_con.1, digest.worst_rp_con.0
    );
    println!(
        "  worst CBA-CON: measured {:.2}x on {:<7} | paper 2.34x",
        digest.worst_cba_con.1, digest.worst_cba_con.0
    );
    println!(
        "  CBA-ISO overhead  : measured {:+.1}% | paper ~3%",
        100.0 * digest.cba_iso_overhead
    );
    println!(
        "  H-CBA-ISO overhead: measured {:+.1}% | paper negligible",
        100.0 * digest.hcba_iso_overhead
    );
    println!();

    // E3: illustrative example.
    println!("--- E3: Section II illustrative example ---");
    for r in illustrative((runs / 8).max(10), seed) {
        println!(
            "  {:<24} {:>8.0} cycles  {:>5.2}x",
            r.config, r.mean_cycles, r.slowdown
        );
    }
    println!("  paper analytic: request-fair 94,000 (9.4x); idealized cycle-fair 28,000 (2.8x)\n");

    // E5: overheads.
    println!("--- E5: implementation overheads ---");
    let cost = HardwareCost::of(&CreditConfig::homogeneous(4, 56).unwrap());
    println!(
        "  {cost}; ~{} ALMs -> +{:.3}pp device occupancy (paper: 'far less than 0.1%')\n",
        cost.alms,
        cost.device_occupancy_growth_pp(STRATIX_IV_EP4SGX230_ALMS)
    );

    // E6: pWCET.
    println!("--- E6: MBPTA / pWCET under CBA ---");
    for profile in suite::fig1_suite() {
        match pwcet_analysis(&profile, BusSetup::Cba, (runs / 2).max(100), seed) {
            Err(e) => println!("  {}: {e}", profile.name),
            Ok(a) => println!(
                "  {:<8} iid {} | pWCET(1e-12) {:>9.0} >= analysis max {:>9.0} >= operation max {:>9.0}: {}",
                a.benchmark,
                if a.iid.passes(0.05) { "PASS" } else { "marginal" },
                a.model.quantile_per_run(1e-12),
                a.max_analysis,
                a.max_operation,
                a.model.quantile_per_run(1e-12) >= a.max_analysis
                    && a.max_analysis >= a.max_operation
            ),
        }
    }
    println!();

    // E7: fairness sweep.
    println!("--- E7: fairness sweep (RR vs RR+CBA, 5-cycle TuA) ---");
    let rows = fairness_sweep(&[2, 4, 8], &[5, 11, 28, 56], (runs / 20).max(5), seed);
    for n in [2usize, 4, 8] {
        print!("  N={n}:");
        for d in [5u32, 11, 28, 56] {
            let rr = rows
                .iter()
                .find(|r| r.n_cores == n && !r.cba && r.contender_duration == d)
                .unwrap();
            let cb = rows
                .iter()
                .find(|r| r.n_cores == n && r.cba && r.contender_duration == d)
                .unwrap();
            print!("  d={d}: {:.1}x/{:.1}x", rr.slowdown, cb.slowdown);
        }
        println!("  (RR/CBA)");
    }
    println!();

    // E8: ablation.
    println!("--- E8: H-CBA ablation (weights vs cap) ---");
    for r in ablation_hcba((runs / 20).max(5), seed) {
        println!(
            "  {:<26} slowdown {:>5.2}x  max burst {:>4.1}  contender max gap {:>5.0}",
            r.variant, r.slowdown, r.tua_max_burst, r.contender_max_gap
        );
    }

    println!("\ntotal wall time: {:.1?}", start.elapsed());
}
