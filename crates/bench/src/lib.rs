#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads the run-count override (`CBA_RUNS`), falling back to `default`.
pub fn runs_from_env(default: usize) -> usize {
    std::env::var("CBA_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Reads the master seed (`CBA_SEED`), defaulting to 2017.
pub fn seed_from_env() -> u64 {
    std::env::var("CBA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2017)
}

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a slowdown with two decimals and an `x` suffix.
pub fn fmt_slowdown(x: f64) -> String {
    format!("{x:.2}x")
}

/// A minimal fixed-width row printer: right-pads each cell to its column
/// width.
pub fn print_row(cells: &[(&str, usize)]) {
    let mut line = String::new();
    for (text, width) in cells {
        let mut cell = text.to_string();
        if cell.len() < *width {
            cell.push_str(&" ".repeat(width - cell.len()));
        }
        line.push_str(&cell);
        line.push(' ');
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        std::env::remove_var("CBA_RUNS");
        std::env::remove_var("CBA_SEED");
        assert_eq!(runs_from_env(25), 25);
        assert_eq!(seed_from_env(), 2017);
    }

    #[test]
    fn fmt_slowdown_formats() {
        assert_eq!(fmt_slowdown(3.344), "3.34x");
        assert_eq!(fmt_slowdown(1.0), "1.00x");
    }
}
