//! The per-core credit counter (Equation 1, fraction-free form).
//!
//! One [`CreditCounter`] is the software model of one hardware `BUDGi`
//! register from the paper's Table I: a saturating counter of
//! [`CreditConfig::counter_bits`](crate::CreditConfig::counter_bits) bits
//! that gains `num_i` units every cycle and loses `den` units per cycle
//! while its core holds the bus.

use std::fmt;

/// A scaled-integer budget counter.
///
/// Invariants (maintained by construction and checked by property tests):
///
/// * `value` never exceeds `cap`;
/// * `value` never wraps below zero (drain saturates at 0 — with the
///   eligibility rule "arbitrable only at `>= threshold`" and transaction
///   durations `<= MaxL` the saturation is never exercised, but the counter
///   is safe on its own);
/// * with `num < den`, a saturating user drains net `den - num` per
///   holding cycle and recovers `num` per idle cycle.
///
/// # Example
///
/// ```
/// use cba::CreditCounter;
///
/// // Core 0 of the paper's 4-core platform: num=1, den=4, cap=224.
/// let mut budg = CreditCounter::new(1, 4, 224, 224);
/// assert!(budg.is_at_least(224));
/// budg.tick(true); // holding the bus: +1 then -4
/// assert_eq!(budg.value(), 221);
/// for _ in 0..2 { budg.tick(false); }
/// assert_eq!(budg.value(), 223);
/// budg.tick(false);
/// assert_eq!(budg.value(), 224); // saturated again
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditCounter {
    value: u64,
    num: u64,
    den: u64,
    cap: u64,
}

impl CreditCounter {
    /// Creates a counter with recovery `num` units/cycle, drain `den`
    /// units/cycle-of-use, saturation `cap`, starting at `initial`
    /// (clamped to `cap`).
    ///
    /// # Panics
    ///
    /// Panics if `num == 0`, `den == 0`, `num > den` or `cap == 0` — such a
    /// counter would be meaningless (see
    /// [`CreditConfig`](crate::CreditConfig) for the validated public
    /// construction path).
    pub fn new(num: u32, den: u32, cap: u64, initial: u64) -> Self {
        assert!(num > 0 && den > 0, "num and den must be positive");
        assert!(
            num as u64 <= den as u64,
            "recovery cannot exceed drain rate"
        );
        assert!(cap > 0, "cap must be positive");
        CreditCounter {
            value: initial.min(cap),
            num: num as u64,
            den: den as u64,
            cap,
        }
    }

    /// Current scaled budget value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The saturation cap.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Whether the budget has reached `threshold` (the eligibility test;
    /// `threshold` is `den * MaxL`).
    #[inline]
    pub fn is_at_least(&self, threshold: u64) -> bool {
        self.value >= threshold
    }

    /// Advances one cycle: recover `num` and, if `using_bus`, drain `den`
    /// (net `num - den` per holding cycle); the cap applies to
    /// accumulation, the floor saturates at 0.
    ///
    /// Both Table I updates apply on a cycle where the core holds the bus
    /// (`+1` and `-4` for the paper's homogeneous 4-core case). Since
    /// `num <= den`, a holding cycle never increases the budget, so the
    /// accumulation cap only needs checking on idle cycles — this is also
    /// what keeps Equation 1's intent exact at the saturation boundary
    /// (a literal `min` *before* the drain would silently eat the recovery
    /// increment on the first holding cycle).
    #[inline]
    pub fn tick(&mut self, using_bus: bool) {
        if using_bus {
            self.value = (self.value + self.num).saturating_sub(self.den);
        } else {
            self.value = (self.value + self.num).min(self.cap);
        }
    }

    /// Advances `k` idle cycles at once: exactly `k` successive
    /// [`tick`](CreditCounter::tick)`(false)` calls in O(1).
    ///
    /// Recovery is monotone and the cap applies per step, so the closed
    /// form is a single saturating add-and-clamp.
    #[inline]
    pub fn advance_idle(&mut self, k: u64) {
        self.value = self
            .value
            .saturating_add(self.num.saturating_mul(k))
            .min(self.cap);
    }

    /// Advances `k` bus-holding cycles at once: exactly `k` successive
    /// [`tick`](CreditCounter::tick)`(true)` calls in O(1).
    ///
    /// Each holding step nets `-(den - num)` until the value drops below
    /// `den - num`, after which one more step saturates it to 0 where it
    /// stays — which is a single saturating subtraction of `k * (den -
    /// num)` (the cap never engages because `num <= den`).
    #[inline]
    pub fn advance_holding(&mut self, k: u64) {
        self.value = self
            .value
            .saturating_sub((self.den - self.num).saturating_mul(k));
    }

    /// Resets to `initial` (clamped to the cap).
    pub fn reset(&mut self, initial: u64) {
        self.value = initial.min(self.cap);
    }

    /// Cycles until the budget reaches `threshold` with no bus use
    /// (`None` if already there).
    pub fn cycles_to_reach(&self, threshold: u64) -> Option<u64> {
        if self.value >= threshold {
            None
        } else {
            let deficit = threshold.min(self.cap) - self.value;
            Some(deficit.div_ceil(self.num))
        }
    }
}

impl fmt::Display for CreditCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} (+{}/-{})",
            self.value, self.cap, self.num, self.den
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;

    #[test]
    fn paper_table_i_arithmetic() {
        // 4-core homogeneous: +1 every cycle, -4 while using, cap 224.
        let mut b = CreditCounter::new(1, 4, 224, 224);
        b.tick(true);
        assert_eq!(b.value(), 221, "net -3 per holding cycle");
        for _ in 0..56 - 1 {
            b.tick(true);
        }
        assert_eq!(b.value(), 224 - 3 * 56, "a MaxL transaction drains 168");
        // Recovery to full takes (N-1)*L = 168 cycles.
        let mut cycles = 0;
        while !b.is_at_least(224) {
            b.tick(false);
            cycles += 1;
        }
        assert_eq!(cycles, 168);
    }

    #[test]
    fn saturates_at_cap() {
        let mut b = CreditCounter::new(1, 4, 224, 224);
        for _ in 0..1000 {
            b.tick(false);
        }
        assert_eq!(b.value(), 224);
    }

    #[test]
    fn zero_start_fills_in_n_times_maxl() {
        // WCET mode: the TuA starts at zero; with num=1 the fill time is
        // den*MaxL = 224 cycles on the paper's platform.
        let mut b = CreditCounter::new(1, 4, 224, 0);
        assert_eq!(b.cycles_to_reach(224), Some(224));
        let mut cycles = 0;
        while !b.is_at_least(224) {
            b.tick(false);
            cycles += 1;
        }
        assert_eq!(cycles, 224);
    }

    #[test]
    fn drain_saturates_at_zero() {
        let mut b = CreditCounter::new(1, 4, 224, 2);
        b.tick(true);
        assert_eq!(b.value(), 0);
        b.tick(true);
        assert_eq!(b.value(), 0, "no wrap-around");
    }

    #[test]
    fn cycles_to_reach_none_when_there() {
        let b = CreditCounter::new(1, 4, 224, 224);
        assert_eq!(b.cycles_to_reach(224), None);
        let b = CreditCounter::new(3, 6, 336, 100);
        assert_eq!(b.cycles_to_reach(336), Some((336u64 - 100).div_ceil(3)));
    }

    #[test]
    fn initial_clamped_to_cap() {
        let b = CreditCounter::new(1, 4, 224, 9999);
        assert_eq!(b.value(), 224);
    }

    #[test]
    #[should_panic(expected = "recovery cannot exceed drain")]
    fn rejects_num_above_den() {
        let _ = CreditCounter::new(5, 4, 224, 0);
    }

    #[test]
    fn hcba_weighted_counter() {
        // TuA with num=3, den=6, cap=336: net -3/holding cycle, +3/idle.
        let mut b = CreditCounter::new(3, 6, 336, 336);
        for _ in 0..56 {
            b.tick(true);
        }
        assert_eq!(b.value(), 336 - 3 * 56);
        let mut cycles = 0;
        while !b.is_at_least(336) {
            b.tick(false);
            cycles += 1;
        }
        assert_eq!(cycles, 56, "50% bandwidth: recovery equals use");
    }

    #[test]
    fn display_is_informative() {
        let b = CreditCounter::new(1, 4, 224, 100);
        assert_eq!(b.to_string(), "100/224 (+1/-4)");
    }

    // The following properties are exercised over deterministic families of
    // random inputs (seed-driven, in place of proptest, which is not
    // available offline); every case is reproducible from its seed.

    /// Budget never leaves [0, cap] under arbitrary use patterns.
    #[test]
    fn budget_stays_in_range() {
        for seed in 0..64u64 {
            let mut rng = SimRng::seed_from(seed);
            let num = rng.gen_range_u64(1..8) as u32;
            let den = num + rng.gen_range_u64(0..8) as u32;
            let maxl = rng.gen_range_u64(1..100) as u32;
            let initial = rng.gen_range_u64(0..100_000);
            let cap = den as u64 * maxl as u64;
            let mut b = CreditCounter::new(num, den, cap, initial);
            for _ in 0..rng.gen_range_usize(0..2000) {
                b.tick(rng.gen_bool(0.5));
                assert!(b.value() <= cap, "seed {seed}: {b}");
            }
        }
    }

    /// The credit conservation law: granted only when >= threshold and
    /// holding <= MaxL cycles, the counter never actually hits the
    /// zero-saturation guard.
    #[test]
    fn eligible_grants_never_underflow() {
        for seed in 0..64u64 {
            let mut rng = SimRng::seed_from(seed ^ 0xfeed);
            let num = rng.gen_range_u64(1..4) as u32;
            let den = num + rng.gen_range_u64(1..8) as u32;
            let maxl = rng.gen_range_u64(1..100) as u32;
            let threshold = den as u64 * maxl as u64;
            let mut b = CreditCounter::new(num, den, threshold, threshold);
            let mut hold = 0u32;
            for _ in 0..5000 {
                if hold > 0 {
                    // Mid-transaction: drain must never need the saturation.
                    let before = b.value();
                    b.tick(true);
                    assert!(
                        before + num as u64 >= den as u64,
                        "seed {seed}: drain would underflow: value {before}"
                    );
                    hold -= 1;
                } else if b.is_at_least(threshold) && rng.gen_bool(1.0 / 3.0) {
                    hold = rng.gen_range_u64(1..maxl as u64 + 1) as u32;
                    b.tick(true);
                    hold -= 1;
                } else {
                    b.tick(false);
                }
            }
        }
    }

    /// The O(1) bulk advances are exactly iterated ticks, across random
    /// parameters, starting values and advance lengths (including the
    /// 0-saturation and cap boundaries).
    #[test]
    fn bulk_advance_matches_iterated_ticks() {
        for seed in 0..64u64 {
            let mut rng = SimRng::seed_from(seed ^ 0xb01d);
            let num = rng.gen_range_u64(1..6) as u32;
            let den = num + rng.gen_range_u64(0..8) as u32;
            let cap = rng.gen_range_u64(1..2000);
            let initial = rng.gen_range_u64(0..cap + 1);
            let mut bulk = CreditCounter::new(num, den, cap, initial);
            let mut steps = CreditCounter::new(num, den, cap, initial);
            for _ in 0..16 {
                let k = rng.gen_range_u64(0..200);
                let holding = rng.gen_bool(0.5);
                if holding {
                    bulk.advance_holding(k);
                } else {
                    bulk.advance_idle(k);
                }
                for _ in 0..k {
                    steps.tick(holding);
                }
                assert_eq!(
                    bulk.value(),
                    steps.value(),
                    "seed {seed}: k={k} holding={holding} num={num} den={den} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn bulk_advance_zero_cycles_is_a_no_op() {
        let mut b = CreditCounter::new(1, 4, 224, 100);
        b.advance_idle(0);
        b.advance_holding(0);
        assert_eq!(b.value(), 100);
    }

    /// Long-run duty cycle of a saturating user is num/den.
    #[test]
    fn steady_state_duty_cycle() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from(seed ^ 0xd00f);
            let num = rng.gen_range_u64(1..4) as u32;
            let den = num + rng.gen_range_u64(1..6) as u32;
            let maxl = rng.gen_range_u64(4..60) as u32;
            let threshold = den as u64 * maxl as u64;
            let mut b = CreditCounter::new(num, den, threshold, threshold);
            let mut use_cycles = 0u64;
            let mut hold = 0u32;
            let total = 200_000u64;
            for _ in 0..total {
                if hold == 0 && b.is_at_least(threshold) {
                    hold = maxl; // greedy: start a MaxL transaction asap
                }
                let using = hold > 0;
                if using {
                    use_cycles += 1;
                    hold -= 1;
                }
                b.tick(using);
            }
            let duty = use_cycles as f64 / total as f64;
            // Upper bound: a core can never exceed its num/den bandwidth
            // fraction. The exact steady-state duty accounts for the cap
            // quantization: recovery of the (den-num)*L deficit at num
            // units/cycle takes ceil((den-num)*L / num) cycles.
            let l = maxl as u64;
            let recovery = ((den - num) as u64 * l).div_ceil(num as u64);
            let exact = l as f64 / (l + recovery) as f64;
            let upper = num as f64 / den as f64;
            assert!(
                duty <= upper + 0.01,
                "seed {seed}: duty {duty} exceeds bandwidth fraction {upper}"
            );
            assert!(
                (duty - exact).abs() < 0.02,
                "seed {seed}: duty {duty} vs exact {exact} (num={num}, den={den}, maxl={maxl})"
            );
        }
    }
}
