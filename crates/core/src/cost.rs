//! Hardware cost model for the CBA arbiter extension.
//!
//! The paper validates implementability by synthesizing CBA into a 4-core
//! LEON3 on an ALTERA (TerasIC DE4, Stratix IV) FPGA: occupancy grows from
//! 73% by "far less than 0.1%" and the design still closes timing at
//! 100 MHz. We cannot synthesize RTL here; the documented substitution is
//! this auditable gate-level inventory of exactly the state and logic CBA
//! adds to an existing bus arbiter:
//!
//! * per core: one saturating budget counter (`counter_bits` flip-flops,
//!   one adder, one subtractor, one saturation comparator), one threshold
//!   comparator, and one `COMP` latch with its set/reset gating;
//! * shared: mode register and the `REQ`-forcing gates of WCET mode.
//!
//! The LUT estimate uses the standard 1 LUT ≈ 1 bit of ripple
//! add/subtract/compare rule of thumb for 4-input-LUT-class fabrics, which
//! is deliberately *pessimistic* for modern 6-input ALMs.

use crate::config::CreditConfig;
use std::fmt;

/// Gate-level inventory of the logic CBA adds to a bus arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// Number of cores (each gets its own counter/comparator/latch).
    pub n_cores: usize,
    /// Width of each budget counter in bits.
    pub counter_bits: u32,
    /// Total flip-flops added (budget registers + COMP latches + mode bit).
    pub flip_flops: u32,
    /// Estimated 4-input-LUT equivalents (pessimistic: one LUT per bit of
    /// ripple arithmetic).
    pub luts: u32,
    /// Estimated Stratix-IV ALMs: an ALM packs two bits of carry-chain
    /// add/sub/compare, so roughly half the LUT count plus per-core
    /// control.
    pub alms: u32,
}

impl HardwareCost {
    /// Computes the inventory for a configuration.
    pub fn of(config: &CreditConfig) -> Self {
        let n = config.n_cores() as u32;
        let bits = config.counter_bits();
        // Flip-flops: one budget register per core, one COMP latch per
        // core, one global mode bit.
        let flip_flops = n * bits + n + 1;
        // LUTs per core: saturating increment adder (bits), conditional
        // subtractor (bits), saturation mux (bits), threshold comparator
        // (bits), COMP set/reset gating (~2).
        let per_core = 4 * bits + 2;
        // Shared control: eligibility masking into the arbiter (~1 LUT per
        // core) and WCET-mode REQ forcing (~1 per core).
        let shared = 2 * n;
        let luts = n * per_core + shared;
        HardwareCost {
            n_cores: config.n_cores(),
            counter_bits: bits,
            flip_flops,
            luts,
            alms: luts.div_ceil(2) + n,
        }
    }

    /// The added-logic fraction relative to a baseline design of
    /// `baseline_luts` LUT-equivalents (e.g. the 4-core LEON3 baseline,
    /// [`PAPER_BASELINE_LUTS`]).
    ///
    /// # Panics
    ///
    /// Panics if `baseline_luts == 0`.
    pub fn occupancy_fraction(&self, baseline_luts: u32) -> f64 {
        assert!(baseline_luts > 0, "baseline must be positive");
        self.luts as f64 / baseline_luts as f64
    }

    /// The growth of *device* occupancy in percentage points when adding
    /// this logic to a device of `device_alms` ALMs — the number the paper
    /// reports ("the FPGA occupancy without CBA is 73% and it has grown by
    /// far less than 0.1%").
    ///
    /// # Panics
    ///
    /// Panics if `device_alms == 0`.
    pub fn device_occupancy_growth_pp(&self, device_alms: u32) -> f64 {
        assert!(device_alms > 0, "device size must be positive");
        100.0 * self.alms as f64 / device_alms as f64
    }
}

impl fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores x {}-bit budget counters: {} FFs, ~{} LUTs",
            self.n_cores, self.counter_bits, self.flip_flops, self.luts
        )
    }
}

/// LUT-equivalent count of the paper's baseline (4-core LEON3 occupying
/// 73% of a Stratix IV EP4SGX230's ALMs).
pub const PAPER_BASELINE_LUTS: u32 = 66_430;

/// ALM count of the paper's FPGA (ALTERA/TerasIC DE4, Stratix IV
/// EP4SGX230).
pub const STRATIX_IV_EP4SGX230_ALMS: u32 = 91_200;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_inventory() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let cost = HardwareCost::of(&cfg);
        assert_eq!(cost.counter_bits, 8, "paper: 8-bit budget counter");
        assert_eq!(cost.flip_flops, 4 * 8 + 4 + 1);
        assert!(cost.luts < 200, "CBA must be tiny: {} LUTs", cost.luts);
    }

    #[test]
    fn paper_occupancy_claim_holds() {
        // "FPGA occupancy ... has grown by far less than 0.1%" — measured
        // as device-occupancy percentage points on the DE4's Stratix IV.
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let cost = HardwareCost::of(&cfg);
        let growth = cost.device_occupancy_growth_pp(STRATIX_IV_EP4SGX230_ALMS);
        assert!(
            growth < 0.1,
            "occupancy growth {growth}pp contradicts the paper's <0.1% claim"
        );
        // Even the pessimistic LUT-per-bit figure stays far below 1% of
        // the baseline design.
        assert!(cost.occupancy_fraction(PAPER_BASELINE_LUTS) < 0.005);
    }

    #[test]
    fn hcba_costs_marginally_more() {
        let base = HardwareCost::of(&CreditConfig::homogeneous(4, 56).unwrap());
        let hcba = HardwareCost::of(&CreditConfig::paper_hcba(56).unwrap());
        // 336 cap needs 9 bits instead of 8.
        assert_eq!(hcba.counter_bits, 9);
        assert!(hcba.luts > base.luts);
        assert!(
            hcba.luts < 2 * base.luts,
            "still the same order of magnitude"
        );
    }

    #[test]
    fn cost_scales_linearly_with_cores() {
        let c4 = HardwareCost::of(&CreditConfig::homogeneous(4, 56).unwrap());
        let c8 = HardwareCost::of(&CreditConfig::homogeneous(8, 56).unwrap());
        // 8-core threshold 448 needs 9 bits, so slightly superlinear.
        assert!(c8.luts > 2 * c4.luts - 20);
        assert!(c8.luts < 3 * c4.luts);
    }

    #[test]
    fn display_mentions_core_count_and_bits() {
        let cost = HardwareCost::of(&CreditConfig::homogeneous(4, 56).unwrap());
        let s = cost.to_string();
        assert!(s.contains("4 cores"));
        assert!(s.contains("8-bit"));
    }
}
