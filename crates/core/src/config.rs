//! Configuration of the credit mechanism: recovery weights, budget caps,
//! and the fraction-free integer scaling.
//!
//! Equation 1 of the paper updates budgets by the fraction `1/N` per cycle.
//! As the paper notes, "this can be implemented by multiplying all factors
//! by N": budgets become scaled integers where one *bus cycle* of credit
//! equals `den` budget units. Core `i` recovers `num_i` units per cycle
//! (`Σ num_i == den`, so the whole platform recovers exactly one bus cycle
//! of credit per cycle) and drains `den` units per cycle while holding the
//! bus.

use sim_core::CoreId;
use std::fmt;

/// Per-core bandwidth recovery weights.
///
/// * [`BandwidthWeights::Homogeneous`] — every core recovers `1/N` per
///   cycle (the paper's base CBA; `num_i = 1`, `den = N`).
/// * [`BandwidthWeights::Weighted`] — core `i` recovers
///   `numerators[i] / denominator` per cycle (the paper's H-CBA variant 2;
///   its evaluation gives the TuA ½ = 3/6 and each contender 1/6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BandwidthWeights {
    /// Equal `1/N` recovery for every core.
    Homogeneous,
    /// Heterogeneous recovery: core `i` recovers `numerators[i] /
    /// denominator` cycles of budget per cycle.
    Weighted {
        /// Per-core numerators (length = number of cores, all >= 1).
        numerators: Vec<u32>,
        /// Common denominator (`Σ numerators == denominator`).
        denominator: u32,
    },
}

/// Errors rejected by [`CreditConfig`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbaError {
    /// A parameter was outside its documented domain.
    InvalidConfig(String),
}

impl fmt::Display for CbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CbaError::InvalidConfig(why) => write!(f, "invalid CBA configuration: {why}"),
        }
    }
}

impl std::error::Error for CbaError {}

/// Validated configuration of a credit-based arbiter.
///
/// # Example
///
/// ```
/// use cba::CreditConfig;
///
/// // Base CBA on the paper's platform.
/// let cba = CreditConfig::homogeneous(4, 56)?;
/// assert_eq!(cba.denominator(), 4);
/// assert_eq!(cba.scaled_threshold(), 224); // den * MaxL — Table I's "228 (56x4)", sic
///
/// // H-CBA: TuA recovers 1/2, each contender 1/6.
/// let hcba = CreditConfig::weighted(56, vec![3, 1, 1, 1], 6)?;
/// assert_eq!(hcba.numerator(sim_core::CoreId::from_index(0)), 3);
/// assert!((hcba.bandwidth_fraction(sim_core::CoreId::from_index(0)) - 0.5).abs() < 1e-12);
/// # Ok::<(), cba::CbaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditConfig {
    n_cores: usize,
    max_latency: u32,
    weights: BandwidthWeights,
    /// Per-core cap multipliers `k_i`: budget saturates at
    /// `k_i * den * MaxL` (the paper's H-CBA variant 1 uses `k = 2` for the
    /// favored core; base CBA uses `k = 1` everywhere).
    cap_multipliers: Vec<u32>,
}

impl CreditConfig {
    /// Largest accepted cap multiplier (a 16-burst allowance is already far
    /// beyond anything the paper discusses).
    pub const MAX_CAP_MULTIPLIER: u32 = 16;

    /// Base CBA: `n_cores` cores with equal `1/N` recovery and caps at
    /// `MaxL`.
    ///
    /// # Errors
    ///
    /// Returns [`CbaError::InvalidConfig`] if `n_cores` is 0 or above
    /// [`CoreId::MAX_CORES`], or `max_latency == 0`.
    pub fn homogeneous(n_cores: usize, max_latency: u32) -> Result<Self, CbaError> {
        Self::validate_common(n_cores, max_latency)?;
        Ok(CreditConfig {
            n_cores,
            max_latency,
            weights: BandwidthWeights::Homogeneous,
            cap_multipliers: vec![1; n_cores],
        })
    }

    /// H-CBA variant 2: heterogeneous recovery weights
    /// `numerators[i] / denominator`.
    ///
    /// # Errors
    ///
    /// Returns [`CbaError::InvalidConfig`] if the numerator vector length
    /// differs from the core count, any numerator is zero, or the
    /// numerators do not sum to `denominator` (the mechanism must recover
    /// exactly one bus cycle of credit per cycle platform-wide — otherwise
    /// bandwidth would be created or destroyed).
    pub fn weighted(
        max_latency: u32,
        numerators: Vec<u32>,
        denominator: u32,
    ) -> Result<Self, CbaError> {
        let n_cores = numerators.len();
        Self::validate_common(n_cores, max_latency)?;
        if numerators.contains(&0) {
            return Err(CbaError::InvalidConfig(
                "every core must recover at least 1 budget unit per cycle \
                 (a zero weight starves the core permanently)"
                    .into(),
            ));
        }
        let sum: u64 = numerators.iter().map(|&n| n as u64).sum();
        if sum != denominator as u64 {
            return Err(CbaError::InvalidConfig(format!(
                "numerators must sum to the denominator (got {sum} != {denominator})"
            )));
        }
        Ok(CreditConfig {
            n_cores,
            max_latency,
            weights: BandwidthWeights::Weighted {
                numerators,
                denominator,
            },
            cap_multipliers: vec![1; n_cores],
        })
    }

    /// The paper's evaluated H-CBA on 4 cores: the TuA (core 0) recovers
    /// 1/2 per cycle, each other core 1/6, virtually allocating 50% of the
    /// bandwidth to the TuA.
    pub fn paper_hcba(max_latency: u32) -> Result<Self, CbaError> {
        Self::weighted(max_latency, vec![3, 1, 1, 1], 6)
    }

    /// H-CBA variant 1: returns a copy with per-core budget-cap multipliers
    /// (`k_i >= 1`); a core with `k_i > 1` can bank up to `k_i * MaxL`
    /// cycles of credit and issue requests back-to-back, at the price of
    /// temporal starvation for the others (paper, Section III.A).
    ///
    /// # Errors
    ///
    /// Returns [`CbaError::InvalidConfig`] if the vector length differs
    /// from the core count or any multiplier is 0 or above
    /// [`Self::MAX_CAP_MULTIPLIER`].
    pub fn with_cap_multipliers(mut self, multipliers: Vec<u32>) -> Result<Self, CbaError> {
        if multipliers.len() != self.n_cores {
            return Err(CbaError::InvalidConfig(format!(
                "expected {} cap multipliers, got {}",
                self.n_cores,
                multipliers.len()
            )));
        }
        if multipliers
            .iter()
            .any(|&k| k == 0 || k > Self::MAX_CAP_MULTIPLIER)
        {
            return Err(CbaError::InvalidConfig(format!(
                "cap multipliers must be in 1..={}",
                Self::MAX_CAP_MULTIPLIER
            )));
        }
        self.cap_multipliers = multipliers;
        Ok(self)
    }

    fn validate_common(n_cores: usize, max_latency: u32) -> Result<(), CbaError> {
        if n_cores == 0 || n_cores > CoreId::MAX_CORES {
            return Err(CbaError::InvalidConfig(format!(
                "n_cores must be in 1..={}, got {n_cores}",
                CoreId::MAX_CORES
            )));
        }
        if max_latency == 0 {
            return Err(CbaError::InvalidConfig(
                "max_latency must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// MaxL: the longest possible bus transaction, in cycles.
    pub fn max_latency(&self) -> u32 {
        self.max_latency
    }

    /// The recovery weights.
    pub fn weights(&self) -> &BandwidthWeights {
        &self.weights
    }

    /// The common denominator of the scaled-integer scheme (`N` for
    /// homogeneous CBA).
    pub fn denominator(&self) -> u32 {
        match &self.weights {
            BandwidthWeights::Homogeneous => self.n_cores as u32,
            BandwidthWeights::Weighted { denominator, .. } => *denominator,
        }
    }

    /// Core `i`'s recovery numerator (budget units per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the platform.
    pub fn numerator(&self, core: CoreId) -> u32 {
        assert!(core.index() < self.n_cores, "{core} outside platform");
        match &self.weights {
            BandwidthWeights::Homogeneous => 1,
            BandwidthWeights::Weighted { numerators, .. } => numerators[core.index()],
        }
    }

    /// The long-run bandwidth fraction core `i` may sustain
    /// (`num_i / den`).
    pub fn bandwidth_fraction(&self, core: CoreId) -> f64 {
        self.numerator(core) as f64 / self.denominator() as f64
    }

    /// The scaled eligibility threshold: `den * MaxL` budget units, i.e.
    /// `MaxL` cycles of credit. A core is arbitrable when its scaled budget
    /// reaches this value.
    ///
    /// For the paper's platform (4 cores, MaxL = 56) this is 224 — Table I
    /// prints "228 (56x4)", an arithmetic slip in the paper.
    pub fn scaled_threshold(&self) -> u64 {
        self.denominator() as u64 * self.max_latency as u64
    }

    /// Core `i`'s scaled budget cap: `k_i * den * MaxL`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the platform.
    pub fn scaled_cap(&self, core: CoreId) -> u64 {
        assert!(core.index() < self.n_cores, "{core} outside platform");
        self.cap_multipliers[core.index()] as u64 * self.scaled_threshold()
    }

    /// Core `i`'s cap multiplier `k_i`.
    pub fn cap_multiplier(&self, core: CoreId) -> u32 {
        self.cap_multipliers[core.index()]
    }

    /// Whether this is the base (homogeneous weights, unit caps)
    /// configuration.
    pub fn is_homogeneous(&self) -> bool {
        matches!(self.weights, BandwidthWeights::Homogeneous)
            && self.cap_multipliers.iter().all(|&k| k == 1)
    }

    /// Width in bits of the per-core hardware budget counter:
    /// `ceil(log2(max cap + 1))`. The paper's 4-core, MaxL = 56 platform
    /// needs 8 bits.
    pub fn counter_bits(&self) -> u32 {
        let max_cap = CoreId::all(self.n_cores)
            .map(|c| self.scaled_cap(c))
            .max()
            .expect("at least one core");
        64 - max_cap.leading_zeros()
    }

    /// Report name for this configuration: "CBA" for the base scheme,
    /// "H-CBA" when weights are skewed, "CBA-cap" when only caps are, and
    /// "H-CBA-cap" for both.
    pub fn scheme_name(&self) -> &'static str {
        let weighted = !matches!(self.weights, BandwidthWeights::Homogeneous);
        let capped = self.cap_multipliers.iter().any(|&k| k > 1);
        match (weighted, capped) {
            (false, false) => "CBA",
            (true, false) => "H-CBA",
            (false, true) => "CBA-cap",
            (true, true) => "H-CBA-cap",
        }
    }

    /// Worst-case budget-recovery time after a transaction of `duration`
    /// cycles for `core`, in cycles: the time from transaction end until
    /// the core is eligible again (assuming it started the transaction
    /// exactly at the eligibility threshold).
    ///
    /// For homogeneous CBA this is `(N - 1) * duration` — the analytical
    /// heart of the paper's 2.8x illustrative example.
    pub fn recovery_cycles(&self, core: CoreId, duration: u32) -> u64 {
        let num = self.numerator(core) as u64;
        let den = self.denominator() as u64;
        let drained = (den - num) * duration as u64;
        // ceil(drained / num)
        drained.div_ceil(num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    #[test]
    fn homogeneous_paper_platform() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        assert_eq!(cfg.n_cores(), 4);
        assert_eq!(cfg.max_latency(), 56);
        assert_eq!(cfg.denominator(), 4);
        assert_eq!(cfg.numerator(c(0)), 1);
        assert_eq!(cfg.scaled_threshold(), 224);
        assert_eq!(cfg.scaled_cap(c(0)), 224);
        assert_eq!(cfg.counter_bits(), 8, "paper: 8-bit budget counter");
        assert!(cfg.is_homogeneous());
        assert_eq!(cfg.scheme_name(), "CBA");
    }

    #[test]
    fn paper_hcba_weights() {
        let cfg = CreditConfig::paper_hcba(56).unwrap();
        assert_eq!(cfg.denominator(), 6);
        assert_eq!(cfg.numerator(c(0)), 3);
        assert_eq!(cfg.numerator(c(1)), 1);
        assert!((cfg.bandwidth_fraction(c(0)) - 0.5).abs() < 1e-12);
        assert!((cfg.bandwidth_fraction(c(1)) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(cfg.scaled_threshold(), 336);
        assert_eq!(cfg.scheme_name(), "H-CBA");
        assert!(!cfg.is_homogeneous());
    }

    #[test]
    fn weighted_validation() {
        // length mismatch is impossible by construction (len defines n),
        // but zero weights and bad sums are rejected:
        assert!(CreditConfig::weighted(56, vec![4, 0, 1, 1], 6).is_err());
        assert!(CreditConfig::weighted(56, vec![3, 1, 1, 1], 7).is_err());
        assert!(CreditConfig::weighted(56, vec![], 4).is_err());
        assert!(CreditConfig::weighted(0, vec![1, 1], 2).is_err());
    }

    #[test]
    fn common_validation() {
        assert!(CreditConfig::homogeneous(0, 56).is_err());
        assert!(CreditConfig::homogeneous(4, 0).is_err());
        assert!(CreditConfig::homogeneous(CoreId::MAX_CORES + 1, 56).is_err());
    }

    #[test]
    fn cap_multipliers() {
        let cfg = CreditConfig::homogeneous(4, 56)
            .unwrap()
            .with_cap_multipliers(vec![2, 1, 1, 1])
            .unwrap();
        assert_eq!(cfg.scaled_cap(c(0)), 448);
        assert_eq!(cfg.scaled_cap(c(1)), 224);
        assert_eq!(cfg.scaled_threshold(), 224);
        assert_eq!(cfg.scheme_name(), "CBA-cap");
        assert_eq!(cfg.counter_bits(), 9);
    }

    #[test]
    fn cap_multiplier_validation() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        assert!(cfg.clone().with_cap_multipliers(vec![1, 1, 1]).is_err());
        assert!(cfg.clone().with_cap_multipliers(vec![0, 1, 1, 1]).is_err());
        assert!(cfg
            .clone()
            .with_cap_multipliers(vec![CreditConfig::MAX_CAP_MULTIPLIER + 1, 1, 1, 1])
            .is_err());
    }

    #[test]
    fn scheme_names() {
        let base = CreditConfig::homogeneous(4, 56).unwrap();
        assert_eq!(base.scheme_name(), "CBA");
        let hcba = CreditConfig::paper_hcba(56).unwrap();
        assert_eq!(hcba.scheme_name(), "H-CBA");
        let both = CreditConfig::paper_hcba(56)
            .unwrap()
            .with_cap_multipliers(vec![2, 1, 1, 1])
            .unwrap();
        assert_eq!(both.scheme_name(), "H-CBA-cap");
    }

    #[test]
    fn recovery_time_homogeneous_matches_paper_analysis() {
        // Paper Section II: a 6-cycle request on a 4-core CBA bus costs
        // 18 cycles of recovery -> the TuA sustains a 24-cycle period (25%).
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        assert_eq!(cfg.recovery_cycles(c(0), 6), 18);
        assert_eq!(cfg.recovery_cycles(c(0), 56), 168);
        assert_eq!(cfg.recovery_cycles(c(0), 28), 84);
    }

    #[test]
    fn recovery_time_weighted() {
        // H-CBA TuA (3/6): a 56-cycle request drains (6-3)*56 = 168 units,
        // recovered at 3/cycle -> 56 cycles.
        let cfg = CreditConfig::paper_hcba(56).unwrap();
        assert_eq!(cfg.recovery_cycles(c(0), 56), 56);
        // Contender (1/6): (6-1)*56 = 280 units at 1/cycle -> 280 cycles.
        assert_eq!(cfg.recovery_cycles(c(1), 56), 280);
    }

    #[test]
    fn bandwidth_fractions_sum_to_one() {
        for cfg in [
            CreditConfig::homogeneous(4, 56).unwrap(),
            CreditConfig::paper_hcba(56).unwrap(),
            CreditConfig::weighted(56, vec![5, 2, 2, 1], 10).unwrap(),
        ] {
            let total: f64 = CoreId::all(cfg.n_cores())
                .map(|c| cfg.bandwidth_fraction(c))
                .sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn error_displays() {
        let e = CreditConfig::homogeneous(0, 56).unwrap_err();
        assert!(e.to_string().contains("n_cores"));
    }
}
