//! Credit-Based Arbitration (CBA) for shared buses — the contribution of
//! *“Design and Implementation of a Fair Credit-Based Bandwidth Sharing
//! Scheme for Buses”* (Slijepcevic, Hernandez, Abella, Cazorla — DATE 2017).
//!
//! # The problem
//!
//! Classical real-time bus arbiters (FIFO, round-robin, TDMA, lottery,
//! random permutations) are fair in the number of **slots** each core is
//! granted. On a non-split bus where transactions last from 5 cycles (L2
//! read hit) to 56 cycles (dirty miss, atomic op), slot fairness is *not*
//! bandwidth fairness: a core issuing 5-cycle requests alternating with a
//! core issuing 45-cycle requests receives only 10% of the bus cycles. The
//! paper shows this inflates the worst-case slowdown of short-request tasks
//! far beyond the core count (9.4x on a 4-core — "virtually unbounded").
//!
//! # The mechanism
//!
//! CBA gives each core a credit **budget** measured in bus cycles and
//! saturating at `MaxL`, the longest possible transaction:
//!
//! * every cycle, each core recovers `1/N` cycles of budget (Equation 1 of
//!   the paper), implemented fraction-free with scaled integers
//!   ([`CreditCounter`]);
//! * while a core holds the bus, its budget drains by 1 cycle per cycle;
//! * only cores with a **full** (`>= MaxL`) budget are *eligible* for
//!   arbitration — CBA is an eligibility filter in front of any slot-fair
//!   policy ([`CreditFilter`] implements
//!   [`cba_bus::EligibilityFilter`]).
//!
//! In steady state **no** core can hold the bus for more than `1/N` of the
//! cycles, whatever its request lengths: long-request cores are pinned to
//! their bandwidth entitlement instead of hogging the bus, which is what
//! bounds the slowdown of short-request tasks by roughly the core count.
//! (The filter is an upper bound, not a proportional scheduler: a
//! short-request core still pays its own recovery windows, so under full
//! saturation it reaches less than `1/N` — see `EXPERIMENTS.md` for the
//! quantitative comparison against the paper's idealized analysis.)
//!
//! Heterogeneous allocation (H-CBA) skews the recovery weights (e.g. ½ for
//! the task under analysis and 1/6 for the other three cores, giving it 50%
//! of the bandwidth) or lets a core's budget cap grow above `MaxL` so that
//! it can burst back-to-back ([`CreditConfig`] expresses both variants).
//!
//! # WCET estimation mode
//!
//! For measurement-based probabilistic timing analysis (MBPTA) the paper
//! adds a hardware mode that manufactures the worst contention scenario
//! while the task under analysis (TuA) runs: contender cores always have a
//! `MaxL` request ready, but *compete* only when the TuA itself has a
//! request pending and their own budget is full (the `COMP`/`REQ` signal
//! logic of Table I, implemented by [`CreditFilter`] in
//! [`Mode::WcetEstimation`]). [`SignalTable`] renders Table I straight from
//! a configuration.
//!
//! # Example
//!
//! ```
//! use cba::{CreditConfig, CreditFilter};
//! use cba_bus::{drive, Bus, BusConfig, BusRequest, Control, RequestKind, PolicyKind};
//! use sim_core::CoreId;
//!
//! // The paper's platform: 4 cores, MaxL = 56, random permutations + CBA.
//! let config = CreditConfig::homogeneous(4, 56)?;
//! let mut bus = Bus::new(BusConfig::new(4, 56)?, PolicyKind::RandomPermutation.build(4, 56));
//! bus.set_filter(Box::new(CreditFilter::new(config)));
//!
//! // Core 0 saturates with short requests, cores 1-3 with long ones; the
//! // workspace-wide engine owns the cycle loop.
//! let total = 20_000u64;
//! drive(&mut bus, total, |bus, now, _completed| {
//!     for i in 0..4 {
//!         let c = CoreId::from_index(i);
//!         if !bus.has_pending(c) && bus.owner() != Some(c) {
//!             let dur = if i == 0 { 5 } else { 56 };
//!             bus.post(BusRequest::new(c, dur, RequestKind::Synthetic, now).unwrap())
//!                 .unwrap();
//!         }
//!     }
//!     Control::Continue
//! });
//! // Each long-request core is pinned at <= 1/4 of *all* cycles (under a
//! // slot-fair policy it would grab 56/173 = 32%), and the short-request
//! // core's bandwidth roughly triples versus slot-fair round-robin
//! // (5/173 = 2.9% there).
//! for i in 1..4 {
//!     let busy = bus.trace().busy_cycles(CoreId::from_index(i));
//!     assert!(busy as f64 / total as f64 <= 0.26, "core{i} exceeded 1/N");
//! }
//! let short = bus.trace().busy_cycles(CoreId::from_index(0)) as f64 / total as f64;
//! assert!(short > 0.06, "short-request core got only {short}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod credit;
pub mod filter;
pub mod signals;

pub use config::{BandwidthWeights, CbaError, CreditConfig};
pub use cost::HardwareCost;
pub use credit::CreditCounter;
pub use filter::{CreditFilter, Mode};
pub use signals::SignalTable;
