#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod credit;
pub mod filter;
pub mod signals;

pub use config::{BandwidthWeights, CbaError, CreditConfig};
pub use cost::HardwareCost;
pub use credit::CreditCounter;
pub use filter::{CreditFilter, Mode};
pub use signals::SignalTable;
