//! Table I renderer: the arbiter's signal summary, generated from a live
//! configuration.
//!
//! The paper's Table I documents, for each per-core signal of the CBA
//! arbiter, its update rule in both platform modes. [`SignalTable`]
//! reproduces that table directly from a [`CreditConfig`] so that the
//! printed artifact can never drift from the implementation (the
//! regenerator bench `table1` prints it, and the integration tests assert
//! each row's behaviour against the simulator).

use crate::config::CreditConfig;
use sim_core::CoreId;
use std::fmt;

/// One row of the signal summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalRow {
    /// Signal name, e.g. `BUDG0` or `COMP1..3`.
    pub signal: String,
    /// Update rule in the first column context (every cycle / WCET mode).
    pub first: String,
    /// Update rule in the second column context (when using bus /
    /// operation mode).
    pub second: String,
}

/// The generated Table I.
///
/// # Example
///
/// ```
/// use cba::{CreditConfig, SignalTable};
///
/// let table = SignalTable::new(&CreditConfig::homogeneous(4, 56)?);
/// let text = table.to_string();
/// assert!(text.contains("min(BUDGi + 1, 224)"));
/// assert!(text.contains("BUDGi - 4"));
/// # Ok::<(), cba::CbaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalTable {
    budget_rows: Vec<SignalRow>,
    mode_rows: Vec<SignalRow>,
    threshold: u64,
    paper_threshold_note: Option<String>,
}

impl SignalTable {
    /// Builds the signal summary for `config`, with core 0 as the TuA (the
    /// paper's core 1 — it uses 1-based numbering, we use 0-based).
    pub fn new(config: &CreditConfig) -> Self {
        let n = config.n_cores();
        let den = config.denominator();
        let threshold = config.scaled_threshold();

        // Budget rows: group cores with identical (num, cap) pairs.
        let mut budget_rows = Vec::new();
        let mut covered = vec![false; n];
        for i in 0..n {
            if covered[i] {
                continue;
            }
            let core = CoreId::from_index(i);
            let num = config.numerator(core);
            let cap = config.scaled_cap(core);
            let group: Vec<usize> = (i..n)
                .filter(|&j| {
                    let cj = CoreId::from_index(j);
                    config.numerator(cj) == num && config.scaled_cap(cj) == cap
                })
                .collect();
            for &j in &group {
                covered[j] = true;
            }
            budget_rows.push(SignalRow {
                signal: format!("BUDG{}", group_label(&group)),
                first: format!("min(BUDGi + {num}, {cap})"),
                second: format!("BUDGi - {den}"),
            });
        }

        // Mode rows (COMP / REQ), TuA = core 0, contenders = 1..n.
        let contenders: Vec<usize> = (1..n).collect();
        let clabel = group_label(&contenders);
        let mode_rows = vec![
            SignalRow {
                signal: "COMP0".into(),
                first: "----".into(),
                second: "----".into(),
            },
            SignalRow {
                signal: format!("COMP{clabel}"),
                first: format!("BUDGi == {threshold} AND REQ0 == 1"),
                second: "1".into(),
            },
            SignalRow {
                signal: "REQ0".into(),
                first: "when request ready".into(),
                second: "when request ready".into(),
            },
            SignalRow {
                signal: format!("REQ{clabel}"),
                first: "1".into(),
                second: "when request ready".into(),
            },
        ];

        // The paper's Table I says the counter saturates at 228 "(56x4)",
        // but 56*4 = 224; flag the discrepancy whenever it applies.
        let paper_threshold_note = if config.max_latency() == 56 && den == 4 {
            Some(
                "note: the paper's Table I prints 228 \"(56x4)\"; 56x4 = 224 — \
                 we implement the product."
                    .into(),
            )
        } else {
            None
        };

        SignalTable {
            budget_rows,
            mode_rows,
            threshold,
            paper_threshold_note,
        }
    }

    /// Budget-register rows (`BUDGi`: every cycle / when using bus).
    pub fn budget_rows(&self) -> &[SignalRow] {
        &self.budget_rows
    }

    /// Mode rows (`COMPi`, `REQi`: WCET mode / operation mode).
    pub fn mode_rows(&self) -> &[SignalRow] {
        &self.mode_rows
    }

    /// The scaled eligibility threshold shown in the table.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The footnote flagging the paper's 228-vs-224 slip, when applicable.
    pub fn paper_threshold_note(&self) -> Option<&str> {
        self.paper_threshold_note.as_deref()
    }
}

fn group_label(indices: &[usize]) -> String {
    match indices {
        [] => String::new(),
        [one] => one.to_string(),
        _ => {
            let contiguous = indices.windows(2).all(|w| w[1] == w[0] + 1);
            if contiguous {
                format!("{}..{}", indices[0], indices[indices.len() - 1])
            } else {
                indices
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
    }
}

impl fmt::Display for SignalTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE I. SUMMARY OF SIGNALS (generated from configuration)"
        )?;
        writeln!(f, "{:<12} {:<34} When using bus", "", "Every cycle")?;
        for row in &self.budget_rows {
            writeln!(f, "{:<12} {:<34} {}", row.signal, row.first, row.second)?;
        }
        writeln!(f, "{:<12} {:<34} Operation mode", "", "WCET mode")?;
        for row in &self.mode_rows {
            writeln!(f, "{:<12} {:<34} {}", row.signal, row.first, row.second)?;
        }
        if let Some(note) = &self.paper_threshold_note {
            writeln!(f, "{note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_table() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let t = SignalTable::new(&cfg);
        assert_eq!(t.threshold(), 224);
        assert_eq!(t.budget_rows().len(), 1, "homogeneous cores share one row");
        assert_eq!(t.budget_rows()[0].signal, "BUDG0..3");
        assert_eq!(t.budget_rows()[0].first, "min(BUDGi + 1, 224)");
        assert_eq!(t.budget_rows()[0].second, "BUDGi - 4");
        assert!(t.paper_threshold_note().is_some(), "flags the 228 slip");
    }

    #[test]
    fn mode_rows_match_table_i() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let t = SignalTable::new(&cfg);
        let rows = t.mode_rows();
        assert_eq!(rows[0].signal, "COMP0");
        assert_eq!(rows[0].first, "----");
        assert_eq!(rows[1].signal, "COMP1..3");
        assert_eq!(rows[1].first, "BUDGi == 224 AND REQ0 == 1");
        assert_eq!(rows[1].second, "1");
        assert_eq!(rows[2].signal, "REQ0");
        assert_eq!(rows[2].first, "when request ready");
        assert_eq!(rows[3].signal, "REQ1..3");
        assert_eq!(rows[3].first, "1");
        assert_eq!(rows[3].second, "when request ready");
    }

    #[test]
    fn hcba_table_splits_budget_rows() {
        let cfg = CreditConfig::paper_hcba(56).unwrap();
        let t = SignalTable::new(&cfg);
        assert_eq!(t.budget_rows().len(), 2, "TuA has its own weight row");
        assert_eq!(t.budget_rows()[0].signal, "BUDG0");
        assert_eq!(t.budget_rows()[0].first, "min(BUDGi + 3, 336)");
        assert_eq!(t.budget_rows()[0].second, "BUDGi - 6");
        assert_eq!(t.budget_rows()[1].signal, "BUDG1..3");
        assert_eq!(t.budget_rows()[1].first, "min(BUDGi + 1, 336)");
    }

    #[test]
    fn no_note_for_other_platforms() {
        let cfg = CreditConfig::homogeneous(8, 40).unwrap();
        let t = SignalTable::new(&cfg);
        assert!(t.paper_threshold_note().is_none());
    }

    #[test]
    fn display_renders_full_table() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let text = SignalTable::new(&cfg).to_string();
        assert!(text.contains("TABLE I"));
        assert!(text.contains("Every cycle"));
        assert!(text.contains("WCET mode"));
        assert!(text.contains("Operation mode"));
        assert!(text.contains("224"));
    }

    #[test]
    fn group_labels() {
        assert_eq!(group_label(&[1, 2, 3]), "1..3");
        assert_eq!(group_label(&[2]), "2");
        assert_eq!(group_label(&[0, 2]), "0,2");
    }

    #[test]
    fn two_core_platform_table() {
        let cfg = CreditConfig::homogeneous(2, 10).unwrap();
        let t = SignalTable::new(&cfg);
        assert_eq!(t.threshold(), 20);
        assert_eq!(t.mode_rows()[1].signal, "COMP1");
    }
}
