//! The CBA eligibility filter — the arbiter-side implementation of the
//! mechanism, including the WCET-estimation-mode signal logic of Table I.
//!
//! [`CreditFilter`] plugs into the bus via
//! [`cba_bus::EligibilityFilter`]: every cycle the bus reports who held the
//! bus (budgets drain/recover), and during arbitration the filter vetoes
//! pending requests whose core lacks a full `MaxL` budget. Any slot-fair
//! policy then chooses among the eligible survivors, exactly as the paper
//! describes ("CBA acts as a filter to determine the pending requests that
//! are eligible to be arbitrated").

use crate::config::CreditConfig;
use crate::credit::CreditCounter;
use cba_bus::{EligibilityFilter, PendingSet};
use sim_core::{CoreId, Cycle};

/// Platform operating mode (paper, Section III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal operation: every core's pending request is eligible whenever
    /// its budget is full (`COMPi` signals "always set").
    Operation,
    /// WCET-estimation (analysis) mode: the task under analysis runs on
    /// `tua`; the other cores are contention generators whose requests
    /// compete only when (a) their budget is full and (b) the TuA has a
    /// request pending — the latched `COMPi` bit of Table I. The TuA's own
    /// budget starts at **zero** so that measurements capture the
    /// worst-case initial state.
    WcetEstimation {
        /// Core running the task under analysis (REQ1 in the paper's
        /// numbering).
        tua: CoreId,
    },
}

/// Credit-based arbitration as a bus eligibility filter.
///
/// Holds one [`CreditCounter`] per core plus, in WCET-estimation mode, one
/// latched `COMP` bit per contender core.
///
/// # Example
///
/// ```
/// use cba::{CreditConfig, CreditFilter, Mode};
/// use cba_bus::{EligibilityFilter, PendingSet};
/// use sim_core::CoreId;
///
/// let cfg = CreditConfig::homogeneous(4, 56)?;
/// let mut filter = CreditFilter::new(cfg);
/// let c0 = CoreId::from_index(0);
/// // Fresh operation-mode filter: everyone starts with a full budget.
/// assert!(filter.is_eligible(c0, 0));
///
/// // After a grant the core drains and is ineligible until recovered.
/// filter.on_grant(c0, 8, 0);
/// let empty = PendingSet::new(4);
/// for now in 0..8 { filter.tick(now, Some(c0), &empty); }
/// assert!(!filter.is_eligible(c0, 8));
/// for now in 8..32 { filter.tick(now, None, &empty); }
/// assert!(filter.is_eligible(c0, 32)); // (N-1)*8 = 24 cycles later
/// # Ok::<(), cba::CbaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CreditFilter {
    config: CreditConfig,
    counters: Vec<CreditCounter>,
    comp: Vec<bool>,
    mode: Mode,
    name: &'static str,
}

impl CreditFilter {
    /// Creates an operation-mode filter with all budgets full (the
    /// steady-state assumption for performance experiments).
    pub fn new(config: CreditConfig) -> Self {
        Self::with_mode(config, Mode::Operation)
    }

    /// Creates a filter in the given mode.
    ///
    /// Initial budgets follow the paper's measurement protocol: in
    /// operation mode all cores start full; in WCET-estimation mode the
    /// TuA starts at zero (worst case — its first request is maximally
    /// delayed) and contenders start full.
    pub fn with_mode(config: CreditConfig, mode: Mode) -> Self {
        let n = config.n_cores();
        let name = config.scheme_name();
        let counters = CoreId::all(n)
            .map(|core| {
                let initial = match mode {
                    Mode::WcetEstimation { tua } if core == tua => 0,
                    _ => config.scaled_cap(core),
                };
                CreditCounter::new(
                    config.numerator(core),
                    config.denominator(),
                    config.scaled_cap(core),
                    initial,
                )
            })
            .collect();
        CreditFilter {
            counters,
            comp: vec![false; n],
            mode,
            name,
            config,
        }
    }

    /// The filter's configuration.
    pub fn config(&self) -> &CreditConfig {
        &self.config
    }

    /// The operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current scaled budget of `core` (the `BUDGi` register).
    pub fn budget(&self, core: CoreId) -> u64 {
        self.counters[core.index()].value()
    }

    /// Current latched `COMPi` bit of `core` (always `true` in operation
    /// mode, matching Table I's "Operation mode: 1").
    pub fn comp(&self, core: CoreId) -> bool {
        match self.mode {
            Mode::Operation => true,
            Mode::WcetEstimation { tua } => core == tua || self.comp[core.index()],
        }
    }

    /// Whether `core`'s budget has reached the `MaxL` eligibility
    /// threshold.
    pub fn budget_full(&self, core: CoreId) -> bool {
        self.counters[core.index()].is_at_least(self.config.scaled_threshold())
    }

    fn is_tua(&self, core: CoreId) -> bool {
        matches!(self.mode, Mode::WcetEstimation { tua } if tua == core)
    }
}

impl EligibilityFilter for CreditFilter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_eligible(&self, core: CoreId, _now: Cycle) -> bool {
        match self.mode {
            Mode::Operation => self.budget_full(core),
            Mode::WcetEstimation { tua } => {
                if core == tua {
                    self.budget_full(core)
                } else {
                    // Contenders compete only while their latched COMP bit
                    // is set (budget was full while the TuA had a request).
                    self.comp[core.index()]
                }
            }
        }
    }

    fn on_grant(&mut self, core: CoreId, _duration: u32, _now: Cycle) {
        // "COMPi is reset whenever core i is granted access to the bus."
        if !self.is_tua(core) {
            self.comp[core.index()] = false;
        }
    }

    fn tick(&mut self, _now: Cycle, owner: Option<CoreId>, pending: &PendingSet) {
        for (i, counter) in self.counters.iter_mut().enumerate() {
            counter.tick(owner.map(CoreId::index) == Some(i));
        }
        if let Mode::WcetEstimation { tua } = self.mode {
            // "The COMPi bit is set when BUDGi is [full] and REQ1 is set."
            // REQ1 = the TuA has a request pending (or currently in
            // service, which keeps contenders competing during its
            // transaction window as on the FPGA where REQ stays high until
            // served).
            let req1 = pending.contains(tua) || owner == Some(tua);
            if req1 {
                let threshold = self.config.scaled_threshold();
                for i in 0..self.comp.len() {
                    let core = CoreId::from_index(i);
                    if core != tua && self.counters[i].is_at_least(threshold) {
                        self.comp[i] = true;
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        let config = self.config.clone();
        let mode = self.mode;
        *self = CreditFilter::with_mode(config, mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::{BusRequest, RequestKind};

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn pending_with(n: usize, cores: &[usize]) -> PendingSet {
        let mut p = PendingSet::new(n);
        for &i in cores {
            p.insert(BusRequest::new(c(i), 5, RequestKind::Synthetic, 0).unwrap())
                .unwrap();
        }
        p
    }

    #[test]
    fn operation_mode_initially_all_eligible() {
        let f = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
        for i in 0..4 {
            assert!(f.is_eligible(c(i), 0));
            assert!(f.comp(c(i)), "operation mode: COMP always 1");
        }
    }

    #[test]
    fn budget_drains_and_blocks_until_recovered() {
        let mut f = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
        let empty = PendingSet::new(4);
        // Core 0 holds the bus for 10 cycles.
        for now in 0..10 {
            f.tick(now, Some(c(0)), &empty);
        }
        assert_eq!(f.budget(c(0)), 224 - 30);
        assert!(!f.is_eligible(c(0), 10));
        // Others untouched.
        for i in 1..4 {
            assert!(f.is_eligible(c(i), 10));
            assert_eq!(f.budget(c(i)), 224);
        }
        // Recovery takes (N-1)*10 = 30 idle cycles.
        for now in 10..39 {
            f.tick(now, None, &empty);
            assert!(!f.is_eligible(c(0), now + 1), "eligible too early at {now}");
        }
        f.tick(39, None, &empty);
        assert!(f.is_eligible(c(0), 40));
    }

    #[test]
    fn wcet_mode_tua_starts_with_zero_budget() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        assert_eq!(f.budget(c(0)), 0);
        assert!(!f.is_eligible(c(0), 0));
        for i in 1..4 {
            assert_eq!(f.budget(c(i)), 224, "contenders start full");
        }
    }

    #[test]
    fn wcet_mode_comp_requires_req1() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let no_tua = pending_with(4, &[1, 2, 3]);
        // Contenders pending, budgets full, but the TuA has no request:
        // COMP stays clear, contenders ineligible.
        for now in 0..50 {
            f.tick(now, None, &no_tua);
        }
        for i in 1..4 {
            assert!(!f.is_eligible(c(i), 50), "contender {i} must wait for REQ1");
            assert!(!f.comp(c(i)));
        }
        // The TuA posts a request: COMP latches for full-budget contenders.
        let with_tua = pending_with(4, &[0, 1, 2, 3]);
        f.tick(50, None, &with_tua);
        for i in 1..4 {
            assert!(f.is_eligible(c(i), 51), "contender {i} competes now");
            assert!(f.comp(c(i)));
        }
    }

    #[test]
    fn wcet_mode_comp_clears_on_grant_and_stays_latched_otherwise() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let with_tua = pending_with(4, &[0, 1, 2, 3]);
        f.tick(0, None, &with_tua);
        assert!(f.comp(c(1)));
        // COMP latches even if the TuA's request disappears...
        let no_tua = pending_with(4, &[1, 2, 3]);
        f.tick(1, None, &no_tua);
        assert!(f.comp(c(1)), "COMP is latched, not combinational");
        // ...and clears exactly on grant.
        f.on_grant(c(1), 56, 2);
        assert!(!f.comp(c(1)));
        assert!(!f.is_eligible(c(1), 2));
    }

    #[test]
    fn wcet_mode_tua_grant_does_not_clear_its_eligibility_logic() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let empty = PendingSet::new(4);
        // Fill the TuA's budget: 224 idle cycles.
        for now in 0..224 {
            f.tick(now, None, &empty);
        }
        assert!(f.is_eligible(c(0), 224));
        f.on_grant(c(0), 6, 224);
        // TuA eligibility is budget-based; on_grant must not latch anything
        // weird for it.
        assert!(
            f.budget_full(c(0)),
            "budget drains during ticks, not at grant"
        );
    }

    #[test]
    fn wcet_mode_req1_includes_tua_in_service() {
        // While the TuA's own transaction is in flight the contenders keep
        // latching COMP (REQ stays asserted until served on the FPGA).
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let empty = PendingSet::new(4);
        f.tick(0, Some(c(0)), &empty); // TuA holds the bus, nothing pending
        assert!(f.comp(c(1)), "COMP latched while TuA in service");
    }

    #[test]
    fn hcba_weighted_recovery_rates() {
        let cfg = CreditConfig::paper_hcba(56).unwrap();
        let mut f = CreditFilter::new(cfg);
        let empty = PendingSet::new(4);
        // Drain everyone by one 56-cycle transaction each (sequentially).
        for core in 0..4 {
            for _ in 0..56 {
                f.tick_helper(Some(c(core)), &empty);
            }
        }
        // TuA (num=3): drained 3*56 = 168 below cap while holding, then
        // recovered 3/cycle over the 3*56 = 168 cycles the others held:
        // back to full.
        assert!(f.budget_full(c(0)));
        // The last contender (num=1) is still recovering.
        assert!(!f.budget_full(c(3)));
    }

    impl CreditFilter {
        /// Test helper: tick without tracking cycle numbers.
        fn tick_helper(&mut self, owner: Option<CoreId>, pending: &PendingSet) {
            // Safe: `tick` ignores `now`.
            EligibilityFilter::tick(self, 0, owner, pending);
        }
    }

    #[test]
    fn cap_multiplier_allows_back_to_back() {
        let cfg = CreditConfig::homogeneous(4, 56)
            .unwrap()
            .with_cap_multipliers(vec![2, 1, 1, 1])
            .unwrap();
        let mut f = CreditFilter::new(cfg);
        let empty = PendingSet::new(4);
        // Let core 0 bank up to 2*MaxL: 224 extra cycles idle.
        for _ in 0..448 {
            f.tick_helper(None, &empty);
        }
        assert_eq!(f.budget(c(0)), 448);
        // One full MaxL transaction drains 3*56 = 168; still >= 224:
        for _ in 0..56 {
            f.tick_helper(Some(c(0)), &empty);
        }
        assert!(
            f.is_eligible(c(0), 0),
            "banked budget permits a back-to-back MaxL transaction"
        );
        // A second one in a row exhausts the bank below the threshold.
        for _ in 0..56 {
            f.tick_helper(Some(c(0)), &empty);
        }
        assert!(!f.is_eligible(c(0), 0));
    }

    #[test]
    fn reset_restores_mode_specific_initial_budgets() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let with_tua = pending_with(4, &[0]);
        for now in 0..300 {
            f.tick(now, None, &with_tua);
        }
        assert!(f.budget_full(c(0)));
        f.reset();
        assert_eq!(f.budget(c(0)), 0, "TuA back to zero budget");
        assert_eq!(f.budget(c(1)), 224);
        assert!(!f.comp(c(1)));
    }

    #[test]
    fn filter_names_follow_scheme() {
        let base = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
        assert_eq!(base.name(), "CBA");
        let hetero = CreditFilter::new(CreditConfig::paper_hcba(56).unwrap());
        assert_eq!(hetero.name(), "H-CBA");
    }
}
