//! The CBA eligibility filter — the arbiter-side implementation of the
//! mechanism, including the WCET-estimation-mode signal logic of Table I.
//!
//! [`CreditFilter`] plugs into the bus via
//! [`cba_bus::EligibilityFilter`]: every cycle the bus reports who held the
//! bus (budgets drain/recover), and during arbitration the filter vetoes
//! pending requests whose core lacks a full `MaxL` budget. Any slot-fair
//! policy then chooses among the eligible survivors, exactly as the paper
//! describes ("CBA acts as a filter to determine the pending requests that
//! are eligible to be arbitrated").

use crate::config::CreditConfig;
use crate::credit::CreditCounter;
use cba_bus::{EligibilityFilter, FilterHorizon, PendingSet};
use sim_core::{CoreId, Cycle};

/// Platform operating mode (paper, Section III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal operation: every core's pending request is eligible whenever
    /// its budget is full (`COMPi` signals "always set").
    Operation,
    /// WCET-estimation (analysis) mode: the task under analysis runs on
    /// `tua`; the other cores are contention generators whose requests
    /// compete only when (a) their budget is full and (b) the TuA has a
    /// request pending — the latched `COMPi` bit of Table I. The TuA's own
    /// budget starts at **zero** so that measurements capture the
    /// worst-case initial state.
    WcetEstimation {
        /// Core running the task under analysis (REQ1 in the paper's
        /// numbering).
        tua: CoreId,
    },
}

/// Credit-based arbitration as a bus eligibility filter.
///
/// Holds one [`CreditCounter`] per core plus, in WCET-estimation mode, one
/// latched `COMP` bit per contender core.
///
/// # Example
///
/// ```
/// use cba::{CreditConfig, CreditFilter, Mode};
/// use cba_bus::{EligibilityFilter, PendingSet};
/// use sim_core::CoreId;
///
/// let cfg = CreditConfig::homogeneous(4, 56)?;
/// let mut filter = CreditFilter::new(cfg);
/// let c0 = CoreId::from_index(0);
/// // Fresh operation-mode filter: everyone starts with a full budget.
/// assert!(filter.is_eligible(c0, 0));
///
/// // After a grant the core drains and is ineligible until recovered.
/// filter.on_grant(c0, 8, 0);
/// let empty = PendingSet::new(4);
/// for now in 0..8 { filter.tick(now, Some(c0), &empty); }
/// assert!(!filter.is_eligible(c0, 8));
/// for now in 8..32 { filter.tick(now, None, &empty); }
/// assert!(filter.is_eligible(c0, 32)); // (N-1)*8 = 24 cycles later
/// # Ok::<(), cba::CbaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CreditFilter {
    config: CreditConfig,
    counters: Vec<CreditCounter>,
    comp: Vec<bool>,
    mode: Mode,
    name: &'static str,
}

impl CreditFilter {
    /// Creates an operation-mode filter with all budgets full (the
    /// steady-state assumption for performance experiments).
    pub fn new(config: CreditConfig) -> Self {
        Self::with_mode(config, Mode::Operation)
    }

    /// Creates a filter in the given mode.
    ///
    /// Initial budgets follow the paper's measurement protocol: in
    /// operation mode all cores start full; in WCET-estimation mode the
    /// TuA starts at zero (worst case — its first request is maximally
    /// delayed) and contenders start full.
    pub fn with_mode(config: CreditConfig, mode: Mode) -> Self {
        let n = config.n_cores();
        let name = config.scheme_name();
        let counters = CoreId::all(n)
            .map(|core| {
                let initial = match mode {
                    Mode::WcetEstimation { tua } if core == tua => 0,
                    _ => config.scaled_cap(core),
                };
                CreditCounter::new(
                    config.numerator(core),
                    config.denominator(),
                    config.scaled_cap(core),
                    initial,
                )
            })
            .collect();
        CreditFilter {
            counters,
            comp: vec![false; n],
            mode,
            name,
            config,
        }
    }

    /// The filter's configuration.
    pub fn config(&self) -> &CreditConfig {
        &self.config
    }

    /// The operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current scaled budget of `core` (the `BUDGi` register).
    pub fn budget(&self, core: CoreId) -> u64 {
        self.counters[core.index()].value()
    }

    /// Current latched `COMPi` bit of `core` (always `true` in operation
    /// mode, matching Table I's "Operation mode: 1").
    pub fn comp(&self, core: CoreId) -> bool {
        match self.mode {
            Mode::Operation => true,
            Mode::WcetEstimation { tua } => core == tua || self.comp[core.index()],
        }
    }

    /// Whether `core`'s budget has reached the `MaxL` eligibility
    /// threshold.
    pub fn budget_full(&self, core: CoreId) -> bool {
        self.counters[core.index()].is_at_least(self.config.scaled_threshold())
    }

    fn is_tua(&self, core: CoreId) -> bool {
        matches!(self.mode, Mode::WcetEstimation { tua } if tua == core)
    }

    /// The first arbitration cycle at which `core`'s budget test can pass,
    /// given only idle recovery from cycle `now + 1` on: arbitration at
    /// cycle `t` sees the counter after the tick of cycle `t - 1`, so a
    /// deficit needing `k` recovery ticks clears at cycle `now + 1 + k`.
    /// `None` when the budget already passes.
    fn budget_pass_at(&self, core: CoreId, now: Cycle) -> Option<Cycle> {
        self.counters[core.index()]
            .cycles_to_reach(self.config.scaled_threshold())
            .map(|k| now + 1 + k)
    }
}

impl EligibilityFilter for CreditFilter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_eligible(&self, core: CoreId, _now: Cycle) -> bool {
        match self.mode {
            Mode::Operation => self.budget_full(core),
            Mode::WcetEstimation { tua } => {
                if core == tua {
                    self.budget_full(core)
                } else {
                    // Contenders compete only while their latched COMP bit
                    // is set (budget was full while the TuA had a request).
                    self.comp[core.index()]
                }
            }
        }
    }

    fn on_grant(&mut self, core: CoreId, _duration: u32, _now: Cycle) {
        // "COMPi is reset whenever core i is granted access to the bus."
        if !self.is_tua(core) {
            self.comp[core.index()] = false;
        }
    }

    fn tick(&mut self, _now: Cycle, owner: Option<CoreId>, pending: &PendingSet) {
        for (i, counter) in self.counters.iter_mut().enumerate() {
            counter.tick(owner.map(CoreId::index) == Some(i));
        }
        if let Mode::WcetEstimation { tua } = self.mode {
            // "The COMPi bit is set when BUDGi is [full] and REQ1 is set."
            // REQ1 = the TuA has a request pending (or currently in
            // service, which keeps contenders competing during its
            // transaction window as on the FPGA where REQ stays high until
            // served).
            let req1 = pending.contains(tua) || owner == Some(tua);
            if req1 {
                let threshold = self.config.scaled_threshold();
                for i in 0..self.comp.len() {
                    let core = CoreId::from_index(i);
                    if core != tua && self.counters[i].is_at_least(threshold) {
                        self.comp[i] = true;
                    }
                }
            }
        }
    }

    /// O(1) bulk tick: `k` cycles of unchanged occupancy. Counters move by
    /// their closed forms ([`CreditCounter::advance_idle`] /
    /// [`CreditCounter::advance_holding`]); WCET-mode `COMP` bits latch
    /// exactly when the per-cycle loop would have latched them, using the
    /// peak value each counter attains during the stretch (idle counters
    /// peak at the end, a draining owner peaks after its first tick).
    fn advance(&mut self, _now: Cycle, k: u64, owner: Option<CoreId>, pending: &PendingSet) {
        if k == 0 {
            return;
        }
        if let Mode::WcetEstimation { tua } = self.mode {
            let req1 = pending.contains(tua) || owner == Some(tua);
            if req1 {
                let threshold = self.config.scaled_threshold();
                for i in 0..self.comp.len() {
                    let core = CoreId::from_index(i);
                    if core == tua || self.comp[i] {
                        continue;
                    }
                    let mut peak = self.counters[i];
                    if owner == Some(core) {
                        peak.advance_holding(1);
                    } else {
                        peak.advance_idle(k);
                    }
                    if peak.is_at_least(threshold) {
                        self.comp[i] = true;
                    }
                }
            }
        }
        for (i, counter) in self.counters.iter_mut().enumerate() {
            if owner.map(CoreId::index) == Some(i) {
                counter.advance_holding(k);
            } else {
                counter.advance_idle(k);
            }
        }
    }

    /// During an idle stretch with a frozen pending set, every pending
    /// core's counter only recovers, so verdicts flip monotonically from
    /// ineligible to eligible; the earliest such flip is the horizon. In
    /// WCET-estimation mode a contender's verdict is its latched `COMP`
    /// bit, which (with `REQ1` frozen) latches exactly when its budget
    /// test first passes — the same arithmetic — and never flips at all
    /// while `REQ1` is low.
    fn next_eligibility_flip(&self, now: Cycle, pending: &PendingSet) -> FilterHorizon {
        let mut earliest: Option<Cycle> = None;
        for req in pending.iter() {
            let core = req.core();
            if self.is_eligible(core, now + 1) {
                continue;
            }
            let flip = match self.mode {
                Mode::Operation => self.budget_pass_at(core, now),
                Mode::WcetEstimation { tua } => {
                    if core == tua {
                        self.budget_pass_at(core, now)
                    } else if pending.contains(tua) {
                        // REQ1 high: COMP latches when the budget fills —
                        // or, if the budget is already full but COMP was
                        // never latched (REQ1 was low until now), at the
                        // stretch's very first tick.
                        Some(self.budget_pass_at(core, now).unwrap_or(now + 2))
                    } else {
                        // REQ1 low: COMP cannot latch during this stretch.
                        None
                    }
                }
            };
            if let Some(t) = flip {
                earliest = Some(earliest.map_or(t, |e: Cycle| e.min(t)));
            }
        }
        match earliest {
            Some(t) => FilterHorizon::At(t),
            None => FilterHorizon::Static,
        }
    }

    fn reset(&mut self) {
        let config = self.config.clone();
        let mode = self.mode;
        *self = CreditFilter::with_mode(config, mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cba_bus::{BusRequest, RequestKind};

    fn c(i: usize) -> CoreId {
        CoreId::from_index(i)
    }

    fn pending_with(n: usize, cores: &[usize]) -> PendingSet {
        let mut p = PendingSet::new(n);
        for &i in cores {
            p.insert(BusRequest::new(c(i), 5, RequestKind::Synthetic, 0).unwrap())
                .unwrap();
        }
        p
    }

    #[test]
    fn operation_mode_initially_all_eligible() {
        let f = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
        for i in 0..4 {
            assert!(f.is_eligible(c(i), 0));
            assert!(f.comp(c(i)), "operation mode: COMP always 1");
        }
    }

    #[test]
    fn budget_drains_and_blocks_until_recovered() {
        let mut f = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
        let empty = PendingSet::new(4);
        // Core 0 holds the bus for 10 cycles.
        for now in 0..10 {
            f.tick(now, Some(c(0)), &empty);
        }
        assert_eq!(f.budget(c(0)), 224 - 30);
        assert!(!f.is_eligible(c(0), 10));
        // Others untouched.
        for i in 1..4 {
            assert!(f.is_eligible(c(i), 10));
            assert_eq!(f.budget(c(i)), 224);
        }
        // Recovery takes (N-1)*10 = 30 idle cycles.
        for now in 10..39 {
            f.tick(now, None, &empty);
            assert!(!f.is_eligible(c(0), now + 1), "eligible too early at {now}");
        }
        f.tick(39, None, &empty);
        assert!(f.is_eligible(c(0), 40));
    }

    #[test]
    fn wcet_mode_tua_starts_with_zero_budget() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        assert_eq!(f.budget(c(0)), 0);
        assert!(!f.is_eligible(c(0), 0));
        for i in 1..4 {
            assert_eq!(f.budget(c(i)), 224, "contenders start full");
        }
    }

    #[test]
    fn wcet_mode_comp_requires_req1() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let no_tua = pending_with(4, &[1, 2, 3]);
        // Contenders pending, budgets full, but the TuA has no request:
        // COMP stays clear, contenders ineligible.
        for now in 0..50 {
            f.tick(now, None, &no_tua);
        }
        for i in 1..4 {
            assert!(!f.is_eligible(c(i), 50), "contender {i} must wait for REQ1");
            assert!(!f.comp(c(i)));
        }
        // The TuA posts a request: COMP latches for full-budget contenders.
        let with_tua = pending_with(4, &[0, 1, 2, 3]);
        f.tick(50, None, &with_tua);
        for i in 1..4 {
            assert!(f.is_eligible(c(i), 51), "contender {i} competes now");
            assert!(f.comp(c(i)));
        }
    }

    #[test]
    fn wcet_mode_comp_clears_on_grant_and_stays_latched_otherwise() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let with_tua = pending_with(4, &[0, 1, 2, 3]);
        f.tick(0, None, &with_tua);
        assert!(f.comp(c(1)));
        // COMP latches even if the TuA's request disappears...
        let no_tua = pending_with(4, &[1, 2, 3]);
        f.tick(1, None, &no_tua);
        assert!(f.comp(c(1)), "COMP is latched, not combinational");
        // ...and clears exactly on grant.
        f.on_grant(c(1), 56, 2);
        assert!(!f.comp(c(1)));
        assert!(!f.is_eligible(c(1), 2));
    }

    #[test]
    fn wcet_mode_tua_grant_does_not_clear_its_eligibility_logic() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let empty = PendingSet::new(4);
        // Fill the TuA's budget: 224 idle cycles.
        for now in 0..224 {
            f.tick(now, None, &empty);
        }
        assert!(f.is_eligible(c(0), 224));
        f.on_grant(c(0), 6, 224);
        // TuA eligibility is budget-based; on_grant must not latch anything
        // weird for it.
        assert!(
            f.budget_full(c(0)),
            "budget drains during ticks, not at grant"
        );
    }

    #[test]
    fn wcet_mode_req1_includes_tua_in_service() {
        // While the TuA's own transaction is in flight the contenders keep
        // latching COMP (REQ stays asserted until served on the FPGA).
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let empty = PendingSet::new(4);
        f.tick(0, Some(c(0)), &empty); // TuA holds the bus, nothing pending
        assert!(f.comp(c(1)), "COMP latched while TuA in service");
    }

    #[test]
    fn hcba_weighted_recovery_rates() {
        let cfg = CreditConfig::paper_hcba(56).unwrap();
        let mut f = CreditFilter::new(cfg);
        let empty = PendingSet::new(4);
        // Drain everyone by one 56-cycle transaction each (sequentially).
        for core in 0..4 {
            for _ in 0..56 {
                f.tick_helper(Some(c(core)), &empty);
            }
        }
        // TuA (num=3): drained 3*56 = 168 below cap while holding, then
        // recovered 3/cycle over the 3*56 = 168 cycles the others held:
        // back to full.
        assert!(f.budget_full(c(0)));
        // The last contender (num=1) is still recovering.
        assert!(!f.budget_full(c(3)));
    }

    impl CreditFilter {
        /// Test helper: tick without tracking cycle numbers.
        fn tick_helper(&mut self, owner: Option<CoreId>, pending: &PendingSet) {
            // Safe: `tick` ignores `now`.
            EligibilityFilter::tick(self, 0, owner, pending);
        }
    }

    #[test]
    fn cap_multiplier_allows_back_to_back() {
        let cfg = CreditConfig::homogeneous(4, 56)
            .unwrap()
            .with_cap_multipliers(vec![2, 1, 1, 1])
            .unwrap();
        let mut f = CreditFilter::new(cfg);
        let empty = PendingSet::new(4);
        // Let core 0 bank up to 2*MaxL: 224 extra cycles idle.
        for _ in 0..448 {
            f.tick_helper(None, &empty);
        }
        assert_eq!(f.budget(c(0)), 448);
        // One full MaxL transaction drains 3*56 = 168; still >= 224:
        for _ in 0..56 {
            f.tick_helper(Some(c(0)), &empty);
        }
        assert!(
            f.is_eligible(c(0), 0),
            "banked budget permits a back-to-back MaxL transaction"
        );
        // A second one in a row exhausts the bank below the threshold.
        for _ in 0..56 {
            f.tick_helper(Some(c(0)), &empty);
        }
        assert!(!f.is_eligible(c(0), 0));
    }

    #[test]
    fn reset_restores_mode_specific_initial_budgets() {
        let cfg = CreditConfig::homogeneous(4, 56).unwrap();
        let mut f = CreditFilter::with_mode(cfg, Mode::WcetEstimation { tua: c(0) });
        let with_tua = pending_with(4, &[0]);
        for now in 0..300 {
            f.tick(now, None, &with_tua);
        }
        assert!(f.budget_full(c(0)));
        f.reset();
        assert_eq!(f.budget(c(0)), 0, "TuA back to zero budget");
        assert_eq!(f.budget(c(1)), 224);
        assert!(!f.comp(c(1)));
    }

    /// Bulk advance must equal iterated ticks — budgets *and* COMP bits —
    /// across modes, owners, pending sets and stretch lengths.
    #[test]
    fn bulk_advance_matches_iterated_ticks() {
        use sim_core::rng::SimRng;
        let configs = [
            CreditConfig::homogeneous(4, 56).unwrap(),
            CreditConfig::paper_hcba(56).unwrap(),
        ];
        for (ci, config) in configs.iter().enumerate() {
            for mode in [Mode::Operation, Mode::WcetEstimation { tua: c(0) }] {
                let mut rng = SimRng::seed_from(0x5eed ^ ci as u64);
                let mut bulk = CreditFilter::with_mode(config.clone(), mode);
                let mut steps = CreditFilter::with_mode(config.clone(), mode);
                let mut now: Cycle = 0;
                for _ in 0..64 {
                    let owner = match rng.gen_range_u64(0..6) {
                        0..=3 => Some(c(rng.gen_range_usize(0..4))),
                        _ => None,
                    };
                    let mut cores = Vec::new();
                    for i in 0..4 {
                        if Some(c(i)) != owner && rng.gen_bool(0.5) {
                            cores.push(i);
                        }
                    }
                    let pending = pending_with(4, &cores);
                    let k = rng.gen_range_u64(0..300);
                    bulk.advance(now, k, owner, &pending);
                    for j in 0..k {
                        EligibilityFilter::tick(&mut steps, now + j, owner, &pending);
                    }
                    now += k.max(1);
                    for i in 0..4 {
                        assert_eq!(
                            bulk.budget(c(i)),
                            steps.budget(c(i)),
                            "budget of core {i} after k={k}, owner={owner:?}, mode={mode:?}"
                        );
                        assert_eq!(
                            bulk.comp(c(i)),
                            steps.comp(c(i)),
                            "COMP of core {i} after k={k}, owner={owner:?}, mode={mode:?}"
                        );
                    }
                }
            }
        }
    }

    /// The flip prediction is exact: no pending core's verdict changes
    /// strictly before the predicted cycle, and (when one is predicted)
    /// some verdict changes exactly there.
    #[test]
    fn next_eligibility_flip_is_exact() {
        use cba_bus::FilterHorizon;
        use sim_core::rng::SimRng;
        for seed in 0..24u64 {
            let mut rng = SimRng::seed_from(seed ^ 0xf11b);
            let cfg = CreditConfig::homogeneous(4, 56).unwrap();
            let mode = if seed % 2 == 0 {
                Mode::Operation
            } else {
                Mode::WcetEstimation { tua: c(0) }
            };
            let mut f = CreditFilter::with_mode(cfg, mode);
            // Random warm-up to scatter the budgets.
            let empty = PendingSet::new(4);
            for now in 0..rng.gen_range_u64(0..400) {
                let owner = match rng.gen_range_u64(0..5) {
                    0..=2 => Some(c(rng.gen_range_usize(0..4))),
                    _ => None,
                };
                EligibilityFilter::tick(&mut f, now, owner, &empty);
            }
            let mut cores = Vec::new();
            for i in 0..4 {
                if rng.gen_bool(0.7) {
                    cores.push(i);
                }
            }
            let pending = pending_with(4, &cores);
            let now = 1000u64;
            let verdicts = |f: &CreditFilter, t: Cycle| -> Vec<bool> {
                (0..4).map(|i| f.is_eligible(c(i), t)).collect()
            };
            match f.next_eligibility_flip(now, &pending) {
                FilterHorizon::Unknown => panic!("credit filter must predict"),
                FilterHorizon::Static => {
                    // Nothing may change over a long idle stretch.
                    let before = verdicts(&f, now + 1);
                    for t in now + 1..now + 2000 {
                        EligibilityFilter::tick(&mut f, t, None, &pending);
                        for &i in &cores {
                            assert_eq!(
                                f.is_eligible(c(i), t + 1),
                                before[i],
                                "seed {seed}: pending core {i} flipped at {t} under Static"
                            );
                        }
                    }
                }
                FilterHorizon::At(flip) => {
                    // A flip needs at least one recovery tick: >= now + 2.
                    assert!(flip >= now + 2, "seed {seed}: flip {flip} too early");
                    let before = verdicts(&f, now + 1);
                    // Tick cycles now+1 .. flip-2; arbitration at each
                    // following cycle (still before `flip`) is unchanged.
                    for cyc in now + 1..flip - 1 {
                        EligibilityFilter::tick(&mut f, cyc, None, &pending);
                        for &i in &cores {
                            assert_eq!(
                                f.is_eligible(c(i), cyc + 1),
                                before[i],
                                "seed {seed}: pending core {i} flipped early at {}",
                                cyc + 1
                            );
                        }
                    }
                    // The tick of cycle flip-1 makes the flip visible to
                    // the arbitration of cycle `flip`.
                    EligibilityFilter::tick(&mut f, flip - 1, None, &pending);
                    let changed = cores
                        .iter()
                        .any(|&i| f.is_eligible(c(i), flip) != before[i]);
                    assert!(changed, "seed {seed}: no verdict changed at {flip}");
                }
            }
        }
    }

    #[test]
    fn filter_names_follow_scheme() {
        let base = CreditFilter::new(CreditConfig::homogeneous(4, 56).unwrap());
        assert_eq!(base.name(), "CBA");
        let hetero = CreditFilter::new(CreditConfig::paper_hcba(56).unwrap());
        assert_eq!(hetero.name(), "H-CBA");
    }
}
