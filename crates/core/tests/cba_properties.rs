//! Property-based tests of the credit mechanism wired to a real bus:
//! budget-cap safety, the steady-state bandwidth bound, entitlement
//! enforcement and starvation freedom under randomized configurations and
//! workloads.
//!
//! The workspace builds offline, so instead of `proptest` these properties
//! are exercised over deterministic families of random inputs drawn from
//! [`SimRng`]: every case is reproducible from its seed, and a failure
//! message names the seed that produced it.

use cba::{CreditConfig, CreditFilter, Mode};
use cba_bus::{
    drive, Bus, BusConfig, BusRequest, Control, EligibilityFilter, PendingSet, PolicyKind,
    RequestKind,
};
use sim_core::rng::SimRng;
use sim_core::CoreId;

const MAXL: u32 = 56;

/// Random weighted credit configuration for `n` cores.
fn random_weighted_config(n: usize, rng: &mut SimRng) -> CreditConfig {
    let nums: Vec<u32> = (0..n).map(|_| rng.gen_range_u64(1..5) as u32).collect();
    let den: u32 = nums.iter().sum();
    CreditConfig::weighted(MAXL, nums, den).expect("sums match by construction")
}

/// Random per-core saturating request durations in `1..=MaxL`.
fn random_durations(n: usize, rng: &mut SimRng) -> Vec<u32> {
    (0..n)
        .map(|_| rng.gen_range_u64(1..MAXL as u64 + 1) as u32)
        .collect()
}

/// Saturates every core with `durations[i]`-cycle requests under the given
/// filter for `horizon` cycles; returns the driven bus.
fn saturate(config: &CreditConfig, policy: PolicyKind, durations: &[u32], horizon: u64) -> Bus {
    let n = durations.len();
    let mut bus = Bus::new(BusConfig::new(n, MAXL).unwrap(), policy.build(n, MAXL));
    bus.set_filter(Box::new(CreditFilter::new(config.clone())));
    drive(&mut bus, horizon, |bus, now, _completed| {
        for (i, &d) in durations.iter().enumerate() {
            let c = CoreId::from_index(i);
            if !bus.has_pending(c) && bus.owner() != Some(c) {
                bus.post(BusRequest::new(c, d, RequestKind::Synthetic, now).unwrap())
                    .unwrap();
            }
        }
        Control::Continue
    });
    bus
}

/// CBA invariant 1: a core's budget register never exceeds its configured
/// cap, whatever (randomized) sequence of holds and idle cycles it sees.
#[test]
fn budgets_never_exceed_the_configured_cap() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from(seed);
        let config = random_weighted_config(4, &mut rng);
        let mut filter = CreditFilter::new(config.clone());
        let empty = PendingSet::new(4);
        // Random owner sequence: bursts of one core holding, idle gaps.
        let mut now = 0u64;
        while now < 20_000 {
            let owner = if rng.gen_bool(0.7) {
                Some(CoreId::from_index(rng.gen_range_usize(0..4)))
            } else {
                None
            };
            let burst = rng.gen_range_u64(1..MAXL as u64 + 1);
            for _ in 0..burst {
                filter.tick(now, owner, &empty);
                now += 1;
                for core in CoreId::all(4) {
                    assert!(
                        filter.budget(core) <= config.scaled_cap(core),
                        "seed {seed}, cycle {now}: {core} budget {} above cap {}",
                        filter.budget(core),
                        config.scaled_cap(core)
                    );
                }
            }
        }
    }
}

/// CBA invariant 2: in steady state no core's busy-cycle share exceeds
/// `1/N + ε` under any baseline arbitration policy, for homogeneous CBA
/// with saturating cores of any duration mix.
#[test]
fn steady_state_share_bounded_by_one_over_n() {
    let n = 4;
    let horizon = 60_000u64;
    // ε: one full-budget burst at the start of the run plus one in-flight
    // transaction can overhang the 1/N entitlement.
    let epsilon = (2 * MAXL) as f64 / horizon as f64 + 0.005;
    let config = CreditConfig::homogeneous(n, MAXL).unwrap();
    for (case, seed) in (0..6u64).enumerate() {
        let mut rng = SimRng::seed_from(1_000 + seed);
        let durations = random_durations(n, &mut rng);
        for kind in PolicyKind::ALL {
            let bus = saturate(&config, kind, &durations, horizon);
            for (i, &dur) in durations.iter().enumerate() {
                let share = bus.trace().busy_cycles(CoreId::from_index(i)) as f64 / horizon as f64;
                assert!(
                    share <= 1.0 / n as f64 + epsilon,
                    "case {case}, {}: core {i} (dur {dur}) took {share:.4} > 1/{n}+ε",
                    kind.name(),
                );
            }
        }
    }
}

/// The entitlement law: under any weighted configuration and any
/// request-duration mix, no saturating core exceeds its `num/den`
/// share of total cycles (plus one in-flight transaction).
#[test]
fn no_core_exceeds_its_entitlement() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from(seed);
        let config = random_weighted_config(4, &mut rng);
        let durations = random_durations(4, &mut rng);
        let horizon = 60_000u64;
        let bus = saturate(&config, PolicyKind::RoundRobin, &durations, horizon);
        for i in 0..4 {
            let core = CoreId::from_index(i);
            let b = bus.trace().busy_cycles(core);
            let entitlement = config.bandwidth_fraction(core);
            assert!(
                b as f64 <= entitlement * horizon as f64 + f64::from(MAXL),
                "seed {seed}: core {i} used {b} of {horizon} cycles, entitlement {entitlement}"
            );
        }
    }
}

/// Starvation freedom: every saturating core keeps receiving grants
/// (slot counts all positive) regardless of duration mix.
#[test]
fn every_core_keeps_being_served() {
    for seed in 100..132u64 {
        let mut rng = SimRng::seed_from(seed);
        let config = random_weighted_config(4, &mut rng);
        let durations = random_durations(4, &mut rng);
        let bus = saturate(&config, PolicyKind::RoundRobin, &durations, 60_000);
        for i in 0..4 {
            assert!(
                bus.trace().slots(CoreId::from_index(i)) > 10,
                "seed {seed}: core {i} starved: {:?} slots",
                bus.trace().slots(CoreId::from_index(i))
            );
        }
    }
}

/// WCET-estimation mode: the TuA's first grant never arrives before its
/// zero-started budget fills, for any weighted configuration.
#[test]
fn wcet_mode_first_tua_grant_respects_fill_time() {
    for seed in 200..232u64 {
        let mut rng = SimRng::seed_from(seed);
        let config = random_weighted_config(4, &mut rng);
        let tua = CoreId::from_index(0);
        let mut bus = Bus::new(
            BusConfig::new(4, MAXL).unwrap(),
            PolicyKind::RoundRobin.build(4, MAXL),
        );
        let threshold = config.scaled_threshold();
        let num = config.numerator(tua) as u64;
        let fill = threshold.div_ceil(num);
        bus.set_filter(Box::new(CreditFilter::with_mode(
            config,
            Mode::WcetEstimation { tua },
        )));
        bus.enable_recording_trace();
        // TuA posts immediately and persistently; no contenders.
        let mut pending = false;
        let mut first_grant = None;
        drive(&mut bus, 3 * fill, |bus, now, done| {
            if let Some(ct) = done {
                if ct.core == tua {
                    pending = false;
                }
            }
            if !pending && bus.owner() != Some(tua) {
                bus.post(BusRequest::new(tua, 5, RequestKind::Synthetic, now).unwrap())
                    .unwrap();
                pending = true;
            }
            if first_grant.is_none() {
                if let Some(records) = bus.trace().records() {
                    if let Some(r) = records.first() {
                        first_grant = Some(r.start);
                    }
                }
            }
            Control::Continue
        });
        let first = first_grant.expect("TuA granted within 3 fill times");
        assert!(
            first >= fill - 1,
            "seed {seed}: first grant at {first}, budget fill needs {fill} cycles"
        );
    }
}
