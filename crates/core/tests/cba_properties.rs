//! Property-based tests of the credit mechanism wired to a real bus:
//! entitlement enforcement and starvation freedom under randomized
//! configurations and workloads.

use cba::{CreditConfig, CreditFilter, Mode};
use cba_bus::{Bus, BusConfig, BusRequest, PolicyKind, RequestKind};
use proptest::prelude::*;
use sim_core::CoreId;

/// Random weighted credit configuration for `n` cores.
fn weights_strategy(n: usize) -> impl Strategy<Value = CreditConfig> {
    proptest::collection::vec(1u32..5, n..=n).prop_map(move |nums| {
        let den: u32 = nums.iter().sum();
        CreditConfig::weighted(56, nums, den).expect("sums match by construction")
    })
}

/// Saturates every core with `durations[i]`-cycle requests under the given
/// filter for `horizon` cycles; returns per-core busy cycles.
fn saturate(config: &CreditConfig, durations: &[u32], horizon: u64) -> Vec<u64> {
    let n = durations.len();
    let mut bus = Bus::new(
        BusConfig::new(n, 56).unwrap(),
        PolicyKind::RoundRobin.build(n, 56),
    );
    bus.set_filter(Box::new(CreditFilter::new(config.clone())));
    for now in 0..horizon {
        bus.begin_cycle(now);
        for (i, &d) in durations.iter().enumerate() {
            let c = CoreId::from_index(i);
            if !bus.has_pending(c) && bus.owner() != Some(c) {
                bus.post(BusRequest::new(c, d, RequestKind::Synthetic, now).unwrap())
                    .unwrap();
            }
        }
        bus.end_cycle(now);
    }
    (0..n)
        .map(|i| bus.trace().busy_cycles(CoreId::from_index(i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The entitlement law: under any weighted configuration and any
    /// request-duration mix, no saturating core exceeds its `num/den`
    /// share of total cycles (plus one in-flight transaction).
    #[test]
    fn no_core_exceeds_its_entitlement(
        config in weights_strategy(4),
        durations in proptest::collection::vec(1u32..=56, 4..=4),
    ) {
        let horizon = 60_000u64;
        let busy = saturate(&config, &durations, horizon);
        for (i, &b) in busy.iter().enumerate() {
            let core = CoreId::from_index(i);
            let entitlement = config.bandwidth_fraction(core);
            prop_assert!(
                b as f64 <= entitlement * horizon as f64 + 56.0,
                "core {i} used {b} of {horizon} cycles, entitlement {entitlement}"
            );
        }
    }

    /// Starvation freedom: every saturating core keeps receiving grants
    /// (slot counts all positive) regardless of duration mix.
    #[test]
    fn every_core_keeps_being_served(
        config in weights_strategy(4),
        durations in proptest::collection::vec(1u32..=56, 4..=4),
    ) {
        let n = durations.len();
        let mut bus = Bus::new(
            BusConfig::new(n, 56).unwrap(),
            PolicyKind::RoundRobin.build(n, 56),
        );
        bus.set_filter(Box::new(CreditFilter::new(config)));
        for now in 0..60_000u64 {
            bus.begin_cycle(now);
            for (i, &d) in durations.iter().enumerate() {
                let c = CoreId::from_index(i);
                if !bus.has_pending(c) && bus.owner() != Some(c) {
                    bus.post(BusRequest::new(c, d, RequestKind::Synthetic, now).unwrap())
                        .unwrap();
                }
            }
            bus.end_cycle(now);
        }
        for i in 0..n {
            prop_assert!(
                bus.trace().slots(CoreId::from_index(i)) > 10,
                "core {i} starved: {:?} slots",
                bus.trace().slots(CoreId::from_index(i))
            );
        }
    }

    /// WCET-estimation mode: the TuA's first grant never arrives before its
    /// zero-started budget fills, for any weighted configuration.
    #[test]
    fn wcet_mode_first_tua_grant_respects_fill_time(config in weights_strategy(4)) {
        let tua = CoreId::from_index(0);
        let mut bus = Bus::new(
            BusConfig::new(4, 56).unwrap(),
            PolicyKind::RoundRobin.build(4, 56),
        );
        let threshold = config.scaled_threshold();
        let num = config.numerator(tua) as u64;
        let fill = threshold.div_ceil(num);
        bus.set_filter(Box::new(CreditFilter::with_mode(
            config,
            Mode::WcetEstimation { tua },
        )));
        bus.enable_recording_trace();
        // TuA posts immediately and persistently; no contenders.
        let mut pending = false;
        let mut first_grant = None;
        for now in 0..3 * fill {
            let done = bus.begin_cycle(now);
            if let Some(ct) = done {
                if ct.core == tua {
                    pending = false;
                }
            }
            if !pending && bus.owner() != Some(tua) {
                bus.post(BusRequest::new(tua, 5, RequestKind::Synthetic, now).unwrap())
                    .unwrap();
                pending = true;
            }
            if first_grant.is_none() {
                if let Some(records) = bus.trace().records() {
                    if let Some(r) = records.first() {
                        first_grant = Some(r.start);
                    }
                }
            }
            bus.end_cycle(now);
        }
        let first = first_grant.expect("TuA granted within 3 fill times");
        prop_assert!(
            first >= fill - 1,
            "first grant at {first}, budget fill needs {fill} cycles"
        );
    }
}
