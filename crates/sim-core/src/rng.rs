//! Deterministic, forkable random-number streams.
//!
//! Every stochastic element of the simulator (cache placement seeds, random
//! replacement, arbitration randomness, workload address streams) draws from
//! a [`SimRng`]. A run is fully reproducible from its master seed; campaign
//! runners fork one independent stream per run, and the platform forks one
//! stream per component, so adding randomness to one component never perturbs
//! another (a property the Monte-Carlo comparisons in the evaluation rely
//! on).
//!
//! The generator is a self-contained **xoshiro256++** (the algorithm behind
//! `rand::rngs::SmallRng` on 64-bit targets) seeded through SplitMix64, so
//! the crate carries no external dependencies and streams are stable across
//! toolchains.

/// SplitMix64 step, used to derive independent seeds from `(seed, tag)` and
/// to expand a 64-bit seed into the 256-bit xoshiro state.
///
/// SplitMix64 is the standard seed-sequence generator recommended for
/// seeding xoshiro-family generators; consecutive or otherwise correlated
/// inputs map to decorrelated outputs.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random stream with cheap independent forking.
///
/// Implements xoshiro256++ directly and keeps the seed it was created from
/// so that child streams can be derived with [`SimRng::fork`].
///
/// # Example
///
/// ```
/// use sim_core::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let mut cache_rng = a.fork(1);
/// let mut arb_rng = a.fork(2);
/// assert_ne!(cache_rng.next_u64(), arb_rng.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand through SplitMix64 exactly as xoshiro's authors recommend;
        // one extra scramble round keeps seed 0 away from the all-zero
        // state (which xoshiro cannot leave).
        let mut s = splitmix64(seed);
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = splitmix64(s);
            *slot = s;
        }
        SimRng { seed, state }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `tag`.
    ///
    /// Forking is a pure function of `(seed, tag)`, so the child is stable
    /// regardless of how much the parent stream has been consumed. Use
    /// distinct tags for distinct components.
    pub fn fork(&self, tag: u64) -> SimRng {
        SimRng::seed_from(splitmix64(
            self.seed ^ splitmix64(tag ^ 0xa076_1d64_78bd_642f),
        ))
    }

    /// Next 64 random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from a `u64` range (`lo..hi`, `hi` exclusive).
    ///
    /// Uses Lemire-style rejection sampling, so every value of the range is
    /// exactly equally likely.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Rejection-sample the top multiple of `span` to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// Uniform draw from a `usize` range (`lo..hi`, `hi` exclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range_u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform draw in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → the standard uniform-double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A geometric-ish inter-arrival gap with mean `mean` (never zero if
    /// `mean >= 1`), used by workload generators for compute gaps.
    ///
    /// Sampled as `1 + floor(-mean * ln(1 - u))` truncated at `32 * mean`,
    /// giving an exponential-tailed positive integer with approximate mean
    /// `mean` for `mean >= 1`.
    pub fn gen_gap(&mut self, mean: f64) -> u32 {
        if mean <= 1.0 {
            return 1;
        }
        let u: f64 = self.gen_f64();
        let raw = -(mean - 0.5) * (1.0 - u).ln();
        let cap = 32.0 * mean;
        (1.0 + raw.min(cap)) as u32
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks one element of a non-empty slice uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.gen_range_usize(0..slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SimRng::seed_from(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn fork_is_stable_wrt_parent_consumption() {
        let mut a = SimRng::seed_from(99);
        let fork_before = a.fork(5);
        let _ = a.next_u64();
        let _ = a.next_u64();
        let fork_after = a.fork(5);
        let mut x = fork_before;
        let mut y = fork_after;
        for _ in 0..16 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn forks_with_distinct_tags_decorrelate() {
        let parent = SimRng::seed_from(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SimRng::seed_from(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range_usize(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // Out-of-domain p is clamped rather than panicking.
        assert!((0..100).all(|_| rng.gen_bool(7.5)));
    }

    #[test]
    fn gen_gap_mean_roughly_matches() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mean_target = 12.0;
        let total: u64 = (0..n).map(|_| rng.gen_gap(mean_target) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - mean_target).abs() < 1.0,
            "empirical mean {mean} too far from {mean_target}"
        );
    }

    #[test]
    fn gen_gap_is_at_least_one() {
        let mut rng = SimRng::seed_from(6);
        assert!((0..1000).all(|_| rng.gen_gap(0.0) >= 1));
        assert!((0..1000).all(|_| rng.gen_gap(3.0) >= 1));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_produces_different_orders() {
        let mut rng = SimRng::seed_from(9);
        let mut v1: Vec<u32> = (0..20).collect();
        let mut v2: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v1);
        rng.shuffle(&mut v2);
        assert_ne!(v1, v2, "two consecutive shuffles should differ");
    }

    #[test]
    fn choose_uniformity_smoke() {
        let mut rng = SimRng::seed_from(10);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*rng.choose(&items)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference sequence computed independently from the published
        // xoshiro256++ algorithm with state expanded from seed 42 via the
        // extra-scramble SplitMix64 chain documented in `seed_from`; pins
        // the implementation so refactors cannot silently change every
        // seed-driven stream in the workspace.
        let mut rng = SimRng::seed_from(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x03f3_9b78_be22_447f,
                0x1dd9_733d_5a18_0053,
                0x0c89_a42c_7fa8_2e9c,
                0xb4d8_ea93_4776_7e7d,
            ]
        );
    }
}
