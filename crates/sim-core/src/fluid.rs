//! Continuous-time fluid approximation of a fairly shared bus.
//!
//! The cycle-accurate engines ([`drive`](crate::drive),
//! [`drive_events`](crate::drive_events)) serialize transactions: one
//! owner at a time, every grant an explicit event. The *fluid* model
//! instead treats outstanding requests as intervals of work drained
//! concurrently from a continuously shared resource — the classic
//! (weighted) processor-sharing idealization that the explicit-rate
//! fairness literature analyzes, and the limit the paper's credit-based
//! arbitration is designed to approach over long windows.
//!
//! [`FluidLane`] is the kernel: a set of flows, each with a remaining
//! amount of work and a weight, served simultaneously at rates
//! proportional to their weights. It runs on *virtual time* with an event
//! heap keyed by projected finish tag, so insert and complete are both
//! O(log n) and every arrival/departure rescales all shares implicitly —
//! no per-flow bookkeeping is touched when the active set changes.
//!
//! [`FluidBus`] adapts a lane to the [`BusModel`] protocol so the
//! [`Simulation`](crate::sim::Simulation) facade can drive it (see
//! [`Engine::Fluid`](crate::sim::Engine)): posted requests become flows,
//! completions are delivered on the cycle their fluid finish time rounds
//! up to, and the usual [`GrantTrace`] accounting is kept so result
//! extraction works unchanged.
//!
//! # Virtual time, briefly
//!
//! Let `W(t)` be the total weight of active flows. Virtual time advances
//! at rate `capacity / W(t)`; a flow arriving at real time `t` with work
//! `L` and weight `w` is assigned the finish tag `F = V(t) + L / w`.
//! Tags never change after assignment — arrivals and departures only
//! change the *rate* at which `V` progresses — so a binary heap on `F`
//! yields completions in order, and the real completion time of the head
//! is recovered by inverting the same rate relation.

use crate::engine::BusModel;
use crate::trace::GrantTrace;
use crate::{CoreId, Cycle};
use std::collections::BinaryHeap;

/// One flow's identity and projected finish, ordered for the event heap
/// (min-heap by finish tag; ties broken by insertion sequence so equal
/// tags complete in arrival order, matching the discrete engines' FIFO
/// tie-break).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    /// Projected finish in virtual time.
    finish_tag: f64,
    /// Arrival sequence number (tie-break).
    seq: u64,
    /// Caller-chosen flow identifier.
    id: u64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest tag.
        other
            .finish_tag
            .total_cmp(&self.finish_tag)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A continuously shared resource draining weighted flows concurrently
/// (weighted processor sharing / generalized max-min fairness).
///
/// Work and time are `f64`; the caller chooses the units (the bus models
/// use cycles of bus occupancy). See the [module docs](self) for the
/// virtual-time construction.
///
/// # Example
///
/// ```
/// use sim_core::fluid::FluidLane;
///
/// let mut lane = FluidLane::new(1.0);
/// lane.insert(0, 100.0, 1.0, 0.0);
/// lane.insert(1, 100.0, 1.0, 0.0);
/// // Two equal flows share the lane: each proceeds at rate 1/2 and both
/// // finish at t = 200.
/// let (t0, id0) = lane.complete_next().unwrap();
/// let (t1, _) = lane.complete_next().unwrap();
/// assert_eq!(id0, 0);
/// assert!((t0 - 200.0).abs() < 1e-9 && (t1 - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct FluidLane {
    capacity: f64,
    /// Virtual time at `real_time`.
    virtual_time: f64,
    /// Real time of the last virtual-time update.
    real_time: f64,
    /// Total weight of active flows.
    total_weight: f64,
    /// Per-flow weight, summed back out at completion (keyed lazily via
    /// the heap entries; the lane never scans flows).
    heap: BinaryHeap<HeapEntry>,
    weights: Vec<(u64, f64)>,
    next_seq: u64,
}

impl FluidLane {
    /// Creates an empty lane serving `capacity` units of work per unit of
    /// time (a bus serves 1 cycle of occupancy per cycle).
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is finite and positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        FluidLane {
            capacity,
            virtual_time: 0.0,
            real_time: 0.0,
            total_weight: 0.0,
            heap: BinaryHeap::new(),
            weights: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.heap.len()
    }

    /// The lane's current real-time clock.
    pub fn now(&self) -> f64 {
        self.real_time
    }

    /// Whether no flow is active.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The instantaneous service rate of a flow with weight `weight`
    /// (its fair share of capacity right now).
    pub fn rate_of(&self, weight: f64) -> f64 {
        if self.total_weight <= 0.0 {
            self.capacity
        } else {
            self.capacity * weight / self.total_weight
        }
    }

    /// Advances the lane's clock to real time `now` (virtual time moves
    /// at `capacity / total_weight`). Callers must not move time past the
    /// head flow's completion — use [`next_completion_time`] /
    /// [`complete_next`] to step across completions.
    ///
    /// [`next_completion_time`]: FluidLane::next_completion_time
    /// [`complete_next`]: FluidLane::complete_next
    ///
    /// # Panics
    ///
    /// Panics if `now` is in the past.
    pub fn advance_to(&mut self, now: f64) {
        assert!(now >= self.real_time, "time must not run backwards");
        if self.total_weight > 0.0 {
            self.virtual_time += (now - self.real_time) * self.capacity / self.total_weight;
        }
        self.real_time = now;
    }

    /// Inserts a flow of `work` units with `weight`, arriving at real
    /// time `now`; every active flow's share rescales implicitly. O(log n).
    ///
    /// # Panics
    ///
    /// Panics unless `work` and `weight` are finite and positive, and
    /// `now` does not precede the lane clock or the pending head
    /// completion (arrivals must be interleaved with
    /// [`complete_next`](FluidLane::complete_next) in time order).
    pub fn insert(&mut self, id: u64, work: f64, weight: f64, now: f64) {
        assert!(work.is_finite() && work > 0.0, "work must be positive");
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        if let Some(head) = self.next_completion_time() {
            assert!(
                now <= head + 1e-9,
                "arrival at {now} is past the head completion at {head}"
            );
        }
        self.advance_to(now);
        let entry = HeapEntry {
            finish_tag: self.virtual_time + work / weight,
            seq: self.next_seq,
            id,
        };
        self.next_seq += 1;
        self.total_weight += weight;
        self.heap.push(entry);
        self.weights.push((entry.seq, weight));
    }

    /// Real time at which the earliest-finishing active flow completes,
    /// if any flow is active.
    pub fn next_completion_time(&self) -> Option<f64> {
        let head = self.heap.peek()?;
        let remaining_virtual = (head.finish_tag - self.virtual_time).max(0.0);
        Some(self.real_time + remaining_virtual * self.total_weight / self.capacity)
    }

    /// Completes the earliest-finishing flow: advances the clock to its
    /// finish time, removes it (rescaling the remaining shares) and
    /// returns `(completion_time, id)`. O(log n).
    pub fn complete_next(&mut self) -> Option<(f64, u64)> {
        let at = self.next_completion_time()?;
        self.advance_to(at);
        let head = self.heap.pop().expect("head exists");
        self.virtual_time = self.virtual_time.max(head.finish_tag);
        let slot = self
            .weights
            .iter()
            .position(|&(seq, _)| seq == head.seq)
            .expect("active flow has a weight");
        let (_, weight) = self.weights.swap_remove(slot);
        self.total_weight -= weight;
        if self.heap.is_empty() {
            // Reset accumulated float error between busy periods.
            self.total_weight = 0.0;
        }
        Some((at, head.id))
    }
}

/// Request type of [`FluidBus`]: `work` cycles of bus occupancy for
/// `core`, served at a rate proportional to the core's weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidRequest {
    /// The requesting core.
    pub core: CoreId,
    /// Bus occupancy in cycles.
    pub work: u32,
}

/// Completion report of [`FluidBus`]: which core finished, and when its
/// fluid service ended (the cycle the report is delivered on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidCompletion {
    /// Core whose request finished.
    pub core: CoreId,
    /// Delivery cycle.
    pub at: Cycle,
}

/// A [`BusModel`] serving all posted requests *concurrently* at
/// weight-proportional rates — the fluid idealization of a fair bus.
///
/// Unlike the discrete bus there is no arbitration and no single owner:
/// `end_cycle` never grants, completions surface from `begin_cycle` on
/// the cycle their fluid finish time rounds up to (at most one per cycle,
/// earliest first, so the standard one-completion-per-cycle engine
/// contract holds). The [`GrantTrace`] is fed at completion time with the
/// request's nominal work, keeping share extraction identical to the
/// discrete engines.
#[derive(Debug)]
pub struct FluidBus {
    lane: FluidLane,
    weights: Vec<f64>,
    trace: GrantTrace,
    /// Completions whose fluid finish time has been computed, awaiting
    /// cycle-aligned delivery (ordered; front is earliest).
    ready: std::collections::VecDeque<(Cycle, CoreId, u32)>,
    /// Work posted per flow id (id = sequential), for trace accounting.
    in_flight: Vec<(u64, CoreId, u32)>,
    next_id: u64,
}

impl FluidBus {
    /// Creates a fluid bus for `n_cores` cores with equal unit weights.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0` or exceeds [`CoreId::MAX_CORES`].
    pub fn new(n_cores: usize) -> Self {
        Self::weighted(vec![1.0; n_cores])
    }

    /// Creates a fluid bus with one weight per core (H-CBA-style
    /// differentiated shares).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, longer than [`CoreId::MAX_CORES`],
    /// or contains a non-positive or non-finite weight.
    pub fn weighted(weights: Vec<f64>) -> Self {
        assert!(
            !weights.is_empty() && weights.len() <= CoreId::MAX_CORES,
            "1..={} cores required",
            CoreId::MAX_CORES
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive"
        );
        let n = weights.len();
        FluidBus {
            lane: FluidLane::new(1.0),
            weights,
            trace: GrantTrace::counting(n),
            ready: std::collections::VecDeque::new(),
            in_flight: Vec::new(),
            next_id: 0,
        }
    }

    /// The underlying lane (e.g. to inspect instantaneous rates).
    pub fn lane(&self) -> &FluidLane {
        &self.lane
    }

    /// Moves every lane completion that happens strictly before the end
    /// of cycle `now` into the cycle-aligned delivery queue.
    fn harvest(&mut self, now: Cycle) {
        while let Some(t) = self.lane.next_completion_time() {
            // A completion at fluid time t is deliverable on the first
            // cycle >= t; stop once the head finishes past this cycle.
            if t > now as f64 + 1e-9 {
                break;
            }
            let (t, id) = self.lane.complete_next().expect("head exists");
            let slot = self
                .in_flight
                .iter()
                .position(|&(fid, _, _)| fid == id)
                .expect("in-flight flow");
            let (_, core, work) = self.in_flight.swap_remove(slot);
            let deliver_at = (t.ceil() as Cycle).max(now);
            self.ready.push_back((deliver_at, core, work));
        }
    }
}

impl BusModel for FluidBus {
    type Request = FluidRequest;
    type Completion = FluidCompletion;
    type Error = crate::SimError;

    fn begin_cycle(&mut self, now: Cycle) -> Option<FluidCompletion> {
        self.harvest(now);
        if let Some(&(at, core, work)) = self.ready.front() {
            if at <= now {
                self.ready.pop_front();
                // Attribute the nominal work at completion (the fluid
                // model has no grant instant).
                self.trace.record(now, core, work);
                return Some(FluidCompletion { core, at: now });
            }
        }
        None
    }

    fn post(&mut self, req: FluidRequest) -> Result<(), crate::SimError> {
        if req.work == 0 {
            return Err(crate::SimError::InvalidConfig {
                what: "fluid request",
                why: "work must be positive".into(),
            });
        }
        let core = req.core.index();
        if core >= self.weights.len() {
            return Err(crate::SimError::InvalidConfig {
                what: "fluid request",
                why: format!("core {core} outside the {}-core bus", self.weights.len()),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        // Service starts at the lane clock, which end_cycle/advance keep
        // synced to the cycle being executed.
        let at = self.lane.now();
        self.lane
            .insert(id, req.work as f64, self.weights[core], at);
        self.in_flight.push((id, req.core, req.work));
        Ok(())
    }

    fn end_cycle(&mut self, now: Cycle) -> Option<CoreId> {
        // Continuous sharing: no grant instants. Sync the lane clock so
        // posts next cycle arrive at the right time (never moving past
        // the head completion, which harvest steps across).
        let target = self
            .lane
            .next_completion_time()
            .map_or((now + 1) as f64, |t| t.min((now + 1) as f64));
        if target > self.lane.now() {
            self.lane.advance_to(target);
        }
        None
    }

    fn owner(&self) -> Option<CoreId> {
        None
    }

    fn trace(&self) -> &GrantTrace {
        &self.trace
    }

    fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        if let Some(&(at, _, _)) = self.ready.front() {
            return Some(at.max(now + 1));
        }
        match self.lane.next_completion_time() {
            Some(t) => Some((t.ceil() as Cycle).max(now + 1)),
            None => Some(Cycle::MAX),
        }
    }

    fn advance(&mut self, _from: Cycle, to: Cycle) {
        // No per-cycle state: just move the clock (never past the head
        // completion; the engine's jump target respects next_event).
        let target = self
            .lane
            .next_completion_time()
            .map_or(to as f64, |t| t.min(to as f64));
        if target > self.lane.real_time {
            self.lane.advance_to(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut lane = FluidLane::new(1.0);
        lane.insert(7, 56.0, 1.0, 10.0);
        assert_eq!(lane.active(), 1);
        let (t, id) = lane.complete_next().unwrap();
        assert_eq!(id, 7);
        assert!((t - 66.0).abs() < 1e-9);
        assert!(lane.is_empty());
    }

    #[test]
    fn equal_flows_split_evenly() {
        let mut lane = FluidLane::new(1.0);
        lane.insert(0, 100.0, 1.0, 0.0);
        lane.insert(1, 100.0, 1.0, 0.0);
        let (t0, _) = lane.complete_next().unwrap();
        let (t1, _) = lane.complete_next().unwrap();
        assert!((t0 - 200.0).abs() < 1e-9);
        assert!((t1 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn weights_scale_shares() {
        // Weight 3 vs 1: the heavy flow drains at 3/4 capacity.
        let mut lane = FluidLane::new(1.0);
        lane.insert(0, 300.0, 3.0, 0.0);
        lane.insert(1, 100.0, 1.0, 0.0);
        // Both have finish tag V + 100, so they tie; arrival order breaks
        // the tie and both complete at t = 400.
        let (t0, id0) = lane.complete_next().unwrap();
        assert_eq!(id0, 0);
        assert!((t0 - 400.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_rescales_rates() {
        // Flow 0 runs alone for 50, then shares with flow 1: remaining 50
        // units of flow 0 drain at rate 1/2 -> finishes at 150.
        let mut lane = FluidLane::new(1.0);
        lane.insert(0, 100.0, 1.0, 0.0);
        lane.advance_to(50.0);
        lane.insert(1, 100.0, 1.0, 50.0);
        let (t0, id0) = lane.complete_next().unwrap();
        assert_eq!(id0, 0);
        assert!((t0 - 150.0).abs() < 1e-9);
        // Flow 1 then runs alone: 50 remaining at rate 1 -> 200.
        let (t1, id1) = lane.complete_next().unwrap();
        assert_eq!(id1, 1);
        assert!((t1 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_scales_time() {
        let mut lane = FluidLane::new(2.0);
        lane.insert(0, 100.0, 1.0, 0.0);
        let (t, _) = lane.complete_next().unwrap();
        assert!((t - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_weight_rejected() {
        let mut lane = FluidLane::new(1.0);
        lane.insert(0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn fluid_bus_serves_concurrently() {
        let mut bus = FluidBus::new(2);
        bus.post(FluidRequest {
            core: CoreId::from_index(0),
            work: 10,
        })
        .unwrap();
        bus.post(FluidRequest {
            core: CoreId::from_index(1),
            work: 10,
        })
        .unwrap();
        let mut completions = Vec::new();
        for now in 0..64 {
            if let Some(c) = bus.begin_cycle(now) {
                completions.push((c.core.index(), c.at));
            }
            bus.end_cycle(now);
        }
        // Both share the bus: each runs at rate 1/2, both finish at t=20,
        // delivered on consecutive cycles (one completion per cycle).
        assert_eq!(completions.len(), 2);
        assert_eq!(completions[0].1, 20);
        assert_eq!(completions[1].1, 21);
        assert_eq!(bus.trace().slots(CoreId::from_index(0)), 1);
        assert_eq!(bus.trace().busy_cycles(CoreId::from_index(1)), 10);
    }

    #[test]
    fn fluid_bus_weighted_shares() {
        // Weight 3:1, both post 30 units at t=0. Heavy core finishes at
        // 40 (rate 3/4); light core still has 30 - 10 = 20 left, rate 1
        // -> finishes at 60.
        let mut bus = FluidBus::weighted(vec![3.0, 1.0]);
        bus.post(FluidRequest {
            core: CoreId::from_index(0),
            work: 30,
        })
        .unwrap();
        bus.post(FluidRequest {
            core: CoreId::from_index(1),
            work: 30,
        })
        .unwrap();
        let mut done = Vec::new();
        for now in 0..128 {
            if let Some(c) = bus.begin_cycle(now) {
                done.push((c.core.index(), c.at));
            }
            bus.end_cycle(now);
        }
        assert_eq!(done, vec![(0, 40), (1, 60)]);
    }

    #[test]
    fn fluid_bus_rejects_bad_posts() {
        let mut bus = FluidBus::new(2);
        assert!(bus
            .post(FluidRequest {
                core: CoreId::from_index(0),
                work: 0,
            })
            .is_err());
        assert!(bus
            .post(FluidRequest {
                core: CoreId::from_index(5),
                work: 3,
            })
            .is_err());
    }

    #[test]
    fn heap_orders_many_flows() {
        // n staggered flows with distinct works: completions come out in
        // finish-time order regardless of insertion order.
        let mut lane = FluidLane::new(1.0);
        for i in 0..32u64 {
            lane.insert(i, 1000.0 - (i as f64) * 17.0, 1.0, 0.0);
        }
        let mut last = 0.0f64;
        let mut seen = Vec::new();
        while let Some((t, id)) = lane.complete_next() {
            assert!(t >= last - 1e-9, "completions must be time-ordered");
            last = t;
            seen.push(id);
        }
        // Least remaining work finishes first: ids in reverse order.
        let expect: Vec<u64> = (0..32).rev().collect();
        assert_eq!(seen, expect);
    }
}
