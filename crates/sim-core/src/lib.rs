#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod engine;
pub mod export;
pub mod fluid;
pub mod lfsr;
pub mod probe;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod trace;

pub use agent::{AgentStats, MemStats, SimAgent};
pub use engine::{drive, drive_events, BusModel, Control, DriveOutcome, TickOutcome};
pub use probe::{ModelEvent, NoProbe, Probe};
pub use sim::{BoxedAgent, Engine, Simulation, SimulationBuilder, StopWhen};

use std::fmt;

/// Simulated time, measured in clock cycles since the start of a run.
///
/// A plain `u64` alias (rather than a newtype) because cycle arithmetic
/// saturates every hot loop of the simulator; the alias keeps call sites
/// readable without obscuring arithmetic.
pub type Cycle = u64;

/// Identity of one core (bus contender) in an `n`-core platform.
///
/// A `CoreId` is always valid for the platform size it was created with:
/// [`CoreId::new`] validates `index < n_cores`. Core 0 is, by the paper's
/// convention, the core running the task under analysis (TuA) in WCET
/// estimation mode.
///
/// # Example
///
/// ```
/// use sim_core::CoreId;
///
/// let c = CoreId::new(2, 4).unwrap();
/// assert_eq!(c.index(), 2);
/// assert_eq!(c.to_string(), "core2");
/// assert!(CoreId::new(4, 4).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(u8);

impl CoreId {
    /// Maximum number of cores any platform model supports.
    ///
    /// The paper targets 4 cores and notes buses stop scaling at ~8; 64 is a
    /// generous margin that keeps per-core state in fixed arrays cheap.
    pub const MAX_CORES: usize = 64;

    /// Creates the identity of core `index` on an `n_cores`-core platform.
    ///
    /// Returns `None` if `index >= n_cores` or `n_cores > MAX_CORES`.
    #[inline]
    pub fn new(index: usize, n_cores: usize) -> Option<Self> {
        if index < n_cores && n_cores <= Self::MAX_CORES {
            Some(CoreId(index as u8))
        } else {
            None
        }
    }

    /// Creates a `CoreId` without a platform-size check.
    ///
    /// Useful in tests and in contexts where the platform size is enforced
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_CORES`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index < Self::MAX_CORES,
            "core index {index} exceeds MAX_CORES {}",
            Self::MAX_CORES
        );
        CoreId(index as u8)
    }

    /// The zero-based index of this core.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all core identities of an `n_cores` platform.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores > MAX_CORES`.
    pub fn all(n_cores: usize) -> impl Iterator<Item = CoreId> + Clone {
        assert!(n_cores <= Self::MAX_CORES);
        (0..n_cores).map(|i| CoreId(i as u8))
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<CoreId> for usize {
    #[inline]
    fn from(id: CoreId) -> usize {
        id.index()
    }
}

/// Errors reported by simulation-kernel constructors and components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration value was outside its documented domain.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// Human-readable explanation of the constraint that failed.
        why: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what, why } => {
                write!(f, "invalid configuration for {what}: {why}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_bounds() {
        assert!(CoreId::new(0, 1).is_some());
        assert!(CoreId::new(3, 4).is_some());
        assert!(CoreId::new(4, 4).is_none());
        assert!(CoreId::new(0, CoreId::MAX_CORES + 1).is_none());
    }

    #[test]
    fn core_id_display_and_index() {
        let c = CoreId::new(3, 4).unwrap();
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "core3");
        assert_eq!(usize::from(c), 3);
    }

    #[test]
    fn core_id_all_enumerates_in_order() {
        let ids: Vec<usize> = CoreId::all(4).map(|c| c.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CORES")]
    fn from_index_panics_past_max() {
        let _ = CoreId::from_index(CoreId::MAX_CORES);
    }

    #[test]
    fn sim_error_displays() {
        let e = SimError::InvalidConfig {
            what: "n_cores",
            why: "must be at least 2".into(),
        };
        assert!(e.to_string().contains("n_cores"));
        assert!(e.to_string().contains("at least 2"));
    }
}
