//! The open client side of the simulator: the [`SimAgent`] trait.
//!
//! PR 1 unified the *bus* side behind [`BusModel`](crate::BusModel); this
//! module mirrors that on the *client* side. A `SimAgent` is anything that
//! generates traffic against a request port `P` — a cycle-accurate core
//! model, a saturating contender, a periodic co-runner, a fixed-request
//! task, or a downstream user's custom workload — and every harness
//! (`Simulation`, the platform's `run_once`, the benches) drives agents
//! only through this trait, so new workload shapes plug in without
//! touching any harness code.
//!
//! The trait is generic over the port type `P` (kept `?Sized` so trait
//! objects like `dyn RequestPort` work) and the completion report type
//! `C`, because the kernel crate does not know the concrete bus types;
//! the bus workspace instantiates `C` with its completion report and `P`
//! with its client-side request port.
//!
//! # Contract
//!
//! An agent is a sequential state machine driven once per *executed*
//! cycle, between the model's `begin_cycle` and `end_cycle`:
//!
//! 1. [`tick`](SimAgent::tick) receives the cycle number, the cycle's
//!    completion report (if any) and the request port, may post traffic,
//!    and returns a [`Control`] verdict;
//! 2. [`wake_at`](SimAgent::wake_at), queried after the tick, bounds the
//!    next cycle at which ticking the agent can have any effect (absent a
//!    completion addressed to it) — the event-horizon engine skips the
//!    cycles in between;
//! 3. [`absorb_skipped`](SimAgent::absorb_skipped) replays per-cycle
//!    accounting for cycles the engine skipped, so statistics stay
//!    bit-identical to per-cycle execution;
//! 4. [`reset`](SimAgent::reset) must restore the agent to a
//!    fresh-construction state (the workspace's conformance suite asserts
//!    `reset` ≡ fresh construction for every shipped agent).

use crate::engine::Control;
use crate::rng::SimRng;
use crate::Cycle;

/// Snapshot of an agent's execution statistics, uniform across agent
/// kinds so harnesses can report on heterogeneous mixes.
///
/// Agents fill the fields they track and leave the rest at zero/`None`
/// (e.g. only the full core model accounts stall cycles); construct with
/// `AgentStats { ..Default::default() }` and set what you have.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Bus transactions completed (grants absorbed) so far.
    pub completed: u64,
    /// Cycles spent on useful (non-stalled) work, if tracked.
    pub busy_cycles: u64,
    /// Cycles stalled waiting on the interconnect, if tracked.
    pub bus_stall_cycles: u64,
    /// Cycles stalled on a full store buffer, if tracked.
    pub store_stall_cycles: u64,
    /// Completion cycle, once the agent finished.
    pub done_at: Option<Cycle>,
    /// Memory-side counters, for agents that drive a cache hierarchy
    /// (miss-stream / coherence agents). `None` for every other kind, so
    /// harnesses can gate memory report columns on their presence.
    pub mem: Option<MemStats>,
}

/// Memory-side counters for agents whose bus traffic comes from a cache
/// hierarchy: the raw integer tallies a report layer needs to derive
/// miss rates and coherence-traffic fractions exactly (sums of `u64`s,
/// so campaign aggregation stays bit-deterministic across thread
/// counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Memory accesses executed (loads + stores, private and shared).
    pub accesses: u64,
    /// Accesses that required at least one bus transaction.
    pub misses: u64,
    /// Bus transactions posted (demand + coherence + writebacks).
    pub bus_txns: u64,
    /// Coherence transactions among `bus_txns` (read-exclusives,
    /// upgrades, invalidation acks, coherence writebacks).
    pub coherence: u64,
    /// Writebacks of modified data (dirty-victim evictions plus
    /// coherence-forced flushes).
    pub writebacks: u64,
}

impl MemStats {
    /// Accumulates another snapshot into this one (per-field sum), for
    /// summing per-agent counters into a per-run total.
    pub fn accumulate(&mut self, other: MemStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.bus_txns += other.bus_txns;
        self.coherence += other.coherence;
        self.writebacks += other.writebacks;
    }
}

/// One traffic-generating client of the simulated interconnect.
///
/// `P` is the request port the agent posts through (e.g. the bus
/// workspace's `RequestPort` trait object, or a concrete bus model); `C`
/// is the completion report delivered each cycle. See the [module
/// documentation](self) for the full contract and `sim_core::sim` for
/// the harness that drives agents.
pub trait SimAgent<P: ?Sized, C = ()> {
    /// Advances the agent by one cycle. `completed` is the model's
    /// completion report for this cycle (agents must ignore completions
    /// addressed to other agents). The returned [`Control`] is the
    /// agent's verdict for the *engine*: [`Control::Continue`] to be
    /// ticked every cycle, [`Control::Sleep`]`(t)` when nothing can
    /// happen before cycle `t` (mirroring [`SimAgent::wake_at`]), or
    /// [`Control::Stop`] to request that the whole simulation stop after
    /// this cycle (no shipped agent does; the hook exists for
    /// user-defined measurement agents).
    fn tick(&mut self, now: Cycle, completed: Option<&C>, port: &mut P) -> Control;

    /// The agent's sleep horizon, queried after its tick: the next cycle
    /// at which ticking it can have any effect, absent a completion
    /// addressed to it. `None` = must be ticked every cycle;
    /// `Some(Cycle::MAX)` = only a completion can wake it.
    fn wake_at(&self) -> Option<Cycle> {
        None
    }

    /// Whether the agent's workload has finished. Infinite agents
    /// (saturating/periodic contenders) return `false` forever.
    fn is_done(&self) -> bool;

    /// The cycle at which the workload finished, once done.
    fn done_at(&self) -> Option<Cycle> {
        None
    }

    /// Accounts `skipped` engine-skipped cycles (see
    /// [`SimAgent::wake_at`]): statistics must advance exactly as that
    /// many unchanged ticks would have advanced them. Agents whose state
    /// is already expressed in absolute cycles need nothing here.
    fn absorb_skipped(&mut self, skipped: u64) {
        let _ = skipped;
    }

    /// Whether the agent is **inert**: permanently done, with `tick` and
    /// `absorb_skipped` guaranteed no-ops forever. Harnesses may drop
    /// inert agents from their per-cycle loops entirely (the
    /// [`Simulation`](crate::sim::Simulation) facade does), so only
    /// return `true` when the agent can never act again — [`Idle`] is
    /// the canonical case. Returning `true` while not done breaks stop
    /// conditions; the default is `false`.
    fn is_inert(&self) -> bool {
        false
    }

    /// Restores the agent to a fresh-construction state for a new run.
    /// Agents with internal randomness must re-fork their streams from
    /// `rng` exactly as their constructor did; deterministic agents
    /// ignore it.
    fn reset(&mut self, rng: &mut SimRng);

    /// A uniform snapshot of the agent's execution statistics.
    fn stats(&self) -> AgentStats {
        AgentStats::default()
    }
}

/// The trivial agent: never posts, is always done, sleeps forever.
///
/// Stands in for an unloaded core so heterogeneous mixes can leave slots
/// empty without special-casing harness code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Idle;

impl Idle {
    /// Creates the idle agent.
    pub fn new() -> Self {
        Idle
    }
}

impl<P: ?Sized, C> SimAgent<P, C> for Idle {
    fn tick(&mut self, _now: Cycle, _completed: Option<&C>, _port: &mut P) -> Control {
        Control::Sleep(Cycle::MAX)
    }

    fn wake_at(&self) -> Option<Cycle> {
        Some(Cycle::MAX)
    }

    fn is_done(&self) -> bool {
        true
    }

    fn is_inert(&self) -> bool {
        true
    }

    fn reset(&mut self, _rng: &mut SimRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_agent_is_inert() {
        let mut idle = Idle::new();
        let mut port = ();
        let verdict = SimAgent::<(), u32>::tick(&mut idle, 0, None, &mut port);
        assert_eq!(verdict, Control::Sleep(Cycle::MAX));
        assert!(SimAgent::<(), u32>::is_done(&idle));
        assert_eq!(SimAgent::<(), u32>::wake_at(&idle), Some(Cycle::MAX));
        assert_eq!(SimAgent::<(), u32>::done_at(&idle), None);
        assert_eq!(SimAgent::<(), u32>::stats(&idle), AgentStats::default());
    }
}
